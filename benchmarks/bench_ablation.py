"""E-A — Sec. VI-F optimization ablations.

One bench per optimization axis; each crafts the situation its
optimization targets and reports on-vs-off throughput, latency, and the
axis-specific effect (deliver phases avoided, wire bytes saved).  The
assembled table is printed at session end.
"""

import pytest
from _common import record_table

from repro.experiments.ablation import (
    AblationResult,
    ablate_avoid_revotes,
    ablate_omit_known_blocks,
    ablate_preempt_catchup,
    render_ablations,
)

_RESULTS: dict[str, AblationResult] = {}
_ALL = ("avoid_revotes", "omit_known_blocks", "preempt_catchup")


def _record(result: AblationResult) -> None:
    _RESULTS[result.axis] = result
    if set(_RESULTS) == set(_ALL):
        record_table(render_ablations([_RESULTS[a] for a in _ALL]))


def test_ablation_avoid_revotes(benchmark):
    result = benchmark.pedantic(ablate_avoid_revotes, rounds=1, iterations=1)
    _record(result)
    benchmark.extra_info["delivers_on"] = result.on_delivers
    benchmark.extra_info["delivers_off"] = result.off_delivers
    # The optimization removes the re-vote deliver phases entirely.
    assert result.on_delivers < result.off_delivers
    assert result.on.throughput_tps >= result.off.throughput_tps * 0.98


def test_ablation_omit_known_blocks(benchmark):
    result = benchmark.pedantic(ablate_omit_known_blocks, rounds=1, iterations=1)
    _record(result)
    saved = 1 - result.on_bytes / result.off_bytes
    benchmark.extra_info["bytes_saved_pct"] = round(saved * 100, 1)
    assert saved > 0.05  # omission saves real wire bytes at 256 B


def test_ablation_preempt_catchup(benchmark):
    result = benchmark.pedantic(ablate_preempt_catchup, rounds=1, iterations=1)
    _record(result)
    benchmark.extra_info["tput_on"] = round(result.on.throughput_tps)
    benchmark.extra_info["tput_off"] = round(result.off.throughput_tps)
    # Preempting slow deliver phases improves both headline metrics.
    assert result.on.throughput_tps > result.off.throughput_tps
    assert result.on.mean_latency_s < result.off.mean_latency_s
