"""E-C — the chained (pipelined) family (Sec. III / Sec. IX extension).

Not a paper figure (the paper evaluates the basic versions) but the
natural follow-up its text names: Chained-HotStuff and Chained-Damysus
exist (Sec. III) and OneShot "can be seamlessly turned into a chained
version" (Sec. IX).  All three pipelined protocols run two waves per
view and one block per view, so their throughputs converge — while the
k-chain commit rules (1 / 2 / 3) keep OneShot's latency advantage.
"""

import pytest
from _common import TARGET_BLOCKS, record_table

from repro.experiments import ExperimentConfig, run_experiment
from repro.metrics import render_table

PROTOCOLS = (
    "hotstuff",
    "hotstuff-chained",
    "damysus",
    "damysus-chained",
    "oneshot",
    "oneshot-chained",
)

_RESULTS = {}


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_chained_family(benchmark, protocol):
    cfg = ExperimentConfig(
        protocol=protocol,
        f=2,
        payload_bytes=0,
        deployment="eu",
        target_blocks=2 * TARGET_BLOCKS,
        seed=7,
    )
    result = benchmark.pedantic(
        lambda: run_experiment(cfg), rounds=1, iterations=1
    )
    stats = result.stats
    _RESULTS[protocol] = stats
    benchmark.extra_info["throughput_tps"] = round(stats.throughput_tps)
    benchmark.extra_info["latency_ms"] = round(stats.mean_latency_s * 1e3, 2)
    if len(_RESULTS) < len(PROTOCOLS):
        return
    rows, cells = [], []
    for proto in PROTOCOLS:
        st = _RESULTS[proto]
        rows.append(proto)
        cells.append(
            [f"{st.throughput_tps:,.0f}", f"{st.mean_latency_s * 1e3:.1f}"]
        )
    record_table(
        render_table(
            "Basic vs chained family (EU, f=2, 0B)",
            rows,
            ["tx/s", "latency ms"],
            cells,
        )
    )
    # Chaining improves every protocol's throughput...
    for base in ("hotstuff", "damysus", "oneshot"):
        assert (
            _RESULTS[f"{base}-chained"].throughput_tps
            > _RESULTS[base].throughput_tps
        )
    # ...and the k-chain commit rule preserves the latency ordering.
    assert (
        _RESULTS["oneshot-chained"].mean_latency_s
        < _RESULTS["damysus-chained"].mean_latency_s
        < _RESULTS["hotstuff-chained"].mean_latency_s
    )
