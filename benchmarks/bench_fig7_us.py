"""E3 — Fig. 7, US deployment (N.Virginia/Ohio/N.California/Oregon, max RTT
65 ms): throughput & latency vs f for OneShot, Damysus, HotStuff at
0 B and 256 B payloads.

Each benchmark regenerates one figure point; the assembled panel and
the Sec. VIII-b gain table are printed at session end.
"""

import pytest
from _common import F_VALUES, PAYLOADS, PROTOCOLS, TARGET_BLOCKS, record_fig7

from repro.experiments import ExperimentConfig, run_experiment

DEPLOYMENT = "us"


@pytest.mark.parametrize("f", F_VALUES)
@pytest.mark.parametrize("payload", PAYLOADS)
@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_fig7_us_point(benchmark, protocol, payload, f):
    cfg = ExperimentConfig(
        protocol=protocol,
        f=f,
        payload_bytes=payload,
        deployment=DEPLOYMENT,
        target_blocks=TARGET_BLOCKS,
        seed=7,
    )
    result = benchmark.pedantic(
        lambda: run_experiment(cfg), rounds=1, iterations=1
    )
    stats = result.stats
    record_fig7(DEPLOYMENT, protocol, payload, f, stats)
    benchmark.extra_info["throughput_tps"] = round(stats.throughput_tps)
    benchmark.extra_info["latency_ms"] = round(stats.mean_latency_s * 1e3, 2)
    assert stats.blocks_decided >= TARGET_BLOCKS
