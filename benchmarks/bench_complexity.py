"""E-M — linear message complexity (Sec. I claim).

Measures messages/bytes per decided block across cluster sizes and
checks that per-node message counts stay constant — the defining
property of a streamlined protocol (a quadratic protocol's per-node
count would grow with n).  Bonus: the per-node constant *is* the
protocol's communication-step count (4 / 6 / 8).
"""

import pytest
from _common import record_table

from repro.experiments.complexity import (
    check_linearity,
    render_complexity,
    run_complexity,
)

EXPECTED_STEPS = {"oneshot": 4, "damysus": 6, "hotstuff": 8}


def test_message_complexity_linear(benchmark):
    result = benchmark.pedantic(
        lambda: run_complexity(f_values=(1, 2, 4, 10)), rounds=1, iterations=1
    )
    record_table(render_complexity(result))
    assert check_linearity(result) == []
    for protocol, steps in EXPECTED_STEPS.items():
        per_node = [
            p.msgs_per_block_per_node for p in result.series(protocol)
        ]
        # Per-node messages per block == communication steps per view.
        for value in per_node:
            assert abs(value - steps) < 0.5, (protocol, per_node)
        benchmark.extra_info[f"{protocol}_msgs_per_block_per_node"] = round(
            per_node[-1], 2
        )
