"""M1-M3 — supporting micro-benchmarks.

Wall-clock costs of the substrate primitives the protocol simulation
leans on: the event loop, signature generation/verification, TEE entry
points, and a full small-cluster view.  These are not paper artifacts;
they document where simulation time goes.
"""

import pytest

from repro.core.certificates import GENESIS_PROPOSAL
from repro.core.tee_services import Checker
from repro.crypto import T2_MICRO, KeyPair, KeyRing, digest_of
from repro.net import ConstantLatency, Network
from repro.protocols.common import ProtocolConfig, build_cluster
from repro.protocols.registry import get_protocol
from repro.sim import Simulator
from repro.tee import TeeCostModel, provision


def test_event_loop_throughput(benchmark):
    """Schedule-and-run cost of 10k chained events."""

    def run():
        sim = Simulator()

        def chain(k):
            if k:
                sim.schedule(0.001, chain, k - 1)

        sim.schedule(0.001, chain, 9999)
        sim.run()
        return sim.events_executed

    assert benchmark(run) == 10_000


def test_signature_roundtrip(benchmark):
    kp = KeyPair.generate(0)
    ring = KeyRing()
    ring.add(kp.public())
    d = digest_of("payload")

    def run():
        sig = kp.sign(d)
        assert ring.verify(d, sig)

    benchmark(run)


def test_checker_store_ecall(benchmark):
    creds = provision(2)

    def run():
        checker = Checker(
            0,
            creds[0].keypair,
            creds[0].ring,
            T2_MICRO,
            TeeCostModel(),
            lambda v: v % 2,
        )
        assert checker.tee_store(GENESIS_PROPOSAL) is not None

    benchmark(run)


@pytest.mark.parametrize("protocol", ["oneshot", "damysus", "hotstuff"])
def test_small_cluster_views_per_second(benchmark, protocol):
    """Wall-clock cost of simulating 10 decided blocks at n minimal."""
    info = get_protocol(protocol)

    def run():
        sim = Simulator(seed=1)
        net = Network(sim, ConstantLatency(0.002))
        cfg = ProtocolConfig(n=info.n_for(1), f=1)
        cluster = build_cluster(info.replica_cls, sim, net, cfg)
        cluster.start()
        ref = cluster.replicas[0]
        sim.run(until=30.0, stop_when=lambda: len(ref.log) >= 10)
        cluster.stop()
        return len(ref.log)

    assert benchmark(run) >= 10
