"""E-P — parallel (multi-instance) OneShot (Sec. II extension).

Gupta et al.'s "lack of parallelism" objection to 2f+1 hybrid
protocols, and the paper's answer (parallel executions): k independent
OneShot instances per machine scale aggregate throughput until the
shared single core saturates.
"""

import pytest
from _common import record_table

from repro.experiments.parallel import render_parallel, run_parallel_scaling


def test_parallel_scaling(benchmark):
    scaling = benchmark.pedantic(
        lambda: run_parallel_scaling(ks=(1, 2, 4, 8), sim_time=2.0),
        rounds=1,
        iterations=1,
    )
    record_table(render_parallel(scaling))
    base = scaling.runs[1].aggregate_tps
    benchmark.extra_info["speedup_k2"] = round(
        scaling.runs[2].aggregate_tps / base, 2
    )
    benchmark.extra_info["speedup_k8"] = round(
        scaling.runs[8].aggregate_tps / base, 2
    )
    assert scaling.runs[2].aggregate_tps > 1.5 * base
    assert scaling.runs[8].aggregate_tps > scaling.runs[4].aggregate_tps * 0.9
    assert scaling.runs[8].cpu_utilization > 0.9  # saturation regime
