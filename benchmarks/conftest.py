"""Pytest hooks for the benchmark suite: print the assembled
paper tables at session end (see _common.py for the registries)."""

from _common import render_session_report


def pytest_sessionfinish(session, exitstatus):
    render_session_report()
