"""E8 — Sec. VIII-d, unstable and degraded network conditions.

Local 10 ms links, 256 B payloads, catch-up / piggyback executions
forced in 25 %, 33 % and 50 % of views.  Reproduced claims: OneShot
stays above HotStuff in every scenario, and only 50 %-forced catch-up
(its worst case) drags it down to Damysus's level.
"""

import pytest
from _common import record_table

from repro.experiments.degraded import (
    check_shape,
    render_degraded,
    run_degraded,
)


def test_degraded_network(benchmark):
    result = benchmark.pedantic(
        lambda: run_degraded(target_blocks=30), rounds=1, iterations=1
    )
    record_table(render_degraded(result))
    problems = check_shape(result)
    assert problems == [], problems
    worst = result.forced[("catchup", "50%")].throughput_tps
    dam = result.baselines["damysus"].throughput_tps
    benchmark.extra_info["oneshot_catchup50_tps"] = round(worst)
    benchmark.extra_info["damysus_tps"] = round(dam)
    # "comparable with Damysus's" — same ballpark, not collapsed.
    assert 0.5 * dam < worst


def test_degraded_piggyback_only(benchmark):
    """Piggyback forcing alone (the milder abnormal execution)."""
    result = benchmark.pedantic(
        lambda: run_degraded(target_blocks=24, modes=("piggyback",), seed=19),
        rounds=1,
        iterations=1,
    )
    dam = result.baselines["damysus"].throughput_tps
    for (_, label), stats in result.forced.items():
        assert stats.throughput_tps > dam, f"piggyback {label} fell below damysus"
