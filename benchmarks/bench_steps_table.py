"""E1 — the Sec. V execution-type table.

Regenerates, per execution type, the number of blocks agreed and the
number of communication steps, *measured from the message log*:

    normal      1 block  / 4 steps
    catch-up    2 blocks / 8 steps
    piggyback   2 blocks / 6 steps
"""

import pytest
from _common import record_table

from repro.experiments.steps_table import (
    PAPER_STEPS,
    measure_execution,
    render_steps_table,
)
from repro.metrics import CATCHUP, NORMAL, PIGGYBACK

_ROWS = {}


@pytest.mark.parametrize("kind", [NORMAL, CATCHUP, PIGGYBACK])
def test_steps_table_row(benchmark, kind):
    row = benchmark.pedantic(
        lambda: measure_execution(kind), rounds=1, iterations=1
    )
    _ROWS[kind] = row
    benchmark.extra_info["blocks"] = row.blocks
    benchmark.extra_info["steps"] = row.steps
    assert (row.blocks, row.steps) == PAPER_STEPS[kind]
    if len(_ROWS) == len(PAPER_STEPS):
        record_table(
            render_steps_table([_ROWS[k] for k in (NORMAL, CATCHUP, PIGGYBACK)])
        )
