"""Fault injection: Byzantine behaviours and fault/forcing schedules."""

from .byzantine import (
    BEHAVIOURS,
    ByzantineMixin,
    Crashed,
    Equivocator,
    GarbageSender,
    Restarting,
    SilentLeader,
    SlowSender,
    VoteWithholder,
    make_byzantine,
)
from .schedule import (
    Fault,
    FaultPlan,
    ViewSelector,
    every_kth_view,
    force_catchup_cls,
    force_piggyback_cls,
    forced_execution_factory,
)

__all__ = [
    "BEHAVIOURS",
    "ByzantineMixin",
    "Crashed",
    "Equivocator",
    "GarbageSender",
    "Restarting",
    "SilentLeader",
    "SlowSender",
    "VoteWithholder",
    "make_byzantine",
    "Fault",
    "FaultPlan",
    "ViewSelector",
    "every_kth_view",
    "force_catchup_cls",
    "force_piggyback_cls",
    "forced_execution_factory",
]
