"""Byzantine replica behaviours.

Each class wraps a protocol replica with one misbehaviour.  They are
built by :func:`make_byzantine`, which subclasses the *protocol's own*
replica class so every protocol can be attacked with the same zoo.

Note the hybrid fault model (Sec. IV): Byzantine replicas here still
call their trusted components through the normal entry points — they
can drop, delay, replay and garble *untrusted* state and messages, but
cannot forge TEE signatures or rewind TEE counters (rollback attacks
are modelled separately in :mod:`repro.tee.rollback`).
"""

from __future__ import annotations

import math
from typing import Any, Optional, Type

from ..protocols.common import BaseReplica


class ByzantineMixin:
    """Marker + common knobs for faulty replicas."""

    byzantine = True
    #: Window in which the misbehaviour is active.
    fault_start: float = 0.0
    fault_end: float = math.inf

    def _faulty_now(self) -> bool:
        return self.fault_start <= self.sim.now < self.fault_end  # type: ignore[attr-defined]


class Crashed(ByzantineMixin):
    """Fail-stop: ignores everything once the fault window opens."""

    def on_message(self, sender: int, payload: Any) -> None:
        if self._faulty_now():
            return
        super().on_message(sender, payload)  # type: ignore[misc]

    def on_timeout(self) -> None:
        if self._faulty_now():
            return
        super().on_timeout()  # type: ignore[misc]


class SilentLeader(ByzantineMixin):
    """Participates as a backup but never sends anything while leading."""

    def broadcast_at(self, when: float, payload: Any, include_self: bool = True) -> None:
        if self._faulty_now() and self.is_leader():  # type: ignore[attr-defined]
            return
        super().broadcast_at(when, payload, include_self)  # type: ignore[misc]


class SlowSender(ByzantineMixin):
    """Delays every outgoing message by ``slow_delay`` seconds."""

    slow_delay: float = 0.5

    def send_at(self, when: float, dst: int, payload: Any) -> None:
        if self._faulty_now():
            when = max(when, self.sim.now) + self.slow_delay  # type: ignore[attr-defined]
        super().send_at(when, dst, payload)  # type: ignore[misc]


class VoteWithholder(ByzantineMixin):
    """Backup that never answers leaders (no stores / votes / replies).

    Sends nothing at all while faulty except when it is the leader —
    the classic "deny quorum" attack.
    """

    def send_at(self, when: float, dst: int, payload: Any) -> None:
        if self._faulty_now() and not self.is_leader():  # type: ignore[attr-defined]
            return
        super().send_at(when, dst, payload)  # type: ignore[misc]


class Equivocator(ByzantineMixin):
    """Tries to propose twice per view (must be blocked by the TEE).

    On every proposal it makes, it immediately attempts a second,
    conflicting proposal through the same trusted entry point.  The
    CHECKER's once-per-view rule makes the second attempt yield
    nothing; tests assert no conflicting block is ever certified.
    """

    equivocation_attempts = 0
    equivocation_successes = 0

    def _propose(self, h, qc, kind) -> None:  # OneShot hook
        super()._propose(h, qc, kind)  # type: ignore[misc]
        if not self._faulty_now():
            return
        checker = getattr(self, "checker", None)
        if checker is None or not hasattr(checker, "tee_prepare"):
            return
        from ..crypto import digest_of

        self.equivocation_attempts += 1
        fake = digest_of("equivocation", self.pid, self.view)  # type: ignore[attr-defined]
        if checker.tee_prepare(fake) is not None:
            self.equivocation_successes += 1  # pragma: no cover


class GarbageSender(ByzantineMixin):
    """Backup that answers leaders with syntactically broken payloads."""

    class _Garbage:
        def wire_size(self) -> int:
            return 128

    def send_at(self, when: float, dst: int, payload: Any) -> None:
        if self._faulty_now() and not self.is_leader():  # type: ignore[attr-defined]
            super().send_at(when, dst, self._Garbage())  # type: ignore[misc]
            return
        super().send_at(when, dst, payload)  # type: ignore[misc]


BEHAVIOURS: dict[str, type] = {
    "crashed": Crashed,
    "silent-leader": SilentLeader,
    "slow": SlowSender,
    "withhold": VoteWithholder,
    "equivocate": Equivocator,
    "garbage": GarbageSender,
}


def make_byzantine(
    replica_cls: Type[BaseReplica],
    behaviour: str,
    fault_start: float = 0.0,
    fault_end: float = math.inf,
    **attrs: Any,
) -> Type[BaseReplica]:
    """Subclass ``replica_cls`` with the named misbehaviour."""
    mixin = BEHAVIOURS[behaviour]
    cls = type(
        f"{mixin.__name__}{replica_cls.__name__}",
        (mixin, replica_cls),
        {"fault_start": fault_start, "fault_end": fault_end, **attrs},
    )
    return cls


__all__ = [
    "ByzantineMixin",
    "Crashed",
    "SilentLeader",
    "SlowSender",
    "VoteWithholder",
    "Equivocator",
    "GarbageSender",
    "BEHAVIOURS",
    "make_byzantine",
]
