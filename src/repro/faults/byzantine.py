"""Byzantine replica behaviours.

Each class wraps a protocol replica with one misbehaviour.  They are
built by :func:`make_byzantine`, which subclasses the *protocol's own*
replica class so every protocol can be attacked with the same zoo.

Note the hybrid fault model (Sec. IV): Byzantine replicas here still
call their trusted components through the normal entry points — they
can drop, delay, replay and garble *untrusted* state and messages, but
cannot forge TEE signatures or rewind TEE counters (rollback attacks
are modelled separately in :mod:`repro.tee.rollback`).
"""

from __future__ import annotations

import math
from typing import Any, Optional, Type

from ..protocols.common import BaseReplica


class ByzantineMixin:
    """Marker + common knobs for faulty replicas."""

    byzantine = True
    #: Window in which the misbehaviour is active.
    fault_start: float = 0.0
    fault_end: float = math.inf

    def _faulty_now(self) -> bool:
        return self.fault_start <= self.sim.now < self.fault_end  # type: ignore[attr-defined]


class Crashed(ByzantineMixin):
    """Fail-stop: ignores everything once the fault window opens."""

    def on_message(self, sender: int, payload: Any) -> None:
        if self._faulty_now():
            return
        super().on_message(sender, payload)  # type: ignore[misc]

    def on_timeout(self) -> None:
        if self._faulty_now():
            return
        super().on_timeout()  # type: ignore[misc]


class SilentLeader(ByzantineMixin):
    """Participates as a backup but never sends anything while leading."""

    def broadcast_at(self, when: float, payload: Any, include_self: bool = True) -> None:
        if self._faulty_now() and self.is_leader():  # type: ignore[attr-defined]
            return
        super().broadcast_at(when, payload, include_self)  # type: ignore[misc]


class SlowSender(ByzantineMixin):
    """Delays every outgoing message by ``slow_delay`` seconds."""

    slow_delay: float = 0.5

    def send_at(self, when: float, dst: int, payload: Any) -> None:
        if self._faulty_now():
            when = max(when, self.sim.now) + self.slow_delay  # type: ignore[attr-defined]
        super().send_at(when, dst, payload)  # type: ignore[misc]


class VoteWithholder(ByzantineMixin):
    """Backup that never answers leaders (no stores / votes / replies).

    Sends nothing at all while faulty except when it is the leader —
    the classic "deny quorum" attack.
    """

    def send_at(self, when: float, dst: int, payload: Any) -> None:
        if self._faulty_now() and not self.is_leader():  # type: ignore[attr-defined]
            return
        super().send_at(when, dst, payload)  # type: ignore[misc]


class Equivocator(ByzantineMixin):
    """Mounts the full double-proposal attack through the TEE (OneShot).

    Whenever it leads a view inside its fault window, it asks its own
    CHECKER to certify a *second*, conflicting leaf through the normal
    ``TEEprepare`` entry point.  With an intact TEE the once-per-view
    rule refuses (counted in ``equivocation_attempts``) and the replica
    degrades to an honest leader.  If the guard is broken — a rollback
    attack, or the planted-bug tests — the attack goes all the way:
    the leader split-brains the backups (half see each block), double
    stores via its own CHECKER, assembles a prepare certificate per
    branch and ships each certificate only to its own victims, forking
    the correct replicas (``equivocation_successes``).  The fuzzer's
    safety oracle exists to catch exactly this.

    The entry point is OneShot's proposal path; on protocols without a
    per-view ``TEEprepare`` (Damysus, HotStuff) the mixin is inert.
    """

    equivocation_attempts = 0
    equivocation_successes = 0

    def broadcast_at(self, when: float, payload: Any, include_self: bool = True) -> None:
        from ..core.messages import ProposalMsg

        if (
            self._faulty_now()
            and isinstance(payload, ProposalMsg)
            and payload.block.proposer == self.pid  # type: ignore[attr-defined]
            and self._try_equivocate(when, payload)
        ):
            return
        super().broadcast_at(when, payload, include_self)  # type: ignore[misc]

    def _try_equivocate(self, when: float, msg: Any) -> bool:
        """Attempt the double proposal; True iff the attack was sent."""
        from ..core.messages import ProposalMsg
        from ..smr import create_leaf

        checker = getattr(self, "checker", None)
        if checker is None or not hasattr(checker, "tee_prepare"):
            return False
        evil = create_leaf(msg.block.parent, self.view, (), self.pid)  # type: ignore[attr-defined]
        if evil.hash == msg.block.hash:
            return False  # identical leaf: nothing conflicting to offer
        self.equivocation_attempts += 1
        phi2 = checker.tee_prepare(evil.hash)
        done = max(when, self.charge_enclave(checker))  # type: ignore[attr-defined]
        if phi2 is None:
            return False  # the TEE held (the paper's Lemma 1 mechanism)
        self.equivocation_successes += 1
        others = [p for p in self.peers if p != self.pid]  # type: ignore[attr-defined]
        half_a, half_b = tuple(others[::2]), tuple(others[1::2])
        evil_msg = ProposalMsg(evil, phi2, msg.qc, exec_kind=msg.exec_kind)
        self.add_block(evil)  # type: ignore[attr-defined]
        self._equiv_targets = {
            msg.block.hash: (msg.proposal, half_a),
            evil.hash: (phi2, half_b),
        }
        for dst in half_a:
            self.send_at(done, dst, msg)  # type: ignore[attr-defined]
        for dst in half_b:
            self.send_at(done, dst, evil_msg)  # type: ignore[attr-defined]
        # Store both locally: the overlap replica of the two forked
        # quorums must double-store, which only a broken TEE permits.
        self.send_at(done, self.pid, msg)  # type: ignore[attr-defined]
        self.send_at(done, self.pid, evil_msg)  # type: ignore[attr-defined]
        return True

    def on_store(self, sender: int, msg: Any) -> None:
        """Targeted decide phase: each branch's certificate goes only
        to that branch's victims (broadcasting both would let the first
        certificate win everywhere and heal the fork)."""
        targets = getattr(self, "_equiv_targets", None)
        cert = getattr(msg, "cert", None)
        if (
            targets is None
            or cert is None
            or cert.block_hash not in targets
            or not self._faulty_now()
        ):
            super().on_store(sender, msg)  # type: ignore[misc]
            return
        from ..core.certificates import PrepareCert
        from ..core.messages import PrepCertMsg

        v = self.view  # type: ignore[attr-defined]
        if cert.stored_view != v or cert.prop_view != v:
            return
        self.charge(self.config.crypto_costs.verify(1))  # type: ignore[attr-defined]
        if not cert.verify(self.ring):  # type: ignore[attr-defined]
            return
        quorum = self._store_tracker.add(  # type: ignore[attr-defined]
            (v, cert.block_hash), cert.sig.signer, cert
        )
        if quorum is None:
            return
        phi_c = PrepareCert(
            stored_view=v,
            block_hash=cert.block_hash,
            prop_view=v,
            sigs=tuple(c.sig for c in quorum),
        )
        proposal, victims = targets[cert.block_hash]
        done = max(self.sim.now, self.cpu.busy_until)  # type: ignore[attr-defined]
        for dst in victims:
            self.send_at(done, dst, PrepCertMsg(phi_c, proposal))  # type: ignore[attr-defined]


class Restarting(ByzantineMixin):
    """Crash-restart storm with sealed-state lag (rollback exposure).

    Inside its fault window the replica cycles: up for
    ``restart_period - outage`` seconds, then down for ``outage``
    seconds (messages and timeouts are lost, as on a real crash).
    While up it "seals" its enclave state every ``seal_interval``
    seconds via :func:`repro.tee.rollback.snapshot`; on recovery it
    restores the *latest seal* via :func:`~repro.tee.rollback.rollback`
    — the restored state lags the crash point, so the TEE counters can
    rewind.  An honest replica with a rewound CHECKER merely refuses
    to store until ``_sync_tee`` fast-forwards it (a liveness dent the
    oracles must tolerate); the combination with an equivocating
    leader is what turns the rewind into a safety attack.
    """

    restart_period: float = 1.0
    outage: float = 0.25
    seal_interval: float = 0.5

    def _down_now(self) -> bool:
        if not self._faulty_now():
            return False
        period = max(self.restart_period, self.outage + 1e-9)
        t = self.sim.now - self.fault_start  # type: ignore[attr-defined]
        return (t % period) >= period - self.outage

    def _cycle_index(self) -> int:
        period = max(self.restart_period, self.outage + 1e-9)
        return int((self.sim.now - self.fault_start) // period)  # type: ignore[attr-defined]

    def _enclaves(self) -> list:
        from ..tee import Enclave

        return [v for v in vars(self).values() if isinstance(v, Enclave)]

    def _maybe_seal(self) -> None:
        from ..tee import snapshot

        nxt = getattr(self, "_next_seal", 0.0)
        if self.sim.now < nxt:  # type: ignore[attr-defined]
            return
        self._next_seal = self.sim.now + self.seal_interval  # type: ignore[attr-defined]
        self._seals = [(e, snapshot(e)) for e in self._enclaves()]

    def _maybe_restore(self) -> None:
        """First activity after an outage: boot from the latest seal."""
        from ..tee import rollback

        cycle = self._cycle_index() if self._faulty_now() else None
        last = getattr(self, "_last_cycle", None)
        if cycle is not None and last is not None and cycle != last:
            for enclave, snap in getattr(self, "_seals", []):
                rollback(enclave, snap)
        self._last_cycle = cycle

    def on_message(self, sender: int, payload: Any) -> None:
        if self._down_now():
            return
        self._maybe_restore()
        if self._faulty_now():
            self._maybe_seal()
        super().on_message(sender, payload)  # type: ignore[misc]

    def on_timeout(self) -> None:
        if self._down_now():
            # The crash loses the pending timeout, but the process
            # restarts with a fresh timer — without this the replica
            # would sleep forever after its first outage.
            self.view_timer.start(self.pacemaker.current_timeout())  # type: ignore[attr-defined]
            return
        self._maybe_restore()
        super().on_timeout()  # type: ignore[misc]


class GarbageSender(ByzantineMixin):
    """Backup that answers leaders with syntactically broken payloads."""

    class _Garbage:
        def wire_size(self) -> int:
            return 128

    def send_at(self, when: float, dst: int, payload: Any) -> None:
        if self._faulty_now() and not self.is_leader():  # type: ignore[attr-defined]
            super().send_at(when, dst, self._Garbage())  # type: ignore[misc]
            return
        super().send_at(when, dst, payload)  # type: ignore[misc]


BEHAVIOURS: dict[str, type] = {
    "crashed": Crashed,
    "silent-leader": SilentLeader,
    "slow": SlowSender,
    "withhold": VoteWithholder,
    "equivocate": Equivocator,
    "restart": Restarting,
    "garbage": GarbageSender,
}


def make_byzantine(
    replica_cls: Type[BaseReplica],
    behaviour: str,
    fault_start: float = 0.0,
    fault_end: float = math.inf,
    **attrs: Any,
) -> Type[BaseReplica]:
    """Subclass ``replica_cls`` with the named misbehaviour.

    An empty window (``fault_start == fault_end``) yields an inert
    subclass; an inverted one (``fault_end < fault_start``) is a
    scenario bug and raises immediately.
    """
    if fault_end < fault_start:
        raise ValueError(
            f"fault window inverted: end {fault_end} < start {fault_start}"
        )
    mixin = BEHAVIOURS[behaviour]
    cls = type(
        f"{mixin.__name__}{replica_cls.__name__}",
        (mixin, replica_cls),
        {"fault_start": fault_start, "fault_end": fault_end, **attrs},
    )
    return cls


__all__ = [
    "ByzantineMixin",
    "Crashed",
    "SilentLeader",
    "SlowSender",
    "VoteWithholder",
    "Equivocator",
    "Restarting",
    "GarbageSender",
    "BEHAVIOURS",
    "make_byzantine",
]
