"""Fault schedules and execution-type forcers.

Two kinds of injection:

* :class:`FaultPlan` — assign named Byzantine behaviours to replica
  ids (optionally time-windowed), yielding the ``replica_factory`` that
  :func:`repro.protocols.common.build_cluster` consumes.
* Execution-type forcers for OneShot — reproduce the paper's
  "artificially triggered catch-up and piggyback executions"
  (Sec. VIII-d) by sabotaging the leader of selected views:

  - *piggyback forcer*: the leader proposes and lets everyone store,
    but withholds the prepare certificate, so the next leader sees f+1
    matching store certificates;
  - *catch-up forcer*: the leader sends its proposal to fewer than f+1
    replicas, so the next leader sees a mixed new-view set and must run
    the deliver phase.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Optional, Type

from ..protocols.common import BaseReplica
from .byzantine import make_byzantine

#: Decides whether the view led by this replica is sabotaged.
ViewSelector = Callable[[int], bool]


@dataclass(frozen=True)
class Fault:
    """One replica's assigned misbehaviour.

    Window semantics are half-open ``[start, end)``: ``start == end``
    is a legal *inert* fault (never active), while ``end < start`` can
    only be a scenario bug and raises at construction.
    """

    pid: int
    behaviour: str
    start: float = 0.0
    end: float = math.inf
    attrs: tuple[tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(
                f"fault window inverted: end {self.end} < start {self.start}"
            )


@dataclass
class FaultPlan:
    """A set of per-replica faults; at most one behaviour per replica."""

    faults: list[Fault] = field(default_factory=list)

    def add(
        self,
        pid: int,
        behaviour: str,
        start: float = 0.0,
        end: float = math.inf,
        **attrs: object,
    ) -> "FaultPlan":
        if any(f.pid == pid for f in self.faults):
            raise ValueError(f"replica {pid} already has a fault")
        self.faults.append(
            Fault(pid, behaviour, start, end, tuple(sorted(attrs.items())))
        )
        return self

    @property
    def faulty_pids(self) -> set[int]:
        return {f.pid for f in self.faults}

    def factory(
        self,
    ) -> Callable[[int, Type[BaseReplica]], Optional[Type[BaseReplica]]]:
        """The ``replica_factory`` argument for ``build_cluster``."""
        by_pid = {f.pid: f for f in self.faults}

        def make(pid: int, default_cls: Type[BaseReplica]):
            fault = by_pid.get(pid)
            if fault is None:
                return default_cls
            return make_byzantine(
                default_cls,
                fault.behaviour,
                fault_start=fault.start,
                fault_end=fault.end,
                **dict(fault.attrs),
            )

        return make


# ----------------------------------------------------------------------
# OneShot execution-type forcers
# ----------------------------------------------------------------------
def every_kth_view(k: int, offset: int = 0, start: int = 2) -> ViewSelector:
    """Sabotage one view in every ``k``, skipping the first ``start``."""
    if k < 1:
        raise ValueError("k must be >= 1")

    def select(view: int) -> bool:
        return view >= start and view % k == offset % k

    return select


def force_piggyback_cls(
    replica_cls: Type[BaseReplica], selector: ViewSelector
) -> Type[BaseReplica]:
    """Leaders of selected views withhold the prepare certificate."""

    class PiggybackForcer(replica_cls):  # type: ignore[valid-type,misc]
        # Models degraded conditions, not a Byzantine node: safety-wise
        # the replica follows the protocol (it only withholds).
        forced = "piggyback"

        def on_store(self, sender, msg):  # noqa: D102
            if self.is_leader() and selector(self.view):
                return  # swallow store certs: no prepare certificate
            super().on_store(sender, msg)

    return PiggybackForcer


def force_catchup_cls(
    replica_cls: Type[BaseReplica],
    selector: ViewSelector,
    recipients: int = 1,
) -> Type[BaseReplica]:
    """Leaders of selected views propose to only ``recipients`` backups.

    ``recipients`` must be < f+1 for the next leader to be unable to
    reconstruct a prepare certificate (checked at runtime).
    """

    class CatchupForcer(replica_cls):  # type: ignore[valid-type,misc]
        forced = "catchup"

        def broadcast_at(self, when, payload, include_self=True):  # noqa: D102
            from ..core.messages import ProposalMsg

            if (
                isinstance(payload, ProposalMsg)
                and self.is_leader()
                and selector(self.view)
            ):
                k = min(recipients, self.config.f)  # keep it < f+1
                targets = [p for p in self.peers if p != self.pid][:k]
                for dst in targets:
                    self.send_at(when, dst, payload)
                return
            super().broadcast_at(when, payload, include_self)

    return CatchupForcer


def forced_execution_factory(
    mode: str, selector: ViewSelector, recipients: int = 1
) -> Callable[[int, Type[BaseReplica]], Type[BaseReplica]]:
    """``replica_factory`` applying a forcer to *every* replica.

    Every replica sabotages the views it leads that ``selector``
    picks, so the forced fraction of views is selector-controlled and
    independent of which replica happens to lead them.
    """
    if mode not in ("piggyback", "catchup"):
        raise ValueError("mode must be 'piggyback' or 'catchup'")

    def make(pid: int, default_cls: Type[BaseReplica]):
        if mode == "piggyback":
            return force_piggyback_cls(default_cls, selector)
        return force_catchup_cls(default_cls, selector, recipients)

    return make


__all__ = [
    "Fault",
    "FaultPlan",
    "ViewSelector",
    "every_kth_view",
    "force_piggyback_cls",
    "force_catchup_cls",
    "forced_execution_factory",
]
