"""Parallel sweep executor — fan independent simulations over a pool.

Every paper-scale result is a grid of *independent* simulations
(protocol × payload × fault-threshold × seed); each builds its own
:class:`~repro.sim.simulator.Simulator` from its own root seed, so
they can run on separate OS processes with no shared state.  This
module provides the one executor all sweep drivers share:

* a :class:`SweepTask` names a registered *driver* (a top-level,
  picklable function) plus its keyword arguments and a sortable key;
* :func:`run_sweep` executes tasks sequentially or across a
  ``multiprocessing`` pool and **merges results ordered by task key,
  never by completion order** — so the merged output of a parallel
  sweep is byte-identical to the sequential one;
* grid builders and assemblers power the Fig. 7, ablation and
  degraded-network sweeps (and the ``oneshot-repro sweep`` CLI).

Determinism: workers inherit nothing from the parent's simulation
state (each task seeds its own RNG registry), and
:func:`outcomes_to_json` serializes with sorted keys and canonical
float repr, so ``workers=N`` output can be byte-compared across N.
"""

from __future__ import annotations

import json
import multiprocessing
import os
from dataclasses import asdict, dataclass
from typing import Any, Callable, Iterable, Optional, Sequence

from ..metrics import RunStats
from .ablation import (
    AXES,
    AblationResult,
    ablate_avoid_revotes,
    ablate_omit_known_blocks,
    ablate_preempt_catchup,
)
from .config import ExperimentConfig
from .degraded import FRACTIONS, DegradedResult
from .fig7 import PAPER_F_VALUES, PAPER_PAYLOADS, PROTOCOLS, Fig7Result
from .runner import run_experiment

#: A sweep key: a tuple of strings/ints/floats, unique per task, whose
#: sort order defines the merge order.
SweepKey = tuple


@dataclass(frozen=True)
class SweepTask:
    """One unit of sweep work: ``driver(**dict(params))``.

    ``params`` is a tuple of ``(name, value)`` pairs (not a dict) so
    tasks stay hashable; values must be picklable for pool dispatch.
    """

    key: SweepKey
    driver: str
    params: tuple[tuple[str, Any], ...]


@dataclass(frozen=True)
class SweepOutcome:
    """A task's result, tagged with its key for deterministic merging."""

    key: SweepKey
    result: Any


# ----------------------------------------------------------------------
# Drivers — top-level (hence picklable) task bodies
# ----------------------------------------------------------------------
def _drive_experiment(config: ExperimentConfig) -> RunStats:
    """Run one configured experiment and keep only its summary stats
    (the full :class:`RunResult` drags the simulator across the pipe)."""
    return run_experiment(config).stats


def _drive_forced(
    config: ExperimentConfig, mode: str, every_k: int
) -> tuple[RunStats, float]:
    """A degraded-network point: OneShot with every k-th view forced to
    an abnormal execution; returns (stats, observed abnormal fraction)."""
    from ..faults import every_kth_view, forced_execution_factory

    factory = forced_execution_factory(mode, every_kth_view(every_k))
    run = run_experiment(config, replica_factory=factory)
    kinds = run.collector.execution_kinds()
    abnormal = sum(1 for v in kinds.values() if v != "normal")
    return run.stats, abnormal / max(1, len(kinds))


_ABLATE = {
    "avoid_revotes": ablate_avoid_revotes,
    "omit_known_blocks": ablate_omit_known_blocks,
    "preempt_catchup": ablate_preempt_catchup,
}


def _drive_ablation(axis: str, target_blocks: int) -> AblationResult:
    """One Sec. VI-F ablation axis (its on/off pair runs in-task)."""
    return _ABLATE[axis](target_blocks)


#: Driver registry: names are stable CLI/task identifiers.
DRIVERS: dict[str, Callable[..., Any]] = {
    "experiment": _drive_experiment,
    "forced": _drive_forced,
    "ablation": _drive_ablation,
}


def _execute(task: SweepTask) -> SweepOutcome:
    fn = DRIVERS.get(task.driver)
    if fn is None:
        raise KeyError(f"unknown sweep driver {task.driver!r}")
    return SweepOutcome(key=task.key, result=fn(**dict(task.params)))


# ----------------------------------------------------------------------
# The executor
# ----------------------------------------------------------------------
def resolve_workers(workers: int) -> int:
    """Normalize a worker-count request (``0`` = one per CPU)."""
    if workers <= 0:
        return max(1, os.cpu_count() or 1)
    return workers


def run_sweep(
    tasks: Iterable[SweepTask],
    workers: int = 1,
    mp_context: Optional[str] = None,
) -> list[SweepOutcome]:
    """Execute ``tasks`` and return outcomes **sorted by task key**.

    With ``workers > 1`` the tasks fan out over a ``multiprocessing``
    pool; completion order is irrelevant because the merge orders by
    key, so parallel and sequential sweeps produce identical output.
    Duplicate keys are rejected — they would make the merge ambiguous.
    """
    task_list = list(tasks)
    keys = [t.key for t in task_list]
    if len(set(keys)) != len(keys):
        dupes = sorted({k for k in keys if keys.count(k) > 1})
        raise ValueError(f"duplicate sweep keys: {dupes}")
    workers = resolve_workers(workers)
    if workers <= 1 or len(task_list) <= 1:
        outcomes = [_execute(t) for t in task_list]
    else:
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            mp_context or ("fork" if "fork" in methods else "spawn")
        )
        with ctx.Pool(processes=min(workers, len(task_list))) as pool:
            outcomes = pool.map(_execute, task_list, chunksize=1)
    return sorted(outcomes, key=lambda o: o.key)


def outcomes_to_json(outcomes: Sequence[SweepOutcome]) -> str:
    """Canonical JSON of a sweep's merged outcomes (byte-comparable)."""

    def jsonable(value: Any) -> Any:
        if isinstance(value, RunStats):
            return asdict(value)
        if isinstance(value, AblationResult):
            return {
                "axis": value.axis,
                "on": asdict(value.on),
                "off": asdict(value.off),
                "on_delivers": value.on_delivers,
                "off_delivers": value.off_delivers,
                "on_bytes": value.on_bytes,
                "off_bytes": value.off_bytes,
            }
        if isinstance(value, tuple):
            return [jsonable(v) for v in value]
        return value

    payload = [
        {"key": list(o.key), "result": jsonable(o.result)} for o in outcomes
    ]
    return json.dumps(payload, sort_keys=True, indent=2) + "\n"


# ----------------------------------------------------------------------
# Fig. 7 grids
# ----------------------------------------------------------------------
def fig7_tasks(
    deployment: str,
    f_values: Sequence[int] = PAPER_F_VALUES,
    payloads: Sequence[int] = PAPER_PAYLOADS,
    protocols: Sequence[str] = PROTOCOLS,
    target_blocks: int = 30,
    seeds: Sequence[int] = (7,),
) -> list[SweepTask]:
    """The (protocol × payload × f × seed) grid behind one Fig. 7 panel."""
    tasks: list[SweepTask] = []
    for seed in seeds:
        for payload in payloads:
            for protocol in protocols:
                for f in f_values:
                    cfg = ExperimentConfig(
                        protocol=protocol,
                        f=f,
                        payload_bytes=payload,
                        deployment=deployment,
                        target_blocks=target_blocks,
                        seed=seed,
                    )
                    tasks.append(
                        SweepTask(
                            key=(protocol, payload, f, seed),
                            driver="experiment",
                            params=(("config", cfg),),
                        )
                    )
    return tasks


def assemble_fig7(
    deployment: str,
    outcomes: Sequence[SweepOutcome],
    f_values: Sequence[int],
    payloads: Sequence[int],
    seed: int,
) -> Fig7Result:
    """Rebuild one seed's :class:`Fig7Result` from sweep outcomes."""
    result = Fig7Result(
        deployment=deployment,
        f_values=tuple(f_values),
        payloads=tuple(payloads),
    )
    for o in outcomes:
        protocol, payload, f, task_seed = o.key
        if task_seed != seed:
            continue
        result.runs.setdefault((protocol, payload), {})[f] = o.result
    return result


def run_fig7_sweep(
    deployment: str,
    f_values: Sequence[int] = PAPER_F_VALUES,
    payloads: Sequence[int] = PAPER_PAYLOADS,
    protocols: Sequence[str] = PROTOCOLS,
    target_blocks: int = 30,
    seed: int = 7,
    workers: int = 1,
) -> Fig7Result:
    """Drop-in parallel equivalent of
    :func:`repro.experiments.fig7.run_fig7` (same output, any workers)."""
    tasks = fig7_tasks(
        deployment, f_values, payloads, protocols, target_blocks, seeds=(seed,)
    )
    outcomes = run_sweep(tasks, workers=workers)
    return assemble_fig7(deployment, outcomes, f_values, payloads, seed)


# ----------------------------------------------------------------------
# Ablation and degraded-network grids
# ----------------------------------------------------------------------
def ablation_tasks(target_blocks: int = 24) -> list[SweepTask]:
    return [
        SweepTask(
            key=(i, axis),
            driver="ablation",
            params=(("axis", axis), ("target_blocks", target_blocks)),
        )
        for i, axis in enumerate(AXES)
    ]


def run_ablations_sweep(
    target_blocks: int = 24, workers: int = 1
) -> list[AblationResult]:
    """Parallel equivalent of
    :func:`repro.experiments.ablation.run_all_ablations` (axis order kept)."""
    outcomes = run_sweep(ablation_tasks(target_blocks), workers=workers)
    return [o.result for o in outcomes]


def degraded_tasks(
    f: int = 2,
    payload_bytes: int = 256,
    latency_s: float = 0.010,
    target_blocks: int = 40,
    timeout_base: float = 0.06,
    seed: int = 17,
    modes: Sequence[str] = ("catchup", "piggyback"),
) -> list[SweepTask]:
    """The Sec. VIII-d grid: three baselines + forced-execution points."""

    def cfg(protocol: str) -> ExperimentConfig:
        return ExperimentConfig(
            protocol=protocol,
            f=f,
            payload_bytes=payload_bytes,
            deployment="local",
            local_latency_s=latency_s,
            target_blocks=target_blocks,
            timeout_base=timeout_base,
            seed=seed,
        )

    tasks = [
        SweepTask(
            key=("baseline", protocol, "", 0),
            driver="experiment",
            params=(("config", cfg(protocol)),),
        )
        for protocol in ("hotstuff", "damysus", "oneshot")
    ]
    for mode in modes:
        for label, k in FRACTIONS.items():
            if k == 0:
                continue  # the 0% row is the oneshot baseline
            tasks.append(
                SweepTask(
                    key=("forced", mode, label, k),
                    driver="forced",
                    params=(
                        ("config", cfg("oneshot")),
                        ("mode", mode),
                        ("every_k", k),
                    ),
                )
            )
    return tasks


def run_degraded_sweep(
    f: int = 2,
    payload_bytes: int = 256,
    latency_s: float = 0.010,
    target_blocks: int = 40,
    timeout_base: float = 0.06,
    seed: int = 17,
    modes: Sequence[str] = ("catchup", "piggyback"),
    workers: int = 1,
) -> DegradedResult:
    """Parallel equivalent of
    :func:`repro.experiments.degraded.run_degraded` (same result object)."""
    outcomes = run_sweep(
        degraded_tasks(
            f, payload_bytes, latency_s, target_blocks, timeout_base, seed, modes
        ),
        workers=workers,
    )
    result = DegradedResult(f=f, payload_bytes=payload_bytes)
    for o in outcomes:
        kind, name, label, _k = o.key
        if kind == "baseline":
            result.baselines[name] = o.result
        else:
            stats, fraction = o.result
            result.forced[(name, label)] = stats
            result.observed_fraction[(name, label)] = fraction
    return result


__all__ = [
    "SweepKey",
    "SweepTask",
    "SweepOutcome",
    "DRIVERS",
    "resolve_workers",
    "run_sweep",
    "outcomes_to_json",
    "fig7_tasks",
    "assemble_fig7",
    "run_fig7_sweep",
    "ablation_tasks",
    "run_ablations_sweep",
    "degraded_tasks",
    "run_degraded_sweep",
]
