"""Sec. VIII-d — unstable and degraded network conditions (E8).

Local deployment (constant 10 ms latency), 256 B payloads, with
catch-up or piggyback executions artificially forced in 25 %, 33 % or
50 % of views.  The paper's finding: only 50 %-forced *catch-up*
(OneShot's worst case) drags OneShot's throughput down to Damysus's
level, while it stays above HotStuff's in every scenario.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..faults import every_kth_view, forced_execution_factory
from ..metrics import RunStats, render_table
from .config import ExperimentConfig
from .runner import run_experiment

#: Forced fractions studied by the paper: fraction -> every k-th view.
FRACTIONS: dict[str, int] = {"0%": 0, "25%": 4, "33%": 3, "50%": 2}


@dataclass
class DegradedResult:
    """Throughputs under forced abnormal executions."""

    f: int
    payload_bytes: int
    #: baseline protocol -> stats (unforced).
    baselines: dict[str, RunStats] = field(default_factory=dict)
    #: (mode, fraction-label) -> OneShot stats.
    forced: dict[tuple[str, str], RunStats] = field(default_factory=dict)
    #: (mode, fraction-label) -> observed abnormal-view fraction.
    observed_fraction: dict[tuple[str, str], float] = field(default_factory=dict)


def run_degraded(
    f: int = 2,
    payload_bytes: int = 256,
    latency_s: float = 0.010,
    target_blocks: int = 40,
    timeout_base: float = 0.06,
    seed: int = 17,
    modes: tuple[str, ...] = ("catchup", "piggyback"),
) -> DegradedResult:
    """Run the degraded-network comparison."""
    result = DegradedResult(f=f, payload_bytes=payload_bytes)

    def cfg(protocol: str) -> ExperimentConfig:
        return ExperimentConfig(
            protocol=protocol,
            f=f,
            payload_bytes=payload_bytes,
            deployment="local",
            local_latency_s=latency_s,
            target_blocks=target_blocks,
            timeout_base=timeout_base,
            seed=seed,
        )

    for protocol in ("hotstuff", "damysus", "oneshot"):
        result.baselines[protocol] = run_experiment(cfg(protocol)).stats

    for mode in modes:
        for label, k in FRACTIONS.items():
            if k == 0:
                continue  # the 0% row is the oneshot baseline
            factory = forced_execution_factory(mode, every_kth_view(k))
            run = run_experiment(cfg("oneshot"), replica_factory=factory)
            result.forced[(mode, label)] = run.stats
            kinds = run.collector.execution_kinds()
            abnormal = sum(1 for v in kinds.values() if v != "normal")
            result.observed_fraction[(mode, label)] = (
                abnormal / max(1, len(kinds))
            )
    return result


def render_degraded(result: DegradedResult) -> str:
    rows = []
    cells = []
    for name, st in result.baselines.items():
        rows.append(f"{name} (baseline)")
        cells.append([f"{st.throughput_tps:,.0f}", "-"])
    for (mode, label), st in sorted(result.forced.items()):
        rows.append(f"oneshot {mode} {label}")
        cells.append(
            [
                f"{st.throughput_tps:,.0f}",
                f"{result.observed_fraction[(mode, label)] * 100:.0f}%",
            ]
        )
    return render_table(
        f"Sec. VIII-d degraded network (f={result.f}, "
        f"{result.payload_bytes}B, 10ms): throughput tx/s",
        rows,
        ["throughput", "abnormal views"],
        cells,
    )


def check_shape(result: DegradedResult) -> list[str]:
    """The paper's qualitative claims; returns violations."""
    problems = []
    hs = result.baselines["hotstuff"].throughput_tps
    dam = result.baselines["damysus"].throughput_tps
    for (mode, label), st in result.forced.items():
        if st.throughput_tps <= hs:
            problems.append(f"{mode} {label}: oneshot <= hotstuff")
    worst = result.forced.get(("catchup", "50%"))
    if worst is not None and worst.throughput_tps > 1.6 * dam:
        problems.append("50% catch-up should be comparable to damysus")
    mild = result.forced.get(("piggyback", "25%"))
    if mild is not None and mild.throughput_tps <= dam:
        problems.append("25% piggyback should still beat damysus")
    return problems


__all__ = [
    "FRACTIONS",
    "DegradedResult",
    "run_degraded",
    "render_degraded",
    "check_shape",
]
