"""Message-complexity measurement (E-M).

The paper's introduction claims linear message complexity for the
streamlined protocols (vs quadratic for traditional BFT).  This driver
*measures* messages and bytes per decided block as the cluster grows
and reports the per-node footprint — for a linear protocol, messages
per block divided by n approaches a constant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..metrics import render_table
from ..protocols.registry import get_protocol
from .config import ExperimentConfig
from .runner import run_experiment


@dataclass(frozen=True)
class ComplexityPoint:
    """One (protocol, f) measurement."""

    protocol: str
    f: int
    n: int
    msgs_per_block: float
    bytes_per_block: float

    @property
    def msgs_per_block_per_node(self) -> float:
        return self.msgs_per_block / self.n


@dataclass
class ComplexityResult:
    points: dict[tuple[str, int], ComplexityPoint] = field(default_factory=dict)

    def series(self, protocol: str) -> list[ComplexityPoint]:
        return sorted(
            (p for p in self.points.values() if p.protocol == protocol),
            key=lambda p: p.f,
        )


def run_complexity(
    protocols: Sequence[str] = ("oneshot", "damysus", "hotstuff"),
    f_values: Sequence[int] = (1, 2, 4, 10),
    target_blocks: int = 10,
    seed: int = 13,
) -> ComplexityResult:
    result = ComplexityResult()
    for protocol in protocols:
        info = get_protocol(protocol)
        for f in f_values:
            cfg = ExperimentConfig(
                protocol=protocol,
                f=f,
                deployment="local",
                local_latency_s=0.002,
                target_blocks=target_blocks,
                seed=seed,
            )
            run = run_experiment(cfg)
            blocks = max(1, len(run.collector.decided_blocks()))
            result.points[(protocol, f)] = ComplexityPoint(
                protocol=protocol,
                f=f,
                n=info.n_for(f),
                msgs_per_block=run.network.messages_sent / blocks,
                bytes_per_block=run.network.bytes_sent / blocks,
            )
    return result


def check_linearity(result: ComplexityResult, slack: float = 1.6) -> list[str]:
    """Messages/block must grow ~linearly in n; returns violations.

    For each protocol, compares the growth of messages per block with
    the growth of n between the smallest and largest cluster: a linear
    protocol keeps the ratio-of-ratios near 1 (quadratic would track
    (n_hi / n_lo)).
    """
    problems = []
    for protocol in {p.protocol for p in result.points.values()}:
        series = result.series(protocol)
        if len(series) < 2:
            continue
        lo, hi = series[0], series[-1]
        growth = (hi.msgs_per_block / lo.msgs_per_block) / (hi.n / lo.n)
        if growth > slack:
            problems.append(
                f"{protocol}: msgs/block grew {growth:.2f}x faster than n"
            )
    return problems


def render_complexity(result: ComplexityResult) -> str:
    protocols = sorted({p.protocol for p in result.points.values()})
    rows, cells = [], []
    for protocol in protocols:
        for point in result.series(protocol):
            rows.append(f"{protocol} f={point.f} (n={point.n})")
            cells.append(
                [
                    f"{point.msgs_per_block:,.0f}",
                    f"{point.msgs_per_block_per_node:.1f}",
                    f"{point.bytes_per_block / 1024:,.0f} KB",
                ]
            )
    return render_table(
        "Message complexity per decided block (linear: msgs/block/node ~ const)",
        rows,
        ["msgs/block", "msgs/block/node", "bytes/block"],
        cells,
    )


__all__ = [
    "ComplexityPoint",
    "ComplexityResult",
    "run_complexity",
    "check_linearity",
    "render_complexity",
]
