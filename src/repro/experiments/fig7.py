"""Fig. 7 — throughput and latency vs fault threshold.

The paper sweeps f ∈ {1, 2, 4, 10, 20, 30} (up to 91 HotStuff / 61
hybrid nodes), payloads of 0 B and 256 B, across the EU, US and
world-wide deployments, plotting average throughput (tx/s) and latency
for OneShot, Damysus and HotStuff.

``run_fig7`` regenerates one deployment's panel; ``render_fig7``
prints the series the figure plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..metrics import RunStats, render_series
from .config import ExperimentConfig
from .runner import run_experiment

#: The paper's sweep.
PAPER_F_VALUES: tuple[int, ...] = (1, 2, 4, 10, 20, 30)
PAPER_PAYLOADS: tuple[int, ...] = (0, 256)
PROTOCOLS: tuple[str, ...] = ("hotstuff", "damysus", "oneshot")


@dataclass
class Fig7Result:
    """Panel data: (protocol, payload) -> {f: RunStats}."""

    deployment: str
    f_values: tuple[int, ...]
    payloads: tuple[int, ...]
    runs: dict[tuple[str, int], dict[int, RunStats]] = field(default_factory=dict)

    def throughput_series(self, protocol: str, payload: int) -> list[float]:
        return [
            self.runs[(protocol, payload)][f].throughput_tps
            for f in self.f_values
        ]

    def latency_series(self, protocol: str, payload: int) -> list[float]:
        return [
            self.runs[(protocol, payload)][f].mean_latency_s * 1e3
            for f in self.f_values
        ]


def run_fig7(
    deployment: str,
    f_values: Sequence[int] = PAPER_F_VALUES,
    payloads: Sequence[int] = PAPER_PAYLOADS,
    protocols: Sequence[str] = PROTOCOLS,
    target_blocks: int = 30,
    seed: int = 7,
) -> Fig7Result:
    """Regenerate one deployment's Fig. 7 panel."""
    result = Fig7Result(
        deployment=deployment,
        f_values=tuple(f_values),
        payloads=tuple(payloads),
    )
    for payload in payloads:
        for protocol in protocols:
            per_f: dict[int, RunStats] = {}
            for f in f_values:
                cfg = ExperimentConfig(
                    protocol=protocol,
                    f=f,
                    payload_bytes=payload,
                    deployment=deployment,
                    target_blocks=target_blocks,
                    seed=seed,
                )
                per_f[f] = run_experiment(cfg).stats
            result.runs[(protocol, payload)] = per_f
    return result


def render_fig7(result: Fig7Result) -> str:
    """Text rendering of the panel: one table per payload per metric."""
    parts: list[str] = []
    for payload in result.payloads:
        tput = {
            p: result.throughput_series(p, payload)
            for p in PROTOCOLS
            if (p, payload) in result.runs
        }
        lat = {
            p: result.latency_series(p, payload)
            for p in PROTOCOLS
            if (p, payload) in result.runs
        }
        parts.append(
            render_series(
                f"Fig.7 [{result.deployment}] throughput (tx/s), payload {payload}B",
                "f",
                result.f_values,
                tput,
            )
        )
        parts.append(
            render_series(
                f"Fig.7 [{result.deployment}] latency (ms), payload {payload}B",
                "f",
                result.f_values,
                lat,
                fmt="{:,.1f}",
            )
        )
    return "\n\n".join(parts)


def check_shape(result: Fig7Result) -> list[str]:
    """Assertions the paper's figure supports; returns violations."""
    problems: list[str] = []
    for payload in result.payloads:
        for f in result.f_values:
            runs = {
                p: result.runs[(p, payload)][f]
                for p in PROTOCOLS
                if (p, payload) in result.runs
            }
            if {"oneshot", "damysus"} <= runs.keys():
                if runs["oneshot"].throughput_tps <= runs["damysus"].throughput_tps:
                    problems.append(
                        f"{payload}B f={f}: oneshot tput <= damysus"
                    )
                if runs["oneshot"].mean_latency_s >= runs["damysus"].mean_latency_s:
                    problems.append(
                        f"{payload}B f={f}: oneshot latency >= damysus"
                    )
            if {"damysus", "hotstuff"} <= runs.keys():
                if runs["damysus"].throughput_tps <= runs["hotstuff"].throughput_tps:
                    problems.append(
                        f"{payload}B f={f}: damysus tput <= hotstuff"
                    )
    return problems


__all__ = [
    "PAPER_F_VALUES",
    "PAPER_PAYLOADS",
    "PROTOCOLS",
    "Fig7Result",
    "run_fig7",
    "render_fig7",
    "check_shape",
]
