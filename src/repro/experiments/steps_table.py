"""Sec. V table — blocks decided and communication steps per execution
type (E1), plus the Fig. 2/3/4 message-flow traces (E9).

The step counts are *measured* from the network's message log, not
assumed: each distinct protocol message type per view is one
communication step (a "wave").  The paper counts, per execution:

=============  =======  ============
execution      #blocks  #total steps
=============  =======  ============
normal         1        4
catch-up       2        8
piggyback      2        6
=============  =======  ============

counted from the instant the first involved block is proposed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..faults import forced_execution_factory
from ..metrics import CATCHUP, NORMAL, PIGGYBACK, render_table
from ..metrics.timeline import classify_oneshot
from .config import ExperimentConfig
from .runner import run_experiment

#: The paper's expected values: kind -> (#blocks, #steps).
PAPER_STEPS: dict[str, tuple[int, int]] = {
    NORMAL: (1, 4),
    PIGGYBACK: (2, 6),
    CATCHUP: (2, 8),
}

#: View the forcers sabotage (leaving warm-up views untouched).
_FORCED_VIEW = 2


#: Wave classification shared with :mod:`repro.metrics.timeline`.
_step_key = classify_oneshot


@dataclass(frozen=True)
class StepsRow:
    """Measured row of the Sec. V table."""

    kind: str
    blocks: int
    steps: int
    waves: tuple[tuple[str, int], ...]  # the actual (step, view) waves

    @property
    def matches_paper(self) -> bool:
        return PAPER_STEPS[self.kind] == (self.blocks, self.steps)


def measure_execution(kind: str, seed: int = 11) -> StepsRow:
    """Run a 5-node cluster forcing ``kind`` and measure its steps."""
    factory = None
    if kind == PIGGYBACK:
        factory = forced_execution_factory(
            "piggyback", lambda v: v == _FORCED_VIEW
        )
    elif kind == CATCHUP:
        factory = forced_execution_factory(
            "catchup", lambda v: v == _FORCED_VIEW
        )
    elif kind != NORMAL:
        raise ValueError(f"unknown execution kind {kind!r}")

    cfg = ExperimentConfig(
        protocol="oneshot",
        f=2,
        deployment="local",
        local_latency_s=0.005,
        target_blocks=8,
        timeout_base=0.25,
        seed=seed,
        warmup_blocks=0,
    )
    result = run_experiment(cfg, replica_factory=factory, enable_message_log=True)
    log = result.network.message_log or []

    if kind == NORMAL:
        window = (_FORCED_VIEW, _FORCED_VIEW)
        blocks = 1
    else:
        # Failed view and the decisive view that follows it.
        window = (_FORCED_VIEW, _FORCED_VIEW + 1)
        blocks = 2

    waves: set[tuple[str, int]] = set()
    for env in log:
        key = _step_key(env.payload)
        if key is None:
            continue
        step, view = key
        if not (window[0] <= view <= window[1]):
            continue
        # Counting starts when the first involved block is proposed
        # (Sec. V): in two-view windows the failed view's new-view wave
        # precedes that proposal and is excluded, while the decisive
        # view's new-view wave is counted (Figs. 2-4).
        if step == "new-view" and view == window[0] and window[0] != window[1]:
            continue
        waves.add(key)

    kinds = result.collector.execution_kinds()
    measured_kind = kinds.get(
        _FORCED_VIEW + (0 if kind == NORMAL else 1), NORMAL
    )
    if measured_kind != kind:
        raise RuntimeError(
            f"forcing failed: wanted {kind}, decisive view ran {measured_kind}"
        )
    return StepsRow(
        kind=kind,
        blocks=blocks,
        steps=len(waves),
        waves=tuple(sorted(waves, key=lambda kv: (kv[1], kv[0]))),
    )


def steps_table(seed: int = 11) -> list[StepsRow]:
    return [measure_execution(k, seed) for k in (NORMAL, CATCHUP, PIGGYBACK)]


def render_steps_table(rows: list[StepsRow]) -> str:
    cells = []
    for row in rows:
        pb, ps = PAPER_STEPS[row.kind]
        cells.append(
            [
                str(row.blocks),
                str(row.steps),
                f"{pb}",
                f"{ps}",
                "yes" if row.matches_paper else "NO",
            ]
        )
    return render_table(
        "Sec. V execution-type table (measured vs paper)",
        [r.kind for r in rows],
        ["#blocks", "#steps", "paper #blocks", "paper #steps", "match"],
        cells,
    )


__all__ = [
    "PAPER_STEPS",
    "StepsRow",
    "measure_execution",
    "steps_table",
    "render_steps_table",
]
