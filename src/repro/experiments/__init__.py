"""Evaluation harness: one driver per paper table/figure (see the
per-experiment index in DESIGN.md)."""

from .ablation import (
    AblationResult,
    render_ablations,
    run_all_ablations,
)
from .complexity import (
    ComplexityResult,
    check_linearity,
    render_complexity,
    run_complexity,
)
from .config import ExperimentConfig
from .degraded import DegradedResult, render_degraded, run_degraded
from .deployments import DEPLOYMENTS, latency_model_for
from .fig7 import (
    PAPER_F_VALUES,
    PAPER_PAYLOADS,
    PROTOCOLS,
    Fig7Result,
    render_fig7,
    run_fig7,
)
from .gains import GainTable, PAPER_GAINS, compute_gains, render_gains
from .parallel import (
    ParallelScaling,
    render_parallel,
    run_parallel,
    run_parallel_scaling,
)
from .runner import RunResult, run_experiment
from .shard import (
    ShardRun,
    ShardScaling,
    render_shard,
    run_shard_scaling,
    run_sharded,
)
from .sweep import (
    SweepOutcome,
    SweepTask,
    outcomes_to_json,
    run_ablations_sweep,
    run_degraded_sweep,
    run_fig7_sweep,
    run_sweep,
)
from .steps_table import (
    PAPER_STEPS,
    StepsRow,
    measure_execution,
    render_steps_table,
    steps_table,
)

__all__ = [
    "AblationResult",
    "render_ablations",
    "run_all_ablations",
    "ComplexityResult",
    "check_linearity",
    "render_complexity",
    "run_complexity",
    "ExperimentConfig",
    "DegradedResult",
    "render_degraded",
    "run_degraded",
    "DEPLOYMENTS",
    "latency_model_for",
    "PAPER_F_VALUES",
    "PAPER_PAYLOADS",
    "PROTOCOLS",
    "Fig7Result",
    "render_fig7",
    "run_fig7",
    "GainTable",
    "PAPER_GAINS",
    "compute_gains",
    "render_gains",
    "ParallelScaling",
    "render_parallel",
    "run_parallel",
    "run_parallel_scaling",
    "RunResult",
    "run_experiment",
    "ShardRun",
    "ShardScaling",
    "render_shard",
    "run_shard_scaling",
    "run_sharded",
    "SweepOutcome",
    "SweepTask",
    "outcomes_to_json",
    "run_ablations_sweep",
    "run_degraded_sweep",
    "run_fig7_sweep",
    "run_sweep",
    "PAPER_STEPS",
    "StepsRow",
    "measure_execution",
    "render_steps_table",
    "steps_table",
]
