"""Sharded-run driver: many consensus groups, one keyspace.

This is the run harness for :mod:`repro.shard` — the only layer that
builds simulators and calls ``sim.run`` (the shard package itself stays
inside the protocol-layer substrate boundary).  Where
:mod:`repro.experiments.parallel` runs k *independent* instances,
``run_sharded`` runs k shards fed from one routed workload:

* one :class:`~repro.sim.Simulator`, k disjoint network fabrics (the
  shards are separate deployments; replica pids overlap across shards,
  so each fabric is its own namespace);
* per-shard clusters of the chosen protocol with leader rotation offset
  by shard (as in ``parallel.py``, now via the shared
  :class:`~repro.protocols.common.LeaderMap`);
* one :class:`~repro.shard.ShardedWorkload` pump routing superposed
  Poisson arrivals through the versioned router, and — when cross-shard
  traffic is configured — one 2PC :class:`~repro.shard.Coordinator`.

Every run ends with the atomicity oracle and a replay fingerprint, so
drivers and tests get the safety verdict and the determinism handle for
free.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from ..metrics import MetricsCollector, compute_stats, render_table
from ..net import Network
from ..protocols.common import Cluster, LeaderMap, ProtocolConfig, build_cluster
from ..protocols.registry import get_protocol
from ..shard import (
    AtomicityReport,
    Coordinator,
    Rebalancer,
    Router,
    ShardedWorkload,
    ShardFingerprint,
    check_atomicity,
    fingerprint_shards,
)
from ..sim import Simulator
from ..workload import split_regions
from .config import ExperimentConfig
from .deployments import latency_model_for

#: ``instrument(sim, networks, clusters)`` — the fuzz harness's hook
#: for installing degradations before the clusters start.
ShardInstrument = Callable[[Simulator, list[Network], list[Cluster]], None]


@dataclass
class ShardRun:
    """One finished sharded run plus its derived verdicts."""

    config: ExperimentConfig
    k: int
    sim: Simulator
    clusters: list[Cluster]
    networks: list[Network]
    router: Router
    pump: ShardedWorkload
    coordinator: Optional[Coordinator]
    duration_s: float = 0.0
    #: Transactions executed by each shard's reference replica (marker
    #: transactions included — they ride the chains like any tx).
    committed_txs: int = 0
    aggregate_tps: float = 0.0
    #: Mean single-shard commit latency (across shards with data).
    mean_latency_s: float = 0.0
    #: Mean / p99 2PC decision latency (0 when no cross traffic).
    cross_mean_latency_s: float = 0.0
    cross_p99_latency_s: float = 0.0
    #: 2PC decision latency over single-shard commit latency.
    cross_overhead_ratio: float = 0.0
    atomicity: AtomicityReport = field(default_factory=AtomicityReport)
    fingerprint: Optional[ShardFingerprint] = None

    def describe(self) -> str:
        line = (
            f"{self.config.protocol} k={self.k}: "
            f"{self.committed_txs:,} txs committed "
            f"({self.aggregate_tps:,.0f} tx/s aggregate)"
        )
        if self.coordinator is not None:
            line += (
                f", 2PC {self.coordinator.committed}/"
                f"{self.coordinator.submitted} committed "
                f"(overhead {self.cross_overhead_ratio:.2f}x)"
            )
        return line + f"; {self.atomicity.describe()}"


def run_sharded(
    config: ExperimentConfig,
    instrument: Optional[ShardInstrument] = None,
    reference_pid: int = 0,
    replica_factory=None,
) -> ShardRun:
    """Run one sharded experiment to ``config.max_sim_time``.

    ``replica_factory`` (as in :func:`~repro.experiments.runner
    .run_experiment`) substitutes Byzantine subclasses per pid — it is
    applied to *every* shard, since replica pids repeat across shards.
    """
    if config.shards < 1:
        raise ValueError("need at least one shard")
    info = get_protocol(config.protocol)
    n = info.n_for(config.f)
    k = config.shards
    sim = Simulator(seed=config.seed, kernel=config.kernel)
    proto_cfg = ProtocolConfig(
        n=n,
        f=config.f,
        timeout_base=config.timeout_base,
        view_sync=config.view_sync,
    )
    networks: list[Network] = []
    clusters: list[Cluster] = []
    for shard in range(k):
        network = Network(
            sim,
            latency=latency_model_for(config.deployment, config.local_latency_s),
            bandwidth_bps=config.bandwidth_bps,
            gst=config.gst,
            pre_gst_extra=config.pre_gst_extra,
        )
        cluster = build_cluster(
            info.replica_cls,
            sim,
            network,
            proto_cfg,
            payload_bytes=config.payload_bytes,
            collector=MetricsCollector(),
            replica_factory=replica_factory,
            saturated=False,
        )
        # Stagger leaders per shard so the k leaders of any view land on
        # different replica slots (same policy as parallel.py).
        LeaderMap(n=n, offset=shard % n).bind_cluster(cluster)
        networks.append(network)
        clusters.append(cluster)
    replica_pids = [[r.pid for r in c.replicas] for c in clusters]

    router = Router(
        k,
        slots=config.shard_slots,
        hot_permille=config.hot_key_permille,
        cross_permille=config.cross_shard_permille if k > 1 else 0,
    )
    coordinator = None
    if router.cross_permille:
        coordinator = Coordinator(
            sim,
            networks,
            replica_pids,
            f=config.f,
            certified_replies=info.replica_cls.CERTIFIED_REPLIES,
        )
    pump = ShardedWorkload(
        sim,
        networks,
        replica_pids,
        router,
        split_regions(
            config.virtual_clients,
            config.offered_tps,
            config.workload_regions,
            config.payload_bytes,
        ),
        coordinator=coordinator,
        slab_rows=config.arrival_slab,
        epoch_s=config.shard_epoch_s,
        rebalancer=Rebalancer(),
    )

    if instrument is not None:
        instrument(sim, networks, clusters)
    for cluster in clusters:
        cluster.start()
    pump.start()
    sim.run(until=config.max_sim_time)
    pump.stop()
    for cluster in clusters:
        cluster.stop()

    run = ShardRun(
        config=config,
        k=k,
        sim=sim,
        clusters=clusters,
        networks=networks,
        router=router,
        pump=pump,
        coordinator=coordinator,
        duration_s=sim.now,
    )
    run.committed_txs = sum(
        c.replicas[reference_pid].log.txs_executed for c in clusters
    )
    run.aggregate_tps = run.committed_txs / sim.now if sim.now > 0 else 0.0
    lats = [
        s.mean_latency_s
        for s in (compute_stats(c.collector) for c in clusters)
        if s.mean_latency_s > 0
    ]
    run.mean_latency_s = sum(lats) / len(lats) if lats else 0.0
    if coordinator is not None and coordinator.decision_latency.count:
        run.cross_mean_latency_s = coordinator.decision_latency.mean()
        run.cross_p99_latency_s = coordinator.decision_p99.value()
        if run.mean_latency_s > 0:
            run.cross_overhead_ratio = (
                run.cross_mean_latency_s / run.mean_latency_s
            )
    run.atomicity = check_atomicity(clusters)
    run.fingerprint = fingerprint_shards(
        config.protocol,
        config.seed,
        clusters,
        router,
        coordinator,
        end_time=sim.now,
        reference_pid=reference_pid,
    )
    return run


@dataclass
class ShardScaling:
    """Weak-scaling sweep: offered load grows with the shard count."""

    runs: dict[int, ShardRun] = field(default_factory=dict)

    def scaling_x(self) -> float:
        """Aggregate committed tx/s at max k over k=1."""
        if not self.runs:
            return 0.0
        base = self.runs[min(self.runs)].aggregate_tps
        top = self.runs[max(self.runs)].aggregate_tps
        return top / base if base > 0 else 0.0


def run_shard_scaling(
    ks: Sequence[int] = (1, 2, 4, 8),
    config: Optional[ExperimentConfig] = None,
) -> ShardScaling:
    """Sweep shard counts, scaling offered load and client population
    with k (weak scaling — per-shard load stays constant, the Mir-BFT
    framing of the parallelism objection)."""
    if config is None:
        config = ExperimentConfig()
    scaling = ShardScaling()
    for k in ks:
        cfg = dataclasses.replace(
            config,
            shards=k,
            offered_tps=config.offered_tps * k,
            virtual_clients=config.virtual_clients * k,
        )
        scaling.runs[k] = run_sharded(cfg)
    return scaling


def render_shard(scaling: ShardScaling) -> str:
    rows, cells = [], []
    base = None
    for k, run in sorted(scaling.runs.items()):
        if base is None:
            base = run.aggregate_tps
        cross = (
            f"{run.cross_overhead_ratio:.2f}x"
            if run.coordinator is not None
            else "-"
        )
        rows.append(f"k={k}")
        cells.append(
            [
                f"{run.aggregate_tps:,.0f}",
                f"{run.aggregate_tps / base:.2f}x" if base else "-",
                f"{run.mean_latency_s * 1e3:.1f}",
                cross,
                "ok" if run.atomicity.ok else "VIOLATION",
            ]
        )
    return render_table(
        "Sharded consensus (routed keyspace, weak scaling)",
        rows,
        ["aggregate tx/s", "speedup", "latency ms", "2PC overhead", "atomicity"],
        cells,
    )


__all__ = [
    "ShardInstrument",
    "ShardRun",
    "ShardScaling",
    "render_shard",
    "run_shard_scaling",
    "run_sharded",
]
