"""Experiment configuration."""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Callable, Optional

from ..net import DEFAULT_BANDWIDTH_BPS


@dataclass(frozen=True)
class ExperimentConfig:
    """One run of one protocol under one deployment.

    ``deployment`` is a name from :mod:`repro.experiments.deployments`:
    ``"eu"``, ``"us"``, ``"world"`` (region RTT matrices) or
    ``"local"`` (constant latency, set ``local_latency_s``).
    """

    protocol: str = "oneshot"
    f: int = 1
    payload_bytes: int = 0
    deployment: str = "eu"
    #: Stop after this many blocks are decided (by replica 0)...
    target_blocks: int = 30
    #: ... or when simulated time reaches this, whichever first.
    max_sim_time: float = 600.0
    seed: int = 0
    timeout_base: float = 2.0
    bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS
    local_latency_s: float = 0.010
    #: GST (0 = synchronous from the start) and pre-GST extra delay.
    gst: float = 0.0
    pre_gst_extra: float = 0.0
    #: Skip this many initial decided blocks in the statistics (warm-up).
    warmup_blocks: int = 2
    #: Simulation substrate kernel ("scalar" or "columnar"); purely a
    #: wall-clock choice — every kernel replays the identical schedule.
    kernel: str = "scalar"
    #: Load model: "saturated" (paper default — closed-loop synthetic
    #: sources keep every block full) or "open" (the aggregated
    #: open-loop engine of :mod:`repro.workload`: ``virtual_clients``
    #: Poisson clients offering ``offered_tps`` total, superposed per
    #: region and delivered in columnar slabs).
    workload: str = "saturated"
    #: Aggregate offered load (tx/s) in "open" mode.
    offered_tps: float = 10_000.0
    #: Virtual open-loop client population in "open" mode.
    virtual_clients: int = 100_000
    #: Regions the population/load is split across in "open" mode.
    workload_regions: int = 1
    #: Arrivals minted per slab (one simulator event) in "open" mode.
    arrival_slab: int = 512
    #: Use the O(1)-memory streaming metrics collector (quantiles become
    #: P² estimates; mandatory for very long open-loop runs).
    streaming_metrics: bool = False
    #: Highest-view gossip on timeout (minimal view synchronizer); off
    #: reproduces the historical pacemaker with the HotStuff view-split
    #: livelock (docs/fuzzing.md).
    view_sync: bool = True
    #: Shards (independent consensus groups over one keyspace) — 1
    #: means unsharded; >1 is consumed by :mod:`repro.experiments.shard`.
    shards: int = 1
    #: Fraction of transactions touching a second shard, in permille.
    cross_shard_permille: int = 0
    #: Routing-table epoch length (seconds); rebalancing happens at
    #: epoch boundaries.  0 disables rebalancing.
    shard_epoch_s: float = 0.0
    #: Fraction of client ids collapsed onto one hot key, in permille
    #: (skews load to exercise rebalancing).
    hot_key_permille: int = 0
    #: Routing slots (key ranges) in the shard routing table.
    shard_slots: int = 64

    def describe(self) -> str:
        return (
            f"{self.protocol} f={self.f} {self.deployment} "
            f"{self.payload_bytes}B seed={self.seed}"
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable field map (all fields are scalars)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ExperimentConfig":
        """Inverse of :meth:`to_dict`; unknown keys raise (a repro file
        from a future format should fail loudly, not half-load)."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown ExperimentConfig fields: {sorted(unknown)}")
        return cls(**data)


__all__ = ["ExperimentConfig"]
