"""Experiment configuration."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..net import DEFAULT_BANDWIDTH_BPS


@dataclass(frozen=True)
class ExperimentConfig:
    """One run of one protocol under one deployment.

    ``deployment`` is a name from :mod:`repro.experiments.deployments`:
    ``"eu"``, ``"us"``, ``"world"`` (region RTT matrices) or
    ``"local"`` (constant latency, set ``local_latency_s``).
    """

    protocol: str = "oneshot"
    f: int = 1
    payload_bytes: int = 0
    deployment: str = "eu"
    #: Stop after this many blocks are decided (by replica 0)...
    target_blocks: int = 30
    #: ... or when simulated time reaches this, whichever first.
    max_sim_time: float = 600.0
    seed: int = 0
    timeout_base: float = 2.0
    bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS
    local_latency_s: float = 0.010
    #: GST (0 = synchronous from the start) and pre-GST extra delay.
    gst: float = 0.0
    pre_gst_extra: float = 0.0
    #: Skip this many initial decided blocks in the statistics (warm-up).
    warmup_blocks: int = 2
    #: Simulation substrate kernel ("scalar" or "columnar"); purely a
    #: wall-clock choice — every kernel replays the identical schedule.
    kernel: str = "scalar"

    def describe(self) -> str:
        return (
            f"{self.protocol} f={self.f} {self.deployment} "
            f"{self.payload_bytes}B seed={self.seed}"
        )


__all__ = ["ExperimentConfig"]
