"""Sec. VIII gain tables (a: EU, b: US, c: world).

For each payload, the paper reports OneShot's throughput gain and
latency decrease over HotStuff and Damysus as ``X% (Y, Z)`` — the
average, minimum and maximum over the swept fault thresholds.  These
functions derive exactly those cells from a Fig. 7 panel.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..metrics import GainCell, decrease_pct, gain_pct, render_table
from .fig7 import Fig7Result

#: The numbers printed in the paper, for side-by-side comparison:
#: PAPER_GAINS[deployment][payload] = (tput vs HS, tput vs Dam,
#:                                     lat vs HS, lat vs Dam) averages.
PAPER_GAINS: dict[str, dict[int, tuple[float, float, float, float]]] = {
    "eu": {0: (439, 144, 79, 57), 256: (151, 36, 60, 26)},
    "us": {0: (1242, 150, 89, 59), 256: (500, 35, 80, 26)},
    "world": {0: (338, 131, 73, 53), 256: (101, 30, 48, 22)},
}


@dataclass(frozen=True)
class GainTable:
    """One deployment's gain cells, keyed by (payload, baseline)."""

    deployment: str
    throughput: dict[tuple[int, str], GainCell]
    latency: dict[tuple[int, str], GainCell]


def compute_gains(result: Fig7Result) -> GainTable:
    tput: dict[tuple[int, str], GainCell] = {}
    lat: dict[tuple[int, str], GainCell] = {}
    for payload in result.payloads:
        for baseline in ("hotstuff", "damysus"):
            if (baseline, payload) not in result.runs:
                continue
            t_gains = []
            l_decs = []
            for f in result.f_values:
                ours = result.runs[("oneshot", payload)][f]
                theirs = result.runs[(baseline, payload)][f]
                t_gains.append(
                    gain_pct(ours.throughput_tps, theirs.throughput_tps)
                )
                l_decs.append(
                    decrease_pct(ours.mean_latency_s, theirs.mean_latency_s)
                )
            tput[(payload, baseline)] = GainCell.from_values(t_gains)
            lat[(payload, baseline)] = GainCell.from_values(l_decs)
    return GainTable(deployment=result.deployment, throughput=tput, latency=lat)


def render_gains(table: GainTable) -> str:
    """The paper's two small tables, plus the paper's own averages."""
    paper = PAPER_GAINS.get(table.deployment, {})
    payloads = sorted({p for p, _ in table.throughput})
    rows = [f"{p}B" for p in payloads]

    def cells(data, idx_hs, idx_dam, sign):
        out = []
        for p in payloads:
            hs = data.get((p, "hotstuff"))
            dam = data.get((p, "damysus"))
            ref = paper.get(p)
            out.append(
                [
                    hs.render(sign) if hs else "-",
                    dam.render(sign) if dam else "-",
                    f"{sign}{ref[idx_hs]:.0f}%" if ref else "?",
                    f"{sign}{ref[idx_dam]:.0f}%" if ref else "?",
                ]
            )
        return out

    cols = ["vs HotStuff", "vs Damysus", "paper(HS)", "paper(Dam)"]
    a = render_table(
        f"Throughput gains [{table.deployment}]",
        rows,
        cols,
        cells(table.throughput, 0, 1, "+"),
    )
    b = render_table(
        f"Latency decreases [{table.deployment}]",
        rows,
        cols,
        cells(table.latency, 2, 3, "-"),
    )
    return a + "\n\n" + b


__all__ = ["GainTable", "PAPER_GAINS", "compute_gains", "render_gains"]
