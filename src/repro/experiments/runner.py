"""Experiment runner: build a cluster, run it, summarize.

``run_experiment`` is the single entry point every figure/table driver
uses; it wires the simulator, network, protocol and fault factory from
an :class:`~repro.experiments.config.ExperimentConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Type

from ..metrics import MetricsCollector, RunStats, compute_stats
from ..net import Network
from ..protocols.common import BaseReplica, Cluster, ProtocolConfig, build_cluster
from ..protocols.registry import get_protocol
from ..sim import Simulator
from ..workload import attach_workload
from .config import ExperimentConfig
from .deployments import latency_model_for

ReplicaFactory = Callable[[int, Type[BaseReplica]], Optional[Type[BaseReplica]]]


@dataclass
class RunResult:
    """Everything a driver might want from one run."""

    config: ExperimentConfig
    stats: RunStats
    collector: MetricsCollector
    cluster: Cluster
    network: Network
    sim: Simulator
    #: The aggregated load engine, when ``config.workload == "open"``.
    engine: Optional[object] = None


def _trimmed(collector: MetricsCollector, warmup_blocks: int) -> MetricsCollector:
    """A collector view with the first ``warmup_blocks`` blocks dropped."""
    if warmup_blocks <= 0:
        return collector
    by_time = sorted(collector.decided_blocks().items(), key=lambda kv: kv[1])
    skip = {h for h, _ in by_time[:warmup_blocks]}
    out = MetricsCollector()
    out.decisions = [d for d in collector.decisions if d.block_hash not in skip]
    out.view_outcomes = list(collector.view_outcomes)
    out._proposal_times = dict(collector._proposal_times)
    out._decisive_kind = dict(collector._decisive_kind)
    return out


def run_experiment(
    config: ExperimentConfig,
    replica_factory: Optional[ReplicaFactory] = None,
    enable_message_log: bool = False,
    instrument: Optional[Callable[[Simulator, Network, Cluster], None]] = None,
    reference_pid: int = 0,
) -> RunResult:
    """Run one experiment to completion and return its results.

    ``instrument`` (if given) is called with the built simulator,
    network and cluster just before the cluster starts — the hook the
    fuzz harness uses to install network conditions, adaptive
    adversaries and TEE storms without forking the run path.
    ``reference_pid`` selects the replica whose executed-block count
    drives the stop condition (the fuzzer points it at a replica its
    scenario leaves correct).
    """
    info = get_protocol(config.protocol)
    n = info.n_for(config.f)
    sim = Simulator(seed=config.seed, kernel=config.kernel)
    network = Network(
        sim,
        latency=latency_model_for(config.deployment, config.local_latency_s),
        bandwidth_bps=config.bandwidth_bps,
        gst=config.gst,
        pre_gst_extra=config.pre_gst_extra,
    )
    if enable_message_log:
        network.enable_log()
    proto_cfg = ProtocolConfig(
        n=n,
        f=config.f,
        timeout_base=config.timeout_base,
        view_sync=config.view_sync,
    )
    collector = None
    if config.streaming_metrics:
        # Streaming mode trims warm-up inside the collector (a stream
        # cannot be re-trimmed post hoc the way _trimmed does).
        collector = MetricsCollector(
            streaming=True,
            n_replicas=n,
            warmup_blocks=config.warmup_blocks,
            reservoir_rng=sim.rng.stream(
                "metrics.reservoir", purpose="streaming latency reservoir"
            ),
        )
    cluster = build_cluster(
        info.replica_cls,
        sim,
        network,
        proto_cfg,
        payload_bytes=config.payload_bytes,
        collector=collector,
        replica_factory=replica_factory,
        saturated=(config.workload == "saturated"),
    )
    engine = None
    if config.workload == "open":
        engine = attach_workload(
            sim,
            network,
            [r.pid for r in cluster.replicas],
            offered_tps=config.offered_tps,
            virtual_clients=config.virtual_clients,
            regions=config.workload_regions,
            payload_bytes=config.payload_bytes,
            slab_rows=config.arrival_slab,
        )
    elif config.workload != "saturated":
        raise ValueError(f"unknown workload model {config.workload!r}")
    if instrument is not None:
        instrument(sim, network, cluster)
    cluster.start()
    if engine is not None:
        engine.start()
    reference = cluster.replicas[reference_pid]
    target = config.target_blocks + config.warmup_blocks
    sim.run(
        until=config.max_sim_time,
        stop_when=lambda: len(reference.log) >= target,
    )
    if engine is not None:
        engine.stop()
    cluster.stop()
    if config.streaming_metrics:
        stats = compute_stats(cluster.collector)
    else:
        stats = compute_stats(_trimmed(cluster.collector, config.warmup_blocks))
    return RunResult(
        config=config,
        stats=stats,
        collector=cluster.collector,
        cluster=cluster,
        network=network,
        sim=sim,
        engine=engine,
    )


__all__ = ["RunResult", "run_experiment", "ReplicaFactory"]
