"""Optimization ablations (DESIGN.md: per-design-choice benches).

Sec. VI-F describes three optimizations; each is a toggle on
:class:`~repro.core.replica.OneShotOptions`.  Each ablation crafts the
exact situation its optimization targets and measures the protocol with
the toggle on and off:

* **avoid-revotes** (VI-F a): a view decides at a single replica, the
  next leader is silent, and the decided replica's timeout certificate
  (self-certified) meets older certificates at the following leader.
  With the flag the leader proposes directly off the ``B = true``
  accumulator; without it, a full deliver phase re-votes a block that
  f+1 replicas already stored.
* **omit-known-blocks** (VI-F b): a periodically silent leader causes
  timeouts right after decisions; backups whose certificate provably
  reached the next leader omit the (115.6 KB) block from their
  new-view message.  Measured in bytes on the wire.
* **preempt-catchup** (VI-F c): the previous view's prepare
  certificate arrives *after* the new leader already started a deliver
  phase; with the flag the leader abandons the deliver phase and runs
  a normal execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Type

from ..core import OneShotOptions, oneshot_with_options
from ..core.messages import DeliverMsg, NewViewMsg, PrepCertMsg, ProposalMsg
from ..faults import FaultPlan
from ..metrics import RunStats, render_table
from .config import ExperimentConfig
from .runner import RunResult, run_experiment

#: The three optimization axes.
AXES = ("avoid_revotes", "omit_known_blocks", "preempt_catchup")


def oneshot_factory(options: OneShotOptions, base_factory=None):
    """A ``replica_factory`` building OneShot replicas with ``options``,
    optionally composed with another factory (fault/forcer classes)."""
    cls = oneshot_with_options(options)

    def make(pid: int, default_cls):
        base = cls
        if base_factory is not None:
            produced = base_factory(pid, base)
            if produced is not None:
                base = produced
        return base

    return make


@dataclass
class AblationResult:
    """Per-axis on/off statistics."""

    axis: str
    on: RunStats
    off: RunStats
    #: Deliver-phase broadcasts observed (re-vote / preemption axes).
    on_delivers: int = 0
    off_delivers: int = 0
    #: Bytes on the wire (block-omission axis).
    on_bytes: int = 0
    off_bytes: int = 0


def _count_delivers(result: RunResult) -> int:
    log = result.network.message_log or []
    views = {
        env.payload.acc.view + 1
        for env in log
        if isinstance(env.payload, DeliverMsg)
    }
    return len(views)


# ----------------------------------------------------------------------
# VI-F(a) — avoid re-votes
# ----------------------------------------------------------------------
def _revote_scenario_cls(base_cls: Type, selector: Callable[[int], bool]) -> Type:
    """The mixed-straggler scenario that makes B = true reachable.

    At a selected view v (n = 5, f = 2; roles are relative to v):

    * the leader sends its proposal only to S = {v, v+3, v+4} (f+1
      replicas) and the prepare certificate only to X = v+3, then goes
      quiet — so X decides view v while nobody else does;
    * the leader of v+1 is silent — everybody times out;
    * the stragglers S∖X delay their new-view messages, so the leader
      of v+2 assembles X's *self-certified* certificate with the
      non-recipients' older ones: a mixed set whose top is
      self-certified.
    """

    class RevoteScenario(base_cls):  # type: ignore[misc, valid-type]
        forced = "revote-scenario"

        def _roles(self, v):
            n = self.config.n
            leader, x = v % n, (v + 3) % n
            s = {leader, x, (v + 4) % n}
            return leader, x, s

        def broadcast_at(self, when, payload, include_self=True):
            v = self.view
            if self.is_leader():
                if isinstance(payload, ProposalMsg) and selector(v):
                    _, x, s = self._roles(v)
                    for dst in s:
                        self.send_at(when, dst, payload)
                    return
                if isinstance(payload, PrepCertMsg) and selector(v):
                    _, x, _ = self._roles(v)
                    self.send_at(when, x, payload)
                    return
                if isinstance(payload, ProposalMsg) and selector(v - 1):
                    return  # leader of v+1 stays silent
            super().broadcast_at(when, payload, include_self)

        def send_at(self, when, dst, payload):
            if isinstance(payload, NewViewMsg) and selector(self.view - 2):
                _, x, s = self._roles(self.view - 2)
                if self.pid in s and self.pid != x:
                    when = max(when, self.sim.now) + 0.5  # straggle
            super().send_at(when, dst, payload)

    return RevoteScenario


def ablate_avoid_revotes(target_blocks: int = 24, seed: int = 23) -> AblationResult:
    cfg = ExperimentConfig(
        protocol="oneshot",
        f=2,
        deployment="local",
        local_latency_s=0.005,
        timeout_base=0.08,
        target_blocks=target_blocks,
        max_sim_time=120.0,
        seed=seed,
    )
    selector = lambda v: v >= 2 and v % 6 == 2  # noqa: E731

    def run(avoid: bool) -> RunResult:
        factory = oneshot_factory(
            OneShotOptions(avoid_revotes=avoid),
            lambda pid, cls: _revote_scenario_cls(cls, selector),
        )
        return run_experiment(cfg, replica_factory=factory, enable_message_log=True)

    on, off = run(True), run(False)
    return AblationResult(
        "avoid_revotes",
        on.stats,
        off.stats,
        on_delivers=_count_delivers(on),
        off_delivers=_count_delivers(off),
    )


# ----------------------------------------------------------------------
# VI-F(b) — avoid re-sending large blocks
# ----------------------------------------------------------------------
def ablate_omit_known_blocks(target_blocks: int = 24, seed: int = 29) -> AblationResult:
    """A periodically silent leader right after decisions: the timeout
    certificates are self-certified and the next leader co-signed the
    decided block's certificate, so the block can be omitted."""
    cfg = ExperimentConfig(
        protocol="oneshot",
        f=2,
        payload_bytes=256,
        deployment="local",
        local_latency_s=0.005,
        timeout_base=0.08,
        target_blocks=target_blocks,
        max_sim_time=120.0,
        seed=seed,
    )
    plan = FaultPlan().add(1, "silent-leader")

    def run(omit: bool) -> RunResult:
        factory = oneshot_factory(
            OneShotOptions(omit_known_blocks=omit), plan.factory()
        )
        return run_experiment(cfg, replica_factory=factory)

    on, off = run(True), run(False)
    return AblationResult(
        "omit_known_blocks",
        on.stats,
        off.stats,
        on_bytes=on.network.bytes_sent,
        off_bytes=off.network.bytes_sent,
    )


# ----------------------------------------------------------------------
# VI-F(c) — preempting catch-up executions
# ----------------------------------------------------------------------
def _preempt_scenario_cls(base_cls: Type, selector: Callable[[int], bool]) -> Type:
    """At a selected view v: the leader reaches only S = {v, v+3, v+4}
    with its proposal and *delays* the prepare-certificate broadcast,
    so the leader of v+1 starts a deliver phase from the mixed timeout
    certificates — and then receives the late prepare certificate."""

    class PreemptScenario(base_cls):  # type: ignore[misc, valid-type]
        forced = "preempt-scenario"

        def _roles(self, v):
            n = self.config.n
            return v % n, {v % n, (v + 3) % n, (v + 4) % n}

        def broadcast_at(self, when, payload, include_self=True):
            v = self.view
            if self.is_leader() and selector(v):
                if isinstance(payload, ProposalMsg):
                    _, s = self._roles(v)
                    for dst in s:
                        self.send_at(when, dst, payload)
                    return
                if isinstance(payload, PrepCertMsg):
                    late = max(when, self.sim.now) + 0.12
                    super().broadcast_at(late, payload, include_self)
                    return
            super().broadcast_at(when, payload, include_self)

        def send_at(self, when, dst, payload):
            from ..core.messages import VoteMsg

            # The deliver phase's votes crawl, so the late prepare
            # certificate arrives while the deliver phase is still
            # running — the exact race VI-F(c) targets.
            if isinstance(payload, VoteMsg) and selector(self.view - 1):
                when = max(when, self.sim.now) + 0.3
            super().send_at(when, dst, payload)

    return PreemptScenario


def ablate_preempt_catchup(target_blocks: int = 24, seed: int = 31) -> AblationResult:
    cfg = ExperimentConfig(
        protocol="oneshot",
        f=2,
        deployment="local",
        local_latency_s=0.005,
        timeout_base=0.08,
        target_blocks=target_blocks,
        max_sim_time=120.0,
        seed=seed,
    )
    selector = lambda v: v >= 2 and v % 6 == 2  # noqa: E731

    def run(preempt: bool) -> RunResult:
        factory = oneshot_factory(
            OneShotOptions(preempt_catchup=preempt),
            lambda pid, cls: _preempt_scenario_cls(cls, selector),
        )
        return run_experiment(cfg, replica_factory=factory, enable_message_log=True)

    on, off = run(True), run(False)
    return AblationResult(
        "preempt_catchup",
        on.stats,
        off.stats,
        on_delivers=_count_delivers(on),
        off_delivers=_count_delivers(off),
    )


def run_all_ablations(target_blocks: int = 24) -> list[AblationResult]:
    return [
        ablate_avoid_revotes(target_blocks),
        ablate_omit_known_blocks(target_blocks),
        ablate_preempt_catchup(target_blocks),
    ]


def render_ablations(results: list[AblationResult]) -> str:
    rows, cells = [], []
    for r in results:
        rows.append(r.axis)
        if r.off_bytes:
            extra = f"{(1 - r.on_bytes / r.off_bytes) * 100:+.1f}% bytes"
        elif r.on_delivers or r.off_delivers:
            extra = f"delivers {r.on_delivers} vs {r.off_delivers}"
        else:
            extra = "-"
        cells.append(
            [
                f"{r.on.throughput_tps:,.0f}",
                f"{r.off.throughput_tps:,.0f}",
                f"{r.on.mean_latency_s * 1e3:.1f}",
                f"{r.off.mean_latency_s * 1e3:.1f}",
                extra,
            ]
        )
    return render_table(
        "Sec. VI-F optimization ablations (on vs off)",
        rows,
        ["tput on", "tput off", "lat(ms) on", "lat(ms) off", "effect"],
        cells,
    )


__all__ = [
    "AXES",
    "AblationResult",
    "oneshot_factory",
    "ablate_avoid_revotes",
    "ablate_omit_known_blocks",
    "ablate_preempt_catchup",
    "run_all_ablations",
    "render_ablations",
]
