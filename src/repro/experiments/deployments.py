"""Deployment presets: the paper's three AWS fleets plus a local one."""

from __future__ import annotations

from typing import Optional

from ..net import ConstantLatency, LatencyModel, TopologyLatency
from ..net.regions import EU4, LOCAL, US4, WORLD11, Topology

#: Paper deployments (Sec. VIII): name -> topology.
DEPLOYMENTS: dict[str, Topology] = {
    "eu": EU4,
    "us": US4,
    "world": WORLD11,
    "local": LOCAL,
}


def latency_model_for(
    deployment: str, local_latency_s: float = 0.010, sigma: float = 0.06
) -> LatencyModel:
    """Build the latency model for a named deployment."""
    if deployment == "local":
        return ConstantLatency(local_latency_s)
    try:
        topo = DEPLOYMENTS[deployment]
    except KeyError:
        raise KeyError(
            f"unknown deployment {deployment!r}; known: {sorted(DEPLOYMENTS)}"
        ) from None
    return TopologyLatency(topo, sigma=sigma)


__all__ = ["DEPLOYMENTS", "latency_model_for"]
