"""Parallel (multi-instance) execution — the Sec. II extension.

Gupta et al. ("Dissecting BFT Consensus") identify *lack of
parallelism* as an issue of 2f+1 hybrid protocols; the paper replies
that it "can for example be addressed using parallel executions"
(Mir-BFT-style multi-instance operation).  This driver runs k
independent OneShot instances whose replica i's are co-located on one
machine — sharing that machine's single core and NIC — with leader
rotation offset by instance so the k leaders land on different
machines each view.

Aggregate throughput scales with k until the shared cores saturate,
which is exactly the effect the objection and the reply are about.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..metrics import MetricsCollector, compute_stats, render_table
from ..net import Network
from ..protocols.common import Cluster, LeaderMap, ProtocolConfig, build_cluster
from ..protocols.registry import get_protocol
from ..sim import Cpu, Nic, Simulator
from .config import ExperimentConfig
from .deployments import latency_model_for


@dataclass
class ParallelRun:
    """k instances plus machine-level shared resources."""

    k: int
    f: int
    clusters: list[Cluster]
    cpus: list[Cpu]
    nics: list[Nic]
    sim: Simulator
    aggregate_tps: float = 0.0
    mean_latency_s: float = 0.0
    cpu_utilization: float = 0.0


def _offset_leader(cluster: Cluster, offset: int) -> None:
    """Stagger leader rotation so instance leaders spread over machines."""
    # The CHECKER validates proposer identity with the same map; the
    # LeaderMap binds both sides (replica election + TEE rebind).
    LeaderMap(n=cluster.config.n, offset=offset % cluster.config.n).bind_cluster(
        cluster
    )


def run_parallel(
    k: int,
    f: int = 1,
    protocol: str = "oneshot",
    payload_bytes: int = 0,
    deployment: str = "local",
    local_latency_s: float = 0.002,
    sim_time: float = 2.0,
    seed: int = 9,
) -> ParallelRun:
    """Run ``k`` co-located instances and aggregate their throughput."""
    if k < 1:
        raise ValueError("need at least one instance")
    info = get_protocol(protocol)
    n = info.n_for(f)
    sim = Simulator(seed=seed)
    # One machine per replica slot: a single core and a single NIC that
    # all k instances' replica-i share.
    cpus = [Cpu(name=f"machine{i}.cpu") for i in range(n)]
    nics: list[Nic] = []
    clusters: list[Cluster] = []
    for instance in range(k):
        network = Network(
            sim, latency=latency_model_for(deployment, local_latency_s)
        )
        cluster = build_cluster(
            info.replica_cls,
            sim,
            network,
            ProtocolConfig(n=n, f=f),
            payload_bytes=payload_bytes,
            collector=MetricsCollector(),
        )
        _offset_leader(cluster, instance)
        for i, replica in enumerate(cluster.replicas):
            replica.cpu = cpus[i]
            if instance == 0:
                nics.append(network.nic(i))
            else:
                network.attach_nic(i, nics[i])
        clusters.append(cluster)

    for cluster in clusters:
        cluster.start()
    sim.run(until=sim_time)
    for cluster in clusters:
        cluster.stop()

    run = ParallelRun(k=k, f=f, clusters=clusters, cpus=cpus, nics=nics, sim=sim)
    stats = [compute_stats(c.collector) for c in clusters]
    run.aggregate_tps = sum(s.throughput_tps for s in stats)
    lats = [s.mean_latency_s for s in stats if s.mean_latency_s > 0]
    run.mean_latency_s = sum(lats) / len(lats) if lats else 0.0
    run.cpu_utilization = max(c.utilization(sim.now) for c in cpus)
    return run


@dataclass
class ParallelScaling:
    runs: dict[int, ParallelRun] = field(default_factory=dict)


def run_parallel_scaling(
    ks: Sequence[int] = (1, 2, 4, 8), f: int = 1, **kwargs
) -> ParallelScaling:
    scaling = ParallelScaling()
    for k in ks:
        scaling.runs[k] = run_parallel(k, f=f, **kwargs)
    return scaling


def render_parallel(scaling: ParallelScaling) -> str:
    rows, cells = [], []
    base = None
    for k, run in sorted(scaling.runs.items()):
        if base is None:
            base = run.aggregate_tps
        rows.append(f"k={k}")
        cells.append(
            [
                f"{run.aggregate_tps:,.0f}",
                f"{run.aggregate_tps / base:.2f}x",
                f"{run.mean_latency_s * 1e3:.1f}",
                f"{run.cpu_utilization * 100:.0f}%",
            ]
        )
    return render_table(
        "Parallel OneShot instances (shared cores/NICs per machine)",
        rows,
        ["aggregate tx/s", "speedup", "latency ms", "busiest core"],
        cells,
    )


__all__ = [
    "ParallelRun",
    "ParallelScaling",
    "run_parallel",
    "run_parallel_scaling",
    "render_parallel",
]
