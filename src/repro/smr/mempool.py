"""Pending-transaction pools and synthetic workload sources.

The evaluation keeps the system saturated: every block carries exactly
400 transactions.  :class:`SaturatedSource` models that steady state by
synthesizing a full batch on demand (as the C++ harness's closed-loop
clients do).  :class:`Mempool` additionally holds real client
submissions (used by the replicated-KV example) ahead of the synthetic
filler.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from .transaction import Transaction, TxFactory

#: Transactions per block in the paper's evaluation.
BLOCK_TXS = 400


class SaturatedSource:
    """Infinite supply of synthetic transactions with fixed payloads."""

    def __init__(self, payload_bytes: int = 0, client_id: int = 10_000) -> None:
        self.payload_bytes = payload_bytes
        self._factory = TxFactory(client_id, payload_bytes)

    def batch(self, n: int, now: float = 0.0) -> tuple[Transaction, ...]:
        return self._factory.batch(n, now)


class Mempool:
    """Per-replica pool of client transactions, FIFO with dedup.

    ``next_batch`` drains queued client transactions first and tops the
    batch up from the synthetic source (if any) so blocks stay full.
    """

    def __init__(
        self,
        source: Optional[SaturatedSource] = None,
        batch_size: int = BLOCK_TXS,
    ) -> None:
        self.source = source
        self.batch_size = batch_size
        self._pending: OrderedDict[tuple[int, int], Transaction] = OrderedDict()
        self._seen: set[tuple[int, int]] = set()

    def __len__(self) -> int:
        return len(self._pending)

    def submit(self, tx: Transaction) -> bool:
        """Queue a client transaction; returns False on duplicates."""
        k = tx.key()
        if k in self._seen:
            return False
        self._seen.add(k)
        self._pending[k] = tx
        return True

    def mark_committed(self, tx: Transaction) -> None:
        """Drop a transaction that some block already committed."""
        k = (tx.client_id, tx.tx_id)
        self._seen.add(k)
        self._pending.pop(k, None)

    def next_batch(self, now: float = 0.0) -> tuple[Transaction, ...]:
        """Form the next block's transaction list."""
        out: list[Transaction] = []
        while self._pending and len(out) < self.batch_size:
            _, tx = self._pending.popitem(last=False)
            out.append(tx)
        if self.source is not None and len(out) < self.batch_size:
            out.extend(self.source.batch(self.batch_size - len(out), now))
        return tuple(out)


__all__ = ["Mempool", "SaturatedSource", "BLOCK_TXS"]
