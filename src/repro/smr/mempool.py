"""Pending-transaction pools and synthetic workload sources.

The evaluation keeps the system saturated: every block carries exactly
400 transactions.  :class:`SaturatedSource` models that steady state by
synthesizing a full batch on demand (as the C++ harness's closed-loop
clients do).  :class:`Mempool` additionally holds real client
submissions (used by the replicated-KV example) ahead of the synthetic
filler.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from .transaction import Transaction, TxFactory

#: Transactions per block in the paper's evaluation.
BLOCK_TXS = 400

#: Default bound on a :class:`Mempool`'s duplicate-detection window.
#: At ~100 bytes per key this caps the window near 25 MB per replica
#: while still remembering ~600 full blocks of history — far beyond
#: any client's realistic retransmission horizon.  Same bounded-FIFO
#: pattern as the :class:`~repro.crypto.keys.KeyRing` signature memo.
DEFAULT_DEDUP_WINDOW = 250_000


class SaturatedSource:
    """Infinite supply of synthetic transactions with fixed payloads."""

    def __init__(self, payload_bytes: int = 0, client_id: int = 10_000) -> None:
        self.payload_bytes = payload_bytes
        self._factory = TxFactory(client_id, payload_bytes)

    def batch(self, n: int, now: float = 0.0) -> tuple[Transaction, ...]:
        return self._factory.batch(n, now)


class Mempool:
    """Per-replica pool of client transactions, FIFO with dedup.

    ``next_batch`` drains queued client transactions first and tops the
    batch up from the synthetic source (if any) so blocks stay full.

    **Dedup-horizon semantics.**  Duplicate detection remembers the
    last ``dedup_window`` distinct transaction keys (submissions and
    commits), evicting the oldest key first — an add-only set would
    grow without bound over a long run and eventually dominate replica
    memory.  A duplicate arriving *within* the window is rejected
    exactly as before; a retransmission arriving after its key has
    aged out of the window is re-admitted, which is safe: commit-time
    dedup is the execution layer's job (the KV app's per-client
    ``tx_id`` ordering), the mempool window only suppresses redundant
    *queueing* work.  Re-admitting a key whose transaction is *still
    pending* is harmless too: the resubmission overwrites the same
    pending slot, so no batch ever carries the transaction twice.
    """

    def __init__(
        self,
        source: Optional[SaturatedSource] = None,
        batch_size: int = BLOCK_TXS,
        dedup_window: int = DEFAULT_DEDUP_WINDOW,
    ) -> None:
        if dedup_window <= 0:
            raise ValueError("dedup_window must be positive")
        self.source = source
        self.batch_size = batch_size
        self.dedup_window = dedup_window
        self._pending: OrderedDict[tuple[int, int], Transaction] = OrderedDict()
        #: Bounded FIFO of recently seen keys (values unused); oldest
        #: insertion evicted first, matching the KeyRing memo pattern.
        #: A plain dict (insertion-ordered since 3.7): eviction pops
        #: the first iteration key, and re-assigning an existing key
        #: keeps its position — the two properties the FIFO needs —
        #: while inserts stay cheap on the commit hot path.
        self._seen: dict[tuple[int, int], None] = {}

    def __len__(self) -> int:
        return len(self._pending)

    def _remember(self, k: tuple[int, int]) -> None:
        seen = self._seen
        if k in seen:
            return
        if len(seen) >= self.dedup_window:
            del seen[next(iter(seen))]
        seen[k] = None

    def seen_recently(self, k: tuple[int, int]) -> bool:
        """Whether ``k`` is inside the current dedup horizon."""
        return k in self._seen

    def submit(self, tx: Transaction) -> bool:
        """Queue a client transaction; returns False on duplicates
        (within the dedup horizon — see the class docstring)."""
        k = tx.key()
        if k in self._seen:
            return False
        self._remember(k)
        self._pending[k] = tx
        return True

    def mark_committed(self, tx: Transaction) -> None:
        """Drop a transaction that some block already committed."""
        k = (tx.client_id, tx.tx_id)
        self._remember(k)
        self._pending.pop(k, None)

    def mark_committed_many(self, txs) -> None:
        """Drop a whole committed block's transactions at once.

        Equivalent to :meth:`mark_committed` per transaction (``txs``
        must be a sequence); see :meth:`mark_committed_keys`.
        """
        self.mark_committed_keys([(tx.client_id, tx.tx_id) for tx in txs])

    def mark_committed_keys(self, keys: list[tuple[int, int]]) -> None:
        """Drop committed transactions by key — same dedup-window
        insertion order and eviction as per-key :meth:`mark_committed`.

        Taking pre-built keys lets callers share one key list across
        all replicas committing the same block
        (:meth:`~repro.smr.block.Block.tx_keys`).  Every replica runs
        this once per committed block (400 txs in the saturated
        evaluation), which made the per-call overhead of the scalar
        method the single hottest line in the e2e profile.
        """
        seen = self._seen
        pending = self._pending
        if not pending and len(seen) + len(keys) <= self.dedup_window:
            # Bulk path (the saturated steady state): nothing pending
            # to drop and no eviction can trigger, so one C-level
            # update replaces per-key membership tests.  Equivalent to
            # the loop: assigning an existing key leaves its position
            # (and ``None`` value) unchanged, exactly like
            # ``_remember``'s early return; fresh keys append in
            # iteration order.
            seen.update(dict.fromkeys(keys))
            return
        pending_pop = pending.pop
        window = self.dedup_window
        for k in keys:
            if k not in seen:
                if len(seen) >= window:
                    del seen[next(iter(seen))]
                seen[k] = None
            pending_pop(k, None)

    def next_batch(self, now: float = 0.0) -> tuple[Transaction, ...]:
        """Form the next block's transaction list."""
        out: list[Transaction] = []
        while self._pending and len(out) < self.batch_size:
            _, tx = self._pending.popitem(last=False)
            out.append(tx)
        if self.source is not None and len(out) < self.batch_size:
            out.extend(self.source.batch(self.batch_size - len(out), now))
        return tuple(out)


__all__ = ["Mempool", "SaturatedSource", "BLOCK_TXS", "DEFAULT_DEDUP_WINDOW"]
