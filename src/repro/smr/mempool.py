"""Pending-transaction pools and synthetic workload sources.

The evaluation keeps the system saturated: every block carries exactly
400 transactions.  :class:`SaturatedSource` models that steady state by
synthesizing a full batch on demand (as the C++ harness's closed-loop
clients do).  :class:`Mempool` additionally holds real client
submissions (used by the replicated-KV example) ahead of the synthetic
filler.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Optional

from .transaction import Transaction, TxBatch, TxFactory

#: Transactions per block in the paper's evaluation.
BLOCK_TXS = 400

#: Default bound on a :class:`Mempool`'s duplicate-detection window.
#: At ~100 bytes per key this caps the window near 25 MB per replica
#: while still remembering ~600 full blocks of history — far beyond
#: any client's realistic retransmission horizon.  Same bounded-FIFO
#: pattern as the :class:`~repro.crypto.keys.KeyRing` signature memo.
DEFAULT_DEDUP_WINDOW = 250_000


class SaturatedSource:
    """Infinite supply of synthetic transactions with fixed payloads."""

    def __init__(self, payload_bytes: int = 0, client_id: int = 10_000) -> None:
        self.payload_bytes = payload_bytes
        self._factory = TxFactory(client_id, payload_bytes)

    def batch(self, n: int, now: float = 0.0) -> tuple[Transaction, ...]:
        return self._factory.batch(n, now)


class Mempool:
    """Per-replica pool of client transactions, FIFO with dedup.

    ``next_batch`` drains queued client transactions first and tops the
    batch up from the synthetic source (if any) so blocks stay full.

    **Dedup-horizon semantics.**  Duplicate detection remembers the
    last ``dedup_window`` distinct transaction keys (submissions and
    commits), evicting the oldest key first — an add-only set would
    grow without bound over a long run and eventually dominate replica
    memory.  A duplicate arriving *within* the window is rejected
    exactly as before; a retransmission arriving after its key has
    aged out of the window is re-admitted, which is safe: commit-time
    dedup is the execution layer's job (the KV app's per-client
    ``tx_id`` ordering), the mempool window only suppresses redundant
    *queueing* work.  Re-admitting a key whose transaction is *still
    pending* is harmless too: the resubmission overwrites the same
    pending slot, so no batch ever carries the transaction twice.
    """

    def __init__(
        self,
        source: Optional[SaturatedSource] = None,
        batch_size: int = BLOCK_TXS,
        dedup_window: int = DEFAULT_DEDUP_WINDOW,
    ) -> None:
        if dedup_window <= 0:
            raise ValueError("dedup_window must be positive")
        self.source = source
        self.batch_size = batch_size
        self.dedup_window = dedup_window
        self._pending: OrderedDict[tuple[int, int], Transaction] = OrderedDict()
        #: Bounded FIFO of recently seen keys (values unused); oldest
        #: insertion evicted first, matching the KeyRing memo pattern.
        #: A plain dict keeps membership tests and the commit hot
        #: path's C-level bulk ``update`` fast, but evicting its front
        #: via ``next(iter(d))`` rescans every tombstone left by prior
        #: evictions — quadratic once the window fills, which the
        #: aggregated workload engine reaches in seconds.  So insertion
        #: order is mirrored in ``_seen_order`` with a head cursor:
        #: eviction is ``del seen[order[head]]; head += 1`` (O(1)), and
        #: the consumed prefix is compacted away once it dominates the
        #: list (amortized O(1)).  Invariant: ``_seen_order[head:]``
        #: holds each key of ``_seen`` exactly once, oldest first.
        self._seen: dict[tuple[int, int], None] = {}
        self._seen_order: list[tuple[int, int]] = []
        self._seen_head = 0
        #: Columnar pending path (the workload engine's slabs): FIFO of
        #: accepted :class:`TxBatch` slabs, a row cursor into the head
        #: slab, the set of keys still live in some slab, and keys that
        #: committed while slab-pending (skipped at drain time).  All
        #: empty — and every scalar path byte-identical — unless
        #: :meth:`submit_batch` has been used.
        self._slabs: deque[TxBatch] = deque()
        self._slab_cursor = 0
        self._slab_keys: set[tuple[int, int]] = set()
        self._slab_dropped: set[tuple[int, int]] = set()

    def __len__(self) -> int:
        return len(self._pending) + len(self._slab_keys)

    def _evict_oldest(self) -> None:
        """Drop the oldest ``_seen`` key; amortized O(1)."""
        order = self._seen_order
        head = self._seen_head
        del self._seen[order[head]]
        head += 1
        if head > 4096 and head * 2 >= len(order):
            del order[:head]
            head = 0
        self._seen_head = head

    def _remember(self, k: tuple[int, int]) -> None:
        seen = self._seen
        if k in seen:
            return
        if len(seen) >= self.dedup_window:
            self._evict_oldest()
        seen[k] = None
        self._seen_order.append(k)

    def seen_recently(self, k: tuple[int, int]) -> bool:
        """Whether ``k`` is inside the current dedup horizon."""
        return k in self._seen

    def submit(self, tx: Transaction) -> bool:
        """Queue a client transaction; returns False on duplicates
        (within the dedup horizon — see the class docstring)."""
        k = tx.key()
        if k in self._seen:
            return False
        self._remember(k)
        self._pending[k] = tx
        return True

    def submit_batch(self, batch: TxBatch) -> int:
        """Queue a columnar slab of client transactions; returns the
        number accepted.

        Accept/reject decisions are *identical* to calling
        :meth:`submit` once per row in slab order (same dedup horizon,
        same ``_seen`` FIFO insertion order and eviction) — the batched
        path only changes how accepted rows are *stored*: as the slab's
        numpy columns rather than per-row :class:`Transaction` objects.
        The rows are materialized lazily by :meth:`next_batch`, and
        only for the rows that actually enter a block.
        """
        keys = batch.keys()
        seen = self._seen
        window = self.dedup_window
        slab_keys = self._slab_keys
        accepted: list[int] = []
        accept = accepted.append
        slab_add = slab_keys.add
        evict = self._evict_oldest
        order_add = self._seen_order.append
        for i, k in enumerate(keys):
            if k in seen:
                continue
            if len(seen) >= window:
                evict()
            seen[k] = None
            order_add(k)
            slab_add(k)
            accept(i)
        if not accepted:
            return 0
        if len(accepted) == len(keys):
            self._slabs.append(batch)
        else:
            self._slabs.append(batch.select(accepted))
        return len(accepted)

    def mark_committed(self, tx: Transaction) -> None:
        """Drop a transaction that some block already committed."""
        k = (tx.client_id, tx.tx_id)
        self._remember(k)
        self._pending.pop(k, None)
        if self._slab_keys and k in self._slab_keys:
            self._slab_keys.discard(k)
            self._slab_dropped.add(k)

    def mark_committed_many(self, txs) -> None:
        """Drop a whole committed block's transactions at once.

        Equivalent to :meth:`mark_committed` per transaction (``txs``
        must be a sequence); see :meth:`mark_committed_keys`.
        """
        self.mark_committed_keys([(tx.client_id, tx.tx_id) for tx in txs])

    def mark_committed_keys(self, keys: list[tuple[int, int]]) -> None:
        """Drop committed transactions by key — same dedup-window
        insertion order and eviction as per-key :meth:`mark_committed`.

        Taking pre-built keys lets callers share one key list across
        all replicas committing the same block
        (:meth:`~repro.smr.block.Block.tx_keys`).  Every replica runs
        this once per committed block (400 txs in the saturated
        evaluation), which made the per-call overhead of the scalar
        method the single hottest line in the e2e profile.
        """
        seen = self._seen
        pending = self._pending
        slab_keys = self._slab_keys
        if (
            not pending
            and not slab_keys
            and len(seen) + len(keys) <= self.dedup_window
        ):
            # Bulk path (the saturated steady state): nothing pending
            # to drop and no eviction can trigger, so C-level bulk ops
            # replace per-key membership tests.  Equivalent to the
            # loop: an existing key keeps its position (and ``None``
            # value), exactly like ``_remember``'s early return; fresh
            # keys append in iteration order (``fromkeys`` collapses
            # in-block repeats so ``_seen_order`` stays duplicate-free).
            merged = dict.fromkeys(keys)
            if seen.keys().isdisjoint(merged):
                seen.update(merged)
                self._seen_order.extend(merged)
            else:
                order_add = self._seen_order.append
                for k in merged:
                    if k not in seen:
                        seen[k] = None
                        order_add(k)
            return
        pending_pop = pending.pop
        slab_dropped = self._slab_dropped
        window = self.dedup_window
        evict = self._evict_oldest
        order_add = self._seen_order.append
        for k in keys:
            if k not in seen:
                if len(seen) >= window:
                    evict()
                seen[k] = None
                order_add(k)
            pending_pop(k, None)
            if slab_keys and k in slab_keys:
                slab_keys.discard(k)
                slab_dropped.add(k)

    def next_batch(self, now: float = 0.0) -> tuple[Transaction, ...]:
        """Form the next block's transaction list.

        Drain order: scalar client submissions first (FIFO), then the
        columnar slabs (FIFO, skipping rows that committed while
        slab-pending), then the synthetic source tops the block up.
        """
        out: list[Transaction] = []
        while self._pending and len(out) < self.batch_size:
            _, tx = self._pending.popitem(last=False)
            out.append(tx)
        if self._slabs and len(out) < self.batch_size:
            self._drain_slabs(out)
        if self.source is not None and len(out) < self.batch_size:
            out.extend(self.source.batch(self.batch_size - len(out), now))
        return tuple(out)

    def _drain_slabs(self, out: list[Transaction]) -> None:
        """Move up to ``batch_size - len(out)`` slab rows into ``out``."""
        slab_keys = self._slab_keys
        dropped = self._slab_dropped
        while self._slabs and len(out) < self.batch_size:
            slab = self._slabs[0]
            keys = slab.keys()
            n = len(keys)
            cursor = self._slab_cursor
            take: list[int] = []
            need = self.batch_size - len(out)
            while cursor < n and len(take) < need:
                k = keys[cursor]
                if k in dropped:
                    dropped.discard(k)
                else:
                    take.append(cursor)
                    slab_keys.discard(k)
                cursor += 1
            out.extend(slab.mint(take))
            if cursor >= n:
                self._slabs.popleft()
                self._slab_cursor = 0
            else:
                self._slab_cursor = cursor


__all__ = ["Mempool", "SaturatedSource", "BLOCK_TXS", "DEFAULT_DEDUP_WINDOW"]
