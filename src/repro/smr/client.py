"""Clients: submission, reply collection, end-to-end latency.

A client broadcasts each transaction to every replica (so a faulty
leader cannot censor it silently) and waits for replies sent when the
transaction's block executes.  Two trust modes:

* ``certified`` — a *single* reply suffices because it forwards the
  prepare certificate (OneShot, Sec. VI-C: "a single message is
  therefore enough for a client to trust a reply");
* quorum — ``f+1`` matching replies from distinct replicas (HotStuff /
  Damysus style).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Optional

from ..net import Network
from ..sim import Process, Simulator
from .transaction import Transaction, TxBatch, TxFactory


@dataclass(frozen=True)
class SubmitTx:
    """Client → replica submission."""

    tx: Transaction

    def wire_size(self) -> int:
        return 8 + self.tx.wire_size()


@dataclass(frozen=True)
class SubmitTxBatch:
    """Workload engine → replica submission of a columnar slab.

    One message carries a whole :class:`~repro.smr.transaction.TxBatch`
    (arrival times, client ids, tx ids as numpy columns) — the batched
    counterpart of per-transaction :class:`SubmitTx` used by the
    aggregated open-loop load engine (:mod:`repro.workload`).  The slab
    is immutable (read-only arrays), so the reference-passing in-memory
    network cannot let a receiver alter it.
    """

    batch: TxBatch

    def wire_size(self) -> int:
        return 8 + self.batch.wire_size()


@dataclass(frozen=True)
class Reply:
    """Replica → client execution notification.

    ``certified`` marks replies carrying a forwarded prepare
    certificate (trustable in isolation).
    """

    tx_key: tuple[int, int]
    view: int
    replica: int
    certified: bool = False
    result: Any = None

    def wire_size(self) -> int:
        # tx key + view + flag (+ certificate bytes when certified)
        return 24 + (80 if self.certified else 0)


#: Default cap on a client's in-flight (submitted, not yet committed)
#: transactions.  In a correct run commits drain ``_inflight`` almost as
#: fast as submissions fill it; the cap only bites when transactions
#: stop committing (censorship, partitions, runaway open-loop load), in
#: which case the *oldest* stale entries are evicted so a long run's
#: bookkeeping stays bounded.  An evicted transaction can no longer be
#: matched to replies — its latency is simply not recorded.
DEFAULT_MAX_INFLIGHT = 100_000


class Client(Process):
    """A closed-loop or scripted client.

    **Bounded bookkeeping.**  Per-transaction state is dropped as soon
    as it is no longer needed: the submit-time (``_inflight``) and
    reply-voter (``_reply_counts``) entries for a transaction are popped
    the moment it commits, with the end-to-end latency folded into
    ``_latencies`` at that point.  Entries for transactions that *never*
    commit are capped at ``max_inflight`` (oldest evicted first), so no
    dict grows without bound over a long open-loop run.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        pid: int,
        replica_pids: list[int],
        f: int,
        payload_bytes: int = 0,
        certified_replies: bool = False,
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
    ) -> None:
        super().__init__(sim, pid, name=f"client{pid}")
        if max_inflight <= 0:
            raise ValueError("max_inflight must be positive")
        self.network = network
        self.replica_pids = list(replica_pids)
        self.f = f
        self.certified_replies = certified_replies
        self.max_inflight = max_inflight
        self.factory = TxFactory(client_id=pid, payload_bytes=payload_bytes)
        # OrderedDict so the cap eviction unlinks the oldest entry in
        # O(1); popping a plain dict's front rescans prior tombstones.
        self._inflight: OrderedDict[tuple[int, int], float] = OrderedDict()
        self._reply_counts: dict[tuple[int, int], set[int]] = {}
        self._latencies: dict[tuple[int, int], float] = {}
        self.committed: dict[tuple[int, int], float] = {}
        self.results: dict[tuple[int, int], Any] = {}
        #: Stale submissions dropped by the ``max_inflight`` cap.
        self.evicted = 0
        network.register(self)

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, op: Any = None) -> Transaction:
        """Create and broadcast a transaction; returns it."""
        tx = self.factory.make(now=self.sim.now, op=op)
        if len(self._inflight) >= self.max_inflight:
            stale, _ = self._inflight.popitem(last=False)
            self._reply_counts.pop(stale, None)
            self.evicted += 1
        self._inflight[tx.key()] = self.sim.now
        msg = SubmitTx(tx)
        for r in self.replica_pids:
            self.network.send(self.pid, r, msg)
        return tx

    # ------------------------------------------------------------------
    # Replies
    # ------------------------------------------------------------------
    def on_message(self, sender: int, payload: Any) -> None:
        if not isinstance(payload, Reply):
            return
        key = payload.tx_key
        if key in self.committed or key not in self._inflight:
            return
        if self.certified_replies and payload.certified:
            self._commit(key, payload)
            return
        voters = self._reply_counts.setdefault(key, set())
        voters.add(payload.replica)
        if len(voters) >= self.f + 1:
            self._commit(key, payload)

    def _commit(self, key: tuple[int, int], payload: Reply) -> None:
        now = self.sim.now
        self.committed[key] = now
        self.results[key] = payload.result
        # Fold the latency in and drop the per-tx bookkeeping: commit
        # is the last event that needs either entry.
        self._latencies[key] = now - self._inflight.pop(key)
        self._reply_counts.pop(key, None)

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def latency(self, tx: Transaction) -> Optional[float]:
        """Submit → commit latency, or None if still pending."""
        return self._latencies.get(tx.key())

    def pending(self) -> int:
        return len(self._inflight)

    def committed_latencies(self) -> list[float]:
        """Latencies of all committed transactions (seconds)."""
        return list(self._latencies.values())


class PoissonClient(Client):
    """An open-loop client: submissions arrive as a Poisson process.

    Unlike the closed-loop saturated sources that keep blocks full,
    an open-loop client measures end-to-end latency at a *fixed offered
    load* (``rate_tps`` transactions per second), independent of how
    fast the system commits.
    """

    def __init__(
        self,
        *args,
        rate_tps: float = 100.0,
        op_factory=None,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        if rate_tps <= 0:
            raise ValueError("rate must be positive")
        self.rate_tps = rate_tps
        self.op_factory = op_factory
        self._rng = self.sim.rng.stream(
            f"client{self.pid}.arrivals", purpose="client tx arrivals"
        )
        self._running = False

    def start(self) -> None:
        """Begin submitting; call once after the cluster starts."""
        if self._running:
            return
        self._running = True
        self._schedule_next()

    def stop(self) -> None:
        self._running = False

    def _schedule_next(self) -> None:
        gap = float(self._rng.exponential(1.0 / self.rate_tps))
        self.after(gap, self._fire)

    def _fire(self) -> None:
        if not self._running:
            return
        op = self.op_factory() if self.op_factory is not None else None
        self.submit(op)
        self._schedule_next()


__all__ = [
    "Client",
    "PoissonClient",
    "SubmitTx",
    "SubmitTxBatch",
    "Reply",
    "DEFAULT_MAX_INFLIGHT",
]
