"""Clients: submission, reply collection, end-to-end latency.

A client broadcasts each transaction to every replica (so a faulty
leader cannot censor it silently) and waits for replies sent when the
transaction's block executes.  Two trust modes:

* ``certified`` — a *single* reply suffices because it forwards the
  prepare certificate (OneShot, Sec. VI-C: "a single message is
  therefore enough for a client to trust a reply");
* quorum — ``f+1`` matching replies from distinct replicas (HotStuff /
  Damysus style).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..net import Network
from ..sim import Process, Simulator
from .transaction import Transaction, TxFactory


@dataclass(frozen=True)
class SubmitTx:
    """Client → replica submission."""

    tx: Transaction

    def wire_size(self) -> int:
        return 8 + self.tx.wire_size()


@dataclass(frozen=True)
class Reply:
    """Replica → client execution notification.

    ``certified`` marks replies carrying a forwarded prepare
    certificate (trustable in isolation).
    """

    tx_key: tuple[int, int]
    view: int
    replica: int
    certified: bool = False
    result: Any = None

    def wire_size(self) -> int:
        # tx key + view + flag (+ certificate bytes when certified)
        return 24 + (80 if self.certified else 0)


class Client(Process):
    """A closed-loop or scripted client."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        pid: int,
        replica_pids: list[int],
        f: int,
        payload_bytes: int = 0,
        certified_replies: bool = False,
    ) -> None:
        super().__init__(sim, pid, name=f"client{pid}")
        self.network = network
        self.replica_pids = list(replica_pids)
        self.f = f
        self.certified_replies = certified_replies
        self.factory = TxFactory(client_id=pid, payload_bytes=payload_bytes)
        self._inflight: dict[tuple[int, int], float] = {}
        self._reply_counts: dict[tuple[int, int], set[int]] = {}
        self.committed: dict[tuple[int, int], float] = {}
        self.results: dict[tuple[int, int], Any] = {}
        network.register(self)

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, op: Any = None) -> Transaction:
        """Create and broadcast a transaction; returns it."""
        tx = self.factory.make(now=self.sim.now, op=op)
        self._inflight[tx.key()] = self.sim.now
        msg = SubmitTx(tx)
        for r in self.replica_pids:
            self.network.send(self.pid, r, msg)
        return tx

    # ------------------------------------------------------------------
    # Replies
    # ------------------------------------------------------------------
    def on_message(self, sender: int, payload: Any) -> None:
        if not isinstance(payload, Reply):
            return
        key = payload.tx_key
        if key in self.committed or key not in self._inflight:
            return
        if self.certified_replies and payload.certified:
            self._commit(key, payload)
            return
        voters = self._reply_counts.setdefault(key, set())
        voters.add(payload.replica)
        if len(voters) >= self.f + 1:
            self._commit(key, payload)

    def _commit(self, key: tuple[int, int], payload: Reply) -> None:
        self.committed[key] = self.sim.now
        self.results[key] = payload.result
        self._reply_counts.pop(key, None)

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def latency(self, tx: Transaction) -> Optional[float]:
        """Submit → commit latency, or None if still pending."""
        done = self.committed.get(tx.key())
        if done is None:
            return None
        return done - self._inflight[tx.key()]

    def pending(self) -> int:
        return len(self._inflight) - len(self.committed)

    def committed_latencies(self) -> list[float]:
        """Latencies of all committed transactions (seconds)."""
        return [
            done - self._inflight[key] for key, done in self.committed.items()
        ]


class PoissonClient(Client):
    """An open-loop client: submissions arrive as a Poisson process.

    Unlike the closed-loop saturated sources that keep blocks full,
    an open-loop client measures end-to-end latency at a *fixed offered
    load* (``rate_tps`` transactions per second), independent of how
    fast the system commits.
    """

    def __init__(
        self,
        *args,
        rate_tps: float = 100.0,
        op_factory=None,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        if rate_tps <= 0:
            raise ValueError("rate must be positive")
        self.rate_tps = rate_tps
        self.op_factory = op_factory
        self._rng = self.sim.rng.stream(
            f"client{self.pid}.arrivals", purpose="client tx arrivals"
        )
        self._running = False

    def start(self) -> None:
        """Begin submitting; call once after the cluster starts."""
        if self._running:
            return
        self._running = True
        self._schedule_next()

    def stop(self) -> None:
        self._running = False

    def _schedule_next(self) -> None:
        gap = float(self._rng.exponential(1.0 / self.rate_tps))
        self.after(gap, self._fire)

    def _fire(self) -> None:
        if not self._running:
            return
        op = self.op_factory() if self.op_factory is not None else None
        self.submit(op)
        self._schedule_next()


__all__ = ["Client", "PoissonClient", "SubmitTx", "Reply"]
