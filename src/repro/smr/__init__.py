"""State-machine-replication substrate: transactions, blocks, chains,
mempools, clients, and deterministic execution."""

from .block import GENESIS, GENESIS_HASH, Block, create_leaf, make_genesis
from .chain import BlockStore, ChainError
from .client import Client, PoissonClient, Reply, SubmitTx, SubmitTxBatch
from .execution import ExecutionLog, KVStore, prefix_agreement
from .mempool import BLOCK_TXS, DEFAULT_DEDUP_WINDOW, Mempool, SaturatedSource
from .transaction import TX_OVERHEAD_BYTES, Transaction, TxBatch, TxFactory

__all__ = [
    "GENESIS",
    "GENESIS_HASH",
    "Block",
    "create_leaf",
    "make_genesis",
    "BlockStore",
    "ChainError",
    "Client",
    "PoissonClient",
    "Reply",
    "SubmitTx",
    "SubmitTxBatch",
    "ExecutionLog",
    "KVStore",
    "prefix_agreement",
    "BLOCK_TXS",
    "DEFAULT_DEDUP_WINDOW",
    "Mempool",
    "SaturatedSource",
    "TX_OVERHEAD_BYTES",
    "Transaction",
    "TxBatch",
    "TxFactory",
]
