"""Block storage, ancestry and conflict checking.

Implements the paper's ``≻⁺`` (transitive extension) and *conflict*
relations (Sec. IV): two different blocks conflict when neither extends
the other.  The store also supports the "execute all unexecuted
ancestors" walk used when a prepare certificate arrives (Sec. VI-E).
"""

from __future__ import annotations

from typing import Iterator, Optional

from ..crypto import Digest
from .block import GENESIS, Block


class ChainError(Exception):
    """Raised for inconsistent chain operations."""


class BlockStore:
    """A replica-local set of blocks indexed by hash, rooted at genesis."""

    def __init__(self) -> None:
        self._blocks: dict[Digest, Block] = {GENESIS.hash: GENESIS}
        self._height: dict[Digest, int] = {GENESIS.hash: 0}
        self._children: dict[Digest, list[Digest]] = {}

    # ------------------------------------------------------------------
    # Storage
    # ------------------------------------------------------------------
    def add(self, block: Block) -> None:
        """Insert a block (idempotent)."""
        h = block.hash
        if h in self._blocks:
            return
        self._blocks[h] = block
        self._children.setdefault(block.parent, []).append(h)
        if block.parent in self._height:
            self._settle_heights(h)

    def _settle_heights(self, root: Digest) -> None:
        """Propagate heights to descendants inserted before their parent."""
        frontier = [root]
        while frontier:
            h = frontier.pop()
            blk = self._blocks[h]
            self._height[h] = self._height[blk.parent] + 1
            frontier.extend(
                c for c in self._children.get(h, ()) if c not in self._height
            )

    def get(self, h: Digest) -> Optional[Block]:
        return self._blocks.get(h)

    def __contains__(self, h: Digest) -> bool:
        return h in self._blocks

    def __len__(self) -> int:
        return len(self._blocks)

    def height(self, h: Digest) -> Optional[int]:
        """Distance from genesis, or None if ancestry is incomplete."""
        return self._height.get(h)

    # ------------------------------------------------------------------
    # Ancestry
    # ------------------------------------------------------------------
    def ancestors(self, h: Digest) -> Iterator[Block]:
        """Walk parents of ``h`` (inclusive) back to genesis or a gap."""
        cur = self._blocks.get(h)
        while cur is not None:
            yield cur
            if cur.hash == GENESIS.hash:
                return
            cur = self._blocks.get(cur.parent)

    def extends_plus(self, descendant: Digest, ancestor: Digest) -> bool:
        """The paper's ``b₁ ≻⁺ b₂`` over hashes, walking stored parents."""
        if descendant == ancestor:
            return False
        for blk in self.ancestors(descendant):
            if blk.hash != descendant and blk.hash == ancestor:
                return True
            if blk.parent == ancestor:
                return True
        return False

    def conflicts(self, h1: Digest, h2: Digest) -> bool:
        """Conflict per Sec. IV: distinct and neither ≻⁺ the other.

        Requires full stored ancestry of both blocks; raises otherwise.
        """
        if h1 == h2:
            return False
        for h in (h1, h2):
            if h not in self._blocks:
                raise ChainError(f"unknown block {h.hex()[:8]}")
            last = list(self.ancestors(h))[-1]
            if last.hash != GENESIS.hash:
                raise ChainError(f"incomplete ancestry for {h.hex()[:8]}")
        return not (self.extends_plus(h1, h2) or self.extends_plus(h2, h1))

    def path_from(self, h: Digest, executed: set[Digest]) -> list[Block]:
        """Unexecuted ancestors of ``h`` (inclusive), oldest first.

        This is the execution walk: committing a block commits every
        ancestor not yet executed.  Raises :class:`ChainError` when a
        block along the path is missing (the caller must *pull* it,
        Sec. VI-E).
        """
        path: list[Block] = []
        cur_hash = h
        while cur_hash not in executed:
            blk = self._blocks.get(cur_hash)
            if blk is None:
                raise ChainError(f"missing block {cur_hash.hex()[:8]} on path")
            path.append(blk)
            if blk.hash == GENESIS.hash:
                break
            cur_hash = blk.parent
        path.reverse()
        return path


__all__ = ["BlockStore", "ChainError"]
