"""Client transactions.

Per the paper's evaluation: a transaction carries 2x4 B of metadata
(client id and transaction id) plus the amortized 32 B previous-block
hash, i.e. 40 B of overhead on top of its payload.  Experiments use
payloads of 0 B (protocol overhead) and 256 B (trend with block size).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

import numpy as np

#: Fixed per-transaction overhead in bytes (paper Sec. VIII).
TX_OVERHEAD_BYTES = 40


@dataclass(frozen=True, slots=True)
class Transaction:
    """An opaque client command with size accounting.

    ``op`` is an optional application-level operation (used by the
    replicated key-value store example); the consensus layer never
    inspects it.
    """

    client_id: int
    tx_id: int
    payload_bytes: int = 0
    op: Any = None
    submit_time: float = 0.0

    def wire_size(self) -> int:
        return TX_OVERHEAD_BYTES + self.payload_bytes

    def key(self) -> tuple[int, int]:
        """Globally unique identity of this transaction."""
        return (self.client_id, self.tx_id)

    def encoding(self) -> tuple:
        """Fields contributing to the enclosing block's hash."""
        return ("tx", self.client_id, self.tx_id, self.payload_bytes)


class TxFactory:
    """Deterministic transaction generator for a synthetic client."""

    def __init__(self, client_id: int, payload_bytes: int = 0) -> None:
        self.client_id = client_id
        self.payload_bytes = payload_bytes
        self._next_id = 0

    def make(self, now: float = 0.0, op: Any = None) -> Transaction:
        tx_id = self._next_id
        self._next_id = tx_id + 1
        return Transaction(
            client_id=self.client_id,
            tx_id=tx_id,
            payload_bytes=self.payload_bytes,
            op=op,
            submit_time=now,
        )

    def batch(self, n: int, now: float = 0.0) -> tuple[Transaction, ...]:
        """``n`` fresh transactions; same ids as ``n`` :meth:`make` calls.

        Constructs via ``__new__`` + ``object.__setattr__`` — the same
        writes the frozen dataclass ``__init__`` performs, minus its
        call overhead, which roughly halves the cost of minting the
        saturated workload's 400 transactions per block (one of the
        hottest paths in the e2e profile).  The instances are
        indistinguishable from :meth:`make`'s.
        """
        start = self._next_id
        self._next_id = start + n
        cid = self.client_id
        pb = self.payload_bytes
        new = object.__new__
        sets = object.__setattr__
        out = []
        append = out.append
        for tx_id in range(start, start + n):
            tx = new(Transaction)
            sets(tx, "client_id", cid)
            sets(tx, "tx_id", tx_id)
            sets(tx, "payload_bytes", pb)
            sets(tx, "op", None)
            sets(tx, "submit_time", now)
            append(tx)
        return tuple(out)


class TxBatch:
    """A columnar slab of transactions: parallel numpy arrays.

    The million-client workload engine mints arrivals in slabs — one
    simulator event carries hundreds of transactions as four arrays
    instead of hundreds of :class:`Transaction` objects.  A slab is
    immutable once built (the arrays are marked read-only), so it can
    ride inside a frozen message and be shared by every replica's
    mempool.  Per-transaction Python objects are materialized only at
    block assembly (:meth:`mint`), and only for the rows that actually
    enter a block.

    All rows of one slab share ``payload_bytes`` (slabs are minted per
    region, and the payload mix is a per-region knob).
    """

    __slots__ = ("client_ids", "tx_ids", "payload_bytes", "submit_times", "_keys")

    def __init__(
        self,
        client_ids: np.ndarray,
        tx_ids: np.ndarray,
        submit_times: np.ndarray,
        payload_bytes: int = 0,
    ) -> None:
        if not (len(client_ids) == len(tx_ids) == len(submit_times)):
            raise ValueError("TxBatch columns must have equal length")
        self.client_ids = np.ascontiguousarray(client_ids, dtype=np.int64)
        self.tx_ids = np.ascontiguousarray(tx_ids, dtype=np.int64)
        self.submit_times = np.ascontiguousarray(submit_times, dtype=np.float64)
        self.payload_bytes = int(payload_bytes)
        for arr in (self.client_ids, self.tx_ids, self.submit_times):
            arr.setflags(write=False)
        self._keys: Optional[list[tuple[int, int]]] = None

    def __len__(self) -> int:
        return len(self.tx_ids)

    def wire_size(self) -> int:
        """Bytes on the wire: per-tx overhead plus shared payloads."""
        return 8 + len(self) * (TX_OVERHEAD_BYTES + self.payload_bytes)

    def keys(self) -> list[tuple[int, int]]:
        """``(client_id, tx_id)`` per row, cached on the (frozen) slab.

        Built once through C-level ``tolist``/``zip`` — the mempool's
        batched dedup probes these against its FIFO window, and block
        assembly skips committed rows by the same list.
        """
        if self._keys is None:
            self._keys = list(
                zip(self.client_ids.tolist(), self.tx_ids.tolist())
            )
        return self._keys

    def select(self, indices: Sequence[int]) -> "TxBatch":
        """A new slab holding only ``indices`` rows (dedup compaction)."""
        idx = np.asarray(indices, dtype=np.int64)
        return TxBatch(
            self.client_ids[idx],
            self.tx_ids[idx],
            self.submit_times[idx],
            self.payload_bytes,
        )

    def mint(self, indices: Sequence[int]) -> list[Transaction]:
        """Materialize :class:`Transaction` objects for ``indices`` rows.

        Uses the same ``__new__`` + ``object.__setattr__`` fast path as
        :meth:`TxFactory.batch`; called only at block assembly for the
        rows a block actually drains.
        """
        keys = self.keys()
        times = self.submit_times
        pb = self.payload_bytes
        new = object.__new__
        sets = object.__setattr__
        out: list[Transaction] = []
        append = out.append
        for i in indices:
            cid, tid = keys[i]
            tx = new(Transaction)
            sets(tx, "client_id", cid)
            sets(tx, "tx_id", tid)
            sets(tx, "payload_bytes", pb)
            sets(tx, "op", None)
            sets(tx, "submit_time", float(times[i]))
            append(tx)
        return out

    @classmethod
    def from_transactions(cls, txs: Sequence[Transaction]) -> "TxBatch":
        """Columnar view of scalar transactions (tests, adapters).

        Payload sizes must agree across ``txs`` (slabs are homogeneous).
        """
        if txs and len({t.payload_bytes for t in txs}) > 1:
            raise ValueError("TxBatch rows share one payload size")
        return cls(
            np.array([t.client_id for t in txs], dtype=np.int64),
            np.array([t.tx_id for t in txs], dtype=np.int64),
            np.array([t.submit_time for t in txs], dtype=np.float64),
            txs[0].payload_bytes if txs else 0,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<TxBatch {len(self)}tx {self.payload_bytes}B>"


__all__ = ["Transaction", "TxBatch", "TxFactory", "TX_OVERHEAD_BYTES"]
