"""Client transactions.

Per the paper's evaluation: a transaction carries 2x4 B of metadata
(client id and transaction id) plus the amortized 32 B previous-block
hash, i.e. 40 B of overhead on top of its payload.  Experiments use
payloads of 0 B (protocol overhead) and 256 B (trend with block size).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

#: Fixed per-transaction overhead in bytes (paper Sec. VIII).
TX_OVERHEAD_BYTES = 40


@dataclass(frozen=True, slots=True)
class Transaction:
    """An opaque client command with size accounting.

    ``op`` is an optional application-level operation (used by the
    replicated key-value store example); the consensus layer never
    inspects it.
    """

    client_id: int
    tx_id: int
    payload_bytes: int = 0
    op: Any = None
    submit_time: float = 0.0

    def wire_size(self) -> int:
        return TX_OVERHEAD_BYTES + self.payload_bytes

    def key(self) -> tuple[int, int]:
        """Globally unique identity of this transaction."""
        return (self.client_id, self.tx_id)

    def encoding(self) -> tuple:
        """Fields contributing to the enclosing block's hash."""
        return ("tx", self.client_id, self.tx_id, self.payload_bytes)


class TxFactory:
    """Deterministic transaction generator for a synthetic client."""

    def __init__(self, client_id: int, payload_bytes: int = 0) -> None:
        self.client_id = client_id
        self.payload_bytes = payload_bytes
        self._next_id = 0

    def make(self, now: float = 0.0, op: Any = None) -> Transaction:
        tx_id = self._next_id
        self._next_id = tx_id + 1
        return Transaction(
            client_id=self.client_id,
            tx_id=tx_id,
            payload_bytes=self.payload_bytes,
            op=op,
            submit_time=now,
        )

    def batch(self, n: int, now: float = 0.0) -> tuple[Transaction, ...]:
        """``n`` fresh transactions; same ids as ``n`` :meth:`make` calls.

        Constructs via ``__new__`` + ``object.__setattr__`` — the same
        writes the frozen dataclass ``__init__`` performs, minus its
        call overhead, which roughly halves the cost of minting the
        saturated workload's 400 transactions per block (one of the
        hottest paths in the e2e profile).  The instances are
        indistinguishable from :meth:`make`'s.
        """
        start = self._next_id
        self._next_id = start + n
        cid = self.client_id
        pb = self.payload_bytes
        new = object.__new__
        sets = object.__setattr__
        out = []
        append = out.append
        for tx_id in range(start, start + n):
            tx = new(Transaction)
            sets(tx, "client_id", cid)
            sets(tx, "tx_id", tx_id)
            sets(tx, "payload_bytes", pb)
            sets(tx, "op", None)
            sets(tx, "submit_time", now)
            append(tx)
        return tuple(out)


__all__ = ["Transaction", "TxFactory", "TX_OVERHEAD_BYTES"]
