"""Blocks and the extension relation.

A block ``b`` contains client transactions and the hash of the block it
builds on (Sec. IV).  ``b ≻ h`` ("b directly extends the block with
hash h") is checked via the stored parent hash; ``≻⁺`` is its
transitive closure (implemented in :mod:`repro.smr.chain`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Optional

from ..crypto import Digest, digest_of, digest_of_boolfree
from .transaction import TX_OVERHEAD_BYTES, Transaction


@dataclass(frozen=True)
class Block:
    """An immutable block proposed at ``view`` extending ``parent``."""

    parent: Digest
    view: int
    txs: tuple[Transaction, ...] = ()
    proposer: int = -1

    @cached_property
    def hash(self) -> Digest:
        # The field tuple is structurally bool-free (digest, ints,
        # strings, int tuples), so the bool-disambiguation walk of
        # plain digest_of — ~2000 nested values for a 400-tx block —
        # can be skipped while keeping its process-wide memo (a block
        # re-built with identical fields hashes its tx tuple once).
        return digest_of_boolfree(
            "block",
            self.parent,
            self.view,
            self.proposer,
            tuple([t.encoding() for t in self.txs]),
        )

    def extends(self, h: Digest) -> bool:
        """The paper's ``b ≻ h`` relation."""
        return self.parent == h

    @cached_property
    def _tx_keys(self) -> list[tuple[int, int]]:
        return [(t.client_id, t.tx_id) for t in self.txs]

    def tx_keys(self) -> list[tuple[int, int]]:
        """Keys of this block's transactions, in block order.

        Cached on the (immutable) block so the n replicas committing
        it share one key list instead of each rebuilding 400 tuples
        for their mempool sweep.  Callers must not mutate the list.
        """
        return self._tx_keys

    @cached_property
    def _wire_size(self) -> int:
        # Fixed per-tx overhead folded out of the loop; only payload
        # sizes need summing.
        return (
            8
            + TX_OVERHEAD_BYTES * len(self.txs)
            + sum(t.payload_bytes for t in self.txs)
        )

    def wire_size(self) -> int:
        """Bytes on the wire: transactions carry their own 40 B overhead
        (which already amortizes the 32 B parent hash, per Sec. VIII).

        Cached: a block is immutable, and broadcasting it sizes the
        same transaction set once instead of once per destination.
        """
        return self._wire_size

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Block v={self.view} p={self.proposer} "
            f"{len(self.txs)}tx {self.hash.hex()[:8]}>"
        )


def make_genesis() -> Block:
    """The unique genesis block (view -1, no parent)."""
    return Block(parent=digest_of("pre-genesis"), view=-1, txs=(), proposer=-1)


#: Shared immutable genesis instance and its hash.
GENESIS = make_genesis()
GENESIS_HASH: Digest = GENESIS.hash


def create_leaf(
    parent_hash: Digest,
    view: int,
    txs: tuple[Transaction, ...],
    proposer: int,
) -> Block:
    """The paper's ``createLeaf``: a new block extending ``parent_hash``."""
    return Block(parent=parent_hash, view=view, txs=txs, proposer=proposer)


__all__ = ["Block", "GENESIS", "GENESIS_HASH", "create_leaf", "make_genesis"]
