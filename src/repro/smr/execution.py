"""Deterministic execution: the committed log and an example app state.

Each replica appends executed blocks to an :class:`ExecutionLog` (the
total order agreed by consensus) and applies their transactions to a
deterministic state machine.  Tests compare logs and state digests
across replicas to check agreement.
"""

from __future__ import annotations

from typing import Any, Optional

from ..crypto import Digest, digest_of
from .block import GENESIS, Block
from .transaction import Transaction


class KVStore:
    """A deterministic replicated key-value state machine.

    Supported operations (``tx.op``):

    * ``("set", key, value)``
    * ``("del", key)``
    * ``("add", key, delta)`` — integer accumulate, missing keys are 0
    """

    def __init__(self) -> None:
        self._data: dict[str, Any] = {}
        self.ops_applied = 0

    def apply(self, op: Any) -> None:
        if op is None:
            return
        kind = op[0]
        if kind == "set":
            _, key, value = op
            self._data[key] = value
        elif kind == "del":
            _, key = op
            self._data.pop(key, None)
        elif kind == "add":
            _, key, delta = op
            self._data[key] = int(self._data.get(key, 0)) + int(delta)
        else:
            raise ValueError(f"unknown operation {kind!r}")
        self.ops_applied += 1

    def get(self, key: str, default: Any = None) -> Any:
        return self._data.get(key, default)

    def __len__(self) -> int:
        return len(self._data)

    def state_digest(self) -> Digest:
        """Order-independent digest of the full state (agreement checks)."""
        items = tuple(sorted((k, repr(v)) for k, v in self._data.items()))
        return digest_of("kv-state", items)


class ExecutionLog:
    """The per-replica committed block sequence plus app state."""

    def __init__(self, state: Optional[KVStore] = None) -> None:
        self.blocks: list[Block] = []
        # Genesis is executed by definition (empty, carries no txs).
        self.executed: set[Digest] = {GENESIS.hash}
        self.state = state if state is not None else KVStore()
        self.txs_executed = 0
        self._exec_times: list[float] = []

    def __len__(self) -> int:
        return len(self.blocks)

    def is_executed(self, h: Digest) -> bool:
        return h in self.executed

    def execute(self, block: Block, now: float) -> None:
        """Append ``block`` and apply its transactions.

        Blocks must arrive in chain order (the caller walks unexecuted
        ancestors first); re-execution is rejected.
        """
        if block.hash in self.executed:
            raise ValueError(f"block {block.hash.hex()[:8]} already executed")
        if self.blocks and block.parent != self.blocks[-1].hash:
            raise ValueError(
                "out-of-order execution: block does not extend the log head"
            )
        self.blocks.append(block)
        self.executed.add(block.hash)
        self._exec_times.append(now)
        # ``op is None`` is the documented no-op (synthetic saturated
        # workload); skipping the call entirely saves 400 dispatches
        # per block without changing any state machine's behaviour.
        apply = self.state.apply
        for tx in block.txs:
            if tx.op is not None:
                apply(tx.op)
        self.txs_executed += len(block.txs)

    def head_hash(self) -> Optional[Digest]:
        return self.blocks[-1].hash if self.blocks else None

    def execution_time(self, index: int) -> float:
        return self._exec_times[index]

    def log_digest(self) -> Digest:
        """Digest of the committed order (prefix-agreement checks)."""
        return digest_of("log", tuple(b.hash for b in self.blocks))


def prefix_agreement(logs: list[ExecutionLog]) -> bool:
    """True iff every pair of logs agrees on their common prefix."""
    for i in range(len(logs)):
        for j in range(i + 1, len(logs)):
            a, b = logs[i].blocks, logs[j].blocks
            for x, y in zip(a, b):
                if x.hash != y.hash:
                    return False
    return True


__all__ = ["KVStore", "ExecutionLog", "prefix_agreement"]
