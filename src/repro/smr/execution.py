"""Deterministic execution: the committed log and an example app state.

Each replica appends executed blocks to an :class:`ExecutionLog` (the
total order agreed by consensus) and applies their transactions to a
deterministic state machine.  Tests compare logs and state digests
across replicas to check agreement.
"""

from __future__ import annotations

from typing import Any, Optional

from ..crypto import Digest, digest_of
from .block import GENESIS, Block
from .transaction import Transaction


class KVStore:
    """A deterministic replicated key-value state machine.

    Supported operations (``tx.op``):

    * ``("set", key, value)``
    * ``("del", key)``
    * ``("add", key, delta)`` — integer accumulate, missing keys are 0

    Cross-shard 2PC markers (:mod:`repro.shard`) — a multi-shard
    transaction's local effects are *staged* by a prepare and only
    reach the data on a commit decision, so the per-shard chain records
    the whole 2PC history and the atomicity oracle can compare shards:

    * ``("xprepare", xid, ops)`` — stage ``ops`` (a tuple of plain
      set/del/add ops) under transaction id ``xid``
    * ``("xcommit", xid)`` — apply the staged ops
    * ``("xabort", xid)`` — discard them

    Presumed abort: an ``xabort`` may serialize *before* the prepare on
    a shard (the coordinator's deadline fires while the prepare is
    still in that shard's pipeline), so an abort never requires a prior
    prepare, and a prepare that lands after the abort records the xid
    but stages nothing.  A commit, by contrast, is only ever sent after
    the coordinator observed every prepare committed, so an unstaged
    ``xcommit`` is a real protocol violation and raises.
    """

    def __init__(self) -> None:
        self._data: dict[str, Any] = {}
        self.ops_applied = 0
        #: xid -> staged ops awaiting a 2PC decision.
        self.x_staged: dict[int, tuple] = {}
        #: Full 2PC history (never pruned; the oracle reads these).
        self.x_prepared: set[int] = set()
        self.x_committed: set[int] = set()
        self.x_aborted: set[int] = set()

    def apply(self, op: Any) -> None:
        if op is None:
            return
        kind = op[0]
        if kind == "set":
            _, key, value = op
            self._data[key] = value
        elif kind == "del":
            _, key = op
            self._data.pop(key, None)
        elif kind == "add":
            _, key, delta = op
            self._data[key] = int(self._data.get(key, 0)) + int(delta)
        elif kind == "xprepare":
            _, xid, ops = op
            if xid in self.x_prepared:
                raise ValueError(f"2PC tx {xid} prepared twice")
            self.x_prepared.add(xid)
            if xid not in self.x_aborted:  # late prepare: presumed abort
                self.x_staged[xid] = tuple(ops)
        elif kind == "xcommit":
            _, xid = op
            self._decide(xid)
            if xid not in self.x_staged:
                raise ValueError(f"2PC commit for unstaged tx {xid}")
            self.x_committed.add(xid)
            for staged in self.x_staged.pop(xid):
                self.apply(tuple(staged))
                self.ops_applied -= 1  # count the decision, not each leg
        elif kind == "xabort":
            _, xid = op
            self._decide(xid)
            self.x_aborted.add(xid)
            self.x_staged.pop(xid, None)  # may precede the prepare
        else:
            raise ValueError(f"unknown operation {kind!r}")
        self.ops_applied += 1

    def _decide(self, xid: int) -> None:
        """A 2PC decision is unique per transaction id."""
        if xid in self.x_committed or xid in self.x_aborted:
            raise ValueError(f"2PC tx {xid} decided twice")

    def get(self, key: str, default: Any = None) -> Any:
        return self._data.get(key, default)

    def __len__(self) -> int:
        return len(self._data)

    def state_digest(self) -> Digest:
        """Order-independent digest of the full state (agreement checks)."""
        items = tuple(sorted((k, repr(v)) for k, v in self._data.items()))
        return digest_of("kv-state", items)


class ExecutionLog:
    """The per-replica committed block sequence plus app state."""

    def __init__(self, state: Optional[KVStore] = None) -> None:
        self.blocks: list[Block] = []
        # Genesis is executed by definition (empty, carries no txs).
        self.executed: set[Digest] = {GENESIS.hash}
        self.state = state if state is not None else KVStore()
        self.txs_executed = 0
        self._exec_times: list[float] = []
        #: Keys of op-bearing transactions already applied.  Pipelined
        #: protocols can legitimately order one transaction into two
        #: committed blocks (the view-(v+1) leader proposes before view
        #: v's commit prunes its mempool), so commit-time dedup lives
        #: here, keyed on ``(client_id, tx_id)``.  Only transactions
        #: with a real ``op`` are tracked — the synthetic workload's
        #: rows carry ``op is None`` and are state-machine no-ops.
        self._applied_keys: set[tuple[int, int]] = set()

    def __len__(self) -> int:
        return len(self.blocks)

    def is_executed(self, h: Digest) -> bool:
        return h in self.executed

    def execute(self, block: Block, now: float) -> None:
        """Append ``block`` and apply its transactions.

        Blocks must arrive in chain order (the caller walks unexecuted
        ancestors first); re-execution is rejected.
        """
        if block.hash in self.executed:
            raise ValueError(f"block {block.hash.hex()[:8]} already executed")
        if self.blocks and block.parent != self.blocks[-1].hash:
            raise ValueError(
                "out-of-order execution: block does not extend the log head"
            )
        self.blocks.append(block)
        self.executed.add(block.hash)
        self._exec_times.append(now)
        # ``op is None`` is the documented no-op (synthetic saturated
        # workload); skipping the call entirely saves 400 dispatches
        # per block without changing any state machine's behaviour.
        apply = self.state.apply
        applied = self._applied_keys
        for tx in block.txs:
            if tx.op is not None:
                key = (tx.client_id, tx.tx_id)
                if key in applied:
                    continue  # re-ordered by a pipelined leader
                applied.add(key)
                apply(tx.op)
        self.txs_executed += len(block.txs)

    def head_hash(self) -> Optional[Digest]:
        return self.blocks[-1].hash if self.blocks else None

    def execution_time(self, index: int) -> float:
        return self._exec_times[index]

    def log_digest(self) -> Digest:
        """Digest of the committed order (prefix-agreement checks)."""
        return digest_of("log", tuple(b.hash for b in self.blocks))


def prefix_agreement(logs: list[ExecutionLog]) -> bool:
    """True iff every pair of logs agrees on their common prefix."""
    for i in range(len(logs)):
        for j in range(i + 1, len(logs)):
            a, b = logs[i].blocks, logs[j].blocks
            for x, y in zip(a, b):
                if x.hash != y.hash:
                    return False
    return True


__all__ = ["KVStore", "ExecutionLog", "prefix_agreement"]
