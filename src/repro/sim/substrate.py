"""The swappable simulation-kernel substrate.

The protocol layer is restricted (machine-checked by the
``substrate-boundary`` lint pass) to a *narrow* surface of the
simulation kernel: scheduling, the clock, named RNG streams, resource
occupancy and event cancellation.  This module makes that surface an
explicit, swappable contract:

* :class:`EventHandle` / :class:`SubstrateQueue` — structural types for
  the two objects the boundary exposes (a scheduled event you can
  cancel, and the deterministic queue the simulator drives);
* a **kernel registry** mapping a kernel name to an event-queue
  factory.  ``Simulator(kernel="columnar")`` swaps the entire event
  machinery without the protocol layer noticing — both kernels are
  required (and tested) to produce bit-identical run fingerprints.

Built-in kernels
----------------

``scalar``
    The tuple-heap :class:`~repro.sim.event.EventQueue` — C ``heapq``
    sifts over plain ``(time, priority, seq, event)`` tuples.  Default.
``columnar``
    :class:`~repro.sim.columnar.ColumnarEventQueue` — structured numpy
    time/priority/seq columns with batched lexsort merges for bulk
    inserts and a small staging heap for scalar pushes.

Adding a backend is three steps (see docs/invariants.md): implement
the :class:`SubstrateQueue` surface, prove bit-identity against the
golden fingerprints under both kernels, and register a factory here.
"""

from __future__ import annotations

from typing import Callable, Optional, Protocol, Sequence, runtime_checkable


@runtime_checkable
class EventHandle(Protocol):
    """What the substrate hands back for a scheduled callback.

    The protocol layer may read the firing ``time``, test
    ``cancelled``, and ``cancel()`` — exactly the
    :class:`~repro.sim.event.Event` subset in the SUBSTRATE_API
    manifest.
    """

    time: float
    cancelled: bool

    def cancel(self) -> None: ...


@runtime_checkable
class SubstrateQueue(Protocol):
    """Deterministic event-queue contract every kernel implements.

    Ordering is total and identical across kernels: events pop in
    ``(time, priority, seq)`` order, where ``seq`` is the insertion
    counter — so for a fixed seed, every kernel replays the exact same
    schedule and the golden run fingerprints are kernel-independent.
    """

    def push(
        self,
        time: float,
        callback: Callable[..., None],
        args: tuple = (),
        priority: int = 0,
        label: str = "",
    ) -> EventHandle: ...

    def push_many(
        self,
        times: Sequence[float],
        callback: Callable[..., None],
        argss: Sequence[tuple],
        priority: int = 0,
        label: str = "",
    ) -> list: ...

    def pop(self) -> Optional[EventHandle]: ...

    def pop_next(self, until: Optional[float] = None) -> Optional[EventHandle]: ...

    def peek_time(self) -> Optional[float]: ...

    def live_count(self) -> int: ...

    def clear(self) -> None: ...

    def __len__(self) -> int: ...


#: Kernel used when no flag/config selects one.  The scalar tuple heap
#: stays the default until columnar parity is proven on every new
#: scenario (the kernel-parity test suite).
DEFAULT_KERNEL = "scalar"

_KERNELS: dict[str, Callable[[], "SubstrateQueue"]] = {}


def register_kernel(name: str, factory: Callable[[], "SubstrateQueue"]) -> None:
    """Register (or replace) a kernel's event-queue factory."""
    if not name:
        raise ValueError("kernel name must be non-empty")
    _KERNELS[name] = factory


def available_kernels() -> tuple[str, ...]:
    """Registered kernel names, sorted (CLI choices, error messages)."""
    return tuple(sorted(_KERNELS))


def create_queue(kernel: str = DEFAULT_KERNEL) -> "SubstrateQueue":
    """Instantiate the event queue for ``kernel``.

    Raises ``ValueError`` (not ``KeyError``) on unknown names so config
    typos surface as clean CLI errors.
    """
    try:
        factory = _KERNELS[kernel]
    except KeyError:
        raise ValueError(
            f"unknown simulation kernel {kernel!r}; "
            f"available: {', '.join(available_kernels())}"
        ) from None
    return factory()


def _scalar_factory() -> "SubstrateQueue":
    from .event import EventQueue

    return EventQueue()


def _columnar_factory() -> "SubstrateQueue":
    # Imported lazily: the columnar kernel pulls in numpy, which the
    # scalar default should not pay for at import time.
    from .columnar import ColumnarEventQueue

    return ColumnarEventQueue()


register_kernel("scalar", _scalar_factory)
register_kernel("columnar", _columnar_factory)


__all__ = [
    "DEFAULT_KERNEL",
    "EventHandle",
    "SubstrateQueue",
    "available_kernels",
    "create_queue",
    "register_kernel",
]
