"""Array-backed ("columnar") event queue — the second substrate kernel.

The scalar kernel sifts one ``(time, priority, seq, event)`` tuple at a
time through a C heap.  This kernel instead keeps the bulk of the
pending schedule in **structured numpy columns** — parallel ``time``
(f8), ``priority`` (i8) and ``seq`` (i8) arrays sorted ascending, with
the event payloads (callback, args, label) carried in an aligned
Python list — and absorbs bulk inserts with one vectorized
``lexsort`` merge instead of ``k`` individual sifts.  That is the
``push_many`` shape the network fast path emits for every multicast
fan-out.

Single pushes land in a small *staging heap* (plain ``heapq`` tuples,
exactly the scalar kernel's representation); ``pop`` takes the smaller
of the run head and the staging head.  Because every event carries a
globally unique ``(time, priority, seq)`` key and both structures pop
in that key order, the interleaved pop sequence is **identical to one
big heap** — and therefore identical to the scalar kernel.  The
kernel-parity golden tests pin that equivalence for all three
protocols.

Cancellation follows the scalar kernel's soft-delete contract: a
cancelled event stays in its column/heap slot and is skipped (and
detached) when it surfaces; merges drop cancelled events for free.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Callable, Optional, Sequence

import numpy as np

from .event import Event

#: Batches at least this large take the vectorized merge; smaller ones
#: go through the staging heap (a lexsort re-merge would cost more than
#: it saves).  Pure strategy choice — pop order is unaffected.
MERGE_THRESHOLD = 16


def _empty_f8() -> np.ndarray:
    return np.empty(0, dtype=np.float64)


def _empty_i8() -> np.ndarray:
    return np.empty(0, dtype=np.int64)


class ColumnarEventQueue:
    """Sorted columnar run + staging heap, popping in global key order."""

    __slots__ = (
        "_run_time",
        "_run_prio",
        "_run_seq",
        "_run_keys",
        "_run_events",
        "_head",
        "_stage",
        "_next_seq",
        "_live",
    )

    def __init__(self) -> None:
        # The columnar store: [head:] is sorted by (time, priority, seq).
        self._run_time = _empty_f8()
        self._run_prio = _empty_i8()
        self._run_seq = _empty_i8()
        #: Decoded (time, priority, seq) tuples aligned with the run —
        #: the pop path compares plain Python tuples, not numpy scalars.
        self._run_keys: list[tuple[float, int, int]] = []
        self._run_events: list[Event] = []
        self._head = 0
        #: Staging heap of (time, priority, seq, Event) for single pushes.
        self._stage: list[tuple[float, int, int, Event]] = []
        self._next_seq = 0
        self._live = 0

    def __len__(self) -> int:
        """Events still queued, *including* cancelled ones."""
        return (len(self._run_events) - self._head) + len(self._stage)

    def live_count(self) -> int:
        """Events that will still fire (cancelled ones excluded)."""
        return self._live

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def push(
        self,
        time: float,
        callback: Callable[..., None],
        args: tuple = (),
        priority: int = 0,
        label: str = "",
    ) -> Event:
        seq = self._next_seq
        self._next_seq = seq + 1
        ev = Event(time, priority, seq, callback, args, label)
        ev._queue = self
        heappush(self._stage, (time, priority, seq, ev))
        self._live += 1
        return ev

    def push_many(
        self,
        times: Sequence[float],
        callback: Callable[..., None],
        argss: Sequence[tuple],
        priority: int = 0,
        label: str = "",
    ) -> list[Event]:
        """Bulk insert with scalar-identical sequence numbering.

        Large batches are merged into the columnar run with one
        ``np.lexsort`` over the concatenated columns — the array
        analogue of extend-and-heapify — which also compacts away any
        cancelled events and drains the staging heap, so subsequent
        pops read a single sorted run.
        """
        k = min(len(times), len(argss))
        if k < MERGE_THRESHOLD:
            events = []
            seq = self._next_seq
            stage = self._stage
            for time, args in zip(times, argss):
                ev = Event(time, priority, seq, callback, args, label)
                ev._queue = self
                events.append(ev)
                heappush(stage, (time, priority, seq, ev))
                seq += 1
            self._next_seq = seq
            self._live += len(events)
            return events

        seq0 = self._next_seq
        self._next_seq = seq0 + k
        events = [
            Event(t, priority, seq0 + i, callback, argss[i], label)
            for i, t in enumerate(times[:k])
        ]
        for ev in events:
            ev._queue = self
        self._live += k
        b_time = np.fromiter((t for t in times[:k]), dtype=np.float64, count=k)
        b_prio = np.full(k, priority, dtype=np.int64)
        b_seq = np.arange(seq0, seq0 + k, dtype=np.int64)
        self._merge(b_time, b_prio, b_seq, events)
        return events

    def _merge(
        self,
        b_time: np.ndarray,
        b_prio: np.ndarray,
        b_seq: np.ndarray,
        b_events: list[Event],
    ) -> None:
        """Rebuild the sorted run from (live run remainder + staged
        events + new batch) with one vectorized lexsort."""
        head = self._head
        old_events = self._run_events[head:]
        o_time = self._run_time[head:]
        o_prio = self._run_prio[head:]
        o_seq = self._run_seq[head:]
        kept = [i for i, ev in enumerate(old_events) if not ev.cancelled]
        if len(kept) != len(old_events):
            for ev in old_events:
                if ev.cancelled:
                    ev._queue = None
            idx = np.asarray(kept, dtype=np.intp)
            o_time, o_prio, o_seq = o_time[idx], o_prio[idx], o_seq[idx]
            old_events = [old_events[i] for i in kept]

        stage_events: list[Event] = []
        parts_t = [o_time, b_time]
        parts_p = [o_prio, b_prio]
        parts_s = [o_seq, b_seq]
        stage = self._stage
        if stage:
            live = [entry for entry in stage if not entry[3].cancelled]
            for entry in stage:
                if entry[3].cancelled:
                    entry[3]._queue = None
            stage.clear()
            if live:
                stage_events = [entry[3] for entry in live]
                parts_t.insert(1, np.fromiter(
                    (entry[0] for entry in live), np.float64, len(live)
                ))
                parts_p.insert(1, np.fromiter(
                    (entry[1] for entry in live), np.int64, len(live)
                ))
                parts_s.insert(1, np.fromiter(
                    (entry[2] for entry in live), np.int64, len(live)
                ))

        new_t = np.concatenate(parts_t)
        new_p = np.concatenate(parts_p)
        new_s = np.concatenate(parts_s)
        # lexsort: last key is primary -> (time, priority, seq); seq is
        # globally unique, so the order is total and deterministic.
        order = np.lexsort((new_s, new_p, new_t))
        self._run_time = new_t[order]
        self._run_prio = new_p[order]
        self._run_seq = new_s[order]
        combined = old_events + stage_events + b_events
        self._run_events = [combined[i] for i in order.tolist()]
        self._run_keys = list(
            zip(
                self._run_time.tolist(),
                self._run_prio.tolist(),
                self._run_seq.tolist(),
            )
        )
        self._head = 0

    # ------------------------------------------------------------------
    # Removal
    # ------------------------------------------------------------------
    def _reset_run_if_drained(self) -> None:
        if self._head >= len(self._run_events):
            self._run_events = []
            self._run_keys = []
            self._run_time = _empty_f8()
            self._run_prio = _empty_i8()
            self._run_seq = _empty_i8()
            self._head = 0

    def _skim(self) -> Optional[tuple[float, int, int]]:
        """Discard (and detach) cancelled heads from both structures,
        then return the key of the next *live* entry, or ``None``."""
        stage = self._stage
        while True:
            head = self._head
            if head < len(self._run_events):
                rk = self._run_keys[head]
                if stage and stage[0] < rk:
                    entry = stage[0]
                    ev = entry[3]
                    if ev.cancelled:
                        heappop(stage)
                        ev._queue = None
                        continue
                    return (entry[0], entry[1], entry[2])
                ev = self._run_events[head]
                if ev.cancelled:
                    self._head = head + 1
                    ev._queue = None
                    self._reset_run_if_drained()
                    continue
                return rk
            if stage:
                entry = stage[0]
                ev = entry[3]
                if ev.cancelled:
                    heappop(stage)
                    ev._queue = None
                    continue
                return (entry[0], entry[1], entry[2])
            return None

    def _take_live_head(self) -> Event:
        """Remove the live head (callers must have :meth:`_skim`-ed)."""
        stage = self._stage
        head = self._head
        if head < len(self._run_events):
            if stage and stage[0] < self._run_keys[head]:
                return heappop(stage)[3]
            ev = self._run_events[head]
            self._head = head + 1
            self._reset_run_if_drained()
            return ev
        return heappop(stage)[3]

    def pop(self) -> Optional[Event]:
        """Pop the next non-cancelled event, or ``None`` if drained."""
        if self._skim() is None:
            return None
        ev = self._take_live_head()
        ev._queue = None
        self._live -= 1
        return ev

    def pop_next(self, until: Optional[float] = None) -> Optional[Event]:
        """Pop the next live event firing at or before ``until``
        (``None`` = no bound).  Returns ``None`` when drained or when
        the next live event lies beyond the bound — disambiguate with
        :meth:`live_count`."""
        key = self._skim()
        if key is None or (until is not None and key[0] > until):
            return None
        ev = self._take_live_head()
        ev._queue = None
        self._live -= 1
        return ev

    def peek_time(self) -> Optional[float]:
        """Time of the next live event without removing it."""
        key = self._skim()
        return None if key is None else key[0]

    def clear(self) -> None:
        for ev in self._run_events[self._head:]:
            ev._queue = None
        for entry in self._stage:
            entry[3]._queue = None
        self._run_events = []
        self._run_keys = []
        self._run_time = _empty_f8()
        self._run_prio = _empty_i8()
        self._run_seq = _empty_i8()
        self._head = 0
        self._stage = []
        self._live = 0


__all__ = ["ColumnarEventQueue", "MERGE_THRESHOLD"]
