"""Process base class: an addressable actor inside the simulation.

Replicas and clients subclass :class:`Process`.  A process has an
integer id, receives messages via :meth:`on_message`, and can arm
cancellable timers.  All state transitions run synchronously inside
event callbacks — there is no concurrency inside a process, mirroring
a single-threaded event-driven server (the Salticidae model used by
the paper's C++ implementation).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from .event import Event
from .simulator import Simulator


class Timer:
    """A cancellable, re-armable one-shot timer."""

    def __init__(self, sim: Simulator, callback: Callable[[], None]) -> None:
        self._sim = sim
        self._callback = callback
        self._event: Optional[Event] = None

    @property
    def armed(self) -> bool:
        return self._event is not None and not self._event.cancelled

    def start(self, delay: float) -> None:
        """(Re)arm the timer ``delay`` seconds from now."""
        self.cancel()
        self._event = self._sim.schedule(
            delay, self._fire, label="timer"
        )

    def cancel(self) -> None:
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        self._event = None
        self._callback()


class Process:
    """An addressable simulation actor."""

    def __init__(self, sim: Simulator, pid: int, name: str = "") -> None:
        self.sim = sim
        self.pid = pid
        self.name = name or f"p{pid}"

    # -- messaging entry point (driven by the network) ------------------
    def on_message(self, sender: int, payload: Any) -> None:
        """Handle a delivered message.  Subclasses override."""
        raise NotImplementedError

    # -- timers ----------------------------------------------------------
    def make_timer(self, callback: Callable[[], None]) -> Timer:
        return Timer(self.sim, callback)

    def after(self, delay: float, callback: Callable[..., None], *args) -> Event:
        """Schedule a local callback; convenience over ``sim.schedule``."""
        return self.sim.schedule(delay, callback, *args, label=self.name)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name}>"


__all__ = ["Process", "Timer"]
