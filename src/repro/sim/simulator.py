"""The discrete-event simulation core.

A :class:`Simulator` owns the clock and the event queue.  Model code
schedules callbacks with :meth:`Simulator.schedule` /
:meth:`Simulator.schedule_at` and the loop drives them in deterministic
timestamp order.  There is no wall-clock coupling: a "second" of
simulated time costs only as many events as the model generates.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from .event import Event
from .rng import RngRegistry
from .substrate import DEFAULT_KERNEL, create_queue


class SimulationError(RuntimeError):
    """Raised for simulator misuse (e.g. scheduling in the past)."""


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Root seed for the :class:`RngRegistry`; every stochastic model
        component derives its stream from it.
    trace:
        Optional callable ``(time, label) -> None`` invoked for every
        event executed, useful for debugging and trace tests.
    kernel:
        Name of the event-queue substrate to drive (see
        :mod:`repro.sim.substrate`): ``"scalar"`` (tuple heap, default)
        or ``"columnar"`` (array-backed).  Every kernel produces
        bit-identical schedules for a fixed seed; the choice only
        affects wall-clock speed.
    """

    def __init__(
        self,
        seed: int = 0,
        trace: Optional[Callable[[float, str], None]] = None,
        kernel: str = DEFAULT_KERNEL,
    ) -> None:
        self._now = 0.0
        self.kernel = kernel
        self._queue = create_queue(kernel)
        self.rng = RngRegistry(seed)
        self.trace = trace
        self.events_executed = 0
        self._running = False

    # ------------------------------------------------------------------
    # Clock & scheduling
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args,
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self._queue.push(
            self._now + delay, callback, args, priority=priority, label=label
        )

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., None],
        *args,
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time!r} < now ({self._now!r})"
            )
        return self._queue.push(
            time, callback, args, priority=priority, label=label
        )

    def schedule_many(
        self,
        times: Sequence[float],
        callback: Callable[..., None],
        argss: Sequence[tuple],
        priority: int = 0,
        label: str = "",
    ) -> list[Event]:
        """Bulk-schedule ``callback(*argss[i])`` at absolute ``times[i]``.

        Equivalent to calling :meth:`schedule_at` once per pair — same
        deterministic sequence numbering, so equal-time events fire in
        list order — but the batch enters the heap in one pass without
        per-call wrapper overhead (the network multicast fast path).
        """
        if times and min(times) < self._now:
            raise SimulationError(
                f"cannot schedule at {min(times)!r} < now ({self._now!r})"
            )
        return self._queue.push_many(
            times, callback, argss, priority=priority, label=label
        )

    # ------------------------------------------------------------------
    # Run loops
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next event.  Returns ``False`` when drained."""
        ev = self._queue.pop()
        if ev is None:
            return False
        self._now = ev.time
        self.events_executed += 1
        if self.trace is not None:
            self.trace(self._now, ev.label)
        ev.callback(*ev.args)
        return True

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        stop_when: Optional[Callable[[], bool]] = None,
    ) -> None:
        """Drive the loop.

        Stops when the queue drains, the clock would pass ``until``,
        ``max_events`` have executed, or ``stop_when()`` returns true
        (checked after each event).
        """
        if self._running:
            raise SimulationError("simulator loop is not reentrant")
        self._running = True
        executed = 0
        queue = self._queue
        try:
            # Hot loop: :meth:`step` is inlined and peek + pop are
            # fused into a single bounded pop per event.
            while True:
                if max_events is not None and executed >= max_events:
                    return
                ev = queue.pop_next(until)
                if ev is None:
                    if until is not None and queue.live_count():
                        # Next live event lies beyond the bound.
                        self._now = until
                    return
                self._now = ev.time
                self.events_executed += 1
                if self.trace is not None:
                    self.trace(ev.time, ev.label)
                ev.callback(*ev.args)
                executed += 1
                if stop_when is not None and stop_when():
                    return
        finally:
            self._running = False

    def pending_events(self) -> int:
        """Number of events still queued that will actually fire.

        Cancelled-but-unpopped events are excluded: the queue keeps a
        live-event counter, so this is O(1) and does not drift as
        timers are re-armed (every re-arm cancels the old event).
        """
        return self._queue.live_count()


__all__ = ["Simulator", "SimulationError"]
