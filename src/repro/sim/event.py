"""Event records and the deterministic event queue.

The simulation kernel is a classic discrete-event loop.  Events are
ordered by ``(time, priority, seq)``: ``seq`` is a monotonically
increasing insertion counter, so two events scheduled for the same
instant always fire in the order they were created.  This makes every
run bit-reproducible for a fixed seed, which the safety property tests
rely on.

Fast-path design: the heap stores plain ``(time, priority, seq, event)``
tuples, so every sift compares machine tuples of floats/ints instead of
invoking rich dataclass comparison methods; the :class:`Event` record
itself is a ``__slots__`` class carried as untyped ballast in the last
tuple slot.  The queue also tracks a *live* event count so cancelled
but not-yet-popped events can be excluded in O(1) (see
:meth:`EventQueue.live_count`).
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Callable, Optional, Sequence


class Event:
    """A single scheduled callback.

    Attributes
    ----------
    time:
        Absolute simulation time (seconds) at which the event fires.
    priority:
        Secondary ordering key; lower fires first at equal times.
    seq:
        Insertion counter used as the final deterministic tie-break.
    callback / args:
        What to run.
    cancelled:
        Soft-delete flag — cancelled events stay in the heap but are
        skipped by the loop (cheaper than heap surgery).
    """

    __slots__ = (
        "time",
        "priority",
        "seq",
        "callback",
        "args",
        "label",
        "cancelled",
        "_queue",
    )

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[..., None],
        args: tuple = (),
        label: str = "",
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.label = label
        self.cancelled = False
        #: Owning queue while enqueued (None once popped/cleared), so a
        #: cancellation can maintain the queue's live-event count.
        self._queue: Optional["EventQueue"] = None

    def cancel(self) -> None:
        """Prevent this event from firing (idempotent)."""
        if not self.cancelled:
            self.cancelled = True
            queue = self._queue
            if queue is not None:
                queue._live -= 1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "live"
        return f"<Event t={self.time!r} prio={self.priority} seq={self.seq} {state}>"


class EventQueue:
    """Min-heap of :class:`Event` with deterministic tie-breaking."""

    __slots__ = ("_heap", "_next_seq", "_live")

    def __init__(self) -> None:
        #: Heap of (time, priority, seq, Event) — tuple comparison never
        #: reaches the Event because seq is unique.
        self._heap: list[tuple[float, int, int, Event]] = []
        self._next_seq = 0
        self._live = 0

    def __len__(self) -> int:
        """Events still heaped, *including* cancelled ones."""
        return len(self._heap)

    def live_count(self) -> int:
        """Events that will still fire (cancelled ones excluded)."""
        return self._live

    def push(
        self,
        time: float,
        callback: Callable[..., None],
        args: tuple = (),
        priority: int = 0,
        label: str = "",
    ) -> Event:
        seq = self._next_seq
        self._next_seq = seq + 1
        ev = Event(time, priority, seq, callback, args, label)
        ev._queue = self
        heappush(self._heap, (time, priority, seq, ev))
        self._live += 1
        return ev

    def push_many(
        self,
        times: Sequence[float],
        callback: Callable[..., None],
        argss: Sequence[tuple],
        priority: int = 0,
        label: str = "",
    ) -> list[Event]:
        """Bulk insert: one event per ``(time, args)`` pair, all calling
        ``callback``.

        Sequence numbers are allocated in iteration order, so events at
        equal times fire in the order their pairs appear — exactly as
        if :meth:`push` had been called in a loop, minus the per-call
        overhead.  When the batch is large relative to the heap, a
        single extend-and-heapify replaces ``k`` O(log n) sifts.
        """
        heap = self._heap
        seq = self._next_seq
        events: list[Event] = []
        append_event = events.append
        # Strategy picked up front: append-then-heapify is O(n + k) and
        # wins when the batch is large relative to the heap (the usual
        # multicast case); k sifts win when the heap is already deep.
        k = len(argss)
        if k > 8 and k * 4 > len(heap):
            heap_append = heap.append
            for time, args in zip(times, argss):
                ev = Event(time, priority, seq, callback, args, label)
                ev._queue = self
                append_event(ev)
                heap_append((time, priority, seq, ev))
                seq += 1
            heapify(heap)
        else:
            for time, args in zip(times, argss):
                ev = Event(time, priority, seq, callback, args, label)
                ev._queue = self
                append_event(ev)
                heappush(heap, (time, priority, seq, ev))
                seq += 1
        self._next_seq = seq
        self._live += len(events)
        return events

    def pop(self) -> Optional[Event]:
        """Pop the next non-cancelled event, or ``None`` if drained."""
        heap = self._heap
        while heap:
            ev = heappop(heap)[3]
            if not ev.cancelled:
                # Detach so a late cancel() of an already-fired event
                # cannot corrupt the live count.
                ev._queue = None
                self._live -= 1
                return ev
            ev._queue = None
        return None

    def pop_next(self, until: Optional[float] = None) -> Optional[Event]:
        """Pop the next live event, but only if it fires at or before
        ``until`` (``None`` = no bound).

        Fuses :meth:`peek_time` and :meth:`pop` for the simulator's hot
        loop: one heap traversal per event instead of two.  Returns
        ``None`` when drained *or* when the next live event lies beyond
        the bound — disambiguate with :meth:`live_count`.
        """
        heap = self._heap
        while heap:
            head = heap[0]
            ev = head[3]
            if ev.cancelled:
                heappop(heap)
                ev._queue = None
                continue
            if until is not None and head[0] > until:
                return None
            heappop(heap)
            ev._queue = None
            self._live -= 1
            return ev
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the next live event without removing it."""
        heap = self._heap
        while heap:
            head = heap[0]
            if not head[3].cancelled:
                return head[0]
            heappop(heap)[3]._queue = None
        return None

    def clear(self) -> None:
        for entry in self._heap:
            entry[3]._queue = None
        self._heap.clear()
        self._live = 0


__all__ = ["Event", "EventQueue"]
