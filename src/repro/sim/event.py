"""Event records and the deterministic event queue.

The simulation kernel is a classic discrete-event loop.  Events are
ordered by ``(time, priority, seq)``: ``seq`` is a monotonically
increasing insertion counter, so two events scheduled for the same
instant always fire in the order they were created.  This makes every
run bit-reproducible for a fixed seed, which the safety property tests
rely on.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


@dataclass(order=True)
class Event:
    """A single scheduled callback.

    Attributes
    ----------
    time:
        Absolute simulation time (seconds) at which the event fires.
    priority:
        Secondary ordering key; lower fires first at equal times.
    seq:
        Insertion counter used as the final deterministic tie-break.
    callback / args:
        What to run.  ``callback`` is excluded from ordering.
    cancelled:
        Soft-delete flag — cancelled events stay in the heap but are
        skipped by the loop (cheaper than heap surgery).
    """

    time: float
    priority: int
    seq: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple = field(default=(), compare=False)
    label: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Prevent this event from firing (idempotent)."""
        self.cancelled = True


class EventQueue:
    """Min-heap of :class:`Event` with deterministic tie-breaking."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def push(
        self,
        time: float,
        callback: Callable[..., None],
        args: tuple = (),
        priority: int = 0,
        label: str = "",
    ) -> Event:
        ev = Event(
            time=time,
            priority=priority,
            seq=next(self._seq),
            callback=callback,
            args=args,
            label=label,
        )
        heapq.heappush(self._heap, ev)
        return ev

    def pop(self) -> Optional[Event]:
        """Pop the next non-cancelled event, or ``None`` if drained."""
        while self._heap:
            ev = heapq.heappop(self._heap)
            if not ev.cancelled:
                return ev
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the next live event without removing it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def clear(self) -> None:
        self._heap.clear()


__all__ = ["Event", "EventQueue"]
