"""Single-core CPU model.

Each replica in the evaluation runs on an AWS ``t2.micro`` — a single
(burstable) vCPU.  Signature verification, hashing and TEE transitions
therefore *serialize* at each node, and the leader's verification work
is what saturates first as the cluster grows.  We model this with a
simple ``busy_until`` occupancy per core: work submitted at time *t*
starts at ``max(t, busy_until)`` and the core is then busy for the
work's duration.

The same mechanism models the NIC: message serialization occupies the
interface for ``bytes / bandwidth`` seconds, which is what makes large
(115.6 KB) blocks expensive to broadcast to 60 peers.
"""

from __future__ import annotations


class Resource:
    """A FIFO-serialized unit-capacity resource (CPU core or NIC)."""

    __slots__ = ("name", "busy_until", "total_busy", "jobs")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.busy_until = 0.0
        self.total_busy = 0.0
        self.jobs = 0

    def occupy(self, now: float, duration: float) -> float:
        """Occupy the resource for ``duration`` starting no earlier than ``now``.

        Returns the *completion* time.  Work is served in submission
        order (which, under the deterministic event loop, is also
        timestamp order).
        """
        if duration < 0:
            raise ValueError(f"negative duration {duration!r}")
        start = max(now, self.busy_until)
        end = start + duration
        self.busy_until = end
        self.total_busy += duration
        self.jobs += 1
        return end

    def occupy_many(self, now: float, duration: float, count: int) -> list[float]:
        """FIFO-occupy the resource for ``count`` equal jobs submitted
        together at ``now``; returns each job's completion time.

        Bit-identical to ``count`` sequential :meth:`occupy` calls with
        the same ``now`` — the completion times accumulate by repeated
        float addition, never ``start + i * duration`` (which rounds
        differently).  This is the batched-occupancy arithmetic behind
        the multicast fan-out fast path: one call charges a whole
        broadcast's serialization instead of one call per destination.
        """
        if duration < 0:
            raise ValueError(f"negative duration {duration!r}")
        if count <= 0:
            return []
        end = now if self.busy_until < now else self.busy_until
        total = self.total_busy
        out: list[float] = []
        append = out.append
        for _ in range(count):
            end = end + duration
            total = total + duration
            append(end)
        self.busy_until = end
        self.total_busy = total
        self.jobs += count
        return out

    def queueing_delay(self, now: float) -> float:
        """How long work submitted at ``now`` would wait before starting."""
        return max(0.0, self.busy_until - now)

    def utilization(self, now: float) -> float:
        """Fraction of [0, now] this resource spent busy."""
        if now <= 0:
            return 0.0
        return min(1.0, self.total_busy / now)

    def reset(self) -> None:
        self.busy_until = 0.0
        self.total_busy = 0.0
        self.jobs = 0


class Cpu(Resource):
    """A single-core CPU; alias of :class:`Resource` with a clearer name."""

    __slots__ = ()


class Nic(Resource):
    """A network interface serializing outgoing bytes at finite bandwidth."""

    __slots__ = ("bandwidth_bps",)

    def __init__(self, bandwidth_bps: float, name: str = "") -> None:
        super().__init__(name)
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        self.bandwidth_bps = bandwidth_bps

    def serialize(self, now: float, nbytes: int) -> float:
        """Occupy the NIC to push ``nbytes`` out; returns completion time."""
        return self.occupy(now, (nbytes * 8.0) / self.bandwidth_bps)

    def serialize_many(self, now: float, nbytes: int, count: int) -> list[float]:
        """Occupy the NIC for ``count`` equal-size copies submitted at
        ``now`` (a multicast fan-out); returns each copy's completion
        time, bit-identical to ``count`` :meth:`serialize` calls."""
        return self.occupy_many(now, (nbytes * 8.0) / self.bandwidth_bps, count)


__all__ = ["Resource", "Cpu", "Nic"]
