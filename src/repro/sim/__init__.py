"""Deterministic discrete-event simulation kernel.

This package is the bottom-most substrate: a seeded, single-threaded
event loop (:class:`~repro.sim.simulator.Simulator`), actor processes
(:class:`~repro.sim.process.Process`), FIFO resources modelling CPU
cores and NICs (:mod:`repro.sim.cpu`), and named RNG streams
(:class:`~repro.sim.rng.RngRegistry`).
"""

from .cpu import Cpu, Nic, Resource
from .event import Event, EventQueue
from .process import Process, Timer
from .rng import RngRegistry, RngStreamConflict
from .simulator import SimulationError, Simulator
from .substrate import (
    DEFAULT_KERNEL,
    EventHandle,
    SubstrateQueue,
    available_kernels,
    create_queue,
    register_kernel,
)

__all__ = [
    "Cpu",
    "Nic",
    "Resource",
    "Event",
    "EventQueue",
    "Process",
    "Timer",
    "RngRegistry",
    "RngStreamConflict",
    "SimulationError",
    "Simulator",
    "DEFAULT_KERNEL",
    "EventHandle",
    "SubstrateQueue",
    "available_kernels",
    "create_queue",
    "register_kernel",
]
