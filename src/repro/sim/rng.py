"""Named, seeded random-number streams.

Every source of randomness in the simulator (per-link jitter, client
arrivals, fault schedules, ...) draws from its own named stream derived
from a single root seed.  Adding a new consumer of randomness therefore
never perturbs the draws seen by existing consumers, which keeps
regression traces stable across code changes.

Two safeguards keep stream names honest as the consumer set grows:

* every stream may declare a *purpose* (a short free-form tag); asking
  for an existing stream under a different purpose raises
  :class:`RngStreamConflict` instead of silently sharing draws between
  two unrelated consumers;
* :meth:`RngRegistry.spawn` builds *hierarchical* sub-registries
  (``root.spawn("instance-3")``) whose streams are independent of the
  parent's and of every sibling's, for multi-instance experiments.
"""

from __future__ import annotations

import hashlib
from typing import Optional

import numpy as np


class RngStreamConflict(RuntimeError):
    """A stream name was re-derived with a different declared purpose."""


class RngRegistry:
    """Factory of independent :class:`numpy.random.Generator` streams.

    Each stream is keyed by a string name; the stream's seed is derived
    as ``sha256(root_seed || name)`` so streams are independent and
    reproducible.
    """

    def __init__(self, root_seed: int = 0, namespace: str = "") -> None:
        self.root_seed = int(root_seed)
        #: Hierarchical path of this registry ("" for the root; e.g.
        #: "instance-3/net" two spawns down).  Purely informational —
        #: independence comes from the derived root seeds.
        self.namespace = namespace
        self._streams: dict[str, np.random.Generator] = {}
        self._purposes: dict[str, Optional[str]] = {}

    def derive_seed(self, name: str) -> int:
        """Derive a 64-bit stream seed from the root seed and a name."""
        digest = hashlib.sha256(
            f"{self.root_seed}:{name}".encode("utf-8")
        ).digest()
        return int.from_bytes(digest[:8], "little")

    def stream(
        self, name: str, purpose: Optional[str] = None
    ) -> np.random.Generator:
        """Return the (cached) generator for ``name``.

        ``purpose`` optionally documents what the stream feeds; once a
        stream has been derived under one purpose, deriving it again
        under a *different* purpose raises :class:`RngStreamConflict`
        — two unrelated consumers silently sharing a stream is exactly
        the kind of coupling that breaks trace stability.
        """
        if purpose is None:
            # Fast path: an untagged lookup of an existing stream needs
            # no purpose bookkeeping — one dict probe, O(1).
            gen = self._streams.get(name)
            if gen is not None:
                return gen
        if name in self._purposes:
            known = self._purposes[name]
            if purpose is not None and known is not None and purpose != known:
                raise RngStreamConflict(
                    f"stream {name!r} already derived for purpose "
                    f"{known!r}; refusing to reuse it for {purpose!r}"
                )
            if purpose is not None and known is None:
                self._purposes[name] = purpose
        else:
            self._purposes[name] = purpose
        gen = self._streams.get(name)
        if gen is None:
            gen = np.random.default_rng(self.derive_seed(name))
            self._streams[name] = gen
        return gen

    def purpose_of(self, name: str) -> Optional[str]:
        """The declared purpose of a consumed stream (None if untagged)."""
        return self._purposes.get(name)

    def consumed(self) -> tuple[str, ...]:
        """Names of every stream derived so far, in sorted order."""
        return tuple(sorted(self._streams))

    def spawn(self, namespace: str) -> "RngRegistry":
        """A child registry for ``namespace``, independent of this one.

        Children are keyed like streams (``sha256(root || tag)``), so
        ``spawn("a")`` is stable across runs, ``spawn("a")`` and
        ``spawn("b")`` are independent, and nesting composes:
        ``reg.spawn("a").spawn("b")`` has its own seed universe.
        """
        child = RngRegistry(
            self.derive_seed(f"spawn:{namespace}"),
            namespace=f"{self.namespace}/{namespace}" if self.namespace else namespace,
        )
        return child

    def fork(self, salt: str) -> "RngRegistry":
        """A registry whose streams are independent of this one's."""
        return RngRegistry(self.derive_seed(f"fork:{salt}"))


__all__ = ["RngRegistry", "RngStreamConflict"]
