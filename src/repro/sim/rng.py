"""Named, seeded random-number streams.

Every source of randomness in the simulator (per-link jitter, client
arrivals, fault schedules, ...) draws from its own named stream derived
from a single root seed.  Adding a new consumer of randomness therefore
never perturbs the draws seen by existing consumers, which keeps
regression traces stable across code changes.
"""

from __future__ import annotations

import hashlib

import numpy as np


class RngRegistry:
    """Factory of independent :class:`numpy.random.Generator` streams.

    Each stream is keyed by a string name; the stream's seed is derived
    as ``sha256(root_seed || name)`` so streams are independent and
    reproducible.
    """

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = int(root_seed)
        self._streams: dict[str, np.random.Generator] = {}

    def derive_seed(self, name: str) -> int:
        """Derive a 64-bit stream seed from the root seed and a name."""
        digest = hashlib.sha256(
            f"{self.root_seed}:{name}".encode("utf-8")
        ).digest()
        return int.from_bytes(digest[:8], "little")

    def stream(self, name: str) -> np.random.Generator:
        """Return the (cached) generator for ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            gen = np.random.default_rng(self.derive_seed(name))
            self._streams[name] = gen
        return gen

    def fork(self, salt: str) -> "RngRegistry":
        """A registry whose streams are independent of this one's."""
        return RngRegistry(self.derive_seed(f"fork:{salt}"))


__all__ = ["RngRegistry"]
