"""ROTE-style rollback protection for trusted components.

Sec. II of the paper notes that hybrid protocols assume TEEs do not
lose (or get rolled back on) their internal state, and cites ROTE
[USENIX Sec'17] and NARRATOR as "known defenses against rollback
attacks" that OneShot can adopt.  This module provides that defense in
simulation form:

* every state-mutating ecall bumps a *sealed version counter* and
  replicates ``(owner, version, state digest)`` to a
  :class:`RoteGroup` — the abstraction of ROTE's consistent-broadcast
  echo among the cluster's enclaves (a quorum of which is honest);
* on (re)start an enclave asks the group for its latest acknowledged
  version; if its local sealed state is older, a rollback happened and
  the enclave **halts** instead of re-issuing spent counters.

:class:`RoteChecker` wraps OneShot's CHECKER with this discipline; the
tests demonstrate that the attack of :mod:`repro.tee.rollback` is
detected, at the cost of one group echo per mutating ecall.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..crypto import Digest, digest_of


class RollbackDetected(RuntimeError):
    """An enclave booted with sealed state older than the group's record."""


@dataclass(frozen=True)
class SealedRecord:
    """One replicated sealed-state version."""

    owner: int
    version: int
    state_digest: Digest


class RoteGroup:
    """The counter-replication service shared by a cluster's enclaves.

    Models the *outcome* of ROTE's echo protocol: once ``replicate``
    returns, a quorum of enclaves durably stores the record, so no
    adversary can later convince the group of an older version.
    """

    #: Extra latency a real echo round would add per mutating ecall
    #: (one intra-cluster round trip); charged by the wrapper.
    ECHO_COST_S = 300e-6

    def __init__(self) -> None:
        self._latest: dict[int, SealedRecord] = {}
        self.echoes = 0

    def replicate(self, record: SealedRecord) -> None:
        """Durably record ``record`` if it is the newest for its owner."""
        self.echoes += 1
        cur = self._latest.get(record.owner)
        if cur is None or record.version > cur.version:
            self._latest[record.owner] = record

    def latest(self, owner: int) -> Optional[SealedRecord]:
        return self._latest.get(owner)


class RoteCheckerMixin:
    """Mixin adding ROTE protection to a checker-style enclave.

    Compose with a concrete checker class, e.g.::

        class ProtectedChecker(RoteCheckerMixin, Checker): ...

    The mixin assumes the base class exposes the mutable counters
    ``view``, ``phase`` and ``prepv`` (OneShot's CHECKER does).
    """

    def attach_group(self, group: RoteGroup) -> None:
        self._rote_group = group
        self._rote_version = 0
        self._halted = False
        self._rote_seal()

    # -- sealing -----------------------------------------------------
    def _rote_state_digest(self) -> Digest:
        return digest_of("rote", self.view, self.phase, self.prepv)

    def _rote_seal(self) -> None:
        self._rote_version += 1
        self._charge(self._rote_group.ECHO_COST_S)
        self._rote_group.replicate(
            SealedRecord(self.owner, self._rote_version, self._rote_state_digest())
        )

    # -- boot-time freshness check ------------------------------------
    def restart(self) -> None:
        """(Re)boot: verify the sealed state is the newest the group knows.

        A rollback attack restores an old snapshot *including* the old
        version counter, so the comparison catches it; the enclave then
        halts rather than re-issue certificates for spent views.
        """
        latest = self._rote_group.latest(self.owner)
        if latest is not None and latest.version > self._rote_version:
            self._halted = True
            raise RollbackDetected(
                f"enclave {self.owner}: sealed version {self._rote_version} "
                f"< replicated version {latest.version}"
            )
        self._halted = False

    @property
    def halted(self) -> bool:
        return getattr(self, "_halted", False)

    # -- guarded entry points -----------------------------------------
    def tee_prepare(self, h):
        if self.halted:
            return None
        result = super().tee_prepare(h)
        if result is not None:
            self._rote_seal()
        return result

    def tee_store(self, prop):
        if self.halted:
            return None
        result = super().tee_store(prop)
        if result is not None:
            self._rote_seal()
        return result

    def tee_vote(self, h):
        if self.halted:
            return None
        return super().tee_vote(h)


def make_protected_checker(checker_cls):
    """Build a ROTE-protected variant of a checker class."""

    class ProtectedChecker(RoteCheckerMixin, checker_cls):
        pass

    ProtectedChecker.__name__ = f"Rote{checker_cls.__name__}"
    return ProtectedChecker


__all__ = [
    "RollbackDetected",
    "SealedRecord",
    "RoteGroup",
    "RoteCheckerMixin",
    "make_protected_checker",
]
