"""Enclave base class: sealed state + ecall cost accounting.

An :class:`Enclave` models an SGX enclave hosting a trusted service
(the paper's CHECKER and ACCUMULATOR).  Its guarantees:

* the private signing key never leaves the enclave — only the enclave
  object can produce signatures attributable to its owner;
* internal counters (view, phase, prepv, ...) are mutated only through
  the service's entry points, which enforce the paper's checks;
* every entry ("ecall") accrues the SGX world-switch overhead plus the
  cost of any crypto performed inside; the hosting replica drains the
  accrued time onto its CPU.

Byzantine replicas in :mod:`repro.faults` interact with enclaves only
through these entry points, mirroring the hybrid fault model of
Sec. IV ("at each faulty node all components can be tampered with
except the ones providing these trusted services").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..crypto import CryptoCostModel, Digest, KeyPair, KeyRing, Signature


@dataclass(frozen=True)
class TeeCostModel:
    """Overheads of crossing the trusted boundary (seconds)."""

    #: SGX ecall/ocall world-switch round trip.
    ecall_overhead: float = 20e-6
    #: Slowdown of crypto executed *inside* the enclave relative to the
    #: untrusted side (EPC paging, in-enclave OpenSSL) — protocols that
    #: verify quorums inside their TEE (Damysus's accumulator/store) pay
    #: this on every view.
    crypto_factor: float = 2.0

    @staticmethod
    def free() -> "TeeCostModel":
        return TeeCostModel(ecall_overhead=0.0, crypto_factor=1.0)


class Enclave:
    """Base for trusted services; subclasses implement the service API."""

    def __init__(
        self,
        owner: int,
        keypair: KeyPair,
        ring: KeyRing,
        crypto_costs: CryptoCostModel,
        tee_costs: TeeCostModel,
    ) -> None:
        if keypair.owner != owner:
            raise ValueError("enclave key must be bound to the owner id")
        self.owner = owner
        self._key = keypair
        self._ring = ring
        self._crypto = crypto_costs
        self._tee = tee_costs
        self._accrued = 0.0
        self.ecalls = 0

    # ------------------------------------------------------------------
    # Cost accounting (drained by the hosting replica onto its CPU)
    # ------------------------------------------------------------------
    def _enter(self) -> None:
        """Record one trusted-boundary crossing."""
        self.ecalls += 1
        self._accrued += self._tee.ecall_overhead

    def _charge(self, seconds: float) -> None:
        self._accrued += seconds

    def drain_cost(self) -> float:
        """Return and reset the CPU time accrued since the last drain."""
        c = self._accrued
        self._accrued = 0.0
        return c

    # ------------------------------------------------------------------
    # In-enclave crypto (cost-charged)
    # ------------------------------------------------------------------
    def _sign(self, digest: Digest) -> Signature:
        self._charge(self._crypto.sign() * self._tee.crypto_factor)
        return self._key.sign(digest)

    def _sign_batch(self, digests: Sequence[Digest]) -> list[Signature]:
        """Sign every digest inside one already-entered ecall.

        The SGX world switch was paid by the caller's single
        ``_enter()``; the crypto ledger still charges per signature —
        batching amortizes the trusted-boundary transition, never the
        ECDSA work itself.
        """
        self._charge(self._crypto.sign() * self._tee.crypto_factor * len(digests))
        key = self._key
        return [key.sign(d) for d in digests]

    def _verify(self, digest: Digest, sig: Signature) -> bool:
        self._charge(self._crypto.verify() * self._tee.crypto_factor)
        return self._ring.verify(digest, sig)

    def _verify_many(self, digest: Digest, sigs: tuple[Signature, ...]) -> bool:
        self._charge(self._crypto.verify(len(sigs)) * self._tee.crypto_factor)
        return all(self._ring.verify(digest, s) for s in sigs)


__all__ = ["Enclave", "TeeCostModel"]
