"""Trusted-execution-environment substrate.

Generic enclave machinery (sealed state, ecall costs, attestation,
rollback fault model).  Protocol-specific trusted services live next to
their protocols: OneShot's CHECKER/ACCUMULATOR in
:mod:`repro.core.tee_services`, Damysus's in
:mod:`repro.protocols.damysus.tee_services`.
"""

from .attestation import Credentials, provision
from .enclave import Enclave, TeeCostModel
from .rollback import RollbackProtectedEnclaveMixin, rollback, snapshot
from .rote import (
    RollbackDetected,
    RoteCheckerMixin,
    RoteGroup,
    SealedRecord,
    make_protected_checker,
)

__all__ = [
    "Credentials",
    "provision",
    "Enclave",
    "TeeCostModel",
    "RollbackProtectedEnclaveMixin",
    "rollback",
    "snapshot",
    "RollbackDetected",
    "RoteCheckerMixin",
    "RoteGroup",
    "SealedRecord",
    "make_protected_checker",
]
