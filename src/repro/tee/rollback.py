"""Rollback-attack model on enclave state.

Sec. II discusses rollback attacks on hybrid protocols (ROTE,
ENGRAFT, NARRATOR): an attacker restarts an enclave and restores an
*old* snapshot of its sealed state, resurrecting spent counters.  The
paper's threat model assumes TEEs do not lose state (known defenses
exist); we still model the attack so tests can demonstrate both the
vulnerability window and that the default model excludes it.
"""

from __future__ import annotations

import copy
from typing import Any

from .enclave import Enclave

#: Enclave attributes that are part of the *sealed mutable state*.
#: Keys are provisioned (not sealed), and the ROTE group is a remote
#: service — a local rollback cannot rewind it — so both are excluded.
_EXCLUDED = {"_key", "_ring", "_crypto", "_tee", "_rote_group"}


def snapshot(enclave: Enclave) -> dict[str, Any]:
    """Capture the enclave's sealed mutable state."""
    return {
        k: copy.deepcopy(v)
        for k, v in vars(enclave).items()
        if k not in _EXCLUDED
    }


def rollback(enclave: Enclave, snap: dict[str, Any]) -> None:
    """Restore an old snapshot — the attack the paper's model excludes.

    After this call the enclave will happily re-issue certificates for
    counters it already spent; safety arguments that rely on counter
    monotonicity no longer hold (demonstrated in tests).
    """
    for k, v in snap.items():
        setattr(enclave, k, copy.deepcopy(v))


class RollbackProtectedEnclaveMixin:
    """Marker mixin: a deployment using ROTE/NARRATOR-style protection.

    ``assert_no_rollback`` lets harness code express the default threat
    model explicitly: it records high-water marks of monotonic fields
    and raises if they ever regress.
    """

    _watermarks: dict[str, int]

    def watch(self, *fields: str) -> None:
        self._watermarks = {f: getattr(self, f) for f in fields}

    def assert_no_rollback(self) -> None:
        marks = getattr(self, "_watermarks", None)
        if not marks:
            return
        for f, hi in marks.items():
            cur = getattr(self, f)
            if cur < hi:
                raise RuntimeError(
                    f"rollback detected: {f} regressed {hi} -> {cur}"
                )
            marks[f] = cur


__all__ = ["snapshot", "rollback", "RollbackProtectedEnclaveMixin"]
