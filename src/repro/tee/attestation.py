"""Key provisioning — the simulated analogue of remote attestation.

Before the system starts, every replica's trusted components are
provisioned with (i) their own signing key and (ii) the public keys of
every other trusted component (Sec. IV: "public keys are known by
trusted components, replicas, and clients").  In SGX this is done via
remote attestation; here a deterministic :func:`provision` plays that
role.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto import KeyPair, KeyRing


@dataclass(frozen=True)
class Credentials:
    """Everything a replica's trusted side is provisioned with."""

    owner: int
    keypair: KeyPair
    ring: KeyRing  # public keys of every trusted component


def provision(n: int, master_seed: int = 0, domain: str = "tee") -> list[Credentials]:
    """Provision ``n`` replicas' trusted components.

    The key ring is shared (public information); key pairs are private
    per replica.
    """
    if n <= 0:
        raise ValueError("need at least one replica")
    pairs = [KeyPair.generate(i, master_seed, domain) for i in range(n)]
    ring = KeyRing()
    for kp in pairs:
        ring.add(kp.public())
    return [Credentials(owner=i, keypair=pairs[i], ring=ring) for i in range(n)]


__all__ = ["Credentials", "provision"]
