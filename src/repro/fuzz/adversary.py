"""The adaptive adversary: a delay hook that chases the leader.

Static leader-targeted degradation (a :class:`DegradeSpec` whose node
set is ``view % n``) only hurts if the run actually passes through
that view during the window.  The adaptive adversary removes the
guesswork: it periodically reads the *live* view of a correct replica,
recomputes who leads it, and re-aims its extra delay there — the
strongest DoS shape a network-level attacker with protocol knowledge
can mount.

Determinism: the hook itself is a pure function of ``(now, src, dst)``
and the ``target`` field; ``target`` changes only inside pre-scheduled
simulator events that read protocol state.  No RNG stream is touched,
satisfying the DelayHook contract (hooks must not draw from the
network stream), so an adaptive run replays bit-identically.
"""

from __future__ import annotations

from ..net import Network
from ..protocols.common import Cluster
from ..sim import Simulator
from .scenario import AdaptiveSpec


class AdaptiveLeaderDelay:
    """Installable leader-chasing delay hook."""

    def __init__(self, spec: AdaptiveSpec) -> None:
        self.spec = spec
        self.target = -1
        self.retargets = 0

    def install(self, sim: Simulator, network: Network, cluster: Cluster) -> None:
        spec = self.spec
        # Observe through a correct replica: a Byzantine one may hold a
        # nonsense view (and real attackers watch honest traffic).
        correct = cluster.correct_replicas()
        observed = correct[0] if correct else cluster.replicas[0]

        def aim() -> None:
            self.target = observed.leader_of(observed.view)
            self.retargets += 1

        t = spec.start
        while t < spec.end:
            sim.schedule_at(t, aim, label="fuzz adaptive re-aim")
            t = round(t + spec.period, 9)

        def hook(now: float, src: int, dst: int, size: int) -> float:
            if spec.start <= now < spec.end and self.target in (src, dst):
                return spec.extra_s
            return 0.0

        network.delay_hooks.append(hook)


__all__ = ["AdaptiveLeaderDelay"]
