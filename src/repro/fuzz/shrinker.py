"""Deterministic counterexample shrinking.

Given a failing scenario, greedily apply simplification passes and
keep any candidate that still fails *with the same failure kind*
(safety stays safety — a shrink that turns a fork into a stall has
thrown away the interesting bug).  Passes, in order:

1. drop each fault (one at a time);
2. drop the adaptive adversary, each partition, each degrade window;
3. halve each fault window (keep the opening half — misbehaviour
   usually bites when it starts);
4. reduce the block target;
5. reduce ``f`` (smaller cluster), keeping only faults whose pids
   still exist.

The pass list repeats until a full sweep changes nothing or the run
budget is exhausted.  Everything is deterministic: candidate order is
fixed and each candidate's run is a seeded simulation, so the same
failing input always shrinks to the same minimized repro.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator, Optional

from .harness import FuzzResult, run_scenario
from .scenario import Scenario


@dataclass
class ShrinkOutcome:
    """The minimized scenario plus bookkeeping."""

    scenario: Scenario
    result: FuzzResult
    runs: int
    improved: bool


def _candidates(s: Scenario) -> Iterator[Scenario]:
    # 1. Drop one fault at a time.
    for i in range(len(s.faults)):
        yield replace(s, faults=s.faults[:i] + s.faults[i + 1 :])
    # 2. Drop conditions.
    if s.adaptive is not None:
        yield replace(s, adaptive=None)
    for i in range(len(s.isolates)):
        yield replace(s, isolates=s.isolates[:i] + s.isolates[i + 1 :])
    for i in range(len(s.degrades)):
        yield replace(s, degrades=s.degrades[:i] + s.degrades[i + 1 :])
    # 3. Narrow fault windows (opening half).
    for i, f in enumerate(s.faults):
        width = f.end - f.start
        if width > 0.2:
            narrowed = replace(f, end=round(f.start + width / 2, 4))
            yield replace(s, faults=s.faults[:i] + (narrowed,) + s.faults[i + 1 :])
    # 4. Fewer blocks to wait for.
    if s.target_blocks > 2:
        yield replace(s, target_blocks=max(2, s.target_blocks // 2))
    # 5. Smaller cluster.
    if s.f > 1:
        from ..protocols.registry import get_protocol

        new_f = s.f - 1
        new_n = get_protocol(s.protocol).n_for(new_f)
        faults = tuple(f for f in s.faults if f.pid < new_n)
        if len(faults) <= new_f and s.reference_pid < new_n:
            faulty = {f.pid for f in faults}
            if s.reference_pid not in faulty:
                yield replace(s, f=new_f, faults=faults)


def _weight(s: Scenario) -> tuple:
    """Lexicographic size of a scenario (smaller is simpler)."""
    return (
        len(s.faults),
        s.f,
        len(s.isolates) + len(s.degrades) + (s.adaptive is not None),
        s.target_blocks,
        sum(f.end - f.start for f in s.faults),
    )


def shrink(
    scenario: Scenario,
    failing: Optional[FuzzResult] = None,
    max_runs: int = 200,
) -> ShrinkOutcome:
    """Minimize a failing scenario; raises if it does not fail at all."""
    best_result = failing if failing is not None else run_scenario(scenario)
    kind = best_result.failure
    if kind is None:
        raise ValueError("cannot shrink a passing scenario")
    best = scenario
    runs = 0
    improved = True
    any_progress = False
    while improved and runs < max_runs:
        improved = False
        for candidate in _candidates(best):
            if runs >= max_runs:
                break
            if _weight(candidate) >= _weight(best):
                continue
            runs += 1
            result = run_scenario(candidate)
            if result.failure == kind:
                best, best_result = candidate, result
                improved = True
                any_progress = True
                break  # restart passes from the simpler scenario
    return ShrinkOutcome(
        scenario=best, result=best_result, runs=runs, improved=any_progress
    )


__all__ = ["ShrinkOutcome", "shrink"]
