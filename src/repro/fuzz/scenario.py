"""The fuzzer's scenario grammar.

A :class:`Scenario` is a complete, serializable description of one
adversarial run: which protocol and cluster size, which replicas are
Byzantine (behaviour + time window + knobs), which network conditions
apply when, and whether an adaptive leader-chasing adversary is
active.  Everything is a frozen dataclass of JSON scalars, so a
scenario round-trips through ``to_dict``/``from_dict`` losslessly and
a saved repro file replays the exact run (same seed, same events).

The grammar deliberately composes only *existing* machinery:
behaviours come from :mod:`repro.faults.byzantine`, conditions from
:mod:`repro.net.conditions`, restart storms from the ``restart``
behaviour built on :mod:`repro.tee.rollback`, and the run itself goes
through :func:`repro.experiments.runner.run_experiment`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Optional

from ..experiments.config import ExperimentConfig
from ..faults import BEHAVIOURS, FaultPlan


def _specs_to_dicts(specs) -> list[dict]:
    return [{f.name: getattr(s, f.name) for f in fields(s)} for s in specs]


@dataclass(frozen=True)
class FaultSpec:
    """One Byzantine assignment: ``pid`` runs ``behaviour`` in
    ``[start, end)`` with behaviour-specific ``attrs``."""

    pid: int
    behaviour: str
    start: float = 0.0
    end: float = 0.0
    attrs: tuple[tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        if self.behaviour not in BEHAVIOURS:
            raise ValueError(f"unknown behaviour {self.behaviour!r}")
        if self.end < self.start:
            raise ValueError(
                f"fault window inverted: end {self.end} < start {self.start}"
            )


@dataclass(frozen=True)
class DegradeSpec:
    """WAN churn: extra delay on (optionally node-filtered) traffic."""

    start: float
    end: float
    extra_s: float
    nodes: Optional[tuple[int, ...]] = None


@dataclass(frozen=True)
class IsolateSpec:
    """A time-windowed partition of one node (links stay reliable:
    isolation is a large delay, messages eventually arrive)."""

    node: int
    start: float
    end: float
    delay_s: float = 2.0


@dataclass(frozen=True)
class AdaptiveSpec:
    """Adaptive adversary: every ``period`` seconds re-aim ``extra_s``
    of delay at whichever replica currently leads (read from live
    protocol state) during ``[start, end)``."""

    start: float
    end: float
    extra_s: float = 0.05
    period: float = 0.1


@dataclass(frozen=True)
class ShardSpec:
    """Sharded run: ``k`` consensus groups over one keyspace with
    cross-shard 2PC traffic, judged by the cross-shard atomicity oracle
    in addition to the per-shard safety oracles.

    ``decision_delay_s`` adds delay to the 2PC coordinator's traffic
    (prepare submissions and commit/abort decisions) during
    ``[delay_start, delay_end)`` — the adversarial knob aimed straight
    at the window between prepare and decision, where a partial apply
    would have to happen if the 2PC layering were broken.
    """

    k: int = 2
    cross_permille: int = 100
    offered_tps: float = 2000.0
    epoch_s: float = 0.0
    hot_permille: int = 0
    slots: int = 16
    decision_delay_s: float = 0.0
    delay_start: float = 0.0
    delay_end: float = 0.0

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError("shard spec needs k >= 1")
        if self.delay_end < self.delay_start:
            raise ValueError("decision-delay window inverted")


@dataclass(frozen=True)
class Scenario:
    """One fully-specified adversarial run."""

    protocol: str = "oneshot"
    f: int = 1
    seed: int = 0
    target_blocks: int = 6
    timeout_base: float = 0.2
    latency_s: float = 0.002
    gst: float = 0.0
    pre_gst_extra: float = 0.0
    max_sim_time: float = 30.0
    #: Replica whose chain drives the stop condition and the liveness
    #: oracle; the generator always picks a non-faulty pid.
    reference_pid: int = 0
    faults: tuple[FaultSpec, ...] = ()
    degrades: tuple[DegradeSpec, ...] = ()
    isolates: tuple[IsolateSpec, ...] = ()
    adaptive: Optional[AdaptiveSpec] = None
    #: Highest-view gossip on timeout; False reproduces the historical
    #: pacemaker (and the pinned HotStuff view-split livelock).
    view_sync: bool = True
    #: When set, the run is sharded (see :class:`ShardSpec`) and the
    #: cross-shard atomicity oracle joins the judgement.
    shard: Optional[ShardSpec] = None

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def n(self) -> int:
        from ..protocols.registry import get_protocol

        return get_protocol(self.protocol).n_for(self.f)

    def faulty_pids(self) -> set[int]:
        return {f.pid for f in self.faults}

    def quiesce_time(self) -> float:
        """When all injected trouble is over (fault windows closed,
        conditions lifted, GST passed) — the liveness clock starts."""
        ends = [self.gst]
        ends += [f.end for f in self.faults]
        ends += [d.end for d in self.degrades]
        ends += [i.end + i.delay_s for i in self.isolates]
        if self.adaptive is not None:
            ends.append(self.adaptive.end)
        if self.shard is not None:
            ends.append(self.shard.delay_end + self.shard.decision_delay_s)
        return max(ends)

    def to_experiment_config(self) -> ExperimentConfig:
        shard_kw: dict[str, Any] = {}
        if self.shard is not None:
            shard_kw = dict(
                shards=self.shard.k,
                cross_shard_permille=self.shard.cross_permille,
                offered_tps=self.shard.offered_tps,
                shard_epoch_s=self.shard.epoch_s,
                hot_key_permille=self.shard.hot_permille,
                shard_slots=self.shard.slots,
            )
        return ExperimentConfig(
            protocol=self.protocol,
            f=self.f,
            deployment="local",
            target_blocks=self.target_blocks,
            max_sim_time=self.max_sim_time,
            seed=self.seed,
            timeout_base=self.timeout_base,
            local_latency_s=self.latency_s,
            gst=self.gst,
            pre_gst_extra=self.pre_gst_extra,
            warmup_blocks=0,
            view_sync=self.view_sync,
            **shard_kw,
        )

    def fault_plan(self) -> FaultPlan:
        plan = FaultPlan()
        for f in self.faults:
            plan.add(f.pid, f.behaviour, start=f.start, end=f.end, **dict(f.attrs))
        return plan

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        d: dict[str, Any] = {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if f.name not in ("faults", "degrades", "isolates", "adaptive", "shard")
        }
        d["faults"] = [
            {
                "pid": f.pid,
                "behaviour": f.behaviour,
                "start": f.start,
                "end": f.end,
                "attrs": [[k, v] for k, v in f.attrs],
            }
            for f in self.faults
        ]
        d["degrades"] = [
            {
                "start": x.start,
                "end": x.end,
                "extra_s": x.extra_s,
                "nodes": list(x.nodes) if x.nodes is not None else None,
            }
            for x in self.degrades
        ]
        d["isolates"] = _specs_to_dicts(self.isolates)
        d["adaptive"] = (
            None
            if self.adaptive is None
            else {f.name: getattr(self.adaptive, f.name) for f in fields(AdaptiveSpec)}
        )
        d["shard"] = (
            None
            if self.shard is None
            else {f.name: getattr(self.shard, f.name) for f in fields(ShardSpec)}
        )
        return d

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Scenario":
        d = dict(data)
        d["faults"] = tuple(
            FaultSpec(
                pid=f["pid"],
                behaviour=f["behaviour"],
                start=f["start"],
                end=f["end"],
                attrs=tuple((k, v) for k, v in f.get("attrs", [])),
            )
            for f in d.get("faults", [])
        )
        d["degrades"] = tuple(
            DegradeSpec(
                start=x["start"],
                end=x["end"],
                extra_s=x["extra_s"],
                nodes=tuple(x["nodes"]) if x.get("nodes") is not None else None,
            )
            for x in d.get("degrades", [])
        )
        d["isolates"] = tuple(
            IsolateSpec(**x) for x in d.get("isolates", [])
        )
        adaptive = d.get("adaptive")
        d["adaptive"] = None if adaptive is None else AdaptiveSpec(**adaptive)
        shard = d.get("shard")
        d["shard"] = None if shard is None else ShardSpec(**shard)
        known = {f.name for f in fields(cls)}
        unknown = set(d) - known
        if unknown:
            raise ValueError(f"unknown Scenario fields: {sorted(unknown)}")
        return cls(**d)

    def describe(self) -> str:
        bits = [f"{self.protocol} f={self.f} seed={self.seed}"]
        for f in self.faults:
            bits.append(f"{f.behaviour}@{f.pid}[{f.start:.2f},{f.end:.2f})")
        if self.degrades:
            bits.append(f"{len(self.degrades)} degrade(s)")
        if self.isolates:
            bits.append(f"{len(self.isolates)} partition(s)")
        if self.adaptive is not None:
            bits.append("adaptive")
        if not self.view_sync:
            bits.append("no-view-sync")
        if self.shard is not None:
            bits.append(
                f"shard k={self.shard.k} "
                f"cross={self.shard.cross_permille / 10:.0f}%"
            )
        return " ".join(bits)


__all__ = [
    "FaultSpec",
    "DegradeSpec",
    "IsolateSpec",
    "AdaptiveSpec",
    "ShardSpec",
    "Scenario",
]
