"""Repro files: serialized counterexamples that replay byte-identically.

A repro file is a small JSON document:

.. code-block:: json

    {
      "format": "repro.fuzz/1",
      "note": "free-form provenance",
      "scenario": { ...Scenario.to_dict()... },
      "expect": {
        "failure": "safety" | "crash" | "liveness" | null,
        "digest": "<RunFingerprint.digest()> or null (crashed runs)",
        "blocks_decided": 3
      }
    }

``expect`` records what the run did when the file was written; replay
re-runs the scenario and verifies both the failure kind and — when the
run completed — the exact fingerprint digest.  The committed regression
corpus under ``tests/fuzz/corpus/`` is replayed in CI, so any drift in
protocol, fault or network code that changes these runs is caught.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from .harness import FuzzResult, run_scenario
from .scenario import Scenario

FORMAT = "repro.fuzz/1"


class ReplayMismatch(AssertionError):
    """A repro file no longer reproduces its recorded outcome."""


@dataclass(frozen=True)
class ReproFile:
    """One parsed repro document."""

    scenario: Scenario
    expect_failure: Optional[str]
    expect_digest: Optional[str]
    expect_blocks: int
    note: str = ""


def make_repro(result: FuzzResult, note: str = "") -> dict:
    """The JSON document describing ``result``."""
    return {
        "format": FORMAT,
        "note": note,
        "scenario": result.scenario.to_dict(),
        "expect": {
            "failure": result.failure,
            "digest": (
                result.fingerprint.digest() if result.fingerprint is not None else None
            ),
            "blocks_decided": result.report.blocks_decided,
        },
    }


def save_repro(path: Union[str, Path], result: FuzzResult, note: str = "") -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(make_repro(result, note=note), indent=2) + "\n")
    return path


def load_repro(path: Union[str, Path]) -> ReproFile:
    data = json.loads(Path(path).read_text())
    fmt = data.get("format")
    if fmt != FORMAT:
        raise ValueError(f"{path}: unknown repro format {fmt!r}")
    expect = data.get("expect", {})
    return ReproFile(
        scenario=Scenario.from_dict(data["scenario"]),
        expect_failure=expect.get("failure"),
        expect_digest=expect.get("digest"),
        expect_blocks=int(expect.get("blocks_decided", 0)),
        note=data.get("note", ""),
    )


def replay_repro(path: Union[str, Path]) -> FuzzResult:
    """Re-run a repro file and verify it reproduces exactly."""
    repro = load_repro(path)
    result = run_scenario(repro.scenario)
    if result.failure != repro.expect_failure:
        raise ReplayMismatch(
            f"{path}: expected failure {repro.expect_failure!r}, "
            f"got {result.failure!r} ({result.report.describe()})"
        )
    if repro.expect_digest is not None:
        got = result.fingerprint.digest() if result.fingerprint is not None else None
        if got != repro.expect_digest:
            raise ReplayMismatch(
                f"{path}: fingerprint drift — expected {repro.expect_digest[:16]}…, "
                f"got {str(got)[:16]}…"
            )
    return result


def corpus_paths(directory: Union[str, Path]) -> list[Path]:
    """All repro files in a corpus directory, sorted for determinism."""
    return sorted(Path(directory).glob("*.json"))


__all__ = [
    "FORMAT",
    "ReplayMismatch",
    "ReproFile",
    "make_repro",
    "save_repro",
    "load_repro",
    "replay_repro",
    "corpus_paths",
]
