"""Planted bugs: deliberately broken TEE guards for oracle self-tests.

A fuzzer whose oracles can never fire is untestable.  This module
plants the exact vulnerability the CHECKER's view-monotonicity
counters exist to prevent (Sec. IV / Lemma 1): with the guard
disabled, an equivocating leader can certify *two* proposals in one
view and double-store, which is precisely the state a successful
rollback attack restores.  Under :func:`broken_checker_guard` the
:class:`~repro.faults.byzantine.Equivocator`'s split-brain attack goes
all the way to a fork, and the fuzzer's safety oracle must catch it —
that end-to-end path is asserted by the planted-bug test and is the
calibration story told in ``docs/fuzzing.md``.

The patch is *fallback-only*: the original entry points run first, and
the relaxed paths engage only after the original refused a
double-prepare — something honest replicas never attempt (their
``_led_view`` bookkeeping calls ``TEEprepare`` once per view).  Clean
runs under the planted bug are therefore bit-identical to unpatched
runs, so the planted-bug fuzz loop measures oracle sensitivity, not
patch noise.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from ..core.certificates import Proposal, StoreCert, proposal_digest, store_digest
from ..core.tee_services import Checker


@contextmanager
def broken_checker_guard() -> Iterator[None]:
    """Disable the CHECKER's once-per-view monotonicity guard.

    While active: a second ``TEEprepare`` in the same view succeeds
    (and marks the view as compromised on that enclave), and a second
    ``TEEstore`` for a compromised view re-issues a store certificate
    for the already-spent view counter — the double-store a rollback
    attack enables.  Only enclaves actually driven through the
    double-prepare path behave differently.
    """
    orig_prepare = Checker.tee_prepare
    orig_store = Checker.tee_store

    def buggy_prepare(self: Checker, h):
        out = orig_prepare(self, h)
        if out is not None:
            return out
        # Guard disabled: certify a second proposal in the same view.
        # The planted bug impersonates the enclave's own signing path —
        # reaching its private internals is the point of the sabotage.
        self._evil_view = self.view
        return Proposal(
            block_hash=h,
            view=self.view,
            sig=self._sign(proposal_digest(h, self.view)),  # repro: lint-ignore[tee-encapsulation]
        )

    def buggy_store(self: Checker, prop):
        if (
            getattr(self, "_evil_view", None) == prop.view
            and self.view == prop.view + 1
            and self.prepv == prop.view
            and self._verify_proposal(prop)
        ):
            # Guard disabled: re-issue a certificate for a view whose
            # counter was already spent (no increment — the rollback).
            self._enter()  # repro: lint-ignore[tee-encapsulation]
            return StoreCert(
                stored_view=prop.view,
                block_hash=prop.block_hash,
                prop_view=prop.view,
                sig=self._sign(  # repro: lint-ignore[tee-encapsulation]
                    store_digest(prop.view, prop.block_hash, prop.view)
                ),
            )
        return orig_store(self, prop)

    Checker.tee_prepare = buggy_prepare  # type: ignore[method-assign]
    Checker.tee_store = buggy_store  # type: ignore[method-assign]
    try:
        yield
    finally:
        Checker.tee_prepare = orig_prepare  # type: ignore[method-assign]
        Checker.tee_store = orig_store  # type: ignore[method-assign]


__all__ = ["broken_checker_guard"]
