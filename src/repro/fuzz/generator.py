"""Seed-driven scenario generation.

``generate_scenario(seed, cfg)`` maps one integer to one
:class:`~repro.fuzz.scenario.Scenario`, drawing every choice from a
dedicated :class:`~repro.sim.rng.RngRegistry` stream derived from that
seed.  The generator's registry is completely separate from the
simulation's (the run builds its own ``Simulator(seed=...)``), so
generation cannot perturb the RNG streams of the run it describes —
that separation is what makes a generated fault-free scenario
fingerprint-identical to the plain ``experiments.runner`` path.

Structural invariants the generator maintains:

* at most ``f`` Byzantine replicas (the protocols' resilience bound);
* the reference replica (stop condition + liveness oracle) is correct
  and is never isolated;
* every fault window and network condition closes before
  ``quiesce_time``, and ``max_sim_time`` leaves a generous progress
  budget after it — so the liveness oracle judges recovery, not luck.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from ..sim.rng import RngRegistry
from .scenario import AdaptiveSpec, DegradeSpec, FaultSpec, IsolateSpec, Scenario

#: Behaviour-specific knobs: name -> (attr, low, high) ranges drawn
#: when the behaviour is assigned.
_BEHAVIOUR_ATTRS: dict[str, list[tuple[str, float, float]]] = {
    "slow": [("slow_delay", 0.05, 0.5)],
    "restart": [
        ("restart_period", 0.4, 1.2),
        ("outage", 0.1, 0.3),
        ("seal_interval", 0.2, 0.6),
    ],
}


@dataclass(frozen=True)
class FuzzConfig:
    """Knobs bounding the scenario space."""

    protocols: tuple[str, ...] = ("oneshot", "damysus", "hotstuff")
    behaviours: tuple[str, ...] = (
        "crashed",
        "silent-leader",
        "slow",
        "withhold",
        "equivocate",
        "restart",
        "garbage",
    )
    max_f: int = 2
    min_blocks: int = 4
    max_blocks: int = 8
    #: Latest time any fault window / condition may open.
    horizon: float = 2.0
    #: Longest single fault window or condition.
    max_window: float = 2.0
    #: Sim-time progress budget granted after everything quiesces.
    #: Generous on purpose: the pacemaker's exponential backoff (doubling
    #: to a 60 s cap) means a *recoverable* stall can legitimately take a
    #: couple of simulated minutes to clear — only runs that cannot
    #: recover at all should fail the liveness oracle.  Stalled sim-time
    #: is nearly free (timeout events only), and passing runs stop at
    #: their block target regardless.
    liveness_budget: float = 240.0
    timeout_base: float = 0.2
    latency_s: float = 0.002


DEFAULT_CONFIG = FuzzConfig()


def generate_scenario(seed: int, cfg: FuzzConfig = DEFAULT_CONFIG) -> Scenario:
    """Deterministically expand ``seed`` into a scenario."""
    rng = RngRegistry(seed, namespace="fuzz").stream(
        "generate", purpose="scenario generation choices"
    )
    protocol = cfg.protocols[rng.integers(len(cfg.protocols))]
    f = 1 + int(rng.integers(cfg.max_f))
    from ..protocols.registry import get_protocol

    n = get_protocol(protocol).n_for(f)

    def window() -> tuple[float, float]:
        start = float(rng.uniform(0.0, cfg.horizon))
        length = float(rng.uniform(0.1, cfg.max_window))
        return round(start, 4), round(start + length, 4)

    # --- Byzantine assignments (at most f, unique pids) ---------------
    n_faults = int(rng.integers(0, f + 1))
    pids = list(rng.permutation(n)[:n_faults])
    faults = []
    for pid in pids:
        behaviour = cfg.behaviours[rng.integers(len(cfg.behaviours))]
        start, end = window()
        attrs = tuple(
            (name, round(float(rng.uniform(lo, hi)), 4))
            for name, lo, hi in _BEHAVIOUR_ATTRS.get(behaviour, [])
        )
        faults.append(
            FaultSpec(pid=int(pid), behaviour=behaviour, start=start, end=end, attrs=attrs)
        )
    faulty = {f.pid for f in faults}
    reference_pid = min(p for p in range(n) if p not in faulty)

    # --- Network conditions -------------------------------------------
    degrades = []
    for _ in range(int(rng.integers(0, 3))):
        start, end = window()
        extra = round(float(rng.uniform(0.005, 0.1)), 4)
        nodes: Optional[tuple[int, ...]] = None
        if rng.random() < 0.5:
            # Leader-targeted degradation: aim at the leader of a view
            # the run is likely to pass through (round-robin schedule).
            view = int(rng.integers(0, 8))
            nodes = (view % n,)
        degrades.append(DegradeSpec(start=start, end=end, extra_s=extra, nodes=nodes))
    isolates = []
    if rng.random() < 0.4:
        victims = [p for p in range(n) if p != reference_pid]
        node = int(victims[rng.integers(len(victims))])
        start, end = window()
        delay = round(float(rng.uniform(0.5, 2.0)), 4)
        isolates.append(IsolateSpec(node=node, start=start, end=end, delay_s=delay))

    # --- Adaptive adversary -------------------------------------------
    adaptive = None
    if rng.random() < 0.3:
        start, end = window()
        adaptive = AdaptiveSpec(
            start=start,
            end=end,
            extra_s=round(float(rng.uniform(0.01, 0.1)), 4),
            period=round(float(rng.uniform(0.05, 0.2)), 4),
        )

    # --- Asynchrony before GST ----------------------------------------
    gst = 0.0
    pre_gst_extra = 0.0
    if rng.random() < 0.3:
        gst = round(float(rng.uniform(0.1, cfg.horizon)), 4)
        pre_gst_extra = round(float(rng.uniform(0.01, 0.1)), 4)

    scenario = Scenario(
        protocol=protocol,
        f=f,
        seed=seed,
        target_blocks=int(rng.integers(cfg.min_blocks, cfg.max_blocks + 1)),
        timeout_base=cfg.timeout_base,
        latency_s=cfg.latency_s,
        gst=gst,
        pre_gst_extra=pre_gst_extra,
        max_sim_time=0.0,  # placeholder, patched below
        reference_pid=reference_pid,
        faults=tuple(faults),
        degrades=tuple(degrades),
        isolates=tuple(isolates),
        adaptive=adaptive,
    )
    budget = round(scenario.quiesce_time() + cfg.liveness_budget, 4)
    return replace(scenario, max_sim_time=budget)


__all__ = ["FuzzConfig", "DEFAULT_CONFIG", "generate_scenario"]
