"""Execute one scenario under the oracles.

``run_scenario`` is a thin layer over the canonical
:func:`repro.experiments.runner.run_experiment` path — the fuzzer does
not fork the run loop.  It contributes exactly three things:

* an ``instrument`` callback that installs the scenario's network
  conditions and adaptive adversary on the freshly-built network (and
  captures the cluster so the oracles can inspect it);
* exception containment — a genuine safety violation routinely crashes
  correct replicas afterwards (``ExecutionLog.execute`` refuses
  conflicting chains), and the harness must classify that run as a
  safety failure, not die with it;
* the oracle verdict and a :class:`~repro.analysis.RunFingerprint`
  (for replay-identity checks) packed into a :class:`FuzzResult`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from ..analysis import RunFingerprint, fingerprint_of
from ..experiments.runner import run_experiment
from ..net.conditions import degrade_window, isolate_node
from .adversary import AdaptiveLeaderDelay
from .oracles import OracleReport, judge, judge_sharded
from .scenario import Scenario

#: Either a single-cluster :class:`~repro.analysis.RunFingerprint` or a
#: :class:`~repro.shard.ShardFingerprint`; both expose ``digest()``,
#: which is all the corpus replay-identity check uses.
Fingerprint = Union[RunFingerprint, "object"]


@dataclass(frozen=True)
class FuzzResult:
    """Everything the fuzz loop / shrinker needs from one run."""

    scenario: Scenario
    report: OracleReport
    fingerprint: Optional[Fingerprint]

    @property
    def ok(self) -> bool:
        return self.report.failure is None

    @property
    def failure(self) -> Optional[str]:
        return self.report.failure

    def describe(self) -> str:
        return f"seed {self.scenario.seed}: {self.report.describe()}"


def _run_shard_scenario(scenario: Scenario) -> FuzzResult:
    """The sharded run path: k clusters, 2PC, the atomicity oracle.

    Network conditions and the adaptive adversary are installed on
    *every* shard fabric; the shard spec's ``decision_delay_s`` becomes
    a coordinator-targeted :func:`degrade_window` (the coordinator's
    well-known pid names its port on each fabric), stretching the
    window between prepare and decision where a broken 2PC layering
    would apply a partial transfer.
    """
    from ..experiments.shard import run_sharded
    from ..shard import COORDINATOR_PID

    captured: dict = {}
    spec = scenario.shard

    def instrument(sim, networks, clusters) -> None:
        captured["clusters"] = clusters
        captured["run_objects"] = (sim, networks)
        for network, cluster in zip(networks, clusters):
            for d in scenario.degrades:
                degrade_window(network, d.start, d.end, d.extra_s, nodes=d.nodes)
            for iso in scenario.isolates:
                isolate_node(
                    network, iso.node, iso.start, iso.end, delay_s=iso.delay_s
                )
            if scenario.adaptive is not None:
                AdaptiveLeaderDelay(scenario.adaptive).install(
                    sim, network, cluster
                )
            if spec.decision_delay_s > 0 and spec.delay_end > spec.delay_start:
                degrade_window(
                    network,
                    spec.delay_start,
                    spec.delay_end,
                    spec.decision_delay_s,
                    nodes=(COORDINATOR_PID,),
                )

    config = scenario.to_experiment_config()
    plan = scenario.fault_plan()
    factory = plan.factory() if plan.faults else None
    crashed: Optional[str] = None
    run = None
    try:
        run = run_sharded(
            config,
            instrument=instrument,
            reference_pid=scenario.reference_pid,
            replica_factory=factory,
        )
    except Exception as exc:  # noqa: BLE001 - classified by the oracles
        if "clusters" not in captured:
            raise  # setup failure: a fuzzer bug, not a protocol finding
        crashed = f"{type(exc).__name__}: {exc}"
    clusters = run.clusters if run is not None else captured["clusters"]
    report = judge_sharded(scenario, clusters, crashed=crashed)
    fingerprint = run.fingerprint if run is not None and crashed is None else None
    return FuzzResult(scenario=scenario, report=report, fingerprint=fingerprint)


def run_scenario(scenario: Scenario) -> FuzzResult:
    """Run ``scenario`` to completion (or crash) and judge it."""
    if scenario.shard is not None:
        return _run_shard_scenario(scenario)
    captured: dict = {}

    def instrument(sim, network, cluster) -> None:
        captured["sim"] = sim
        captured["network"] = network
        captured["cluster"] = cluster
        for d in scenario.degrades:
            degrade_window(network, d.start, d.end, d.extra_s, nodes=d.nodes)
        for iso in scenario.isolates:
            isolate_node(network, iso.node, iso.start, iso.end, delay_s=iso.delay_s)
        if scenario.adaptive is not None:
            AdaptiveLeaderDelay(scenario.adaptive).install(sim, network, cluster)

    config = scenario.to_experiment_config()
    plan = scenario.fault_plan()
    factory = plan.factory() if plan.faults else None
    crashed: Optional[str] = None
    try:
        # The runner's result (metrics folded from its RNG streams) is
        # discarded — the oracles read the captured cluster directly.
        run_experiment(  # repro: lint-ignore[stream-purity]
            config,
            replica_factory=factory,
            enable_message_log=True,
            instrument=instrument,
            reference_pid=scenario.reference_pid,
        )
    except Exception as exc:  # noqa: BLE001 - classified by the oracles
        if "cluster" not in captured:
            raise  # setup failure: a fuzzer bug, not a protocol finding
        crashed = f"{type(exc).__name__}: {exc}"
    cluster = captured["cluster"]
    report = judge(scenario, cluster, crashed=crashed)
    fingerprint = None
    if crashed is None:
        fingerprint = fingerprint_of(
            scenario.protocol,
            scenario.seed,
            captured["sim"],
            captured["network"],
            cluster.collector,
        )
    return FuzzResult(scenario=scenario, report=report, fingerprint=fingerprint)


__all__ = ["FuzzResult", "run_scenario"]
