"""Execute one scenario under the oracles.

``run_scenario`` is a thin layer over the canonical
:func:`repro.experiments.runner.run_experiment` path — the fuzzer does
not fork the run loop.  It contributes exactly three things:

* an ``instrument`` callback that installs the scenario's network
  conditions and adaptive adversary on the freshly-built network (and
  captures the cluster so the oracles can inspect it);
* exception containment — a genuine safety violation routinely crashes
  correct replicas afterwards (``ExecutionLog.execute`` refuses
  conflicting chains), and the harness must classify that run as a
  safety failure, not die with it;
* the oracle verdict and a :class:`~repro.analysis.RunFingerprint`
  (for replay-identity checks) packed into a :class:`FuzzResult`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..analysis import RunFingerprint, fingerprint_of
from ..experiments.runner import run_experiment
from ..net.conditions import degrade_window, isolate_node
from .adversary import AdaptiveLeaderDelay
from .oracles import OracleReport, judge
from .scenario import Scenario


@dataclass(frozen=True)
class FuzzResult:
    """Everything the fuzz loop / shrinker needs from one run."""

    scenario: Scenario
    report: OracleReport
    fingerprint: Optional[RunFingerprint]

    @property
    def ok(self) -> bool:
        return self.report.failure is None

    @property
    def failure(self) -> Optional[str]:
        return self.report.failure

    def describe(self) -> str:
        return f"seed {self.scenario.seed}: {self.report.describe()}"


def run_scenario(scenario: Scenario) -> FuzzResult:
    """Run ``scenario`` to completion (or crash) and judge it."""
    captured: dict = {}

    def instrument(sim, network, cluster) -> None:
        captured["sim"] = sim
        captured["network"] = network
        captured["cluster"] = cluster
        for d in scenario.degrades:
            degrade_window(network, d.start, d.end, d.extra_s, nodes=d.nodes)
        for iso in scenario.isolates:
            isolate_node(network, iso.node, iso.start, iso.end, delay_s=iso.delay_s)
        if scenario.adaptive is not None:
            AdaptiveLeaderDelay(scenario.adaptive).install(sim, network, cluster)

    config = scenario.to_experiment_config()
    plan = scenario.fault_plan()
    factory = plan.factory() if plan.faults else None
    crashed: Optional[str] = None
    try:
        # The runner's result (metrics folded from its RNG streams) is
        # discarded — the oracles read the captured cluster directly.
        run_experiment(  # repro: lint-ignore[stream-purity]
            config,
            replica_factory=factory,
            enable_message_log=True,
            instrument=instrument,
            reference_pid=scenario.reference_pid,
        )
    except Exception as exc:  # noqa: BLE001 - classified by the oracles
        if "cluster" not in captured:
            raise  # setup failure: a fuzzer bug, not a protocol finding
        crashed = f"{type(exc).__name__}: {exc}"
    cluster = captured["cluster"]
    report = judge(scenario, cluster, crashed=crashed)
    fingerprint = None
    if crashed is None:
        fingerprint = fingerprint_of(
            scenario.protocol,
            scenario.seed,
            captured["sim"],
            captured["network"],
            cluster.collector,
        )
    return FuzzResult(scenario=scenario, report=report, fingerprint=fingerprint)


__all__ = ["FuzzResult", "run_scenario"]
