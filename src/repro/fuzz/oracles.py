"""Safety and liveness oracles for fuzzed runs.

Every generated scenario is judged by both:

* **safety** — restricted to *correct* replicas: the equivocation
  oracle (no view decides two blocks, per-replica chains
  prefix-consistent — :func:`repro.analysis.find_equivocations`) plus
  a direct :func:`repro.smr.prefix_agreement` over the execution logs.
  A run that crashed a correct replica mid-commit is still examined:
  whatever decisions were recorded before the crash are evidence.
* **liveness** — after the scenario quiesces (fault windows closed,
  conditions lifted, GST passed) the reference replica must reach the
  target block count within the scenario's generous sim-time budget.

Failures rank ``safety > crash > liveness``: a safety violation is
reported even when the run also stalled or raised, because a fork
routinely *causes* downstream crashes (``ExecutionLog`` refuses
conflicting executions) and the fork is the root cause worth shrinking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..analysis import find_equivocations
from ..protocols.common import Cluster
from ..smr import prefix_agreement
from .scenario import Scenario

#: Failure kinds, most severe first.
SAFETY = "safety"
CRASH = "crash"
LIVENESS = "liveness"


@dataclass(frozen=True)
class OracleReport:
    """Verdict of both oracles on one run."""

    safety_problems: tuple[str, ...]
    blocks_decided: int
    target_blocks: int
    crashed: Optional[str] = None

    @property
    def safety_ok(self) -> bool:
        return not self.safety_problems

    @property
    def liveness_ok(self) -> bool:
        return self.blocks_decided >= self.target_blocks

    @property
    def failure(self) -> Optional[str]:
        """Most severe failure kind, or None for a clean run."""
        if not self.safety_ok:
            return SAFETY
        if self.crashed is not None:
            return CRASH
        if not self.liveness_ok:
            return LIVENESS
        return None

    def describe(self) -> str:
        if self.failure is None:
            return f"ok ({self.blocks_decided}/{self.target_blocks} blocks)"
        if self.failure == SAFETY:
            return "SAFETY: " + "; ".join(self.safety_problems)
        if self.failure == CRASH:
            return f"CRASH: {self.crashed}"
        return (
            f"LIVENESS: {self.blocks_decided}/{self.target_blocks} "
            "blocks by deadline"
        )


def check_safety(cluster: Cluster) -> list[str]:
    """Safety problems among the cluster's correct replicas."""
    correct = cluster.correct_replicas()
    correct_pids = {r.pid for r in correct}
    problems = find_equivocations(cluster.collector, replicas=correct_pids)
    if correct and not prefix_agreement([r.log for r in correct]):
        problems.append("correct replicas' execution logs are not prefix-consistent")
    return problems


def judge(
    scenario: Scenario, cluster: Cluster, crashed: Optional[str] = None
) -> OracleReport:
    """Run both oracles over a finished (or crashed) run."""
    reference = cluster.replicas[scenario.reference_pid]
    return OracleReport(
        safety_problems=tuple(check_safety(cluster)),
        blocks_decided=len(reference.log),
        target_blocks=scenario.target_blocks,
        crashed=crashed,
    )


def judge_sharded(
    scenario: Scenario,
    shard_clusters: list[Cluster],
    crashed: Optional[str] = None,
) -> OracleReport:
    """Joint verdict over a sharded run.

    Per-shard safety (equivocation + prefix agreement) plus the
    cross-shard atomicity oracle — a partial multi-key commit is a
    *safety* failure (it is disagreement about committed state, exactly
    what shrinking should chase).  Liveness requires every shard's
    reference replica to reach the target block count.
    """
    from ..shard import check_atomicity

    problems: list[str] = []
    for shard, cluster in enumerate(shard_clusters):
        problems += [f"shard {shard}: {p}" for p in check_safety(cluster)]
    problems += check_atomicity(shard_clusters).violations
    blocks = min(
        len(c.replicas[scenario.reference_pid].log) for c in shard_clusters
    )
    return OracleReport(
        safety_problems=tuple(problems),
        blocks_decided=blocks,
        target_blocks=scenario.target_blocks,
        crashed=crashed,
    )


__all__ = [
    "OracleReport",
    "check_safety",
    "judge",
    "judge_sharded",
    "SAFETY",
    "CRASH",
    "LIVENESS",
]
