"""Seed-driven adversarial scenario fuzzing (the correctness-tooling
counterpart to :mod:`repro.bench`).

Pipeline: :func:`generate_scenario` expands an integer seed into a
:class:`Scenario` (Byzantine assignments, partitions, WAN churn,
leader-targeted and adaptive degradation, TEE restart storms);
:func:`run_scenario` executes it through the canonical experiment
runner under the safety and liveness oracles; :func:`shrink` minimizes
any failure; :mod:`repro.fuzz.corpus` serializes counterexamples as
JSON repro files that replay byte-identically.

CLI: ``oneshot-repro fuzz run|replay|shrink``.
"""

from .adversary import AdaptiveLeaderDelay
from .corpus import (
    FORMAT,
    ReplayMismatch,
    ReproFile,
    corpus_paths,
    load_repro,
    make_repro,
    replay_repro,
    save_repro,
)
from .generator import DEFAULT_CONFIG, FuzzConfig, generate_scenario
from .harness import FuzzResult, run_scenario
from .oracles import (
    CRASH,
    LIVENESS,
    SAFETY,
    OracleReport,
    check_safety,
    judge,
    judge_sharded,
)
from .scenario import (
    AdaptiveSpec,
    DegradeSpec,
    FaultSpec,
    IsolateSpec,
    Scenario,
    ShardSpec,
)
from .shrinker import ShrinkOutcome, shrink

__all__ = [
    "AdaptiveLeaderDelay",
    "FORMAT",
    "ReplayMismatch",
    "ReproFile",
    "corpus_paths",
    "load_repro",
    "make_repro",
    "replay_repro",
    "save_repro",
    "DEFAULT_CONFIG",
    "FuzzConfig",
    "generate_scenario",
    "FuzzResult",
    "run_scenario",
    "CRASH",
    "LIVENESS",
    "SAFETY",
    "OracleReport",
    "check_safety",
    "judge",
    "judge_sharded",
    "AdaptiveSpec",
    "DegradeSpec",
    "FaultSpec",
    "IsolateSpec",
    "Scenario",
    "ShardSpec",
    "ShrinkOutcome",
    "shrink",
]
