"""Workload-engine benchmarks: million-client open-loop load on one core.

The tier gates the ISSUE-8 targets directly:

* ``virtual_clients`` — the simulated open-loop population of the
  timed run (≥ 1,000,000);
* ``offered_tx_per_wall_sec`` — arrivals pumped through the simulator,
  the network fabric and the batched mempool ingest per *wall-clock*
  second (≥ 100,000 on one core);
* ``collector_state_records`` — retained records in the streaming
  collector after a long synthetic run (bounded, not load-dependent);
* ``workload_determinism`` — 1.0 iff two same-seed runs produce
  bit-identical slab streams.

This module (like :mod:`repro.bench.kernel`) is one of the few places
allowed to read the wall clock: elapsed real time *is* the
measurement, so the determinism lint rule is suppressed for it in
``pyproject.toml``.
"""

from __future__ import annotations

import time

from ..metrics import MetricsCollector
from ..net import Network
from ..sim import DEFAULT_KERNEL, Simulator
from ..smr import Mempool
from ..workload import SuperposedArrivals, attach_workload
from .harness import BenchMetric, BenchReport

#: Population used by the timed runs — the ISSUE-8 scale target.
MILLION = 1_000_000


def bench_arrival_generation(
    arrivals: int = 500_000, n_clients: int = MILLION
) -> BenchMetric:
    """Raw slab minting: superposed draws + vectorized tx-id numbering."""
    sim = Simulator(seed=1)
    gen = SuperposedArrivals(
        sim.rng.stream(
            "workload.region0.arrivals", purpose="aggregated open-loop arrivals"
        ),
        n_clients=n_clients,
        rate_tps=100_000.0,
    )
    rows = 512
    start = time.perf_counter()
    for _ in range(arrivals // rows):
        gen.next_slab(rows)
    elapsed = time.perf_counter() - start
    return BenchMetric(
        "arrival_gen_per_sec", gen.minted / elapsed, "arrivals/s"
    )


def bench_mempool_batch_ingest(
    arrivals: int = 400_000, n_clients: int = MILLION
) -> BenchMetric:
    """Columnar dedup + slab admission into one replica's mempool."""
    sim = Simulator(seed=2)
    gen = SuperposedArrivals(
        sim.rng.stream(
            "workload.region0.arrivals", purpose="aggregated open-loop arrivals"
        ),
        n_clients=n_clients,
        rate_tps=100_000.0,
    )
    rows = 512
    slabs = [gen.next_slab(rows) for _ in range(arrivals // rows)]
    mp = Mempool(batch_size=400)
    total = 0
    start = time.perf_counter()
    for slab in slabs:
        total += mp.submit_batch(slab)
    elapsed = time.perf_counter() - start
    return BenchMetric(
        "mempool_batch_ingest_per_sec", total / elapsed, "txs/s"
    )


class _MempoolSink:
    """Replica stand-in: slab messages straight into a mempool."""

    def __init__(self, sim: Simulator, pid: int) -> None:
        self.sim = sim
        self.pid = pid
        self.mempool = Mempool(batch_size=400)

    def on_message(self, sender: int, payload) -> None:
        self.mempool.submit_batch(payload.batch)


def _offered_load_run(
    seed: int, sim_seconds: float, n_replicas: int = 4
) -> tuple[float, int, list]:
    """One timed engine run; returns (wall seconds, txs offered, slabs).

    The full arrival path is exercised: slab minting, simulator events,
    network multicast fan-out (4 replicas), batched mempool dedup.
    """
    sim = Simulator(seed=seed)
    network = Network(sim)
    sinks = [_MempoolSink(sim, pid) for pid in range(n_replicas)]
    for s in sinks:
        network.register(s)
    engine = attach_workload(
        sim,
        network,
        list(range(n_replicas)),
        offered_tps=200_000.0,
        virtual_clients=MILLION,
        regions=4,
    )
    engine.start()
    start = time.perf_counter()
    sim.run(until=sim_seconds)
    elapsed = time.perf_counter() - start
    engine.stop()
    fingerprint = [
        (len(s), float(s.submit_times[-1]), int(s.client_ids[0]))
        for g in engine.generators
        for s in [g.next_slab(64)]
    ]
    return elapsed, engine.txs_offered, fingerprint


def bench_offered_load(sim_seconds: float = 2.0) -> list[BenchMetric]:
    """The headline gate: offered tx/s per wall-clock second, plus the
    determinism cross-check (two same-seed runs, identical streams)."""
    elapsed, offered, fp_a = _offered_load_run(seed=3, sim_seconds=sim_seconds)
    _, offered_b, fp_b = _offered_load_run(seed=3, sim_seconds=sim_seconds)
    deterministic = 1.0 if (offered == offered_b and fp_a == fp_b) else 0.0
    return [
        BenchMetric("virtual_clients", float(MILLION), "clients"),
        BenchMetric(
            "offered_tx_per_wall_sec", offered / elapsed, "txs/s"
        ),
        BenchMetric("workload_determinism", deterministic, "bool"),
    ]


def bench_streaming_collector(blocks: int = 20_000) -> list[BenchMetric]:
    """Streaming-metrics fold rate and its memory bound."""
    sim = Simulator(seed=4)
    col = MetricsCollector(
        streaming=True,
        n_replicas=4,
        reservoir_rng=sim.rng.stream(
            "metrics.reservoir", purpose="streaming latency reservoir"
        ),
    )
    start = time.perf_counter()
    for b in range(blocks):
        h = b.to_bytes(8, "little")
        t0 = 0.1 + b * 0.01
        col.on_propose(0, b, h, t0)
        for r in range(4):
            col.on_execute(r, b, h, 400, t0 + 0.05 + 1e-4 * r, "normal")
    elapsed = time.perf_counter() - start
    col.flush()
    return [
        BenchMetric(
            "streaming_folds_per_sec", blocks * 4 / elapsed, "reports/s"
        ),
        BenchMetric(
            "collector_state_records", float(col.state_size()), "records"
        ),
    ]


def run_workload_bench(
    quick: bool = False, kernel: str = DEFAULT_KERNEL
) -> BenchReport:
    """Run every workload-engine bench; ``quick`` shrinks the timed
    spans for smoke tests (rates stay comparable, noise grows).

    ``kernel`` is accepted for registry uniformity; the engine is
    kernel-agnostic (slab events ride whichever substrate is active).
    """
    scale = 10 if quick else 1
    report = BenchReport(name="workload")
    report.add(bench_arrival_generation(500_000 // scale))
    report.add(bench_mempool_batch_ingest(400_000 // scale))
    for m in bench_offered_load(sim_seconds=2.0 / scale):
        report.add(m)
    for m in bench_streaming_collector(20_000 // scale):
        report.add(m)
    return report


__all__ = [
    "MILLION",
    "bench_arrival_generation",
    "bench_mempool_batch_ingest",
    "bench_offered_load",
    "bench_streaming_collector",
    "run_workload_bench",
]
