"""End-to-end consensus benchmark: one full OneShot run, timed.

The microbenches in :mod:`repro.bench.kernel` isolate hot paths; this
bench answers the question that actually matters for experiment
turnaround — how fast does a complete protocol run (replicas, network,
crypto, metrics) execute in *wall* time?  Simulated-time results are
deterministic; only the wall-clock rates measured here vary.

Wall-clock reads are the measurement, so the determinism lint rule is
suppressed for this module in ``pyproject.toml``.
"""

from __future__ import annotations

import time

from ..experiments.config import ExperimentConfig
from ..experiments.runner import run_experiment
from .harness import BenchMetric, BenchReport


def run_e2e_bench(
    quick: bool = False, seed: int = 7, kernel: str = "scalar"
) -> BenchReport:
    """Time one saturated OneShot run (f=1, constant 2 ms links).

    Reported rates are wall-clock (events and committed transactions
    per real second) plus the run's wall duration itself.

    An untimed full-size warmup run precedes the measurement: unlike
    the microbench tiers (which time thousands of iterations), this
    tier times a *single* run, and a cold process measures 10–25%
    slower than a warm one (CPU frequency ramp, allocator/caches) —
    enough to trip the regression gate on pure noise.  Shorter warmups
    measurably under-warm (see EXPERIMENTS.md), so the warmup matches
    the timed run's size and uses a different seed so its memoized
    digests cannot subsidize the timed run.
    """
    config = ExperimentConfig(
        protocol="oneshot",
        f=1,
        payload_bytes=0,
        deployment="local",
        local_latency_s=0.002,
        target_blocks=12 if quick else 50,
        timeout_base=0.5,
        seed=seed,
        kernel=kernel,
    )
    warmup = ExperimentConfig(
        protocol="oneshot",
        f=1,
        payload_bytes=0,
        deployment="local",
        local_latency_s=0.002,
        target_blocks=12 if quick else 50,
        timeout_base=0.5,
        seed=seed + 1,
        kernel=kernel,
    )
    run_experiment(warmup)
    start = time.perf_counter()
    result = run_experiment(config)
    elapsed = time.perf_counter() - start

    report = BenchReport(name="e2e")
    report.add(
        BenchMetric(
            "events_per_sec", result.sim.events_executed / elapsed, "events/s"
        )
    )
    report.add(
        BenchMetric(
            "tx_per_wall_sec", result.stats.txs_decided / elapsed, "tx/s"
        )
    )
    report.add(
        BenchMetric("wall_seconds", elapsed, "s", higher_is_better=False)
    )
    return report


__all__ = ["run_e2e_bench"]
