"""End-to-end consensus benchmark: one full OneShot run, timed.

The microbenches in :mod:`repro.bench.kernel` isolate hot paths; this
bench answers the question that actually matters for experiment
turnaround — how fast does a complete protocol run (replicas, network,
crypto, metrics) execute in *wall* time?  Simulated-time results are
deterministic; only the wall-clock rates measured here vary.

Wall-clock reads are the measurement, so the determinism lint rule is
suppressed for this module in ``pyproject.toml``.
"""

from __future__ import annotations

import time

from ..experiments.config import ExperimentConfig
from ..experiments.runner import run_experiment
from .harness import BenchMetric, BenchReport


def run_e2e_bench(
    quick: bool = False, seed: int = 7, kernel: str = "scalar"
) -> BenchReport:
    """Time one saturated OneShot run (f=1, constant 2 ms links).

    Reported rates are wall-clock (events and committed transactions
    per real second) plus the run's wall duration itself.

    An untimed full-size warmup run precedes the measurement: a cold
    process measures 10–25% slower than a warm one (CPU frequency
    ramp, allocator/caches) — enough to trip the regression gate on
    pure noise.  Shorter warmups measurably under-warm (see
    EXPERIMENTS.md), so the warmup matches the timed runs' size.

    The measurement itself is **best-of-3**: each timed run lasts only
    ~0.1 s of wall clock, so single samples swing ±25% with scheduler
    and frequency jitter — wide enough that a healthy tree can trip
    the gate and a regressed one can sneak through.  The minimum
    elapsed time (equivalently the maximum rate) is the standard
    low-noise estimator of a run's true cost; transient interference
    only ever makes a sample *slower*.  Every run — warmup included —
    uses a distinct seed so cross-run digest memos cannot subsidize a
    later sample.
    """

    def _cfg(s: int) -> ExperimentConfig:
        return ExperimentConfig(
            protocol="oneshot",
            f=1,
            payload_bytes=0,
            deployment="local",
            local_latency_s=0.002,
            target_blocks=12 if quick else 50,
            timeout_base=0.5,
            seed=s,
            kernel=kernel,
        )

    run_experiment(_cfg(seed + 1))  # warmup
    best_events = best_txs = 0.0
    best_elapsed = float("inf")
    for rep in range(3):
        start = time.perf_counter()
        result = run_experiment(_cfg(seed + 2 * (rep + 1)))
        elapsed = time.perf_counter() - start
        best_elapsed = min(best_elapsed, elapsed)
        best_events = max(best_events, result.sim.events_executed / elapsed)
        best_txs = max(best_txs, result.stats.txs_decided / elapsed)

    report = BenchReport(name="e2e")
    report.add(BenchMetric("events_per_sec", best_events, "events/s"))
    report.add(BenchMetric("tx_per_wall_sec", best_txs, "tx/s"))
    report.add(
        BenchMetric("wall_seconds", best_elapsed, "s", higher_is_better=False)
    )
    return report


__all__ = ["run_e2e_bench"]
