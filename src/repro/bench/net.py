"""Network microbenchmarks: the multicast fast path in isolation.

Every decided block costs ``O(n)`` broadcasts per phase, so after the
kernel and crypto fast paths the simulated network fabric is the
dominant wall-clock cost of the e2e tier.  This tier times the pieces
the network fast path targets — vectorized multicast fan-out vs the
scalar per-destination loop, FIFO-link fan-out, topology-jitter batch
sampling, and bulk event scheduling — and derives the speedup gate
``multicast_fastpath_speedup`` (fast path over scalar reference).

This module (like :mod:`repro.bench.kernel`) is one of the few places
allowed to read the wall clock: elapsed real time *is* the
measurement, so the determinism lint rule is suppressed for it in
``pyproject.toml``.
"""

from __future__ import annotations

import time

from ..net import Network, UniformLatency
from ..net.latency import TopologyLatency
from ..net.message import HEADER_BYTES, payload_size
from ..net.regions import WORLD11
from ..sim import DEFAULT_KERNEL, Process, Simulator
from .harness import BenchMetric, BenchReport


class _Sink(Process):
    """Message sink for the fan-out benches."""

    def on_message(self, sender: int, payload: object) -> None:
        pass


def _fanout_net(
    n: int, seed: int = 1, kernel: str = DEFAULT_KERNEL, **kwargs
) -> tuple[Simulator, Network]:
    sim = Simulator(seed=seed, kernel=kernel)
    network = Network(sim, **kwargs)
    for pid in range(n):
        network.register(_Sink(sim, pid))
    return sim, network


def bench_multicast_fast(
    rounds: int = 1_000, n: int = 61, kernel: str = DEFAULT_KERNEL
) -> BenchMetric:
    """Leader-broadcast fan-out through the vectorized multicast path
    (batched sampling, bulk ``schedule_many`` insert).

    Only the fan-out itself is timed: deliveries are drained between
    rounds *outside* the timed window, because the delivery side is
    byte-for-byte the same work in the fast and scalar variants and
    would only dilute the ratio this microbench gates on.  The default
    ``n=61`` is a 3f+1 deployment with f=20 — the batch amortization
    the fast path exists for shows at the paper's larger scales.
    """
    sim, network = _fanout_net(n, kernel=kernel)
    dsts = tuple(range(1, n))
    payload = "bench-payload"
    elapsed = 0.0
    for _ in range(rounds):
        start = time.perf_counter()
        network.multicast(0, dsts, payload)
        elapsed += time.perf_counter() - start
        sim.run()
    return BenchMetric(
        "multicast_fast_sends_per_sec", rounds * len(dsts) / elapsed, "sends/s"
    )


def bench_multicast_scalar(
    rounds: int = 1_000, n: int = 61, kernel: str = DEFAULT_KERNEL
) -> BenchMetric:
    """The same fan-out through the pre-fast-path scalar reference: one
    :meth:`Network._send_one` call per destination (payload sized once
    per round, exactly the old ``multicast`` body).  Timed like
    :func:`bench_multicast_fast` — fan-out only, drain untimed."""
    sim, network = _fanout_net(n, kernel=kernel)
    dsts = tuple(range(1, n))
    payload = "bench-payload"
    elapsed = 0.0
    for _ in range(rounds):
        start = time.perf_counter()
        size = payload_size(payload) + HEADER_BYTES
        now = sim.now
        send_one = network._send_one
        for dst in dsts:
            send_one(0, dst, payload, size, now)
        elapsed += time.perf_counter() - start
        sim.run()
    return BenchMetric(
        "multicast_scalar_sends_per_sec", rounds * len(dsts) / elapsed, "sends/s"
    )


def bench_fifo_multicast(
    rounds: int = 1_000, n: int = 61, kernel: str = DEFAULT_KERNEL
) -> BenchMetric:
    """Fan-out over jittered FIFO (TCP-style) links: the fast path must
    keep the per-link clock while batching everything else."""
    sim, network = _fanout_net(
        n, kernel=kernel, latency=UniformLatency(0.001, 0.01), fifo_links=True
    )
    dsts = tuple(range(1, n))
    payload = "bench-payload"
    elapsed = 0.0
    for _ in range(rounds):
        start = time.perf_counter()
        network.multicast(0, dsts, payload)
        elapsed += time.perf_counter() - start
        sim.run()
    return BenchMetric(
        "fifo_multicast_sends_per_sec", rounds * len(dsts) / elapsed, "sends/s"
    )


def bench_topology_jitter(batches: int = 2_000, n: int = 33) -> BenchMetric:
    """Batched log-normal jitter sampling over the world topology: one
    ``sample_many`` call per multicast-sized destination vector."""
    model = TopologyLatency(WORLD11, sigma=0.06)
    sim = Simulator(seed=1)
    rng = sim.rng.stream("bench.net", purpose="topology jitter bench")
    dsts = list(range(1, n))
    start = time.perf_counter()
    for _ in range(batches):
        model.sample_many(0, dsts, rng)
    elapsed = time.perf_counter() - start
    return BenchMetric(
        "topology_jitter_samples_per_sec",
        batches * len(dsts) / elapsed,
        "samples/s",
    )


def bench_schedule_many(
    batches: int = 2_000, k: int = 64, kernel: str = DEFAULT_KERNEL
) -> BenchMetric:
    """Bulk event insertion: ``schedule_many`` with multicast-sized
    batches against a busy heap."""
    sim = Simulator(seed=1, kernel=kernel)

    def noop(i: int) -> None:
        pass

    times = [float(i) for i in range(1, k + 1)]
    argss = [(i,) for i in range(k)]
    start = time.perf_counter()
    for _ in range(batches):
        sim.schedule_many(times, noop, argss)
        sim.run()
        times = [t + k for t in times]
    elapsed = time.perf_counter() - start
    return BenchMetric(
        "schedule_many_events_per_sec", batches * k / elapsed, "events/s"
    )


def run_net_bench(
    quick: bool = False, kernel: str = DEFAULT_KERNEL
) -> BenchReport:
    """Run every network microbench; ``quick`` shrinks iteration counts
    for smoke tests (rates stay comparable, noise grows).

    The derived ``multicast_fastpath_speedup`` metric is the tier's
    gate: the vectorized multicast path must stay well ahead of the
    scalar per-destination reference.
    """
    scale = 10 if quick else 1
    report = BenchReport(name="net")
    fast = bench_multicast_fast(1_000 // scale, kernel=kernel)
    scalar = bench_multicast_scalar(1_000 // scale, kernel=kernel)
    report.add(fast)
    report.add(scalar)
    report.add(
        BenchMetric(
            "multicast_fastpath_speedup", fast.value / scalar.value, "x"
        )
    )
    report.add(bench_fifo_multicast(1_000 // scale, kernel=kernel))
    report.add(bench_topology_jitter(2_000 // scale))
    report.add(bench_schedule_many(2_000 // scale, kernel=kernel))
    return report


__all__ = [
    "bench_multicast_fast",
    "bench_multicast_scalar",
    "bench_fifo_multicast",
    "bench_topology_jitter",
    "bench_schedule_many",
    "run_net_bench",
]
