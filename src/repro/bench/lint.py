"""Analyzer benchmarks: the whole-program lint's own cost is gated too.

``tests/analysis`` runs the full lint as part of tier-1 and the
pre-commit habit is ``oneshot-repro lint`` on every change, so analyzer
wall-time is developer-loop latency exactly like the simulation
kernel's — and the interprocedural passes (call-graph build, taint
fixpoints) are the kind of code whose cost quietly goes quadratic with
an innocent-looking change.  This tier pins:

* ``lint_cold_wall_s`` — a full ``lint_package()`` run with the
  memoized project index dropped first: the cost of a cold
  ``oneshot-repro lint`` invocation (the acceptance bound is "well
  under 30 s"; the baseline is two orders of magnitude below that);
* ``index_build_wall_s`` — the :class:`ProjectIndex` construction
  alone (symbol table, alias resolution, attribute-type fixpoint,
  call-graph edges): the piece every whole-program pass shares;
* ``lint_warm_wall_s`` — a second ``lint_package()`` with the index
  memo warm, which is what the 3× repeated calls in the analysis test
  suite pay.

This module (like the other bench tiers) is allowed to read the wall
clock: elapsed real time *is* the measurement, so the determinism rule
is suppressed for it in ``pyproject.toml``.
"""

from __future__ import annotations

import time

from ..analysis import lint_package
from ..analysis.callgraph import build_project_index, clear_index_cache
from ..analysis.engine import LintEngine
from .harness import BenchMetric, BenchReport


def _load_modules():
    from pathlib import Path

    import repro

    root = Path(repro.__file__).resolve().parent
    eng = LintEngine()
    modules = {}
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root.parent).as_posix()
        modules[rel] = eng.load_module(path, rel)
    return modules


def bench_lint_cold(repeats: int = 3) -> BenchMetric:
    """Full lint of the installed package, cold index each time."""
    best = float("inf")
    for _ in range(repeats):
        clear_index_cache()
        start = time.perf_counter()
        report = lint_package()
        elapsed = time.perf_counter() - start
        assert report.modules_checked > 50
        best = min(best, elapsed)
    return BenchMetric("lint_cold_wall_s", best, "s", higher_is_better=False)


def bench_index_build(repeats: int = 3) -> BenchMetric:
    """Project index construction alone (parse excluded)."""
    modules = _load_modules()
    best = float("inf")
    for _ in range(repeats):
        clear_index_cache()
        start = time.perf_counter()
        build_project_index(modules, use_cache=False)
        best = min(best, time.perf_counter() - start)
    return BenchMetric("index_build_wall_s", best, "s", higher_is_better=False)


def bench_lint_warm(repeats: int = 3) -> BenchMetric:
    """Repeat lint with the index memo warm (test-suite pattern)."""
    clear_index_cache()
    lint_package()  # prime the memo
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        lint_package()
        best = min(best, time.perf_counter() - start)
    return BenchMetric("lint_warm_wall_s", best, "s", higher_is_better=False)


def run_lint_bench(quick: bool = False) -> BenchReport:
    """Run the analyzer benches; ``quick`` takes single measurements."""
    repeats = 1 if quick else 3
    report = BenchReport(name="lint")
    report.add(bench_lint_cold(repeats))
    report.add(bench_index_build(repeats))
    report.add(bench_lint_warm(repeats))
    return report


__all__ = [
    "bench_index_build",
    "bench_lint_cold",
    "bench_lint_warm",
    "run_lint_bench",
]
