"""Benchmark report model and regression comparison.

A bench run produces a :class:`BenchReport` — a named set of
:class:`BenchMetric` values — serialized to JSON with sorted keys so
reports diff cleanly.  :func:`compare` checks a fresh report against a
recorded baseline: every metric's *speedup* (>1 = faster than the
baseline, regardless of the metric's direction) must stay above
``1 - tolerance``, otherwise the metric counts as a regression and the
``oneshot-repro bench`` CLI exits nonzero without overwriting the
baseline file.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

#: Default allowed slowdown before a metric counts as a regression.
#: Wall-clock benches on shared CI machines are noisy; 25 % headroom
#: catches real (algorithmic) regressions without flaking on jitter.
DEFAULT_TOLERANCE = 0.25


@dataclass(frozen=True)
class BenchMetric:
    """One measured quantity.

    ``higher_is_better`` controls the regression direction: True for
    rates (events/s, tx/s), False for durations (wall seconds).
    """

    name: str
    value: float
    unit: str
    higher_is_better: bool = True


@dataclass
class BenchReport:
    """A named collection of metrics, with optional baseline speedups."""

    name: str
    metrics: dict[str, BenchMetric] = field(default_factory=dict)
    #: metric name -> speedup vs the baseline report (filled by
    #: :func:`annotate_speedups`; absent on a first run).
    speedup_vs_baseline: dict[str, float] = field(default_factory=dict)

    def add(self, metric: BenchMetric) -> None:
        self.metrics[metric.name] = metric

    # -- serialization --------------------------------------------------
    def to_json(self) -> str:
        payload = {
            "name": self.name,
            "metrics": {
                m.name: {
                    "value": m.value,
                    "unit": m.unit,
                    "higher_is_better": m.higher_is_better,
                }
                for m in self.metrics.values()
            },
            "speedup_vs_baseline": self.speedup_vs_baseline,
        }
        return json.dumps(payload, sort_keys=True, indent=2) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "BenchReport":
        raw = json.loads(text)
        report = cls(name=raw["name"])
        for name, m in raw["metrics"].items():
            report.add(
                BenchMetric(
                    name=name,
                    value=float(m["value"]),
                    unit=m["unit"],
                    higher_is_better=bool(m["higher_is_better"]),
                )
            )
        report.speedup_vs_baseline = {
            k: float(v) for k, v in raw.get("speedup_vs_baseline", {}).items()
        }
        return report

    def write(self, path: Path) -> None:
        path.write_text(self.to_json())

    @classmethod
    def load(cls, path: Path) -> "BenchReport":
        return cls.from_json(path.read_text())


@dataclass(frozen=True)
class MetricDelta:
    """One metric's change vs the baseline."""

    name: str
    current: float
    baseline: float
    #: Normalized improvement factor: >1 = better than baseline in the
    #: metric's own direction (rate up, or duration down).
    speedup: float
    regressed: bool


def compare(
    current: BenchReport,
    baseline: BenchReport,
    tolerance: float = DEFAULT_TOLERANCE,
) -> list[MetricDelta]:
    """Diff ``current`` against ``baseline``, metric by metric.

    Metrics present in only one report are skipped (renaming a bench is
    not a regression); deltas are ordered by metric name.
    """
    deltas: list[MetricDelta] = []
    for name in sorted(current.metrics):
        base = baseline.metrics.get(name)
        if base is None:
            continue
        cur = current.metrics[name]
        if cur.higher_is_better:
            speedup = cur.value / base.value if base.value else float("inf")
        else:
            speedup = base.value / cur.value if cur.value else float("inf")
        deltas.append(
            MetricDelta(
                name=name,
                current=cur.value,
                baseline=base.value,
                speedup=speedup,
                regressed=speedup < 1.0 - tolerance,
            )
        )
    return deltas


def regressions(deltas: list[MetricDelta]) -> list[MetricDelta]:
    return [d for d in deltas if d.regressed]


def annotate_speedups(report: BenchReport, deltas: list[MetricDelta]) -> None:
    """Record per-metric speedups on the report before writing it."""
    report.speedup_vs_baseline = {d.name: round(d.speedup, 4) for d in deltas}


def profile_call(fn, top_n: int = 20):
    """Run ``fn()`` under :mod:`cProfile`; returns ``(result, table)``.

    ``table`` is the top-``top_n`` functions by cumulative time — the
    ``oneshot-repro bench --profile`` diagnostic.  Profiling overhead
    skews wall-clock rates, so callers must not feed the returned
    report into the baseline regression gate.
    """
    import cProfile
    import io
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = fn()
    finally:
        profiler.disable()
    buf = io.StringIO()
    pstats.Stats(profiler, stream=buf).sort_stats("cumulative").print_stats(
        top_n
    )
    return result, buf.getvalue()


def render_report(
    report: BenchReport, deltas: Optional[list[MetricDelta]] = None
) -> str:
    """Human-readable summary for the CLI."""
    by_name = {d.name: d for d in (deltas or [])}
    lines = [f"[{report.name}]"]
    for name in sorted(report.metrics):
        m = report.metrics[name]
        line = f"  {m.name:28s} {m.value:>14,.1f} {m.unit}"
        d = by_name.get(name)
        if d is not None:
            flag = "  ** REGRESSION **" if d.regressed else ""
            line += f"  ({d.speedup:.2f}x vs baseline){flag}"
        lines.append(line)
    return "\n".join(lines)


__all__ = [
    "DEFAULT_TOLERANCE",
    "BenchMetric",
    "BenchReport",
    "MetricDelta",
    "compare",
    "regressions",
    "annotate_speedups",
    "profile_call",
    "render_report",
]
