"""Fuzzer throughput benchmarks: scenarios per wall-clock second.

The fuzzer is only useful if a CI smoke tier can afford a meaningful
seed budget, so this tier gates the end-to-end cost of one fuzz
iteration — generate a scenario from a seed, execute it through the
experiment runner under both oracles, judge it:

* ``fuzz_scenarios_per_sec`` — full generate+run+judge iterations per
  wall-clock second over a verified-green seed range;
* ``fuzz_gen_per_sec`` — generation alone (scenario expansion is
  supposed to be noise next to the run);
* ``fuzz_determinism`` — 1.0 iff two same-seed harness sweeps produce
  identical fingerprint digests and oracle verdicts.

This module (like :mod:`repro.bench.kernel`) is one of the few places
allowed to read the wall clock: elapsed real time *is* the
measurement, so the determinism lint rule is suppressed for it in
``pyproject.toml``.
"""

from __future__ import annotations

import time

from ..fuzz import generate_scenario, run_scenario
from ..sim import DEFAULT_KERNEL
from .harness import BenchMetric, BenchReport

#: Seed range used by the timed sweep.  These seeds are verified green
#: (no oracle failures) so the measured cost is the steady-state fuzz
#: loop, not shrinking.
BENCH_SEED_START = 200


def bench_generation(seeds: int = 2_000) -> BenchMetric:
    """Scenario expansion alone: seed -> Scenario dataclass."""
    start = time.perf_counter()
    for seed in range(BENCH_SEED_START, BENCH_SEED_START + seeds):
        generate_scenario(seed)
    elapsed = time.perf_counter() - start
    return BenchMetric("fuzz_gen_per_sec", seeds / elapsed, "scenarios/s")


def _sweep(seeds: int) -> tuple[float, list]:
    """One timed fuzz sweep; returns (wall seconds, outcome fingerprint)."""
    outcomes = []
    start = time.perf_counter()
    for seed in range(BENCH_SEED_START, BENCH_SEED_START + seeds):
        result = run_scenario(generate_scenario(seed))
        outcomes.append(
            (
                seed,
                result.failure,
                result.report.blocks_decided,
                result.fingerprint.digest() if result.fingerprint else None,
            )
        )
    elapsed = time.perf_counter() - start
    return elapsed, outcomes


def bench_fuzz_loop(seeds: int = 40) -> list[BenchMetric]:
    """The headline gate: full fuzz iterations per wall-clock second,
    plus the determinism cross-check (two same-seed sweeps, identical
    verdicts and digests)."""
    elapsed, outcomes_a = _sweep(seeds)
    _, outcomes_b = _sweep(seeds)
    deterministic = 1.0 if outcomes_a == outcomes_b else 0.0
    return [
        BenchMetric("fuzz_scenarios_per_sec", seeds / elapsed, "scenarios/s"),
        BenchMetric("fuzz_determinism", deterministic, "bool"),
    ]


def run_fuzz_bench(quick: bool = False, kernel: str = DEFAULT_KERNEL) -> BenchReport:
    """Run the fuzzer benches; ``quick`` shrinks the seed budgets.

    ``kernel`` is accepted for registry uniformity; scenarios run on
    whichever simulation substrate is active.
    """
    scale = 4 if quick else 1
    report = BenchReport(name="fuzz")
    report.add(bench_generation(2_000 // scale))
    for m in bench_fuzz_loop(40 // scale):
        report.add(m)
    return report


__all__ = [
    "BENCH_SEED_START",
    "bench_generation",
    "bench_fuzz_loop",
    "run_fuzz_bench",
]
