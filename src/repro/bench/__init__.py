"""Benchmark regression harness (``oneshot-repro bench``).

Times the simulation kernel's hot paths (:mod:`repro.bench.kernel`),
one end-to-end consensus run (:mod:`repro.bench.e2e`) and the crypto
verification fast path (:mod:`repro.bench.crypto`), compares the rates
against the recorded baselines (``BENCH_kernel.json`` /
``BENCH_e2e.json`` / ``BENCH_crypto.json``) and fails on regressions
beyond a tolerance — see :mod:`repro.bench.harness` for the report
model and exit contract.
"""

from .crypto import run_crypto_bench
from .e2e import run_e2e_bench
from .harness import (
    DEFAULT_TOLERANCE,
    BenchMetric,
    BenchReport,
    MetricDelta,
    annotate_speedups,
    compare,
    regressions,
    render_report,
)
from .kernel import run_kernel_bench

__all__ = [
    "DEFAULT_TOLERANCE",
    "BenchMetric",
    "BenchReport",
    "MetricDelta",
    "annotate_speedups",
    "compare",
    "regressions",
    "render_report",
    "run_crypto_bench",
    "run_e2e_bench",
    "run_kernel_bench",
]
