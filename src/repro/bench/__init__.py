"""Benchmark regression harness (``oneshot-repro bench``).

Times the simulation kernel's hot paths (:mod:`repro.bench.kernel`),
one end-to-end consensus run (:mod:`repro.bench.e2e`), the crypto
verification fast path (:mod:`repro.bench.crypto`) and the network
multicast fast path (:mod:`repro.bench.net`) and the whole-program
static analyzer (:mod:`repro.bench.lint`), compares the rates
against the recorded baselines (``BENCH_kernel.json`` /
``BENCH_e2e.json`` / ``BENCH_crypto.json`` / ``BENCH_net.json`` /
``BENCH_lint.json``) and fails on regressions beyond a tolerance — see
:mod:`repro.bench.harness` for the report model and exit contract.
"""

from dataclasses import dataclass
from typing import Callable

from ..sim import DEFAULT_KERNEL
from .crypto import run_crypto_bench
from .e2e import run_e2e_bench
from .harness import (
    DEFAULT_TOLERANCE,
    BenchMetric,
    BenchReport,
    MetricDelta,
    annotate_speedups,
    compare,
    profile_call,
    regressions,
    render_report,
)
from .fuzz import run_fuzz_bench
from .kernel import run_kernel_bench
from .lint import run_lint_bench
from .net import run_net_bench
from .shard import run_shard_bench
from .workload import run_workload_bench


@dataclass(frozen=True)
class BenchSuite:
    """Registry entry for one benchmark tier.

    ``kernel_aware`` marks suites whose runner accepts the simulation
    substrate kernel choice; the others ignore it.
    """

    name: str
    runner: Callable[..., BenchReport]
    kernel_aware: bool = False


#: The single source of truth for which tiers exist.  ``--suite all``
#: iterates this mapping, so a tier registered here can never be
#: silently skipped, and the CLI derives its ``--suite`` choices from
#: it, so an unregistered name fails loudly at argument parsing.
SUITES: dict[str, BenchSuite] = {
    "kernel": BenchSuite("kernel", run_kernel_bench, kernel_aware=True),
    "e2e": BenchSuite("e2e", run_e2e_bench, kernel_aware=True),
    "crypto": BenchSuite("crypto", run_crypto_bench),
    "net": BenchSuite("net", run_net_bench, kernel_aware=True),
    "lint": BenchSuite("lint", run_lint_bench),
    "workload": BenchSuite("workload", run_workload_bench, kernel_aware=True),
    "fuzz": BenchSuite("fuzz", run_fuzz_bench, kernel_aware=True),
    "shard": BenchSuite("shard", run_shard_bench, kernel_aware=True),
}


def suite_names() -> list[str]:
    """Registered tier names, in canonical run order."""
    return list(SUITES)


def run_suite(
    name: str, quick: bool = False, kernel: str = DEFAULT_KERNEL
) -> BenchReport:
    """Run one registered tier; unknown names fail loudly."""
    suite = SUITES.get(name)
    if suite is None:
        raise ValueError(
            f"unknown bench suite {name!r}; registered: {', '.join(SUITES)}"
        )
    if suite.kernel_aware:
        return suite.runner(quick, kernel=kernel)
    return suite.runner(quick)


__all__ = [
    "BenchSuite",
    "SUITES",
    "run_suite",
    "run_workload_bench",
    "suite_names",
    "DEFAULT_TOLERANCE",
    "BenchMetric",
    "BenchReport",
    "MetricDelta",
    "annotate_speedups",
    "compare",
    "profile_call",
    "regressions",
    "render_report",
    "run_crypto_bench",
    "run_e2e_bench",
    "run_fuzz_bench",
    "run_kernel_bench",
    "run_lint_bench",
    "run_net_bench",
    "run_shard_bench",
]
