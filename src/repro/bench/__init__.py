"""Benchmark regression harness (``oneshot-repro bench``).

Times the simulation kernel's hot paths (:mod:`repro.bench.kernel`),
one end-to-end consensus run (:mod:`repro.bench.e2e`), the crypto
verification fast path (:mod:`repro.bench.crypto`) and the network
multicast fast path (:mod:`repro.bench.net`) and the whole-program
static analyzer (:mod:`repro.bench.lint`), compares the rates
against the recorded baselines (``BENCH_kernel.json`` /
``BENCH_e2e.json`` / ``BENCH_crypto.json`` / ``BENCH_net.json`` /
``BENCH_lint.json``) and fails on regressions beyond a tolerance — see
:mod:`repro.bench.harness` for the report model and exit contract.
"""

from .crypto import run_crypto_bench
from .e2e import run_e2e_bench
from .harness import (
    DEFAULT_TOLERANCE,
    BenchMetric,
    BenchReport,
    MetricDelta,
    annotate_speedups,
    compare,
    profile_call,
    regressions,
    render_report,
)
from .kernel import run_kernel_bench
from .lint import run_lint_bench
from .net import run_net_bench

__all__ = [
    "DEFAULT_TOLERANCE",
    "BenchMetric",
    "BenchReport",
    "MetricDelta",
    "annotate_speedups",
    "compare",
    "profile_call",
    "regressions",
    "render_report",
    "run_crypto_bench",
    "run_e2e_bench",
    "run_kernel_bench",
    "run_lint_bench",
    "run_net_bench",
]
