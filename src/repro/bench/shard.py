"""Sharded-consensus benchmarks: the ISSUE-10 scaling and 2PC gates.

Unlike the wall-clock tiers, every number here is *simulated-time*
deterministic (committed tx/s over simulated seconds), so the metrics
are noise-free and the regression tolerance only guards against real
behavioural drift:

* ``aggregate_committed_tps_k1`` / ``aggregate_committed_tps_k8`` —
  aggregate committed tx/s under weak scaling (offered load grows with
  the shard count);
* ``shard_scaling_x`` — the k=8 over k=1 ratio, with
  ``shard_scaling_gate`` = 1.0 iff it meets the ≥3x acceptance bar;
* ``cross_shard_overhead_ratio`` — mean 2PC decision latency over mean
  single-shard commit latency on a k=2 run with cross traffic (pinned;
  lower is better);
* ``cross_atomicity_ok`` — 1.0 iff the atomicity oracle passes on the
  cross-shard run;
* ``shard_replay_determinism`` — 1.0 iff two same-seed cross-shard
  runs (2PC, rebalancing-eligible routing, coordinator scheduling)
  produce identical fingerprints.
"""

from __future__ import annotations

import dataclasses

from ..experiments.config import ExperimentConfig
from ..experiments.shard import run_shard_scaling, run_sharded
from ..sim import DEFAULT_KERNEL
from .harness import BenchMetric, BenchReport

#: The ISSUE-10 acceptance bar for k=1 → k=8 aggregate scaling.
SCALING_GATE_X = 3.0


def _base_config(
    quick: bool, kernel: str, seed: int = 7
) -> ExperimentConfig:
    # ``quick`` shrinks only the simulated span: offered rates stay the
    # same so the committed-tx/s metrics remain comparable against the
    # full-mode baseline (a shorter run just has a larger warm-up
    # fraction, well inside the regression tolerance).
    return ExperimentConfig(
        protocol="oneshot",
        f=1,
        deployment="local",
        local_latency_s=0.002,
        max_sim_time=1.5 if quick else 3.0,
        seed=seed,
        kernel=kernel,
        workload="open",
        offered_tps=1_500.0,
        virtual_clients=4_000,
        shard_slots=32,
    )


def bench_shard_scaling(
    quick: bool = False, kernel: str = DEFAULT_KERNEL
) -> list[BenchMetric]:
    """Weak-scaling k=1 vs k=8 aggregate committed throughput."""
    scaling = run_shard_scaling(ks=(1, 8), config=_base_config(quick, kernel))
    tps_1 = scaling.runs[1].aggregate_tps
    tps_8 = scaling.runs[8].aggregate_tps
    x = scaling.scaling_x()
    return [
        BenchMetric("aggregate_committed_tps_k1", tps_1, "txs/s"),
        BenchMetric("aggregate_committed_tps_k8", tps_8, "txs/s"),
        BenchMetric("shard_scaling_x", x, "ratio"),
        BenchMetric(
            "shard_scaling_gate",
            1.0 if x >= SCALING_GATE_X else 0.0,
            "bool",
        ),
    ]


def bench_cross_shard(
    quick: bool = False, kernel: str = DEFAULT_KERNEL
) -> list[BenchMetric]:
    """2PC overhead, atomicity and replay identity on a k=2 cross run."""
    cfg = dataclasses.replace(
        _base_config(quick, kernel), shards=2, cross_shard_permille=150
    )
    run_a = run_sharded(cfg)
    run_b = run_sharded(cfg)
    deterministic = (
        run_a.fingerprint is not None
        and run_b.fingerprint is not None
        and run_a.fingerprint.digest() == run_b.fingerprint.digest()
    )
    return [
        BenchMetric(
            "cross_shard_overhead_ratio",
            run_a.cross_overhead_ratio,
            "ratio",
            higher_is_better=False,
        ),
        BenchMetric(
            "cross_atomicity_ok", 1.0 if run_a.atomicity.ok else 0.0, "bool"
        ),
        BenchMetric(
            "shard_replay_determinism", 1.0 if deterministic else 0.0, "bool"
        ),
    ]


def run_shard_bench(
    quick: bool = False, kernel: str = DEFAULT_KERNEL
) -> BenchReport:
    """Run the shard tier (``oneshot-repro bench --suite shard``)."""
    report = BenchReport(name="shard")
    for m in bench_shard_scaling(quick, kernel):
        report.add(m)
    for m in bench_cross_shard(quick, kernel):
        report.add(m)
    return report


__all__ = [
    "SCALING_GATE_X",
    "bench_cross_shard",
    "bench_shard_scaling",
    "run_shard_bench",
]
