"""Kernel microbenchmarks: the simulation engine's hot paths in
isolation.

Each bench exercises one fast-path target from the kernel rework —
the tuple heap, cancelled-event skipping, multicast fan-out, memoized
canonical digests and the RNG stream cache — and reports a rate.

This module (like :mod:`repro.bench.e2e`) is the one place outside the
simulator allowed to read the wall clock: elapsed real time *is* the
measurement, so the determinism lint rule is suppressed for it in
``pyproject.toml``.
"""

from __future__ import annotations

import time

from ..crypto.hashing import digest_of
from ..net import Network
from ..sim import DEFAULT_KERNEL, Process, Simulator, create_queue
from .harness import BenchMetric, BenchReport


def bench_chained_events(
    n: int = 200_000, kernel: str = DEFAULT_KERNEL
) -> BenchMetric:
    """One self-rescheduling callback driven ``n`` times: pure loop
    overhead (pop, clock update, dispatch, push)."""
    sim = Simulator(seed=1, kernel=kernel)
    remaining = [n]

    def tick() -> None:
        remaining[0] -= 1
        if remaining[0] > 0:
            sim.schedule(0.001, tick)

    sim.schedule(0.0, tick)
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    return BenchMetric("chained_events_per_sec", n / elapsed, "events/s")


def bench_push_drain(
    n: int = 100_000, kernel: str = DEFAULT_KERNEL
) -> BenchMetric:
    """Heap churn: push ``n`` events with interleaved timestamps, then
    drain — sift cost dominates, which is what the tuple heap targets."""
    queue = create_queue(kernel)

    def noop() -> None:
        pass

    start = time.perf_counter()
    for i in range(n):
        # Deterministic non-monotone times exercise real sift work.
        queue.push(float((i * 7919) % n), noop)
    while queue.pop() is not None:
        pass
    elapsed = time.perf_counter() - start
    return BenchMetric("push_drain_events_per_sec", n / elapsed, "events/s")


def bench_cancel_skip(
    n: int = 100_000, kernel: str = DEFAULT_KERNEL
) -> BenchMetric:
    """Timer re-arm pattern: every pushed event is cancelled and
    replaced before firing, so the pop path must skip soft-deleted
    entries — the dominant cost of view-timeout management."""
    queue = create_queue(kernel)

    def noop() -> None:
        pass

    start = time.perf_counter()
    ev = queue.push(0.0, noop)
    for i in range(1, n):
        ev.cancel()
        ev = queue.push(float(i), noop)
    while queue.pop() is not None:
        pass
    elapsed = time.perf_counter() - start
    return BenchMetric("cancel_skip_events_per_sec", n / elapsed, "events/s")


class _Sink(Process):
    """Message sink for the multicast bench."""

    def on_message(self, sender: int, payload: object) -> None:
        pass


def bench_multicast(
    rounds: int = 1_000, n: int = 31, kernel: str = DEFAULT_KERNEL
) -> BenchMetric:
    """Leader-broadcast fan-out: one source multicasting to ``n - 1``
    peers per round, deliveries drained between rounds."""
    sim = Simulator(seed=1, kernel=kernel)
    network = Network(sim)
    for pid in range(n):
        network.register(_Sink(sim, pid))
    dsts = tuple(range(1, n))
    payload = "bench-payload"
    start = time.perf_counter()
    for _ in range(rounds):
        network.multicast(0, dsts, payload)
        sim.run()
    elapsed = time.perf_counter() - start
    return BenchMetric(
        "multicast_sends_per_sec", rounds * len(dsts) / elapsed, "sends/s"
    )


def bench_push_many_drain(
    batches: int = 1_500, k: int = 64, kernel: str = DEFAULT_KERNEL
) -> BenchMetric:
    """Bulk insert + drain: ``push_many`` with multicast-sized batches
    against a part-filled queue, then a full drain.  This is the shape
    the columnar kernel's lexsort merge targets; the scalar kernel
    serves it with extend-and-heapify."""
    queue = create_queue(kernel)

    def noop() -> None:
        pass

    argss = [()] * k
    start = time.perf_counter()
    for b in range(batches):
        base = float(b * k)
        # Descending times inside the batch force real sorting work.
        queue.push_many([base + (k - i) for i in range(k)], noop, argss)
        if b % 4 == 3:
            for _ in range(2 * k):
                queue.pop()
    while queue.pop() is not None:
        pass
    elapsed = time.perf_counter() - start
    return BenchMetric(
        "push_many_drain_events_per_sec", batches * k / elapsed, "events/s"
    )


def bench_digests(n: int = 20_000) -> BenchMetric:
    """Canonical-encoding digests over distinct field tuples (cache
    misses — the memoized hit path is effectively free)."""
    start = time.perf_counter()
    for i in range(n):
        digest_of("bench", i, i * 31, b"payload")
    elapsed = time.perf_counter() - start
    return BenchMetric("digests_per_sec", n / elapsed, "digests/s")


def bench_rng_streams(n: int = 200_000) -> BenchMetric:
    """Repeated named-stream lookups — the per-message hot path that
    the O(1) stream cache serves."""
    sim = Simulator(seed=1)
    sim.rng.stream("net.latency", purpose="bench latency draws")
    start = time.perf_counter()
    for _ in range(n):
        sim.rng.stream("net.latency")
    elapsed = time.perf_counter() - start
    return BenchMetric("rng_lookups_per_sec", n / elapsed, "lookups/s")


def run_kernel_bench(
    quick: bool = False, kernel: str = DEFAULT_KERNEL
) -> BenchReport:
    """Run every kernel microbench; ``quick`` shrinks iteration counts
    for smoke tests (rates stay comparable, noise grows).  ``kernel``
    selects the substrate under test — metric names stay the same, so
    baselines must be compared per kernel."""
    scale = 10 if quick else 1
    report = BenchReport(name="kernel")
    report.add(bench_chained_events(200_000 // scale, kernel=kernel))
    report.add(bench_push_drain(100_000 // scale, kernel=kernel))
    report.add(bench_cancel_skip(100_000 // scale, kernel=kernel))
    report.add(bench_multicast(1_000 // scale, kernel=kernel))
    report.add(bench_push_many_drain(1_500 // scale, kernel=kernel))
    report.add(bench_digests(20_000 // scale))
    report.add(bench_rng_streams(200_000 // scale))
    return report


__all__ = [
    "bench_chained_events",
    "bench_push_drain",
    "bench_cancel_skip",
    "bench_multicast",
    "bench_push_many_drain",
    "bench_digests",
    "bench_rng_streams",
    "run_kernel_bench",
]
