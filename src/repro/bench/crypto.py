"""Crypto microbenchmarks: the verification fast path in isolation.

Each bench times one target of the crypto fast-path work — raw
signing, cold vs memoized signature verification, quorum-certificate
and new-view-certificate verification, and the batched TEE vote ecall
— and reports a wall-clock rate.  The ``warm_verify_speedup`` metric
is the headline: how much cheaper a signature check becomes after
first sight (the memo of :mod:`repro.crypto.memo`).

Cold paths are measured with the verification memos globally disabled
(``memo.set_enabled(False)``), which is exactly the code path a forged
signature always takes; warm paths hit the memos the way steady-state
consensus traffic does.  Simulated costs are not involved here at all
— this module measures Python wall time, the one thing the memos are
allowed to change.

This module (like the other bench tiers) is allowed to read the wall
clock: elapsed real time *is* the measurement, so the determinism lint
rule is suppressed for it in ``pyproject.toml``.
"""

from __future__ import annotations

import time

from ..crypto import FREE, KeyPair, KeyRing, memo
from ..crypto.hashing import digest_of
from ..core.certificates import (
    PrepareCert,
    StoreCert,
    NewViewCert,
    store_digest,
    verify_new_view,
)
from ..core.tee_services import Checker
from ..tee import TeeCostModel
from .harness import BenchMetric, BenchReport

#: Cluster shape used by the certificate benches (f=3, quorum f+1).
_QUORUM = 4


def _keyring(n: int = 8) -> tuple[KeyRing, list[KeyPair]]:
    pairs = [KeyPair.generate(i, master_seed=42, domain="bench") for i in range(n)]
    ring = KeyRing()
    for kp in pairs:
        ring.add(kp.public())
    return ring, pairs


def bench_sign(n: int = 20_000) -> BenchMetric:
    """Raw signing throughput (the HMAC standing in for ECDSA-P256)."""
    _, pairs = _keyring()
    kp = pairs[0]
    digests = [digest_of("cb-sign", i) for i in range(n)]
    start = time.perf_counter()
    for d in digests:
        kp.sign(d)
    elapsed = time.perf_counter() - start
    return BenchMetric("sign_per_sec", n / elapsed, "sigs/s")


def bench_verify_cold(n: int = 20_000) -> BenchMetric:
    """First-sight verification: every signature pays the full check
    (memos disabled — the path every fresh or forged signature takes)."""
    ring, pairs = _keyring()
    kp = pairs[0]
    work = [(d, kp.sign(d)) for d in (digest_of("cb-cold", i) for i in range(n))]
    prev = memo.set_enabled(False)
    try:
        start = time.perf_counter()
        for d, sig in work:
            ring.verify(d, sig)
        elapsed = time.perf_counter() - start
    finally:
        memo.set_enabled(prev)
    return BenchMetric("verify_cold_per_sec", n / elapsed, "sigs/s")


def bench_verify_warm(n: int = 200_000) -> BenchMetric:
    """Re-verification of an already-seen signature: one memo probe."""
    ring, pairs = _keyring()
    d = digest_of("cb-warm", 0)
    sig = pairs[0].sign(d)
    ring.verify(d, sig)  # populate the memo
    start = time.perf_counter()
    for _ in range(n):
        ring.verify(d, sig)
    elapsed = time.perf_counter() - start
    return BenchMetric("verify_warm_per_sec", n / elapsed, "sigs/s")


def _quorum_cert(pairs: list[KeyPair]) -> PrepareCert:
    h = digest_of("cb-block", 1)
    digest = store_digest(3, h, 3)
    sigs = tuple(pairs[i].sign(digest) for i in range(_QUORUM))
    return PrepareCert(stored_view=3, block_hash=h, prop_view=3, sigs=sigs)


def bench_qc_verify_cold(n: int = 2_000) -> BenchMetric:
    """Quorum-certificate verification, memos disabled: f+1 signature
    checks plus the structural (distinct-signer) pass, every time."""
    ring, pairs = _keyring()
    cert = _quorum_cert(pairs)
    prev = memo.set_enabled(False)
    try:
        start = time.perf_counter()
        for _ in range(n):
            cert.verify(ring, _QUORUM)
        elapsed = time.perf_counter() - start
    finally:
        memo.set_enabled(prev)
    return BenchMetric("qc_verify_cold_per_sec", n / elapsed, "certs/s")


def bench_qc_verify_warm(n: int = 200_000) -> BenchMetric:
    """Quorum-certificate re-verification: the instance memo answers."""
    ring, pairs = _keyring()
    cert = _quorum_cert(pairs)
    cert.verify(ring, _QUORUM)  # populate the instance memo
    start = time.perf_counter()
    for _ in range(n):
        cert.verify(ring, _QUORUM)
    elapsed = time.perf_counter() - start
    return BenchMetric("qc_verify_warm_per_sec", n / elapsed, "certs/s")


def bench_nv_verify(n: int = 100_000) -> BenchMetric:
    """New-view-certificate re-verification (store cert + inner qc +
    Def. 6 consistency), served warm from the instance memo."""
    ring, pairs = _keyring()
    h = digest_of("cb-block", 1)
    store = StoreCert(
        stored_view=5, block_hash=h, prop_view=4,
        sig=pairs[0].sign(store_digest(5, h, 4)),
    )
    qc_digest = store_digest(4, h, 4)
    qc = PrepareCert(
        stored_view=4, block_hash=h, prop_view=4,
        sigs=tuple(pairs[i].sign(qc_digest) for i in range(_QUORUM)),
    )
    nv = NewViewCert(block=None, store=store, qc=qc)
    if not verify_new_view(nv, ring, _QUORUM):  # pragma: no cover - guard
        raise RuntimeError("bench fixture must be a valid nv certificate")
    start = time.perf_counter()
    for _ in range(n):
        verify_new_view(nv, ring, _QUORUM)
    elapsed = time.perf_counter() - start
    return BenchMetric("nv_verify_warm_per_sec", n / elapsed, "certs/s")


def _checker(ring: KeyRing, pairs: list[KeyPair]) -> Checker:
    return Checker(
        owner=0,
        keypair=pairs[0],
        ring=ring,
        crypto_costs=FREE,
        tee_costs=TeeCostModel(),
        leader_of=lambda v: 0,
    )


def bench_vote_ecalls(n: int = 20_000) -> BenchMetric:
    """Deliver-phase voting, one ecall per vote (the unbatched path)."""
    ring, pairs = _keyring()
    checker = _checker(ring, pairs)
    hashes = [digest_of("cb-vote", i) for i in range(n)]
    start = time.perf_counter()
    for h in hashes:
        checker.tee_vote(h)
    elapsed = time.perf_counter() - start
    return BenchMetric("vote_ecalls_per_sec", n / elapsed, "votes/s")


def bench_vote_batch_ecalls(n: int = 20_000, batch: int = 64) -> BenchMetric:
    """Deliver-phase voting through ``tee_vote_batch``: one trusted
    transition per ``batch`` votes instead of one per vote."""
    ring, pairs = _keyring()
    checker = _checker(ring, pairs)
    hashes = [digest_of("cb-vote", i) for i in range(n)]
    start = time.perf_counter()
    for i in range(0, n, batch):
        checker.tee_vote_batch(hashes[i : i + batch])
    elapsed = time.perf_counter() - start
    return BenchMetric("vote_batch_ecalls_per_sec", n / elapsed, "votes/s")


def run_crypto_bench(quick: bool = False) -> BenchReport:
    """Run every crypto microbench; ``quick`` shrinks iteration counts
    for smoke tests (rates stay comparable, noise grows).

    ``warm_verify_speedup`` is derived from the measured cold and warm
    single-signature rates: it is the factor by which the verified-
    signature memo beats a from-scratch check.
    """
    scale = 10 if quick else 1
    report = BenchReport(name="crypto")
    report.add(bench_sign(20_000 // scale))
    cold = bench_verify_cold(20_000 // scale)
    warm = bench_verify_warm(200_000 // scale)
    report.add(cold)
    report.add(warm)
    report.add(
        BenchMetric("warm_verify_speedup", warm.value / cold.value, "x")
    )
    report.add(bench_qc_verify_cold(2_000 // scale))
    report.add(bench_qc_verify_warm(200_000 // scale))
    report.add(bench_nv_verify(100_000 // scale))
    report.add(bench_vote_ecalls(20_000 // scale))
    report.add(bench_vote_batch_ecalls(20_000 // scale))
    return report


__all__ = [
    "bench_sign",
    "bench_verify_cold",
    "bench_verify_warm",
    "bench_qc_verify_cold",
    "bench_qc_verify_warm",
    "bench_nv_verify",
    "bench_vote_ecalls",
    "bench_vote_batch_ecalls",
    "run_crypto_bench",
]
