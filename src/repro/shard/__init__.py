"""Sharded multi-instance consensus.

Promotes the multi-group machinery of :mod:`repro.experiments.parallel`
into a real sharding layer: a deterministic epoch-versioned transaction
router (:mod:`~repro.shard.router`), a 2PC coordinator for cross-shard
commits layered on consensus decisions (:mod:`~repro.shard.coordinator`),
hot-key rebalancing at epoch boundaries (:mod:`~repro.shard.rebalance`),
a sharded open-loop workload pump (:mod:`~repro.shard.workload`), the
cross-shard atomicity oracle (:mod:`~repro.shard.oracle`) and replay
fingerprints (:mod:`~repro.shard.fingerprint`).

The run *driver* (building simulators, clusters and calling
``sim.run``) lives in :mod:`repro.experiments.shard` — this package is
protocol-layer code and stays inside the substrate API boundary.
"""

from .coordinator import (
    COORDINATOR_PID,
    DEFAULT_PREPARE_TIMEOUT,
    Coordinator,
    ShardPort,
)
from .fingerprint import ShardFingerprint, fingerprint_shards
from .oracle import AtomicityReport, check_atomicity
from .rebalance import (
    DEFAULT_IMBALANCE_THRESHOLD,
    LoadMonitor,
    Migration,
    Rebalancer,
)
from .router import (
    DEFAULT_SLOTS,
    HOT_ROUTING_KEY,
    Router,
    RoutingTable,
    initial_table,
    mix64,
    mix64_scalar,
)
from .workload import SHARD_WORKLOAD_PID, ShardedWorkload

__all__ = [
    "AtomicityReport",
    "COORDINATOR_PID",
    "Coordinator",
    "DEFAULT_IMBALANCE_THRESHOLD",
    "DEFAULT_PREPARE_TIMEOUT",
    "DEFAULT_SLOTS",
    "HOT_ROUTING_KEY",
    "LoadMonitor",
    "Migration",
    "Rebalancer",
    "Router",
    "RoutingTable",
    "SHARD_WORKLOAD_PID",
    "ShardFingerprint",
    "ShardPort",
    "ShardedWorkload",
    "check_atomicity",
    "fingerprint_shards",
    "initial_table",
    "mix64",
    "mix64_scalar",
]
