"""Sharded open-loop load: one pump feeding k shard mempools.

The pump owns the same superposed-Poisson region generators as the
single-group :class:`~repro.workload.engine.WorkloadEngine`, but every
minted slab passes through the :class:`~repro.shard.router.Router`:

* single-shard rows are compacted into per-shard columnar sub-slabs
  and multicast to that shard's replicas (one ``SubmitTxBatch`` per
  shard per slab — the slab fan-out stays O(k), not O(rows));
* cross-shard rows are handed to the 2PC
  :class:`~repro.shard.coordinator.Coordinator` row by row, in slab
  order — deterministic xid assignment.

The pump also drives the epoch clock: at every ``epoch_s`` boundary
the :class:`~repro.shard.rebalance.Rebalancer` inspects the
:class:`~repro.shard.rebalance.LoadMonitor` and may publish a new
routing-table epoch, after which subsequent slabs route by the new
table while everything already in flight drains under the old one.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..net import Network
from ..sim import Process, Simulator
from ..smr import SubmitTxBatch
from ..workload.arrivals import DEFAULT_SLAB_ROWS, SuperposedArrivals
from ..workload.engine import VIRTUAL_CLIENT_BASE, RegionSpec
from .coordinator import Coordinator
from .rebalance import LoadMonitor, Migration, Rebalancer
from .router import Router

#: Pump pid — above the coordinator's port range; never registered.
SHARD_WORKLOAD_PID = 96_000


class ShardedWorkload(Process):
    """Open-loop load, routed across shard consensus groups."""

    def __init__(
        self,
        sim: Simulator,
        shard_networks: Sequence[Network],
        shard_replica_pids: Sequence[Sequence[int]],
        router: Router,
        regions: Sequence[RegionSpec],
        coordinator: Optional[Coordinator] = None,
        slab_rows: int = DEFAULT_SLAB_ROWS,
        epoch_s: float = 0.0,
        rebalancer: Optional[Rebalancer] = None,
    ) -> None:
        super().__init__(sim, SHARD_WORKLOAD_PID, name="shard-workload")
        if len(shard_networks) != len(shard_replica_pids):
            raise ValueError("one replica pid list per shard network")
        if len(shard_networks) != router.n_shards:
            raise ValueError("router shard count must match the networks")
        if router.cross_permille and coordinator is None:
            raise ValueError("cross-shard traffic needs a coordinator")
        self.networks = list(shard_networks)
        self.replica_pids = [list(p) for p in shard_replica_pids]
        self.router = router
        self.coordinator = coordinator
        self.slab_rows = slab_rows
        self.epoch_s = epoch_s
        self.rebalancer = rebalancer if rebalancer is not None else Rebalancer()
        self.monitor = LoadMonitor(router.table.slots, router.n_shards)
        self.migrations: list[Migration] = []
        self.generators: list[SuperposedArrivals] = []
        base = VIRTUAL_CLIENT_BASE
        for i, spec in enumerate(regions):
            rng = sim.rng.stream(
                f"workload.shard-region{i}.arrivals",
                purpose="sharded aggregated open-loop arrivals",
            )
            self.generators.append(
                SuperposedArrivals(
                    rng,
                    n_clients=spec.n_clients,
                    rate_tps=spec.rate_tps,
                    payload_bytes=spec.payload_bytes,
                    client_base=base,
                )
            )
            base += spec.n_clients
        self.txs_offered = 0
        self.cross_offered = 0
        self.slabs_sent = 0
        self._running = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._running:
            return
        self._running = True
        for ri in range(len(self.generators)):
            self._schedule(ri)
        if self.epoch_s > 0:
            self.after(self.epoch_s, self._epoch_tick)

    def stop(self) -> None:
        self._running = False

    # ------------------------------------------------------------------
    # Slab routing
    # ------------------------------------------------------------------
    def _schedule(self, ri: int) -> None:
        slab = self.generators[ri].next_slab(self.slab_rows)
        fire_at = float(slab.submit_times[-1])
        self.after(max(0.0, fire_at - self.sim.now), self._emit, ri, slab)

    def _emit(self, ri: int, slab) -> None:
        if not self._running:
            return
        slots, home, cross, partner = self.router.classify(slab)
        self.monitor.record(slots, home)
        single = ~cross
        for shard in range(self.router.n_shards):
            idx = np.nonzero(single & (home == shard))[0]
            if len(idx):
                self.networks[shard].multicast(
                    self.pid,
                    self.replica_pids[shard],
                    SubmitTxBatch(slab.select(idx)),
                )
        if self.coordinator is not None:
            for i in np.nonzero(cross)[0]:
                self.coordinator.submit_transfer(
                    int(home[i]), int(partner[i]), slab.payload_bytes
                )
            self.cross_offered += int(cross.sum())
        self.txs_offered += len(slab)
        self.slabs_sent += 1
        self._schedule(ri)

    # ------------------------------------------------------------------
    # Epochs and rebalancing
    # ------------------------------------------------------------------
    def _epoch_tick(self) -> None:
        if not self._running:
            return
        plan = self.rebalancer.plan(self.monitor, self.router.table)
        if plan is not None:
            assign, before, after_ratio = plan
            old = self.router.table.slot_to_shard
            table = self.router.advance(assign)
            self.migrations.append(
                Migration(
                    epoch=table.epoch,
                    at_time=self.sim.now,
                    moved_slots=tuple(
                        s for s in range(len(assign)) if assign[s] != old[s]
                    ),
                    imbalance_before=before,
                    imbalance_after=after_ratio,
                )
            )
        self.monitor.reset_epoch()
        self.after(self.epoch_s, self._epoch_tick)

    def on_message(self, sender: int, payload: object) -> None:
        """The pump never receives traffic (it is not registered)."""


__all__ = ["SHARD_WORKLOAD_PID", "ShardedWorkload"]
