"""Replay-identity fingerprints for sharded runs.

A sharded run is deterministic end-to-end (seeded arrivals, hash
routing, consensus, 2PC scheduling, rebalancing); the fingerprint
pins everything that could drift: each shard's committed chain and
application state, the full routing-table history (so a rebalance at a
different time or with a different repack changes the digest), the
coordinator's decision log, and the final simulated clock.  Golden
tests pin ``digest()`` — byte-identical replay or loud failure.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto import digest_of


@dataclass(frozen=True)
class ShardFingerprint:
    """Semantic digest of one sharded run."""

    protocol: str
    seed: int
    shards: int
    #: Per-shard committed-chain digest (reference replica).
    chain_digests: tuple[str, ...]
    #: Per-shard application state digest.
    state_digests: tuple[str, ...]
    #: Routing-table history digests, epoch order.
    table_digests: tuple[str, ...]
    #: Coordinator (xid, outcome, decision_time) records, decision order.
    decisions: tuple[tuple[int, str, float], ...]
    end_time: float

    def digest(self) -> str:
        # Times are folded as integer nanoseconds — the canonical
        # encoder rejects floats by design (no ambiguous repr).
        decisions = tuple(
            (xid, outcome, int(round(t * 1e9)))
            for xid, outcome, t in self.decisions
        )
        return digest_of(
            "shard-run",
            (
                self.protocol,
                self.seed,
                self.shards,
                self.chain_digests,
                self.state_digests,
                self.table_digests,
                decisions,
                int(round(self.end_time * 1e9)),
            ),
        ).hex()

    def describe(self) -> str:
        return (
            f"{self.protocol} k={self.shards} epochs={len(self.table_digests)} "
            f"decisions={len(self.decisions)} digest={self.digest()[:12]}"
        )


def fingerprint_shards(
    protocol: str,
    seed: int,
    shard_clusters,
    router,
    coordinator,
    end_time: float,
    reference_pid: int = 0,
) -> ShardFingerprint:
    """Build the fingerprint from a finished run's live objects."""
    chains = []
    states = []
    for cluster in shard_clusters:
        ref = cluster.replicas[reference_pid]
        chains.append(ref.log.log_digest().hex())
        states.append(ref.log.state.state_digest().hex())
    tables = tuple(t.table_digest().hex() for t in router.history)
    decisions = (
        tuple(coordinator.decision_log) if coordinator is not None else ()
    )
    return ShardFingerprint(
        protocol=protocol,
        seed=seed,
        shards=len(shard_clusters),
        chain_digests=tuple(chains),
        state_digests=tuple(states),
        table_digests=tables,
        decisions=decisions,
        end_time=end_time,
    )


__all__ = ["ShardFingerprint", "fingerprint_shards"]
