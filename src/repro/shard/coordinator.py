"""Cross-shard commits: 2PC layered on top of consensus decisions.

A multi-shard transaction moves one unit from its home shard's account
to its partner shard's account.  The coordinator submits an
``xprepare`` marker transaction to every touched shard — consensus
orders it into that shard's committed chain, *staging* the local
effects — and, once every touched shard has durably committed its
prepare (observed through client replies: a certified single reply for
OneShot, ``f+1`` matching replies otherwise), submits the ``xcommit``
decision the same way.  If any shard misses the prepare deadline the
decision is ``xabort`` (presumed abort: a late prepare after an abort
stages nothing).

Atomicity therefore rests on two facts the oracle checks:

* a decision is a *consensus-committed* chain entry on each shard, so
  every replica of a shard applies the same outcome at the same log
  position; and
* the coordinator sends ``xcommit`` only after all prepares committed,
  so within each shard the commit always serializes after the prepare.

The coordinator talks to each shard through a :class:`ShardPort` — a
per-shard network endpoint with the well-known pid
:data:`COORDINATOR_PID` — because shard networks are disjoint fabrics
with overlapping replica pids; the port tags replies with its shard id.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..metrics.streaming import P2Quantile, StreamingMoments
from ..net import Network
from ..sim import Process, Simulator
from ..smr import Reply, SubmitTx, Transaction

#: The coordinator's pid on every shard's network (also its client id
#: in the marker transactions, so replicas route replies back to it).
COORDINATOR_PID = 95_000

#: Default prepare deadline (seconds) before a presumed abort.
DEFAULT_PREPARE_TIMEOUT = 8.0


class ShardPort(Process):
    """The coordinator's endpoint on one shard's network."""

    def __init__(
        self, sim: Simulator, network: Network, shard_id: int, coordinator
    ) -> None:
        super().__init__(sim, COORDINATOR_PID, name=f"coord.s{shard_id}")
        self.network = network
        self.shard_id = shard_id
        self.coordinator = coordinator
        network.register(self)

    def on_message(self, sender: int, payload) -> None:
        self.coordinator.on_shard_message(self.shard_id, sender, payload)

    def submit(self, replica_pids: Sequence[int], tx: Transaction) -> None:
        """Broadcast a marker transaction to every replica (so a faulty
        leader cannot censor it silently — same policy as clients)."""
        for dst in replica_pids:
            self.network.send(self.pid, dst, SubmitTx(tx))


@dataclass
class _PendingTx:
    """Coordinator-side state of one in-flight cross-shard tx."""

    xid: int
    shards: tuple[int, ...]
    submitted_at: float
    prepared: set[int] = field(default_factory=set)
    #: shard -> replica pids that acked the prepare (quorum counting).
    prepare_acks: dict[int, set[int]] = field(default_factory=dict)
    decided: Optional[str] = None  # "commit" | "abort"


class Coordinator(Process):
    """2PC coordinator across shard consensus groups.

    One instance per sharded run; it owns a :class:`ShardPort` per
    shard and drives every cross-shard transaction through
    prepare → decision.  Per-transaction state is dropped at decision
    time; only counters and streaming latency sketches persist, so the
    coordinator is O(in-flight), not O(history).
    """

    def __init__(
        self,
        sim: Simulator,
        shard_networks: Sequence[Network],
        shard_replica_pids: Sequence[Sequence[int]],
        f: int,
        certified_replies: bool,
        prepare_timeout: float = DEFAULT_PREPARE_TIMEOUT,
    ) -> None:
        super().__init__(sim, COORDINATOR_PID + 1, name="coordinator")
        if len(shard_networks) != len(shard_replica_pids):
            raise ValueError("one replica pid list per shard network")
        if prepare_timeout <= 0:
            raise ValueError("prepare_timeout must be positive")
        self.ports = [
            ShardPort(sim, net, s, self)
            for s, net in enumerate(shard_networks)
        ]
        self.replica_pids = [list(p) for p in shard_replica_pids]
        self.ack_quorum = 1 if certified_replies else f + 1
        self.prepare_timeout = prepare_timeout
        self._pending: dict[int, _PendingTx] = {}
        self._next_xid = 0
        # Outcome counters + streaming commit-latency sketches.
        self.submitted = 0
        self.committed = 0
        self.aborted = 0
        self.decision_latency = StreamingMoments()
        self.decision_p99 = P2Quantile(0.99)
        #: (xid, outcome, decision_time) in decision order — folded into
        #: the shard fingerprint so 2PC scheduling drift is detectable.
        self.decision_log: list[tuple[int, str, float]] = []

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit_transfer(self, home: int, partner: int, payload_bytes: int = 0) -> int:
        """Start 2PC for a one-unit transfer ``home`` → ``partner``."""
        if home == partner:
            raise ValueError("cross-shard tx must touch two distinct shards")
        xid = self._next_xid
        self._next_xid += 1
        shards = (home, partner)
        self._pending[xid] = _PendingTx(
            xid=xid, shards=shards, submitted_at=self.sim.now
        )
        self.submitted += 1
        legs = {
            home: (("add", f"acct{home}", -1),),
            partner: (("add", f"acct{partner}", 1),),
        }
        for shard in shards:
            tx = Transaction(
                client_id=COORDINATOR_PID,
                tx_id=2 * xid,
                payload_bytes=payload_bytes,
                op=("xprepare", xid, legs[shard]),
                submit_time=self.sim.now,
            )
            self.ports[shard].submit(self.replica_pids[shard], tx)
        self.after(self.prepare_timeout, self._deadline, xid)
        return xid

    # ------------------------------------------------------------------
    # Replies from shard replicas
    # ------------------------------------------------------------------
    def on_shard_message(self, shard: int, sender: int, payload) -> None:
        if not isinstance(payload, Reply):
            return
        client_id, tx_id = payload.tx_key
        if client_id != COORDINATOR_PID or tx_id % 2 != 0:
            return  # decision acks need no tracking
        xid = tx_id // 2
        pend = self._pending.get(xid)
        if pend is None or pend.decided is not None or shard in pend.prepared:
            return
        acks = pend.prepare_acks.setdefault(shard, set())
        acks.add(payload.replica)
        certified_enough = payload.certified and self.ack_quorum == 1
        if certified_enough or len(acks) >= self.ack_quorum:
            pend.prepared.add(shard)
            if len(pend.prepared) == len(pend.shards):
                self._decide(pend, "commit")

    def _deadline(self, xid: int) -> None:
        pend = self._pending.get(xid)
        if pend is not None and pend.decided is None:
            self._decide(pend, "abort")

    # ------------------------------------------------------------------
    # Decision
    # ------------------------------------------------------------------
    def _decide(self, pend: _PendingTx, outcome: str) -> None:
        pend.decided = outcome
        op = ("xcommit", pend.xid) if outcome == "commit" else ("xabort", pend.xid)
        for shard in pend.shards:
            tx = Transaction(
                client_id=COORDINATOR_PID,
                tx_id=2 * pend.xid + 1,
                op=op,
                submit_time=self.sim.now,
            )
            self.ports[shard].submit(self.replica_pids[shard], tx)
        if outcome == "commit":
            self.committed += 1
        else:
            self.aborted += 1
        latency = self.sim.now - pend.submitted_at
        self.decision_latency.add(latency)
        self.decision_p99.add(latency)
        self.decision_log.append((pend.xid, outcome, self.sim.now))
        del self._pending[pend.xid]

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def in_flight(self) -> int:
        return len(self._pending)

    def on_message(self, sender: int, payload) -> None:
        """The coordinator itself is not on any fabric; ports relay."""


__all__ = [
    "COORDINATOR_PID",
    "Coordinator",
    "DEFAULT_PREPARE_TIMEOUT",
    "ShardPort",
]
