"""Deterministic transaction routing: stable key → slot → shard.

The keyspace is divided into ``slots`` fixed ranges by a splitmix64
hash of the transaction's routing key (its client id, with an optional
hot-key collapse for skewed workloads), and a versioned
:class:`RoutingTable` maps slots to shards.  Rebalancing never changes
*which slot a key hashes to* — it only republishes the slot→shard map
as a new epoch — so routing is stable across reruns by construction
and migrations move whole key ranges.

Python's builtin ``hash`` is salted per interpreter and must never be
used here; :func:`mix64` is the explicit, vectorizable finalizer
(splitmix64) whose output is identical on every run and platform.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..crypto import Digest, digest_of
from ..smr import TxBatch

_MASK = (1 << 64) - 1
#: Distinct salts keep the three routing decisions (slot placement,
#: hot-key membership, cross-shard partner choice) independent hashes.
_SLOT_SALT = 0x9E3779B97F4A7C15
_HOT_SALT = 0xC2B2AE3D27D4EB4F
_CROSS_SALT = 0x165667B19E3779F9
#: All hot clients collapse onto this routing key (one hot range).
HOT_ROUTING_KEY = 0x48AF5F00D15EA5E5

DEFAULT_SLOTS = 64


def mix64(x: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finalizer over a uint64 array."""
    z = x.astype(np.uint64, copy=True)
    z += np.uint64(_SLOT_SALT)
    z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return z ^ (z >> np.uint64(31))


def mix64_scalar(x: int) -> int:
    """Scalar splitmix64 (same bits as :func:`mix64`)."""
    z = (x + _SLOT_SALT) & _MASK
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK
    return z ^ (z >> 31)


@dataclass(frozen=True)
class RoutingTable:
    """One epoch's immutable slot → shard assignment."""

    epoch: int
    slot_to_shard: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.slot_to_shard:
            raise ValueError("routing table needs at least one slot")
        if min(self.slot_to_shard) < 0:
            raise ValueError("negative shard id in routing table")

    @property
    def slots(self) -> int:
        return len(self.slot_to_shard)

    @property
    def n_shards(self) -> int:
        return max(self.slot_to_shard) + 1

    def as_array(self) -> np.ndarray:
        return np.asarray(self.slot_to_shard, dtype=np.int64)

    def table_digest(self) -> Digest:
        return digest_of("routing-table", (self.epoch, self.slot_to_shard))


def initial_table(n_shards: int, slots: int = DEFAULT_SLOTS) -> RoutingTable:
    """Epoch-0 table: slots dealt round-robin across shards."""
    if n_shards < 1:
        raise ValueError("need at least one shard")
    if slots < n_shards:
        raise ValueError("need at least one slot per shard")
    return RoutingTable(
        epoch=0, slot_to_shard=tuple(i % n_shards for i in range(slots))
    )


class Router:
    """Versioned deterministic router over columnar slabs.

    Holds the full :class:`RoutingTable` history (epoch 0 plus every
    rebalance); all routing decisions use the *current* table, and the
    history rides into the run fingerprint so a rebalancing run replays
    byte-identically or not at all.
    """

    def __init__(
        self,
        n_shards: int,
        slots: int = DEFAULT_SLOTS,
        hot_permille: int = 0,
        cross_permille: int = 0,
    ) -> None:
        if not 0 <= hot_permille <= 1000:
            raise ValueError("hot_permille out of [0, 1000]")
        if not 0 <= cross_permille <= 1000:
            raise ValueError("cross_permille out of [0, 1000]")
        if n_shards == 1 and cross_permille:
            raise ValueError("cross-shard traffic needs at least two shards")
        self.n_shards = n_shards
        self.hot_permille = hot_permille
        self.cross_permille = cross_permille
        self.history: list[RoutingTable] = [initial_table(n_shards, slots)]

    @property
    def table(self) -> RoutingTable:
        return self.history[-1]

    @property
    def epoch(self) -> int:
        return self.table.epoch

    def advance(self, slot_to_shard: tuple[int, ...]) -> RoutingTable:
        """Publish a rebalanced table as the next epoch."""
        if len(slot_to_shard) != self.table.slots:
            raise ValueError("rebalance must preserve the slot count")
        table = RoutingTable(
            epoch=self.table.epoch + 1, slot_to_shard=tuple(slot_to_shard)
        )
        self.history.append(table)
        return table

    # ------------------------------------------------------------------
    # Key → slot → shard (vectorized)
    # ------------------------------------------------------------------
    def routing_keys(self, client_ids: np.ndarray) -> np.ndarray:
        """Routing key per row: the client id, with the configured
        fraction of clients collapsed onto one hot key."""
        keys = client_ids.astype(np.uint64)
        if self.hot_permille:
            hot = (keys ^ np.uint64(_HOT_SALT))
            is_hot = mix64(hot) % np.uint64(1000) < np.uint64(self.hot_permille)
            keys = np.where(is_hot, np.uint64(HOT_ROUTING_KEY), keys)
        return keys

    def slots_of(self, client_ids: np.ndarray) -> np.ndarray:
        return (
            mix64(self.routing_keys(client_ids))
            % np.uint64(self.table.slots)
        ).astype(np.int64)

    def shard_of_key(self, client_id: int) -> int:
        """Scalar route (tests, single submissions)."""
        slots = self.slots_of(np.asarray([client_id], dtype=np.int64))
        return int(self.table.slot_to_shard[int(slots[0])])

    def classify(self, batch: TxBatch):
        """Route one slab: per-row slot, home shard, cross-shard mask
        and partner shard.

        Cross-shard membership and the partner shard are hashed from
        the *transaction* identity (client id and tx id), so they are
        stable per transaction but independent of slot placement.
        Returns ``(slots, home, cross_mask, partner)`` numpy arrays
        (``partner[i]`` is meaningful only where ``cross_mask[i]``).
        """
        slots = self.slots_of(batch.client_ids)
        home = self.table.as_array()[slots]
        n = len(batch)
        if not self.cross_permille or self.n_shards < 2:
            cross = np.zeros(n, dtype=bool)
            return slots, home, cross, home
        ident = mix64(
            batch.client_ids.astype(np.uint64)
            ^ mix64(batch.tx_ids.astype(np.uint64) ^ np.uint64(_CROSS_SALT))
        )
        cross = ident % np.uint64(1000) < np.uint64(self.cross_permille)
        hop = (ident >> np.uint64(32)) % np.uint64(self.n_shards - 1)
        partner = (home + 1 + hop.astype(np.int64)) % self.n_shards
        return slots, home, cross, partner

    def partition(self, batch: TxBatch) -> dict[int, TxBatch]:
        """Split a slab into per-shard slabs by home shard (single-shard
        rows only; callers handle the cross-shard rows separately)."""
        _, home, cross, _ = self.classify(batch)
        out: dict[int, TxBatch] = {}
        single = ~cross
        for shard in range(self.n_shards):
            idx = np.nonzero(single & (home == shard))[0]
            if len(idx):
                out[shard] = batch.select(idx)
        return out


__all__ = [
    "DEFAULT_SLOTS",
    "HOT_ROUTING_KEY",
    "Router",
    "RoutingTable",
    "initial_table",
    "mix64",
    "mix64_scalar",
]
