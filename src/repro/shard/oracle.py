"""Cross-shard atomicity oracle.

Invariant (docs/invariants.md): **no shard ever applies a partial
multi-key transaction** — for every 2PC transaction id, the decision
recorded in the shards' committed chains is unanimous across every
touched shard, and a commit is only ever applied over a staged prepare.

The oracle reads each shard's replica state machines directly:

* *intra-shard prefix consistency* — correct replicas of one shard
  execute prefixes of the same chain, so a replica that lags at the
  run's cutoff must hold a *subset* of the reference replica's 2PC
  history, and no two replicas may ever disagree on an xid's outcome;
* *cross-shard unanimity* — an xid committed on one shard and aborted
  on another is a violation;
* *conservation* — every committed transfer moved one unit between
  account keys, so the account total across all shards is bounded by
  the number of transfers whose commit has (so far) been applied on
  only one of its two shards, and is exactly zero once none remain.

Prepared-but-undecided transactions are *not* violations (the decision
may still be in flight when a run is cut off); they are reported
separately so liveness-style checks can bound them.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class AtomicityReport:
    """Joint verdict over all shards' committed state."""

    violations: list[str] = field(default_factory=list)
    committed: set[int] = field(default_factory=set)
    aborted: set[int] = field(default_factory=set)
    undecided: set[int] = field(default_factory=set)
    #: Commits applied on one touched shard but not (yet) the other.
    partial_commits: set[int] = field(default_factory=set)

    @property
    def ok(self) -> bool:
        return not self.violations

    def describe(self) -> str:
        if self.ok:
            return (
                f"atomicity ok: {len(self.committed)} committed, "
                f"{len(self.aborted)} aborted, "
                f"{len(self.undecided)} undecided, "
                f"{len(self.partial_commits)} in flight"
            )
        return "ATOMICITY: " + "; ".join(self.violations)


def check_atomicity(shard_clusters) -> AtomicityReport:
    """Judge the 2PC histories of a sharded run.

    ``shard_clusters`` is a sequence of per-shard clusters (only their
    correct replicas are consulted — Byzantine state machines may
    record anything).
    """
    report = AtomicityReport()
    # Per-shard: correct replicas hold prefixes of one chain, so their
    # 2PC histories must nest inside the most-advanced replica's and
    # never contradict it.  The reference is the longest log.
    per_shard: list[tuple[set[int], set[int], set[int]]] = []
    for shard, cluster in enumerate(shard_clusters):
        replicas = cluster.correct_replicas()
        if not replicas:
            per_shard.append((set(), set(), set()))
            continue
        ref = max(replicas, key=lambda r: len(r.log)).log.state
        for r in replicas:
            st = r.log.state
            conflicts = (st.x_committed & ref.x_aborted) | (
                st.x_aborted & ref.x_committed
            )
            for xid in sorted(conflicts):
                report.violations.append(
                    f"shard {shard}: replica {r.pid} decided 2PC tx "
                    f"{xid} differently from the reference replica"
                )
            lagging = (st.x_committed - ref.x_committed) | (
                st.x_aborted - ref.x_aborted
            )
            for xid in sorted(lagging - conflicts):
                report.violations.append(
                    f"shard {shard}: replica {r.pid} decided 2PC tx "
                    f"{xid} which the longest log has not"
                )
        per_shard.append((ref.x_prepared, ref.x_committed, ref.x_aborted))

    # Cross-shard: decisions must be unanimous.
    commit_shards: dict[int, int] = {}
    for shard, (prepared, committed, aborted) in enumerate(per_shard):
        report.committed |= committed
        report.aborted |= aborted
        report.undecided |= prepared - committed - aborted
        for xid in committed:
            commit_shards[xid] = commit_shards.get(xid, 0) + 1
        for other in range(shard + 1, len(per_shard)):
            both = (committed & per_shard[other][2]) | (
                aborted & per_shard[other][1]
            )
            for xid in sorted(both):
                report.violations.append(
                    f"2PC tx {xid}: committed on one of shards "
                    f"{shard}/{other} but aborted on the other"
                )
    report.undecided -= report.committed | report.aborted
    # A transfer touches exactly two shards; a commit applied on only
    # one of them is still propagating (or the run was cut off).
    report.partial_commits = {
        xid for xid, n in commit_shards.items() if n == 1
    }

    # Conservation: committed transfers are one-unit moves between
    # acct<home> and acct<partner>, so the global account total equals
    # the signed sum of half-applied commits — bounded by their count,
    # and exactly zero when every applied commit landed on both shards.
    total = 0
    for shard, cluster in enumerate(shard_clusters):
        replicas = cluster.correct_replicas()
        if not replicas:
            continue
        state = max(replicas, key=lambda r: len(r.log)).log.state
        total += int(state.get(f"acct{shard}", 0))
    if abs(total) > len(report.partial_commits):
        report.violations.append(
            f"conservation broken: account total {total} with only "
            f"{len(report.partial_commits)} half-applied commits — some "
            f"shard applied a partial transfer"
        )
    return report


__all__ = ["AtomicityReport", "check_atomicity"]
