"""Hot-key rebalancing: epoch-boundary slot migration under load skew.

The :class:`LoadMonitor` accumulates per-slot offered load as the
router partitions slabs (exact integer counters — the monitor draws no
RNG, so observing load can never perturb a run) plus streaming
P²/moment sketches of the per-slab shard imbalance for reporting.  At
each epoch boundary the :class:`Rebalancer` checks the realized
per-shard load ratio; past the threshold it repacks slots onto shards
with an LPT (longest-processing-time-first) greedy pass — determinstic
tie-breaking on slot id — and the router publishes the new table as
the next epoch.

In-flight transactions drain deterministically through a migration:
single-shard rows are routed by the table in force when their slab is
partitioned, and cross-shard transactions record their touched-shard
set at prepare time, so a later epoch change never re-routes a
decision.  There is no transfer of application state between shards —
a migrated slot's *new* transactions go to the new shard while the old
shard keeps the history it already committed (the per-shard chains are
the system of record; the oracle checks them jointly).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..metrics.streaming import P2Quantile, StreamingMoments
from .router import RoutingTable

#: Rebalance only past this max/mean per-shard load ratio.
DEFAULT_IMBALANCE_THRESHOLD = 1.25


@dataclass(frozen=True)
class Migration:
    """One published rebalance: which slots moved at which epoch."""

    epoch: int
    at_time: float
    moved_slots: tuple[int, ...]
    imbalance_before: float
    imbalance_after: float


class LoadMonitor:
    """Streaming per-slot/per-shard offered-load accounting."""

    def __init__(self, slots: int, n_shards: int) -> None:
        self.slot_counts = np.zeros(slots, dtype=np.int64)
        self.n_shards = n_shards
        self.total_rows = 0
        #: P² sketch of the per-slab max/mean shard imbalance and
        #: moments of per-slab row counts (reporting only).
        self.imbalance_p95 = P2Quantile(0.95)
        self.slab_rows = StreamingMoments()

    def record(self, slots: np.ndarray, home_shards: np.ndarray) -> None:
        """Fold one routed slab into the counters."""
        np.add.at(self.slot_counts, slots, 1)
        self.total_rows += len(slots)
        self.slab_rows.add(float(len(slots)))
        if len(slots):
            per_shard = np.bincount(home_shards, minlength=self.n_shards)
            mean = per_shard.mean()
            if mean > 0:
                self.imbalance_p95.add(float(per_shard.max() / mean))

    def shard_loads(self, table: RoutingTable) -> np.ndarray:
        """Accumulated per-shard load under ``table``."""
        loads = np.zeros(self.n_shards, dtype=np.int64)
        np.add.at(loads, table.as_array(), self.slot_counts)
        return loads

    def imbalance(self, table: RoutingTable) -> float:
        loads = self.shard_loads(table)
        mean = loads.mean()
        return float(loads.max() / mean) if mean > 0 else 1.0

    def reset_epoch(self) -> None:
        """Start the next epoch's window (counters are per-epoch)."""
        self.slot_counts[:] = 0
        self.total_rows = 0


class Rebalancer:
    """LPT greedy slot repacking, gated on realized imbalance."""

    def __init__(self, threshold: float = DEFAULT_IMBALANCE_THRESHOLD) -> None:
        if threshold < 1.0:
            raise ValueError("imbalance threshold must be >= 1")
        self.threshold = threshold

    def plan(
        self, monitor: LoadMonitor, table: RoutingTable
    ) -> tuple[tuple[int, ...], float, float] | None:
        """A new slot→shard map, or None if balanced enough.

        Returns ``(slot_to_shard, imbalance_before, imbalance_after)``.
        LPT: place slots heaviest-first onto the currently least-loaded
        shard; ties break on lowest shard id, slots of equal weight on
        lowest slot id — fully deterministic.  Only adopted if it
        strictly improves the realized imbalance.
        """
        before = monitor.imbalance(table)
        if before <= self.threshold or monitor.total_rows == 0:
            return None
        counts = monitor.slot_counts
        order = sorted(range(table.slots), key=lambda s: (-int(counts[s]), s))
        loads = [0] * monitor.n_shards
        assign = list(table.slot_to_shard)
        for slot in order:
            shard = min(range(monitor.n_shards), key=lambda k: (loads[k], k))
            assign[slot] = shard
            loads[shard] += int(counts[slot])
        candidate = RoutingTable(epoch=table.epoch + 1, slot_to_shard=tuple(assign))
        after = monitor.imbalance(candidate)
        if after >= before:
            return None
        return tuple(assign), before, after


__all__ = [
    "DEFAULT_IMBALANCE_THRESHOLD",
    "LoadMonitor",
    "Migration",
    "Rebalancer",
]
