"""Consensus protocols: the shared replica machinery plus the HotStuff
and Damysus baselines.  OneShot itself lives in :mod:`repro.core`."""

from .common import BaseReplica, Cluster, ProtocolConfig, build_cluster

__all__ = ["BaseReplica", "Cluster", "ProtocolConfig", "build_cluster"]
