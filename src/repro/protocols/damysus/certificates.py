"""Damysus certificates (baseline, Sec. III of the OneShot paper).

* **Commitment** — the (prepared view, prepared hash) pair a replica's
  CHECKER signs and sends to the next leader in the new-view phase.
* **DamAccum** — the ACCUMULATOR's output over f+1 commitments: a
  signed assertion of the pair with the highest prepared view.
* **DamProposal** — the leader's CHECKER-signed proposal (one per view).
* **DamVote** — a CHECKER-signed phase vote (prepare or commit).
* **DamCert** — f+1 combined votes for one phase.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...crypto import Digest, KeyRing, Signature, digest_of
from ...crypto.memo import record_valid, seen_valid

#: Vote phases.
PREPARE = "prepare"
COMMIT = "commit"


def commitment_digest(prep_view: int, prep_hash: Digest, view: int) -> Digest:
    return digest_of("dam-com", prep_view, prep_hash, view)


def accum_digest(view: int, prep_hash: Digest, prep_view: int) -> Digest:
    return digest_of("dam-acc", view, prep_hash, prep_view)


def proposal_digest(h: Digest, view: int) -> Digest:
    return digest_of("dam-prop", h, view)


def vote_digest(h: Digest, view: int, phase: str) -> Digest:
    return digest_of("dam-vote", h, view, phase)


@dataclass(frozen=True)
class Commitment:
    """``com(prep_view, prep_hash, view)_σ``."""

    prep_view: int
    prep_hash: Digest
    view: int
    sig: Signature

    def verify(self, ring: KeyRing) -> bool:
        return ring.verify(
            commitment_digest(self.prep_view, self.prep_hash, self.view), self.sig
        )

    def wire_size(self) -> int:
        return 48 + 64


@dataclass(frozen=True)
class DamAccum:
    """``acc(view, prep_hash, prep_view)_σ`` — highest prepared pair."""

    view: int
    prep_hash: Digest
    prep_view: int
    sig: Signature

    def verify(self, ring: KeyRing) -> bool:
        return ring.verify(
            accum_digest(self.view, self.prep_hash, self.prep_view), self.sig
        )

    def wire_size(self) -> int:
        return 48 + 64


@dataclass(frozen=True)
class DamProposal:
    """``prop(h, view)_σ`` from the leader's CHECKER."""

    block_hash: Digest
    view: int
    sig: Signature

    def verify(self, ring: KeyRing) -> bool:
        return ring.verify(proposal_digest(self.block_hash, self.view), self.sig)

    def wire_size(self) -> int:
        return 40 + 64


@dataclass(frozen=True)
class DamVote:
    """``vote(h, view, phase)_σ``."""

    block_hash: Digest
    view: int
    phase: str
    sig: Signature

    def verify(self, ring: KeyRing) -> bool:
        return ring.verify(
            vote_digest(self.block_hash, self.view, self.phase), self.sig
        )

    def wire_size(self) -> int:
        return 48 + 64


@dataclass(frozen=True)
class DamCert:
    """``cert(h, view, phase)_{σ⃗^{f+1}}`` — a combined phase quorum."""

    block_hash: Digest
    view: int
    phase: str
    sigs: tuple[Signature, ...]

    def signer_ids(self) -> tuple[int, ...]:
        return tuple(s.signer for s in self.sigs)

    def verify(self, ring: KeyRing, quorum: int) -> bool:
        if seen_valid(self, ring, quorum):
            return True
        if len(set(self.signer_ids())) < quorum:
            return False
        digest = vote_digest(self.block_hash, self.view, self.phase)
        if not ring.verify_all(digest, self.sigs):
            return False
        record_valid(self, ring, quorum)
        return True

    def wire_size(self) -> int:
        return 48 + 64 * len(self.sigs)


__all__ = [
    "PREPARE",
    "COMMIT",
    "Commitment",
    "DamAccum",
    "DamProposal",
    "DamVote",
    "DamCert",
    "commitment_digest",
    "accum_digest",
    "proposal_digest",
    "vote_digest",
]
