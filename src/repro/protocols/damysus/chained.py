"""Chained (pipelined) Damysus.

Sec. III: "Like Chained-HotStuff, Chained-Damysus supports pipelined
operations for improved performance."  One block per view, two waves
per view, and Damysus's 2-chain commit: block b is decided once a
prepare certificate exists for a direct child of b (two TEE-guarded
f+1 quorums on the chain).

* view v's leader proposes ⟨b_v, prop, justify⟩ where ``justify`` is
  either the prepare certificate of b_{v-1} (steady state) or an
  ACCUMULATOR certificate (after a timeout);
* replicas verify the justify *inside the CHECKER*, which records the
  prepared pair and signs a once-per-view vote, sent to view v+1's
  leader;
* on timeout, replicas ship their CHECKER commitment to the next
  leader, whose ACCUMULATOR selects the highest prepared pair — the
  basic protocol's view-change machinery, unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...crypto import Digest
from ...metrics import NORMAL
from ...smr import Block, create_leaf
from ..common import BaseReplica, QuorumTracker
from .certificates import PREPARE, DamAccum, DamCert, DamProposal
from .messages import DamFetchReq, DamFetchResp, DamNewViewMsg, DamVoteMsg
from .tee_services import (
    ChainedDamysusChecker,
    DamysusAccumulator,
    Justify,
)


@dataclass(frozen=True)
class ChainedDamProposalMsg:
    """⟨block, proposal, justify⟩ — the chained prepare wave."""

    block: Block
    proposal: DamProposal
    justify: Justify

    def wire_size(self) -> int:
        return (
            8
            + self.block.wire_size()
            + self.proposal.wire_size()
            + self.justify.wire_size()
        )


class ChainedDamysusReplica(BaseReplica):
    """Chained Damysus: one block per view, 2-chain commit."""

    MIN_N_FACTOR = 2
    PROTOCOL = "damysus-chained"
    CERTIFIED_REPLIES = False

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        cfg = self.config
        self.checker = ChainedDamysusChecker(
            self.pid,
            self.creds.keypair,
            self.ring,
            cfg.crypto_costs,
            cfg.tee_costs,
            cfg.quorum,
        )
        self.accumulator = DamysusAccumulator(
            self.pid,
            self.creds.keypair,
            self.ring,
            cfg.crypto_costs,
            cfg.tee_costs,
            cfg.quorum,
        )
        #: block hash -> prepare certificate (for the 2-chain walk).
        self._cert_of: dict[Digest, DamCert] = {}
        self._com_tracker = QuorumTracker(cfg.quorum)
        self._vote_tracker = QuorumTracker(cfg.quorum)
        self._led_view = -1
        self._fetching: set[Digest] = set()
        for mtype, handler in (
            (DamNewViewMsg, self.on_new_view),
            (ChainedDamProposalMsg, self.on_proposal),
            (DamVoteMsg, self.on_vote),
            (DamFetchReq, self.on_fetch_req),
            (DamFetchResp, self.on_fetch_resp),
        ):
            self.register_handler(mtype, handler)

    # ------------------------------------------------------------------
    # Bootstrap & timeout: commitments to the (next) leader
    # ------------------------------------------------------------------
    def on_start(self) -> None:
        self._send_commitment(0)

    def on_enter_view(self, view: int) -> None:
        if view % 64 == 0:
            self._com_tracker.clear_below(view - 4)
            self._vote_tracker.clear_below(view - 4)

    def on_timeout(self) -> None:
        self.enter_view(self.view + 1)
        self._send_commitment(self.view)

    def _send_commitment(self, view: int) -> None:
        com = self.checker.new_view(view)
        done = self.charge_enclave(self.checker)
        if com is not None:
            self.send_at(done, self.leader_of(view), DamNewViewMsg(com))

    # ------------------------------------------------------------------
    # Leader paths: from commitments (recovery) or votes (steady state)
    # ------------------------------------------------------------------
    def on_new_view(self, sender: int, msg: DamNewViewMsg) -> None:
        com = msg.commitment
        if com.view < self.view or self.leader_of(com.view) != self.pid:
            return
        if sender != self.pid:
            self.charge(self.config.crypto_costs.verify(1))
            if not com.verify(self.ring):
                return
        quorum = self._com_tracker.add(com.view, com.sig.signer, com)
        if quorum is None:
            return
        if com.view > self.view:
            self.enter_view(com.view)
        if com.view != self.view or self._led_view >= self.view:
            return
        acc = self.accumulator.tee_accum(quorum)
        self.charge_enclave(self.accumulator)
        if acc is None:  # pragma: no cover - commitments pre-verified
            return
        self._propose(acc.prep_hash, acc)

    def on_vote(self, sender: int, msg: DamVoteMsg) -> None:
        vote = msg.vote
        v = vote.view  # votes of view v elect the leader of v+1
        if vote.phase != PREPARE or self.leader_of(v + 1) != self.pid:
            return
        if v + 1 < self.view:
            return
        if sender != self.pid:
            self.charge(self.config.crypto_costs.verify(1))
            if not vote.verify(self.ring):
                return
        quorum = self._vote_tracker.add(
            (v, vote.block_hash), vote.sig.signer, vote
        )
        if quorum is None:
            return
        cert = DamCert(
            block_hash=vote.block_hash,
            view=v,
            phase=PREPARE,
            sigs=tuple(x.sig for x in quorum),
        )
        self._register_cert(cert)
        if v + 1 > self.view:
            self.enter_view(v + 1)
        if self.view != v + 1 or self._led_view >= self.view:
            return
        self._propose(cert.block_hash, cert)

    def _propose(self, parent: Digest, justify: Justify) -> None:
        block = create_leaf(
            parent, self.view, self.mempool.next_batch(self.sim.now), self.pid
        )
        self.charge(self.config.crypto_costs.hash(block.wire_size()))
        prop = self.checker.tee_propose(block.hash, self.view)
        done = self.charge_enclave(self.checker)
        if prop is None:
            return
        self._led_view = self.view
        self.add_block(block)
        self.collector.on_propose(self.pid, self.view, block.hash, self.sim.now)
        self.broadcast_at(done, ChainedDamProposalMsg(block, prop, justify))

    # ------------------------------------------------------------------
    # Replicas: vote to the next leader, 2-chain commit walk
    # ------------------------------------------------------------------
    def on_proposal(self, sender: int, msg: ChainedDamProposalMsg) -> None:
        prop, justify = msg.proposal, msg.justify
        v = prop.view
        if v < self.view or sender != self.leader_of(v):
            return
        if sender != self.pid:
            # Untrusted pre-check (Sec. III: verify before processing);
            # the CHECKER re-verifies the justify in-enclave.
            nsigs = len(justify.sigs) if isinstance(justify, DamCert) else 1
            self.charge(
                self.config.crypto_costs.verify(1 + nsigs)
                + self.config.crypto_costs.hash(msg.block.wire_size())
            )
            if not prop.verify(self.ring):
                return
        if prop.sig.signer != self.leader_of(v) or msg.block.hash != prop.block_hash:
            return
        parent = (
            justify.block_hash
            if isinstance(justify, DamCert)
            else justify.prep_hash
        )
        if not msg.block.extends(parent):
            return
        if isinstance(justify, DamAccum) and justify.view != v:
            return
        if v > self.view:
            self.enter_view(v)
        if v != self.view:
            return
        self.add_block(msg.block)
        # A valid proposal is pipeline progress: reset the backoff even
        # when the k-chain commit still lags (e.g. around failed views).
        self.note_progress()
        if isinstance(justify, DamCert):
            self._register_cert(justify)
        vote = self.checker.tee_vote_chained(msg.block.hash, v, justify)
        done = self.charge_enclave(self.checker)
        if vote is None:
            return
        self.send_at(done, self.leader_of(v + 1), DamVoteMsg(vote))

    def _register_cert(self, cert: DamCert) -> None:
        """Record a prepare certificate and run the 2-chain commit."""
        if cert.block_hash in self._cert_of:
            return
        self._cert_of[cert.block_hash] = cert
        b1 = self.store.get(cert.block_hash)
        if b1 is None:
            return
        cert0 = self._cert_of.get(b1.parent)
        if cert0 is None:
            return
        # 2-chain: b0 <- b1, both certified with a direct parent link.
        if not self.log.is_executed(cert0.block_hash):
            self.commit_chain(cert0.block_hash, NORMAL, context=cert0)
            self.record_decision_progress()

    # ------------------------------------------------------------------
    # Block fetch
    # ------------------------------------------------------------------
    def on_missing_block(self, h: Digest, context=None) -> None:
        if h in self._fetching or context is None:
            return
        self._fetching.add(h)
        targets = [i for i in context.signer_ids() if i != self.pid]
        if targets:
            self.network.send(self.pid, targets[0], DamFetchReq(h))

    def on_fetch_req(self, sender: int, msg: DamFetchReq) -> None:
        block = self.store.get(msg.block_hash)
        if block is not None:
            done = self.charge(self.config.handler_overhead)
            self.send_at(done, sender, DamFetchResp(block))

    def on_fetch_resp(self, sender: int, msg: DamFetchResp) -> None:
        self.charge(self.config.crypto_costs.hash(msg.block.wire_size()))
        self._fetching.discard(msg.block.hash)
        self.add_block(msg.block)


__all__ = [
    "ChainedDamysusReplica",
    "ChainedDamysusChecker",
    "ChainedDamProposalMsg",
]
