"""Damysus replica (baseline) — the six-step view of Sec. III.

1. **new-view**: every replica's CHECKER signs a commitment with its
   latest prepared (view, hash) pair, sent to the view's leader.
2. **prepare (a)**: the leader feeds f+1 commitments to its
   ACCUMULATOR, extends the highest prepared block, and broadcasts the
   proposal with the accumulator's certificate.
3. **prepare (b)**: replicas verify and reply with a prepare vote.
4. **pre-commit (a)**: the leader combines f+1 prepare votes into a
   certificate and broadcasts it.
5. **pre-commit (b)**: replicas store the prepared pair *inside the
   CHECKER* (which verifies the quorum in-enclave) and reply with a
   commit vote.
6. **decide**: the leader broadcasts the combined commit certificate
   and replicas execute.

Replicas skip signature verification for material they produced
themselves (loopback deliveries), as a real implementation would.
"""

from __future__ import annotations

from typing import Any, Optional

from ...crypto import Digest
from ...metrics import NORMAL
from ...smr import create_leaf
from ..common import BaseReplica, QuorumTracker
from .certificates import COMMIT, PREPARE, DamCert, DamProposal
from .messages import (
    DamCertMsg,
    DamFetchReq,
    DamFetchResp,
    DamNewViewMsg,
    DamProposalMsg,
    DamVoteMsg,
)
from .tee_services import DamysusAccumulator, DamysusChecker


class DamysusReplica(BaseReplica):
    """A Damysus replica (N = 2f+1, two core phases)."""

    MIN_N_FACTOR = 2
    PROTOCOL = "damysus"
    CERTIFIED_REPLIES = False

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        cfg = self.config
        self.checker = DamysusChecker(
            self.pid,
            self.creds.keypair,
            self.ring,
            cfg.crypto_costs,
            cfg.tee_costs,
            cfg.quorum,
        )
        self.accumulator = DamysusAccumulator(
            self.pid,
            self.creds.keypair,
            self.ring,
            cfg.crypto_costs,
            cfg.tee_costs,
            cfg.quorum,
        )
        self._com_tracker = QuorumTracker(cfg.quorum)
        self._vote_tracker = QuorumTracker(cfg.quorum)
        self._led_view = -1
        self._current_hash: dict[int, Digest] = {}  # view -> proposed hash
        self._fetching: set[Digest] = set()
        for mtype, handler in (
            (DamNewViewMsg, self.on_new_view),
            (DamProposalMsg, self.on_proposal),
            (DamVoteMsg, self.on_vote),
            (DamCertMsg, self.on_cert),
            (DamFetchReq, self.on_fetch_req),
            (DamFetchResp, self.on_fetch_resp),
        ):
            self.register_handler(mtype, handler)

    # ------------------------------------------------------------------
    # View entry / timeout: step 1 (new-view)
    # ------------------------------------------------------------------
    def on_enter_view(self, view: int) -> None:
        if view % 64 == 0:
            self._com_tracker.clear_below(view - 4)
            self._vote_tracker.clear_below(view - 4)
        com = self.checker.new_view(view)
        done = self.charge_enclave(self.checker)
        if com is None:  # pragma: no cover - views are monotonic
            return
        self.send_at(done, self.leader_of(view), DamNewViewMsg(com))

    def on_timeout(self) -> None:
        self.enter_view(self.view + 1)

    # ------------------------------------------------------------------
    # Leader: accumulate commitments, propose (step 2)
    # ------------------------------------------------------------------
    def on_new_view(self, sender: int, msg: DamNewViewMsg) -> None:
        com = msg.commitment
        if com.view < self.view or self.leader_of(com.view) != self.pid:
            return
        if sender != self.pid:
            self.charge(self.config.crypto_costs.verify(1))
            if not com.verify(self.ring):
                return
        quorum = self._com_tracker.add(com.view, com.sig.signer, com)
        if quorum is None:
            return
        if com.view > self.view:
            self.enter_view(com.view)
        if com.view != self.view or self._led_view >= self.view:
            return
        acc = self.accumulator.tee_accum(quorum)
        self.charge_enclave(self.accumulator)
        if acc is None:  # pragma: no cover - commitments pre-verified
            return
        block = create_leaf(
            acc.prep_hash, self.view, self.mempool.next_batch(self.sim.now), self.pid
        )
        self.charge(self.config.crypto_costs.hash(block.wire_size()))
        prop = self.checker.tee_prepare(block.hash)
        done = self.charge_enclave(self.checker)
        if prop is None:
            return
        self._led_view = self.view
        self.add_block(block)
        self.collector.on_propose(self.pid, self.view, block.hash, self.sim.now)
        self.broadcast_at(done, DamProposalMsg(block, prop, acc))

    # ------------------------------------------------------------------
    # Replicas: prepare vote (step 3)
    # ------------------------------------------------------------------
    def on_proposal(self, sender: int, msg: DamProposalMsg) -> None:
        prop, acc = msg.proposal, msg.acc
        v = prop.view
        if v < self.view or sender != self.leader_of(v):
            return
        if sender != self.pid:
            self.charge(
                self.config.crypto_costs.verify(2)
                + self.config.crypto_costs.hash(msg.block.wire_size())
            )
            if not (prop.verify(self.ring) and acc.verify(self.ring)):
                return
        if (
            acc.view != v
            or prop.sig.signer != self.leader_of(v)
            or msg.block.hash != prop.block_hash
            or not msg.block.extends(acc.prep_hash)
        ):
            return
        if v > self.view:
            self.enter_view(v)
        if v != self.view:
            return
        self.add_block(msg.block)
        self._current_hash[v] = msg.block.hash
        vote = self.checker.tee_vote_prepare(msg.block.hash)
        done = self.charge_enclave(self.checker)
        if vote is None:
            return
        self.send_at(done, sender, DamVoteMsg(vote))

    # ------------------------------------------------------------------
    # Leader: combine votes (steps 4 & 6)
    # ------------------------------------------------------------------
    def on_vote(self, sender: int, msg: DamVoteMsg) -> None:
        vote = msg.vote
        v = self.view
        if vote.view != v or self._led_view != v:
            return
        if self._current_hash.get(v) != vote.block_hash:
            return
        if sender != self.pid:
            self.charge(self.config.crypto_costs.verify(1))
            if not vote.verify(self.ring):
                return
        quorum = self._vote_tracker.add(
            (v, vote.phase, vote.block_hash), vote.sig.signer, vote
        )
        if quorum is None:
            return
        cert = DamCert(
            block_hash=vote.block_hash,
            view=v,
            phase=vote.phase,
            sigs=tuple(x.sig for x in quorum),
        )
        done = max(self.sim.now, self.cpu.busy_until)
        self.broadcast_at(done, DamCertMsg(cert))

    # ------------------------------------------------------------------
    # Replicas: store + commit vote (step 5), execute (after step 6)
    # ------------------------------------------------------------------
    def on_cert(self, sender: int, msg: DamCertMsg) -> None:
        cert = msg.cert
        v = cert.view
        if v < self.view or sender != self.leader_of(v):
            return
        if cert.phase == PREPARE:
            if v != self.view:
                return  # prepare certs are only actionable in-view
            # Sec. III: every node verifies message authenticity before
            # processing; the CHECKER then re-verifies inside the
            # enclave before mutating its prepared pair (it cannot
            # trust the untrusted side's check).
            if sender != self.pid:
                self.charge(self.config.crypto_costs.verify(len(cert.sigs)))
                if not cert.verify(self.ring, self.config.quorum):
                    return
            commit_vote = self.checker.tee_store(cert)
            done = self.charge_enclave(self.checker)
            if commit_vote is None:
                return
            self.send_at(done, sender, DamVoteMsg(commit_vote))
            return
        # COMMIT certificate: verify and execute.
        if sender != self.pid:
            self.charge(self.config.crypto_costs.verify(len(cert.sigs)))
            if not cert.verify(self.ring, self.config.quorum):
                return
        if v > self.view:
            self.enter_view(v)
        if v != self.view:
            return
        self.commit_chain(cert.block_hash, NORMAL, context=cert)
        self.record_decision_progress()
        self.enter_view(v + 1)

    # ------------------------------------------------------------------
    # Block fetch (recovery)
    # ------------------------------------------------------------------
    def on_missing_block(self, h: Digest, context: Any = None) -> None:
        if h in self._fetching or context is None:
            return
        self._fetching.add(h)
        targets = [i for i in context.signer_ids() if i != self.pid]
        if targets:
            self.network.send(self.pid, targets[0], DamFetchReq(h))

    def on_fetch_req(self, sender: int, msg: DamFetchReq) -> None:
        block = self.store.get(msg.block_hash)
        if block is not None:
            done = self.charge(self.config.handler_overhead)
            self.send_at(done, sender, DamFetchResp(block))

    def on_fetch_resp(self, sender: int, msg: DamFetchResp) -> None:
        self.charge(self.config.crypto_costs.hash(msg.block.wire_size()))
        self._fetching.discard(msg.block.hash)
        self.add_block(msg.block)


__all__ = ["DamysusReplica"]
