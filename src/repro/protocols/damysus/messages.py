"""Damysus wire messages — the six communication steps of Sec. III."""

from __future__ import annotations

from dataclasses import dataclass

from ...crypto import Digest
from ...smr import Block
from .certificates import Commitment, DamAccum, DamCert, DamProposal, DamVote


@dataclass(frozen=True)
class DamNewViewMsg:
    """Step 1: replica → leader, the CHECKER's commitment."""

    commitment: Commitment

    def wire_size(self) -> int:
        return 8 + self.commitment.wire_size()


@dataclass(frozen=True)
class DamProposalMsg:
    """Step 2: leader → all, ⟨block, proposal, accumulator⟩."""

    block: Block
    proposal: DamProposal
    acc: DamAccum

    def wire_size(self) -> int:
        return (
            8
            + self.block.wire_size()
            + self.proposal.wire_size()
            + self.acc.wire_size()
        )


@dataclass(frozen=True)
class DamVoteMsg:
    """Steps 3 & 5: replica → leader, a phase vote."""

    vote: DamVote

    def wire_size(self) -> int:
        return 8 + self.vote.wire_size()


@dataclass(frozen=True)
class DamCertMsg:
    """Steps 4 & 6: leader → all, a combined phase certificate."""

    cert: DamCert

    def wire_size(self) -> int:
        return 8 + self.cert.wire_size()


@dataclass(frozen=True)
class DamFetchReq:
    """Block fetch (recovery path; not part of the six steps)."""

    block_hash: Digest

    def wire_size(self) -> int:
        return 40


@dataclass(frozen=True)
class DamFetchResp:
    block: Block

    def wire_size(self) -> int:
        return 8 + self.block.wire_size()


__all__ = [
    "DamNewViewMsg",
    "DamProposalMsg",
    "DamVoteMsg",
    "DamCertMsg",
    "DamFetchReq",
    "DamFetchResp",
]
