"""Damysus (EuroSys'22) baseline: streamlined hybrid BFT with two core
phases, N = 2f+1, CHECKER + ACCUMULATOR trusted components."""

from .certificates import COMMIT, PREPARE, Commitment, DamAccum, DamCert, DamProposal, DamVote
from .replica import DamysusReplica
from .tee_services import DamysusAccumulator, DamysusChecker

__all__ = [
    "COMMIT",
    "PREPARE",
    "Commitment",
    "DamAccum",
    "DamCert",
    "DamProposal",
    "DamVote",
    "DamysusReplica",
    "DamysusAccumulator",
    "DamysusChecker",
]
