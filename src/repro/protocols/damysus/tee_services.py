"""Damysus's trusted components (baseline).

Compared to OneShot's (Sec. VI-A of the OneShot paper), Damysus's
CHECKER stores *both* a view and a hash for the last prepared block and
exposes one more entry point (it signs two vote rounds per view), and
its ACCUMULATOR runs in the prepare phase of **every** view.

CHECKER per-view step machine: ``NEW_VIEW → VOTED_PREPARE → STORED``;
leaders additionally pass through ``PROPOSED`` between the first two.
Each signing entry point is usable at most once per view, which is the
non-equivocation guarantee.
"""

from __future__ import annotations

from typing import Optional, Union

from ...crypto import CryptoCostModel, Digest, KeyPair, KeyRing
from ...smr import GENESIS
from ...tee import Enclave, TeeCostModel
from .certificates import (
    COMMIT,
    PREPARE,
    Commitment,
    DamAccum,
    DamCert,
    DamProposal,
    DamVote,
    accum_digest,
    commitment_digest,
    proposal_digest,
    vote_digest,
)

#: A chained proposal's justification: prepare certificate (steady
#: state) or ACCUMULATOR certificate (after a timeout).
Justify = Union[DamCert, DamAccum]

# Per-view step counter values (strictly increasing within a view).
_STEP_NV = 0
_STEP_PROPOSED = 1
_STEP_VOTED_PREPARE = 2
_STEP_STORED = 3


class DamysusChecker(Enclave):
    """Per-replica CHECKER: monotonic (view, step) + prepared pair."""

    def __init__(
        self,
        owner: int,
        keypair: KeyPair,
        ring: KeyRing,
        crypto_costs: CryptoCostModel,
        tee_costs: TeeCostModel,
        quorum: int,
    ) -> None:
        super().__init__(owner, keypair, ring, crypto_costs, tee_costs)
        self.quorum = quorum
        self.view = -1
        self.step = _STEP_STORED  # allows the first new_view(0)
        self.prep_view = -1
        self.prep_hash: Digest = GENESIS.hash

    def new_view(self, view: int) -> Optional[Commitment]:
        """Advance to ``view`` and emit the new-view commitment."""
        self._enter()
        if view <= self.view:
            return None  # monotonic
        self.view = view
        self.step = _STEP_NV
        return Commitment(
            prep_view=self.prep_view,
            prep_hash=self.prep_hash,
            view=view,
            sig=self._sign(
                commitment_digest(self.prep_view, self.prep_hash, view)
            ),
        )

    def tee_prepare(self, h: Digest) -> Optional[DamProposal]:
        """Leader proposal; once per view (prevents equivocation)."""
        self._enter()
        if self.step != _STEP_NV:
            return None
        self.step = _STEP_PROPOSED
        return DamProposal(
            block_hash=h,
            view=self.view,
            sig=self._sign(proposal_digest(h, self.view)),
        )

    def tee_vote_prepare(self, h: Digest) -> Optional[DamVote]:
        """Prepare-phase vote; once per view."""
        self._enter()
        if self.step not in (_STEP_NV, _STEP_PROPOSED):
            return None
        self.step = _STEP_VOTED_PREPARE
        return DamVote(
            block_hash=h,
            view=self.view,
            phase=PREPARE,
            sig=self._sign(vote_digest(h, self.view, PREPARE)),
        )

    def tee_store(self, cert: DamCert) -> Optional[DamVote]:
        """Record a prepared block after verifying its prepare quorum
        *inside the enclave*, and emit the commit-phase vote."""
        self._enter()
        if self.step != _STEP_VOTED_PREPARE:
            return None
        if cert.phase != PREPARE or cert.view != self.view:
            return None
        self._charge(
            self._crypto.verify(len(cert.sigs)) * self._tee.crypto_factor
        )
        if not cert.verify(self._ring, self.quorum):
            return None
        self.step = _STEP_STORED
        self.prep_view = cert.view
        self.prep_hash = cert.block_hash
        return DamVote(
            block_hash=cert.block_hash,
            view=cert.view,
            phase=COMMIT,
            sig=self._sign(vote_digest(cert.block_hash, cert.view, COMMIT)),
        )


class DamysusAccumulator(Enclave):
    """Leader-side ACCUMULATOR: invoked in every view's prepare phase."""

    def __init__(
        self,
        owner: int,
        keypair: KeyPair,
        ring: KeyRing,
        crypto_costs: CryptoCostModel,
        tee_costs: TeeCostModel,
        quorum: int,
    ) -> None:
        super().__init__(owner, keypair, ring, crypto_costs, tee_costs)
        self.quorum = quorum

    def tee_accum(self, commitments: list[Commitment]) -> Optional[DamAccum]:
        """Select the highest prepared pair among f+1 commitments."""
        self._enter()
        if len(commitments) < self.quorum:
            return None
        view = commitments[0].view
        signers = set()
        best = commitments[0]
        for com in commitments:
            self._charge(self._crypto.verify() * self._tee.crypto_factor)
            if com.view != view or not com.verify(self._ring):
                return None
            signers.add(com.sig.signer)
            if com.prep_view > best.prep_view:
                best = com
        if len(signers) < self.quorum:
            return None
        return DamAccum(
            view=view,
            prep_hash=best.prep_hash,
            prep_view=best.prep_view,
            sig=self._sign(accum_digest(view, best.prep_hash, best.prep_view)),
        )


class ChainedDamysusChecker(Enclave):
    """CHECKER for chained operation: one proposal and one vote per
    view, with the prepared pair updated in-enclave from the verified
    justify certificate."""

    def __init__(
        self,
        owner: int,
        keypair: KeyPair,
        ring: KeyRing,
        crypto_costs: CryptoCostModel,
        tee_costs: TeeCostModel,
        quorum: int,
    ) -> None:
        super().__init__(owner, keypair, ring, crypto_costs, tee_costs)
        self.quorum = quorum
        self.voted_view = -1
        self.proposed_view = -1
        self.prep_view = -1
        self.prep_hash: Digest = GENESIS.hash

    def tee_propose(self, h: Digest, view: int) -> Optional[DamProposal]:
        """Sign a proposal; monotonic, once per view."""
        self._enter()
        if view <= self.proposed_view:
            return None
        self.proposed_view = view
        return DamProposal(
            block_hash=h, view=view, sig=self._sign(proposal_digest(h, view))
        )

    def tee_vote_chained(
        self, h: Digest, view: int, justify: Justify
    ) -> Optional[DamVote]:
        """Verify the justify in-enclave, record the prepared pair, and
        sign the once-per-view prepare vote."""
        self._enter()
        if view <= self.voted_view:
            return None
        if isinstance(justify, DamCert):
            self._charge(
                self._crypto.verify(len(justify.sigs)) * self._tee.crypto_factor
            )
            if justify.phase != PREPARE or not justify.verify(self._ring, self.quorum):
                return None
            if justify.view >= self.prep_view:
                self.prep_view = justify.view
                self.prep_hash = justify.block_hash
        elif isinstance(justify, DamAccum):
            self._charge(self._crypto.verify() * self._tee.crypto_factor)
            if not justify.verify(self._ring):
                return None
        else:
            return None
        self.voted_view = view
        return DamVote(
            block_hash=h,
            view=view,
            phase=PREPARE,
            sig=self._sign(vote_digest(h, view, PREPARE)),
        )

    def new_view(self, view: int) -> Optional[Commitment]:
        """Timeout commitment: the latest prepared pair, tagged ``view``."""
        self._enter()
        return Commitment(
            prep_view=self.prep_view,
            prep_hash=self.prep_hash,
            view=view,
            sig=self._sign(
                commitment_digest(self.prep_view, self.prep_hash, view)
            ),
        )


__all__ = [
    "DamysusChecker",
    "DamysusAccumulator",
    "ChainedDamysusChecker",
    "Justify",
]
