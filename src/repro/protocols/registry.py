"""Protocol registry: name → replica class + resilience metadata.

The experiment harness looks protocols up by name; registering here is
all that is needed for a protocol to participate in every experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Type

from ..core import OneShotReplica
from ..core.chained import ChainedOneShotReplica
from .common import BaseReplica
from .damysus import DamysusReplica
from .damysus.chained import ChainedDamysusReplica
from .hotstuff import HotStuffReplica
from .hotstuff.chained import ChainedHotStuffReplica


@dataclass(frozen=True)
class ProtocolInfo:
    """Registry entry for one protocol."""

    name: str
    replica_cls: Type[BaseReplica]
    #: n = factor * f + 1 (minimum cluster size for f faults).
    n_factor: int

    def n_for(self, f: int) -> int:
        """Smallest cluster tolerating ``f`` faults."""
        return self.n_factor * f + 1


REGISTRY: dict[str, ProtocolInfo] = {
    "oneshot": ProtocolInfo("oneshot", OneShotReplica, 2),
    "oneshot-chained": ProtocolInfo("oneshot-chained", ChainedOneShotReplica, 2),
    "damysus": ProtocolInfo("damysus", DamysusReplica, 2),
    "damysus-chained": ProtocolInfo("damysus-chained", ChainedDamysusReplica, 2),
    "hotstuff": ProtocolInfo("hotstuff", HotStuffReplica, 3),
    "hotstuff-chained": ProtocolInfo("hotstuff-chained", ChainedHotStuffReplica, 3),
}


def get_protocol(name: str) -> ProtocolInfo:
    try:
        return REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown protocol {name!r}; known: {sorted(REGISTRY)}"
        ) from None


__all__ = ["ProtocolInfo", "REGISTRY", "get_protocol"]
