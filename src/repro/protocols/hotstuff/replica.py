"""Basic HotStuff replica (PODC'19) — the 8-step, 3-core-phase baseline.

N ≥ 3f+1, quorums of 2f+1.  Per view: new-view (½), prepare,
pre-commit, commit phases and the decide (½) step, with the lock-commit
safety rule: a replica votes for a proposal only if it extends its
locked block or carries a newer prepareQC (``safeNode``).

No trusted components: votes are replica-key signatures; QCs are
ECDSA signature lists (as in the paper's C++ baseline), so verifying a
QC costs 2f+1 signature checks.
"""

from __future__ import annotations

from typing import Any, Optional

from ...crypto import Digest
from ...metrics import NORMAL
from ...smr import create_leaf
from ..common import BaseReplica, QuorumTracker
from .certificates import (
    HS_COMMIT,
    HS_DECIDE,
    HS_GENESIS_QC,
    HS_PRECOMMIT,
    HS_PREPARE,
    HsQC,
    HsVote,
    hs_vote_digest,
)
from .messages import (
    HsFetchReq,
    HsFetchResp,
    HsNewViewMsg,
    HsProposalMsg,
    HsQcMsg,
    HsVoteMsg,
)


class HotStuffReplica(BaseReplica):
    """A Basic HotStuff replica."""

    MIN_N_FACTOR = 3
    PROTOCOL = "hotstuff"
    CERTIFIED_REPLIES = False

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.prepare_qc: HsQC = HS_GENESIS_QC
        self.locked_qc: HsQC = HS_GENESIS_QC
        self._nv_tracker = QuorumTracker(self.config.n - self.config.f)
        self._vote_tracker = QuorumTracker(self.hs_quorum)
        self._led_view = -1
        self._current_hash: dict[int, Digest] = {}
        self._fetching: set[Digest] = set()
        for mtype, handler in (
            (HsNewViewMsg, self.on_new_view),
            (HsProposalMsg, self.on_proposal),
            (HsVoteMsg, self.on_vote),
            (HsQcMsg, self.on_qc),
            (HsFetchReq, self.on_fetch_req),
            (HsFetchResp, self.on_fetch_resp),
        ):
            self.register_handler(mtype, handler)

    @property
    def hs_quorum(self) -> int:
        """HotStuff quorums are 2f+1 (vs f+1 for the hybrid protocols)."""
        return 2 * self.config.f + 1

    # ------------------------------------------------------------------
    # View entry / timeout (new-view interrupt)
    # ------------------------------------------------------------------
    def on_enter_view(self, view: int) -> None:
        if view % 64 == 0:
            self._nv_tracker.clear_below(view - 4)
            self._vote_tracker.clear_below(view - 4)
        done = max(self.sim.now, self.cpu.busy_until)
        self.send_at(
            done, self.leader_of(view), HsNewViewMsg(view, self.prepare_qc)
        )

    def on_timeout(self) -> None:
        self.enter_view(self.view + 1)

    # ------------------------------------------------------------------
    # Leader: prepare phase
    # ------------------------------------------------------------------
    def on_new_view(self, sender: int, msg: HsNewViewMsg) -> None:
        if msg.view < self.view or self.leader_of(msg.view) != self.pid:
            return
        quorum = self._nv_tracker.add(msg.view, sender, msg)
        if quorum is None:
            return
        if msg.view > self.view:
            self.enter_view(msg.view)
        if msg.view != self.view or self._led_view >= self.view:
            return
        high_qc = max(
            (m.justify for m in quorum), key=lambda qc: qc.view
        )
        if high_qc.view < self.prepare_qc.view:
            high_qc = self.prepare_qc
        # Verify the selected highQC (implementations verify lazily:
        # only the QC actually adopted, not every carried copy).
        if not high_qc.is_genesis:
            self.charge(self.config.crypto_costs.verify(len(high_qc.sigs)))
            if not high_qc.verify(self.ring, self.hs_quorum):
                return
        block = create_leaf(
            high_qc.block_hash,
            self.view,
            self.mempool.next_batch(self.sim.now),
            self.pid,
        )
        self.charge(self.config.crypto_costs.hash(block.wire_size()))
        self._led_view = self.view
        self.add_block(block)
        self.collector.on_propose(self.pid, self.view, block.hash, self.sim.now)
        done = max(self.sim.now, self.cpu.busy_until)
        self.broadcast_at(done, HsProposalMsg(block, self.view, high_qc))

    # ------------------------------------------------------------------
    # Replicas: prepare vote (safeNode rule)
    # ------------------------------------------------------------------
    def _safe_node(self, block, justify: HsQC) -> bool:
        """HotStuff's safety + liveness voting rule."""
        if justify.view > self.locked_qc.view:
            return True  # liveness rule
        if block.parent == self.locked_qc.block_hash:
            return True
        return self.store.extends_plus(block.parent, self.locked_qc.block_hash)

    def on_proposal(self, sender: int, msg: HsProposalMsg) -> None:
        v = msg.view
        if v < self.view or sender != self.leader_of(v):
            return
        if sender != self.pid:
            self.charge(
                self.config.crypto_costs.verify(len(msg.justify.sigs))
                + self.config.crypto_costs.hash(msg.block.wire_size())
            )
            if not msg.justify.verify(self.ring, self.hs_quorum):
                return
        if not msg.block.extends(msg.justify.block_hash):
            return
        if not self._safe_node(msg.block, msg.justify):
            return
        if v > self.view:
            self.enter_view(v)
        if v != self.view:
            return
        self.add_block(msg.block)
        self._current_hash[v] = msg.block.hash
        if msg.justify.view > self.prepare_qc.view:
            self.prepare_qc = msg.justify
        self._send_vote(HS_PREPARE, v, msg.block.hash, sender)

    def _send_vote(self, phase: str, view: int, h: Digest, leader: int) -> None:
        self.charge(self.config.crypto_costs.sign())
        vote = HsVote(
            phase=phase,
            view=view,
            block_hash=h,
            sig=self.creds.keypair.sign(hs_vote_digest(phase, view, h)),
        )
        done = max(self.sim.now, self.cpu.busy_until)
        self.send_at(done, leader, HsVoteMsg(vote))

    # ------------------------------------------------------------------
    # Leader: combine votes into QCs (steps 4/6/8)
    # ------------------------------------------------------------------
    def on_vote(self, sender: int, msg: HsVoteMsg) -> None:
        vote = msg.vote
        v = self.view
        if vote.view != v or self._led_view != v:
            return
        if self._current_hash.get(v) != vote.block_hash:
            return
        if sender != self.pid:
            self.charge(self.config.crypto_costs.verify(1))
            if not vote.verify(self.ring):
                return
        quorum = self._vote_tracker.add(
            (v, vote.phase, vote.block_hash), vote.sig.signer, vote
        )
        if quorum is None:
            return
        qc = HsQC(
            phase=vote.phase,
            view=v,
            block_hash=vote.block_hash,
            sigs=tuple(x.sig for x in quorum),
        )
        done = max(self.sim.now, self.cpu.busy_until)
        self.broadcast_at(done, HsQcMsg(qc))

    # ------------------------------------------------------------------
    # Replicas: phase transitions on QCs (steps 5/7 and decide)
    # ------------------------------------------------------------------
    def on_qc(self, sender: int, msg: HsQcMsg) -> None:
        qc = msg.qc
        v = qc.view
        if v < self.view or sender != self.leader_of(v):
            return
        if sender != self.pid:
            self.charge(self.config.crypto_costs.verify(len(qc.sigs)))
            if not qc.verify(self.ring, self.hs_quorum):
                return
        if qc.phase == HS_PREPARE:
            if v != self.view:
                return
            if qc.view > self.prepare_qc.view:
                self.prepare_qc = qc
            self._send_vote(HS_PRECOMMIT, v, qc.block_hash, sender)
        elif qc.phase == HS_PRECOMMIT:
            if v != self.view:
                return
            if qc.view > self.locked_qc.view:
                self.locked_qc = qc  # lock
            self._send_vote(HS_COMMIT, v, qc.block_hash, sender)
        elif qc.phase == HS_COMMIT:
            # Decide: execute and move on.
            if v > self.view:
                self.enter_view(v)
            if v != self.view:
                return
            self.commit_chain(qc.block_hash, NORMAL, context=qc)
            self.record_decision_progress()
            self.enter_view(v + 1)

    # ------------------------------------------------------------------
    # Block fetch (recovery)
    # ------------------------------------------------------------------
    def on_missing_block(self, h: Digest, context: Any = None) -> None:
        if h in self._fetching or context is None:
            return
        self._fetching.add(h)
        targets = [i for i in context.signer_ids() if i != self.pid]
        if targets:
            self.network.send(self.pid, targets[0], HsFetchReq(h))

    def on_fetch_req(self, sender: int, msg: HsFetchReq) -> None:
        block = self.store.get(msg.block_hash)
        if block is not None:
            done = self.charge(self.config.handler_overhead)
            self.send_at(done, sender, HsFetchResp(block))

    def on_fetch_resp(self, sender: int, msg: HsFetchResp) -> None:
        self.charge(self.config.crypto_costs.hash(msg.block.wire_size()))
        self._fetching.discard(msg.block.hash)
        self.add_block(msg.block)


__all__ = ["HotStuffReplica"]
