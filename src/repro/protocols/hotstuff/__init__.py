"""Basic HotStuff (PODC'19) baseline: three core phases, N = 3f+1,
no trusted components."""

from .certificates import (
    HS_COMMIT,
    HS_DECIDE,
    HS_GENESIS_QC,
    HS_PRECOMMIT,
    HS_PREPARE,
    HsQC,
    HsVote,
)
from .replica import HotStuffReplica

__all__ = [
    "HS_COMMIT",
    "HS_DECIDE",
    "HS_GENESIS_QC",
    "HS_PRECOMMIT",
    "HS_PREPARE",
    "HsQC",
    "HsVote",
    "HotStuffReplica",
]
