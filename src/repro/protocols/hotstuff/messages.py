"""Basic HotStuff wire messages — the 8 communication steps of Fig. 1."""

from __future__ import annotations

from dataclasses import dataclass

from ...crypto import Digest
from ...smr import Block
from .certificates import HsQC, HsVote


@dataclass(frozen=True)
class HsNewViewMsg:
    """Step 1: replica → leader, carrying the replica's prepareQC."""

    view: int  # the view this message opens
    justify: HsQC

    def wire_size(self) -> int:
        return 16 + self.justify.wire_size()


@dataclass(frozen=True)
class HsProposalMsg:
    """Step 2 (prepare): leader → all, ⟨block, highQC⟩."""

    block: Block
    view: int
    justify: HsQC  # highQC

    def wire_size(self) -> int:
        return 16 + self.block.wire_size() + self.justify.wire_size()


@dataclass(frozen=True)
class HsVoteMsg:
    """Steps 3/5/7: replica → leader, a phase vote."""

    vote: HsVote

    def wire_size(self) -> int:
        return 8 + self.vote.wire_size()


@dataclass(frozen=True)
class HsQcMsg:
    """Steps 4/6/8: leader → all, the combined QC of the prior phase."""

    qc: HsQC

    def wire_size(self) -> int:
        return 8 + self.qc.wire_size()


@dataclass(frozen=True)
class HsFetchReq:
    block_hash: Digest

    def wire_size(self) -> int:
        return 40


@dataclass(frozen=True)
class HsFetchResp:
    block: Block

    def wire_size(self) -> int:
        return 8 + self.block.wire_size()


__all__ = [
    "HsNewViewMsg",
    "HsProposalMsg",
    "HsVoteMsg",
    "HsQcMsg",
    "HsFetchReq",
    "HsFetchResp",
]
