"""Basic HotStuff certificates (PODC'19 baseline).

Votes are partial signatures over ``(phase, view, hash)``; a quorum
certificate (QC) combines 2f+1 of them.  The paper's C++ baseline uses
ECDSA signature lists (no threshold aggregation), so verifying a QC
costs 2f+1 signature checks — we model the same.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ...crypto import Digest, KeyRing, Signature, digest_of
from ...crypto.memo import record_valid, seen_valid
from ...smr import GENESIS

#: HotStuff phases.
HS_PREPARE = "prepare"
HS_PRECOMMIT = "pre-commit"
HS_COMMIT = "commit"
HS_DECIDE = "decide"


def hs_vote_digest(phase: str, view: int, h: Digest) -> Digest:
    return digest_of("hs-vote", phase, view, h)


@dataclass(frozen=True)
class HsVote:
    """A partial signature for one phase of one view."""

    phase: str
    view: int
    block_hash: Digest
    sig: Signature

    def verify(self, ring: KeyRing) -> bool:
        return ring.verify(
            hs_vote_digest(self.phase, self.view, self.block_hash), self.sig
        )

    def wire_size(self) -> int:
        return 48 + 64


@dataclass(frozen=True)
class HsQC:
    """A quorum certificate: 2f+1 votes on ``(phase, view, hash)``."""

    phase: str
    view: int
    block_hash: Digest
    sigs: tuple[Signature, ...]

    @property
    def is_genesis(self) -> bool:
        return self.view == -1 and self.block_hash == GENESIS.hash

    def signer_ids(self) -> tuple[int, ...]:
        return tuple(s.signer for s in self.sigs)

    def verify(self, ring: KeyRing, quorum: int) -> bool:
        if self.is_genesis:
            return True
        if seen_valid(self, ring, quorum):
            return True
        if len(set(self.signer_ids())) < quorum:
            return False
        digest = hs_vote_digest(self.phase, self.view, self.block_hash)
        if not ring.verify_all(digest, self.sigs):
            return False
        record_valid(self, ring, quorum)
        return True

    def wire_size(self) -> int:
        return 48 + 64 * len(self.sigs)


#: Bootstrap QC: genesis is prepared before view 0.
HS_GENESIS_QC = HsQC(phase=HS_PREPARE, view=-1, block_hash=GENESIS.hash, sigs=())


__all__ = [
    "HS_PREPARE",
    "HS_PRECOMMIT",
    "HS_COMMIT",
    "HS_DECIDE",
    "HsVote",
    "HsQC",
    "HS_GENESIS_QC",
    "hs_vote_digest",
]
