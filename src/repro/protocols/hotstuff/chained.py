"""Chained (pipelined) HotStuff — PODC'19, Sec. 5 / Algorithm 5.

One *generic* phase per view: the leader proposes a block carrying the
highest known QC (its justify); replicas vote to the **next** leader,
which assembles the QC and proposes on top.  Commit is by the 3-chain
rule — when blocks b ← b' ← b'' are linked by direct parent edges and
each has a QC, b is decided; the 2-chain prefix locks b (safety).

This is the pipelined counterpart of
:class:`~repro.protocols.hotstuff.replica.HotStuffReplica`, kept as a
separate class so basic and chained versions can be benchmarked side
by side (the paper's Sec. III describes both forms).
"""

from __future__ import annotations

from typing import Optional

from ...crypto import Digest
from ...metrics import NORMAL
from ...smr import create_leaf
from ..common import BaseReplica, QuorumTracker
from .certificates import HS_GENESIS_QC, HS_PREPARE, HsQC, HsVote, hs_vote_digest
from .messages import (
    HsFetchReq,
    HsFetchResp,
    HsNewViewMsg,
    HsProposalMsg,
    HsVoteMsg,
)

#: Phase tag used for all chained (generic) votes.
GENERIC = HS_PREPARE


class ChainedHotStuffReplica(BaseReplica):
    """Chained HotStuff: one block and two waves per view."""

    MIN_N_FACTOR = 3
    PROTOCOL = "hotstuff-chained"
    CERTIFIED_REPLIES = False

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.generic_qc: HsQC = HS_GENESIS_QC  # highest QC known
        self.locked_qc: HsQC = HS_GENESIS_QC
        #: block hash -> the QC certifying it (set when first seen).
        self._qc_of: dict[Digest, HsQC] = {}
        self._nv_tracker = QuorumTracker(self.config.n - self.config.f)
        self._vote_tracker = QuorumTracker(self.hs_quorum)
        self._led_view = -1
        self._voted_view = -1
        self._fetching: set[Digest] = set()
        for mtype, handler in (
            (HsNewViewMsg, self.on_new_view),
            (HsProposalMsg, self.on_proposal),
            (HsVoteMsg, self.on_vote),
            (HsFetchReq, self.on_fetch_req),
            (HsFetchResp, self.on_fetch_resp),
        ):
            self.register_handler(mtype, handler)

    @property
    def hs_quorum(self) -> int:
        return 2 * self.config.f + 1

    # ------------------------------------------------------------------
    # View entry / timeout
    # ------------------------------------------------------------------
    def on_start(self) -> None:
        # Bootstrap: elect view 0's leader with new-view messages.
        self._send_new_view(0)

    def on_enter_view(self, view: int) -> None:
        if view % 64 == 0:
            self._nv_tracker.clear_below(view - 4)
            self._vote_tracker.clear_below(view - 4)

    def on_timeout(self) -> None:
        # In steady state the pipeline needs no new-view traffic; after
        # a timeout the next leader must be told where everyone stands.
        self.enter_view(self.view + 1)
        self._send_new_view(self.view)

    def _send_new_view(self, view: int) -> None:
        done = max(self.sim.now, self.cpu.busy_until)
        self.send_at(done, self.leader_of(view), HsNewViewMsg(view, self.generic_qc))

    # ------------------------------------------------------------------
    # Leader: propose on the highest QC
    # ------------------------------------------------------------------
    def on_new_view(self, sender: int, msg: HsNewViewMsg) -> None:
        if msg.view < self.view or self.leader_of(msg.view) != self.pid:
            return
        quorum = self._nv_tracker.add(msg.view, sender, msg)
        if quorum is None:
            return
        if msg.view > self.view:
            self.enter_view(msg.view)
        if msg.view != self.view or self._led_view >= self.view:
            return
        high = max((m.justify for m in quorum), key=lambda qc: qc.view)
        if high.view < self.generic_qc.view:
            high = self.generic_qc
        if not high.is_genesis and high.view != self.generic_qc.view:
            self.charge(self.config.crypto_costs.verify(len(high.sigs)))
            if not high.verify(self.ring, self.hs_quorum):
                return
        self._propose(high)

    def _propose(self, justify: HsQC) -> None:
        block = create_leaf(
            justify.block_hash,
            self.view,
            self.mempool.next_batch(self.sim.now),
            self.pid,
        )
        self.charge(self.config.crypto_costs.hash(block.wire_size()))
        self._led_view = self.view
        self.add_block(block)
        self.collector.on_propose(self.pid, self.view, block.hash, self.sim.now)
        done = max(self.sim.now, self.cpu.busy_until)
        self.broadcast_at(done, HsProposalMsg(block, self.view, justify))

    # ------------------------------------------------------------------
    # Replicas: generic vote to the NEXT leader + 3-chain commit walk
    # ------------------------------------------------------------------
    def _safe_node(self, block, justify: HsQC) -> bool:
        if justify.view > self.locked_qc.view:
            return True
        if block.parent == self.locked_qc.block_hash:
            return True
        return self.store.extends_plus(block.parent, self.locked_qc.block_hash)

    def on_proposal(self, sender: int, msg: HsProposalMsg) -> None:
        v = msg.view
        if v < self.view or sender != self.leader_of(v):
            return
        if sender != self.pid:
            self.charge(
                self.config.crypto_costs.verify(len(msg.justify.sigs))
                + self.config.crypto_costs.hash(msg.block.wire_size())
            )
            if not msg.justify.verify(self.ring, self.hs_quorum):
                return
        if not msg.block.extends(msg.justify.block_hash):
            return
        if not self._safe_node(msg.block, msg.justify):
            return
        if v > self.view:
            self.enter_view(v)
        if v != self.view or self._voted_view >= v:
            return
        self.add_block(msg.block)
        # A valid proposal is pipeline progress: reset the backoff even
        # when the 3-chain commit still lags (e.g. around failed views).
        self.note_progress()
        self._register_qc(msg.justify)
        self._chain_update(msg.justify)
        # Vote to the next view's leader (pipelining).
        self._voted_view = v
        self.charge(self.config.crypto_costs.sign())
        vote = HsVote(
            phase=GENERIC,
            view=v,
            block_hash=msg.block.hash,
            sig=self.creds.keypair.sign(
                hs_vote_digest(GENERIC, v, msg.block.hash)
            ),
        )
        done = max(self.sim.now, self.cpu.busy_until)
        self.send_at(done, self.leader_of(v + 1), HsVoteMsg(vote))

    def _register_qc(self, qc: HsQC) -> None:
        if qc.is_genesis:
            return
        if qc.view > self.generic_qc.view:
            self.generic_qc = qc
        self._qc_of.setdefault(qc.block_hash, qc)

    def _chain_update(self, qc: HsQC) -> None:
        """Algorithm 5's lock & decide rules over the justify chain.

        ``qc`` certifies b2; if b2's parent b1 also has a QC, lock b1
        (2-chain); if additionally b1's parent b0 has a QC, decide b0
        (3-chain with direct parent links).
        """
        b2 = self.store.get(qc.block_hash)
        if b2 is None:
            return
        qc1 = self._qc_of.get(b2.parent)
        if qc1 is None:
            return
        if qc1.view > self.locked_qc.view:
            self.locked_qc = qc1  # PRE-COMMIT (lock) on the 2-chain
        b1 = self.store.get(qc1.block_hash)
        if b1 is None:
            return
        qc0 = self._qc_of.get(b1.parent)
        if qc0 is None or qc0.is_genesis:
            return
        # DECIDE: 3-chain b0 <- b1 <- b2 with direct parent links.
        if not self.log.is_executed(qc0.block_hash):
            self.commit_chain(qc0.block_hash, NORMAL, context=qc0)
            self.record_decision_progress()

    # ------------------------------------------------------------------
    # Next leader: assemble the QC and keep the pipeline moving
    # ------------------------------------------------------------------
    def on_vote(self, sender: int, msg: HsVoteMsg) -> None:
        vote = msg.vote
        v = vote.view  # votes of view v elect the leader of v+1
        if self.leader_of(v + 1) != self.pid or v + 1 < self.view:
            return
        if sender != self.pid:
            self.charge(self.config.crypto_costs.verify(1))
            if not vote.verify(self.ring):
                return
        quorum = self._vote_tracker.add(
            (v, vote.block_hash), vote.sig.signer, vote
        )
        if quorum is None:
            return
        qc = HsQC(
            phase=GENERIC,
            view=v,
            block_hash=vote.block_hash,
            sigs=tuple(x.sig for x in quorum),
        )
        self._register_qc(qc)
        self._chain_update(qc)
        if v + 1 > self.view:
            self.enter_view(v + 1)
        if self.view != v + 1 or self._led_view >= self.view:
            return
        self._propose(qc)

    # ------------------------------------------------------------------
    # Block fetch
    # ------------------------------------------------------------------
    def on_missing_block(self, h: Digest, context=None) -> None:
        if h in self._fetching or context is None:
            return
        self._fetching.add(h)
        targets = [i for i in context.signer_ids() if i != self.pid]
        if targets:
            self.network.send(self.pid, targets[0], HsFetchReq(h))

    def on_fetch_req(self, sender: int, msg: HsFetchReq) -> None:
        block = self.store.get(msg.block_hash)
        if block is not None:
            done = self.charge(self.config.handler_overhead)
            self.send_at(done, sender, HsFetchResp(block))

    def on_fetch_resp(self, sender: int, msg: HsFetchResp) -> None:
        self.charge(self.config.crypto_costs.hash(msg.block.wire_size()))
        self._fetching.discard(msg.block.hash)
        self.add_block(msg.block)


__all__ = ["ChainedHotStuffReplica"]
