"""Shared protocol machinery: configuration, pacemaker, quorum
tracking, the replica base class, and cluster assembly."""

from .base import BaseReplica
from .cluster import Cluster, build_cluster
from .config import ProtocolConfig
from .leadermap import LeaderMap
from .pacemaker import Pacemaker, ViewSyncMsg
from .quorum import QuorumTracker

__all__ = [
    "BaseReplica",
    "Cluster",
    "build_cluster",
    "LeaderMap",
    "ProtocolConfig",
    "Pacemaker",
    "QuorumTracker",
    "ViewSyncMsg",
]
