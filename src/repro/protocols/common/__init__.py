"""Shared protocol machinery: configuration, pacemaker, quorum
tracking, the replica base class, and cluster assembly."""

from .base import BaseReplica
from .cluster import Cluster, build_cluster
from .config import ProtocolConfig
from .pacemaker import Pacemaker
from .quorum import QuorumTracker

__all__ = [
    "BaseReplica",
    "Cluster",
    "build_cluster",
    "ProtocolConfig",
    "Pacemaker",
    "QuorumTracker",
]
