"""First-class leader election maps.

Multi-instance drivers (``repro.experiments.parallel``, ``repro.shard``)
stagger leader rotation per instance so the k concurrent leaders land
on different machines each view.  Historically that was done with a
per-replica closure lambda, which was invisible to introspection and
had to be rebuilt ad hoc for the CHECKER's proposer-identity rebind.
``LeaderMap`` is the explicit object both paths share: it is callable
with a view (drop-in for ``BaseReplica.leader_of``) and knows how to
bind itself to every replica of a cluster, including the TEE CHECKER
which validates proposer identity with the same map.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LeaderMap:
    """Round-robin leader election with a per-instance offset.

    ``leader(view) = (view + offset) % n`` — offset 0 is the base
    protocol's rotation (Sec. IV).
    """

    n: int
    offset: int = 0

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError("need at least one replica")
        if not 0 <= self.offset < self.n:
            raise ValueError(f"offset must be in [0, {self.n}), got {self.offset}")

    def __call__(self, view: int) -> int:
        return (view + self.offset) % self.n

    def bind_replica(self, replica) -> None:
        """Install this map on one replica (and its CHECKER, if any).

        The CHECKER validates proposer identity inside the enclave with
        the same map the replica uses, so reconfiguration must rebind
        both or the TEE would reject every proposal from the offset
        leaders.
        """
        replica.leader_of = self
        checker = getattr(replica, "checker", None)
        if checker is not None and hasattr(checker, "rebind_leader_map"):
            checker.rebind_leader_map(self)

    def bind_cluster(self, cluster) -> None:
        """Install this map on every replica of ``cluster``."""
        if cluster.config.n != self.n:
            raise ValueError(
                f"leader map for n={self.n} bound to cluster with "
                f"n={cluster.config.n}"
            )
        for replica in cluster.replicas:
            self.bind_replica(replica)


__all__ = ["LeaderMap"]
