"""Cluster assembly: provision TEEs, build replicas, wire the network."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, Type

from ...metrics import MetricsCollector
from ...net import Network
from ...sim import Simulator
from ...smr import Mempool, SaturatedSource
from ...tee import provision
from .base import BaseReplica
from .config import ProtocolConfig


@dataclass
class Cluster:
    """A built cluster: replicas plus the shared infrastructure."""

    sim: Simulator
    network: Network
    config: ProtocolConfig
    replicas: list[BaseReplica]
    collector: MetricsCollector

    def start(self) -> None:
        for r in self.replicas:
            r.start()

    def stop(self) -> None:
        for r in self.replicas:
            r.stop()

    def correct_replicas(self) -> list[BaseReplica]:
        """Replicas running unmodified protocol code."""
        return [r for r in self.replicas if not getattr(r, "byzantine", False)]

    def logs(self):
        return [r.log for r in self.replicas]


def build_cluster(
    replica_cls: Type[BaseReplica],
    sim: Simulator,
    network: Network,
    config: ProtocolConfig,
    payload_bytes: int = 0,
    collector: Optional[MetricsCollector] = None,
    replica_factory: Optional[
        Callable[[int, Type[BaseReplica]], Type[BaseReplica]]
    ] = None,
    saturated: bool = True,
) -> Cluster:
    """Instantiate ``config.n`` replicas of ``replica_cls``.

    ``replica_factory(pid, default_cls)`` may substitute a (Byzantine)
    subclass for specific pids — used by the fault-injection harness.
    ``saturated`` gives each replica an infinite synthetic transaction
    source (the paper's saturated-clients steady state).
    """
    collector = collector if collector is not None else MetricsCollector()
    creds = provision(config.n, master_seed=sim.rng.root_seed)
    replicas: list[BaseReplica] = []
    for pid in range(config.n):
        cls = replica_cls
        if replica_factory is not None:
            cls = replica_factory(pid, replica_cls) or replica_cls
        source = (
            SaturatedSource(payload_bytes, client_id=10_000 + pid)
            if saturated
            else None
        )
        mempool = Mempool(source=source)
        replicas.append(
            cls(
                sim=sim,
                network=network,
                pid=pid,
                config=config,
                credentials=creds[pid],
                mempool=mempool,
                collector=collector,
            )
        )
    return Cluster(
        sim=sim,
        network=network,
        config=config,
        replicas=replicas,
        collector=collector,
    )


__all__ = ["Cluster", "build_cluster"]
