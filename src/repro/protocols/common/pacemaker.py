"""View pacemaker: timeouts with exponential backoff.

As in HotStuff (and inherited by Damysus/OneShot), replicas give each
view a timeout that doubles after every consecutive failed view and
resets on a decision.  After GST this guarantees some view lasts long
enough for a correct leader to drive a decision (Lemma 2).

``ViewSyncMsg`` is the minimal view synchronizer the fuzzer proved
necessary: without it, a network split that lets two cohorts time out
of different views at different rates can livelock Basic HotStuff —
each cohort keeps collecting n-f new-view messages for a view the
other cohort has already abandoned (pinned corpus entry
``hotstuff-view-split-liveness``).  On every view timeout a replica
gossips its (new) highest view; any peer strictly behind jumps
forward.  View numbers are not safety-critical in any of the three
protocols (safety lives in locks, QCs and the TEE monotonic counters),
so fast-forwarding views can only help liveness, never violate safety.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ViewSyncMsg:
    """Highest-view gossip, broadcast after a view timeout."""

    view: int  # the sender's view *after* acting on the timeout

    def wire_size(self) -> int:
        return 12


class Pacemaker:
    """Per-replica timeout policy."""

    def __init__(
        self,
        base: float,
        backoff: float = 2.0,
        maximum: float = 60.0,
    ) -> None:
        if base <= 0 or backoff < 1 or maximum < base:
            raise ValueError("invalid pacemaker parameters")
        self.base = base
        self.backoff = backoff
        self.maximum = maximum
        self.consecutive_failures = 0

    def current_timeout(self) -> float:
        """Timeout to arm for the current view."""
        t = self.base * (self.backoff ** self.consecutive_failures)
        return min(t, self.maximum)

    def on_timeout(self) -> None:
        """A view ended by timing out — back off."""
        self.consecutive_failures += 1

    def on_progress(self) -> None:
        """A view decided — reset the backoff."""
        self.consecutive_failures = 0


__all__ = ["Pacemaker", "ViewSyncMsg"]
