"""View pacemaker: timeouts with exponential backoff.

As in HotStuff (and inherited by Damysus/OneShot), replicas give each
view a timeout that doubles after every consecutive failed view and
resets on a decision.  After GST this guarantees some view lasts long
enough for a correct leader to drive a decision (Lemma 2).
"""

from __future__ import annotations


class Pacemaker:
    """Per-replica timeout policy."""

    def __init__(
        self,
        base: float,
        backoff: float = 2.0,
        maximum: float = 60.0,
    ) -> None:
        if base <= 0 or backoff < 1 or maximum < base:
            raise ValueError("invalid pacemaker parameters")
        self.base = base
        self.backoff = backoff
        self.maximum = maximum
        self.consecutive_failures = 0

    def current_timeout(self) -> float:
        """Timeout to arm for the current view."""
        t = self.base * (self.backoff ** self.consecutive_failures)
        return min(t, self.maximum)

    def on_timeout(self) -> None:
        """A view ended by timing out — back off."""
        self.consecutive_failures += 1

    def on_progress(self) -> None:
        """A view decided — reset the backoff."""
        self.consecutive_failures = 0


__all__ = ["Pacemaker"]
