"""Replica base class shared by OneShot, Damysus and HotStuff.

Provides everything that is *not* protocol logic: CPU cost charging,
deferred sends, the view pacemaker, round-robin leader election,
block storage, commit walks (execute a block and its unexecuted
ancestors), client replies, and message dispatch.  Protocol packages
subclass this and implement the paper's pseudocode on top.

Replica pids are ``0..n-1``; clients register with pids ≥ 1000.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Type

from ...crypto import Digest
from ...net import Network
from ...metrics import MetricsCollector
from ...sim import Cpu, Process, Simulator
from ...smr import (
    Block,
    BlockStore,
    ChainError,
    ExecutionLog,
    Mempool,
    Reply,
    SubmitTx,
    SubmitTxBatch,
)
from ...tee import Credentials
from .config import ProtocolConfig
from .pacemaker import Pacemaker, ViewSyncMsg


class BaseReplica(Process):
    """Common machinery for a consensus replica."""

    #: Resilience factor: n >= MIN_N_FACTOR * f + 1.
    MIN_N_FACTOR = 2
    #: Protocol name for registries and reports; subclasses set it.
    PROTOCOL = "base"
    #: Whether replies to clients carry a certificate (single-reply trust).
    CERTIFIED_REPLIES = False

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        pid: int,
        config: ProtocolConfig,
        credentials: Credentials,
        mempool: Mempool,
        collector: MetricsCollector,
    ) -> None:
        super().__init__(sim, pid, name=f"r{pid}")
        config.validate(self.MIN_N_FACTOR)
        self.network = network
        self.config = config
        self.creds = credentials
        self.ring = credentials.ring
        self.mempool = mempool
        self.collector = collector
        self.cpu = Cpu(name=f"cpu{pid}")
        self.store = BlockStore()
        self.log = ExecutionLog()
        self.view = 0
        self.pacemaker = Pacemaker(
            config.timeout_base, config.timeout_backoff, config.timeout_max
        )
        self.view_timer = self.make_timer(self._view_timeout)
        self.peers = list(range(config.n))
        self.clients: dict[int, int] = {}
        self.stopped = False
        self._handlers: dict[Type, Callable[[int, Any], None]] = {}
        #: hash -> (exec kind, triggering certificate) awaiting ancestors.
        self._pending_commits: dict[Digest, tuple[str, Any]] = {}
        if config.view_sync:
            self.register_handler(ViewSyncMsg, self._on_view_sync)
        network.register(self)

    # ------------------------------------------------------------------
    # Roles
    # ------------------------------------------------------------------
    def leader_of(self, view: int) -> int:
        """Deterministic round-robin leader election (Sec. IV)."""
        return view % self.config.n

    def is_leader(self, view: Optional[int] = None) -> bool:
        return self.leader_of(self.view if view is None else view) == self.pid

    # ------------------------------------------------------------------
    # CPU accounting and deferred sends
    # ------------------------------------------------------------------
    def charge(self, seconds: float) -> float:
        """Occupy this replica's core; returns the completion time."""
        return self.cpu.occupy(self.sim.now, seconds)

    def charge_enclave(self, enclave) -> float:
        """Drain an enclave's accrued ecall/crypto time onto the CPU."""
        return self.charge(enclave.drain_cost())

    def send_at(self, when: float, dst: int, payload: Any) -> None:
        """Transmit once the CPU work producing ``payload`` is done."""
        if when <= self.sim.now:
            self.network.send(self.pid, dst, payload)
        else:
            self.sim.schedule_at(
                when, self.network.send, self.pid, dst, payload,
                label=f"{self.name} tx",
            )

    def broadcast_at(self, when: float, payload: Any, include_self: bool = True) -> None:
        for dst in self.peers:
            if dst == self.pid and not include_self:
                continue
            self.send_at(when, dst, payload)

    # ------------------------------------------------------------------
    # Message dispatch
    # ------------------------------------------------------------------
    def register_handler(
        self, msg_type: Type, handler: Callable[[int, Any], None]
    ) -> None:
        self._handlers[msg_type] = handler

    def on_message(self, sender: int, payload: Any) -> None:
        if self.stopped:
            return
        if isinstance(payload, SubmitTx):
            self._on_submit(sender, payload)
            return
        if isinstance(payload, SubmitTxBatch):
            self._on_submit_batch(sender, payload)
            return
        handler = self._handlers.get(type(payload))
        if handler is not None:
            self.charge(self.config.handler_overhead)
            handler(sender, payload)

    def _on_submit(self, sender: int, msg: SubmitTx) -> None:
        self.clients[msg.tx.client_id] = sender
        self.mempool.submit(msg.tx)

    def _on_submit_batch(self, sender: int, msg: SubmitTxBatch) -> None:
        """Columnar slab from the aggregated workload engine.

        Deliberately does *not* populate ``self.clients``: the engine's
        virtual clients never listen for per-transaction replies (their
        latency is measured replica-side at commit), so routing state
        for a million virtual client ids would be pure overhead.
        """
        self.mempool.submit_batch(msg.batch)

    # ------------------------------------------------------------------
    # Views and the pacemaker
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Boot the replica: enter view 0 and run the protocol hook."""
        self.enter_view(0)
        self.on_start()

    def enter_view(self, view: int) -> None:
        """Move to ``view`` (monotonic) and re-arm the view timer."""
        if view < self.view:
            raise ValueError(f"view regression {self.view} -> {view}")
        self.view = view
        self.view_timer.start(self.pacemaker.current_timeout())
        self.on_enter_view(view)

    def _view_timeout(self) -> None:
        if self.stopped:
            return
        self.collector.on_view_outcome(self.pid, self.view, "timeout", self.sim.now)
        self.pacemaker.on_timeout()
        self.on_timeout()
        if self.config.view_sync:
            # Gossip the post-timeout view so cohorts that timed out of
            # different views converge instead of livelocking (see
            # pacemaker.ViewSyncMsg).  Sent after on_timeout: the
            # protocol hook has already advanced self.view.
            self.broadcast_at(
                self.sim.now, ViewSyncMsg(self.view), include_self=False
            )

    def _on_view_sync(self, sender: int, msg: ViewSyncMsg) -> None:
        """Fast-forward toward a strictly higher gossiped view.

        Acts as if this replica's own view timer had fired early: the
        protocol's timeout hook runs so the replica contributes its
        new-view material (OneShot only sends its store certificate on
        the timeout path), then any remaining multi-view gap is jumped
        directly.  The pacemaker backoff is *not* inflated — this is
        synchronization, not a failed view.
        """
        if msg.view <= self.view:
            return
        self.on_timeout()
        if msg.view > self.view:
            self.enter_view(msg.view)

    def stop(self) -> None:
        self.stopped = True
        self.view_timer.cancel()

    # Protocol hooks -----------------------------------------------------
    def on_start(self) -> None:
        """Called once at boot (after entering view 0)."""

    def on_enter_view(self, view: int) -> None:
        """Called whenever the replica enters a view."""

    def on_timeout(self) -> None:
        """Called when the current view's timer fires."""
        raise NotImplementedError

    def on_missing_block(self, h: Digest, context: Any = None) -> None:
        """A commit needs block ``h`` but it is not stored (fetch hook)."""

    # ------------------------------------------------------------------
    # Blocks and commits
    # ------------------------------------------------------------------
    def add_block(self, block: Block) -> None:
        """Store a block and retry any commit that was waiting on it."""
        self.store.add(block)
        if self._pending_commits:
            for h, (kind, context) in list(self._pending_commits.items()):
                if self._try_commit(h, kind):
                    self._pending_commits.pop(h, None)
                else:
                    # Still gaps below: fetch the next missing ancestor.
                    self._request_missing_ancestor(h, context)

    def commit_chain(self, h: Digest, kind: str, context: Any = None) -> bool:
        """Execute the block with hash ``h`` and all unexecuted ancestors.

        Returns False (and remembers the commit for retry) when some
        ancestor block has not been received yet; the protocol's
        fetch/pull hook is invoked on the *first missing* ancestor in
        that case — the nodes certifying ``context`` executed ``h``'s
        whole chain, so they can serve any block on it.
        """
        if self.log.is_executed(h):
            return True
        if self._try_commit(h, kind):
            return True
        self._pending_commits[h] = (kind, context)
        self._request_missing_ancestor(h, context)
        return False

    def first_missing_ancestor(self, h: Digest) -> Optional[Digest]:
        """Deepest hash on ``h``'s ancestry path with no stored block."""
        cur = h
        while not self.log.is_executed(cur):
            blk = self.store.get(cur)
            if blk is None:
                return cur
            cur = blk.parent
        return None

    def _request_missing_ancestor(self, h: Digest, context: Any) -> None:
        missing = self.first_missing_ancestor(h)
        if missing is not None:
            self.on_missing_block(missing, context)

    def _try_commit(self, h: Digest, kind: str) -> bool:
        try:
            path = self.store.path_from(h, self.log.executed)
        except ChainError:
            return False
        # Execution happens once the CPU drains the verification work
        # charged for the triggering certificate.
        now = max(self.sim.now, self.cpu.busy_until)
        for blk in path:
            self.log.execute(blk, now)
            self.collector.on_execute(
                self.pid, blk.view, blk.hash, len(blk.txs), now, kind
            )
            self._reply_clients(blk, now)
        return True

    def _reply_clients(self, block: Block, when: float) -> None:
        # One fused mempool sweep per block instead of one call per
        # transaction — mark_committed dominated the e2e profile at
        # 400 txs/block across every replica.  The key list is cached
        # on the block, shared by all replicas committing it.
        self.mempool.mark_committed_keys(block.tx_keys())
        if not self.config.reply_to_clients or not self.clients:
            return
        clients_get = self.clients.get
        for tx in block.txs:
            dst = clients_get(tx.client_id)
            if dst is None:
                continue
            self.send_at(
                when,
                dst,
                Reply(
                    tx_key=tx.key(),
                    view=block.view,
                    replica=self.pid,
                    certified=self.CERTIFIED_REPLIES,
                ),
            )

    def note_progress(self) -> None:
        """Reset the timeout backoff on evidence of protocol progress.

        When the reset actually shrinks the timeout (a recovery view
        armed with an inflated backoff), the running view timer is
        re-armed with the fresh value — otherwise the reset would only
        take effect one view later and every recovery cycle would pay
        the stale, doubled timeout.
        """
        inflated = self.pacemaker.consecutive_failures > 0
        self.pacemaker.on_progress()
        if inflated and not self.stopped:
            self.view_timer.start(self.pacemaker.current_timeout())

    def record_decision_progress(self) -> None:
        """Common bookkeeping when a view decides."""
        self.note_progress()
        self.collector.on_view_outcome(self.pid, self.view, "decide", self.sim.now)


__all__ = ["BaseReplica"]
