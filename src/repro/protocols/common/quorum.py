"""Quorum accumulation helper.

Leaders collect votes / store certificates / new-view messages until a
threshold of *distinct signers* is reached.  :class:`QuorumTracker`
centralizes the dedup-and-count pattern so protocol code stays close to
the paper's "wait for f+1 ..." lines.
"""

from __future__ import annotations

from typing import Any, Generic, Hashable, Optional, TypeVar

T = TypeVar("T")


class QuorumTracker(Generic[T]):
    """Collects items per key until ``threshold`` distinct signers."""

    def __init__(self, threshold: int) -> None:
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        self.threshold = threshold
        self._items: dict[Hashable, dict[int, T]] = {}
        self._fired: set[Hashable] = set()

    def add(self, key: Hashable, signer: int, item: T) -> Optional[list[T]]:
        """Record ``item`` from ``signer`` under ``key``.

        Returns the full item list the first time the quorum for
        ``key`` is reached, else None.  Duplicate signers are ignored.
        """
        if key in self._fired:
            return None
        bucket = self._items.setdefault(key, {})
        if signer in bucket:
            return None
        bucket[signer] = item
        if len(bucket) >= self.threshold:
            self._fired.add(key)
            return list(bucket.values())
        return None

    def count(self, key: Hashable) -> int:
        return len(self._items.get(key, ()))

    def items(self, key: Hashable) -> list[T]:
        return list(self._items.get(key, {}).values())

    def fired(self, key: Hashable) -> bool:
        return key in self._fired

    def clear_below(self, min_key_view: int) -> None:
        """Drop state for keys whose first element is an old view.

        Keys are conventionally ``(view, ...)`` tuples; this bounds
        memory over long runs.
        """
        stale = [
            k
            for k in self._items
            if isinstance(k, tuple) and k and isinstance(k[0], int) and k[0] < min_key_view
        ]
        for k in stale:
            del self._items[k]
            self._fired.discard(k)


__all__ = ["QuorumTracker"]
