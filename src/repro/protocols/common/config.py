"""Cluster/protocol configuration shared by all three protocols."""

from __future__ import annotations

from dataclasses import dataclass, field

from ...crypto import T2_MICRO, CryptoCostModel
from ...tee import TeeCostModel


@dataclass(frozen=True)
class ProtocolConfig:
    """Static parameters of a protocol instance.

    ``n`` and ``f`` must satisfy the protocol's resilience bound:
    ``n >= 2f+1`` for OneShot/Damysus, ``n >= 3f+1`` for HotStuff —
    enforced by each protocol's ``check_resilience``.
    """

    n: int
    f: int
    crypto_costs: CryptoCostModel = T2_MICRO
    tee_costs: TeeCostModel = field(default_factory=TeeCostModel)
    #: Base view timeout (seconds) before exponential backoff.
    timeout_base: float = 2.0
    #: Backoff multiplier per consecutive failed view.
    timeout_backoff: float = 2.0
    #: Cap on the timeout after backoff.
    timeout_max: float = 60.0
    #: Fixed per-message handling overhead (dispatch, deserialization).
    handler_overhead: float = 5e-6
    #: Whether replicas send Reply messages to registered clients.
    reply_to_clients: bool = True
    #: Highest-view gossip on timeout (the minimal view synchronizer).
    #: Off reproduces the historical pacemaker, which the fuzzer showed
    #: can livelock HotStuff under a view split (docs/fuzzing.md).
    view_sync: bool = True

    @property
    def quorum(self) -> int:
        """Votes needed for a certificate: ``f+1`` (hybrid protocols).

        HotStuff overrides its quorum to ``2f+1`` in its replica class.
        """
        return self.f + 1

    def validate(self, min_n_factor: int) -> None:
        """Check ``n >= min_n_factor * f + 1`` and basic sanity."""
        if self.f < 0:
            raise ValueError("f must be non-negative")
        if self.n < min_n_factor * self.f + 1:
            raise ValueError(
                f"need n >= {min_n_factor}f+1, got n={self.n}, f={self.f}"
            )
        if self.timeout_base <= 0 or self.timeout_backoff < 1:
            raise ValueError("invalid pacemaker parameters")


__all__ = ["ProtocolConfig"]
