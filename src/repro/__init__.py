"""repro — a full reproduction of *OneShot: View-Adapting Streamlined
BFT Protocols with Trusted Execution Environments* (IPPS 2024).

Layers (bottom-up):

* :mod:`repro.sim` — deterministic discrete-event kernel
* :mod:`repro.crypto` — simulated signatures + cost model
* :mod:`repro.net` — partially-synchronous network, AWS region matrices
* :mod:`repro.smr` — blocks, chains, mempools, clients, execution
* :mod:`repro.tee` — enclave machinery (attestation, rollback model)
* :mod:`repro.protocols` — HotStuff and Damysus baselines + shared base
* :mod:`repro.core` — **OneShot** (the paper's contribution)
* :mod:`repro.faults` — Byzantine behaviours and fault schedules
* :mod:`repro.metrics` / :mod:`repro.experiments` — evaluation harness
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
