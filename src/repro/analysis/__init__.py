"""Static and runtime enforcement of the reproduction's invariants.

* :mod:`repro.analysis.engine` / :mod:`repro.analysis.rules` — an
  AST lint engine that walks every module under ``repro`` and checks
  the invariants the paper's argument rests on (determinism, TEE
  encapsulation, message immutability, hygiene);
* :mod:`repro.analysis.sanitizer` — runtime checks: same-seed replay
  stability and the no-equivocation oracle.

See ``docs/invariants.md`` for the rule catalogue and
``oneshot-repro lint`` for the CLI gate.
"""

from .engine import (
    LintEngine,
    LintReport,
    find_pyproject,
    lint_package,
    load_suppressions,
)
from .findings import Finding, Suppression
from .rules import default_rules
from .sanitizer import (
    DeterminismViolation,
    EquivocationDetected,
    RunFingerprint,
    assert_no_equivocation,
    check_determinism,
    find_equivocations,
    fingerprint_of,
    fingerprint_run,
    replay_and_check,
)

__all__ = [
    "LintEngine",
    "LintReport",
    "Finding",
    "Suppression",
    "default_rules",
    "lint_package",
    "load_suppressions",
    "find_pyproject",
    "RunFingerprint",
    "DeterminismViolation",
    "EquivocationDetected",
    "fingerprint_of",
    "fingerprint_run",
    "check_determinism",
    "find_equivocations",
    "assert_no_equivocation",
    "replay_and_check",
]
