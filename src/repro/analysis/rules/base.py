"""Rule infrastructure: one AST visitor per invariant.

Each rule subclasses :class:`Rule` and implements ``check(module)``,
yielding :class:`~repro.analysis.findings.Finding` records.  The
:class:`ModuleInfo` handed to rules carries the parsed tree, the raw
source and the module's POSIX path relative to the source root, so
rules can scope themselves to parts of the tree (``repro/tee/...``)
without touching the filesystem.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from fnmatch import fnmatch
from typing import Iterable, Iterator

from ..findings import Finding


@dataclass(frozen=True)
class ModuleInfo:
    """One parsed source module under the lint root."""

    path: str  # POSIX, e.g. "repro/core/replica.py"
    tree: ast.Module
    source: str

    def matches_any(self, patterns: Iterable[str]) -> bool:
        """True if :attr:`path` matches one of the glob ``patterns``.

        A pattern ending in ``/`` matches the whole subtree.
        """
        for pat in patterns:
            if pat.endswith("/"):
                if self.path.startswith(pat):
                    return True
            elif fnmatch(self.path, pat):
                return True
        return False


class Rule:
    """Base class for lint rules."""

    #: Stable rule identifier used in findings and suppressions.
    name: str = "rule"
    #: One-line human description (``oneshot-repro lint --rules``).
    description: str = ""
    #: Paper section / figure the invariant comes from.
    paper_ref: str = ""

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, module: ModuleInfo, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=self.name,
            path=module.path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


class ProjectRule(Rule):
    """A whole-program rule running over the project index.

    Per-module ``check`` is a no-op; the engine hands the shared
    :class:`~repro.analysis.callgraph.ProjectIndex` (symbol table +
    call graph, built once per run) to :meth:`check_project`.
    """

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        return iter(())

    def check_project(self, index) -> Iterator[Finding]:
        raise NotImplementedError

    def finding_at(self, path: str, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=self.name,
            path=path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


@dataclass
class ImportMap:
    """Alias → fully-qualified dotted name, collected from imports."""

    aliases: dict = field(default_factory=dict)

    @staticmethod
    def of(tree: ast.Module) -> "ImportMap":
        m = ImportMap()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for a in node.names:
                    m.aliases[a.asname or a.name.split(".")[0]] = (
                        a.name if a.asname else a.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for a in node.names:
                    m.aliases[a.asname or a.name] = f"{node.module}.{a.name}"
        return m

    def resolve(self, dotted: str) -> str:
        """Expand the leading segment of ``dotted`` through the aliases."""
        head, _, rest = dotted.partition(".")
        base = self.aliases.get(head, head)
        return f"{base}.{rest}" if rest else base


def dotted_name(node: ast.AST) -> str:
    """Flatten ``a.b.c`` attribute chains; empty string if not a chain."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


__all__ = ["Rule", "ProjectRule", "ModuleInfo", "ImportMap", "dotted_name"]
