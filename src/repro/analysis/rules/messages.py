"""Message-immutability rules.

Wire messages are shared by reference between simulated replicas (the
network never copies payloads), so a mutable message would let one
replica's handler retroactively change what another replica already
"received" — impossible on a real network and fatal to the safety
argument.  Two rules keep that honest:

* :class:`FrozenMessageRule` — every ``@dataclass`` defined in a
  ``messages.py`` module must be declared ``frozen=True``;
* :class:`MutableDefaultRule` — no mutable literal (``[]``, ``{}``,
  ``set()``, ...) as a function-argument default or as a bare
  dataclass field default, anywhere in the tree.  (Python shares one
  instance across calls/instances; use ``None`` or
  ``field(default_factory=...)``.)
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from .base import ModuleInfo, Rule, dotted_name

_MUTABLE_CALLS = {"list", "dict", "set", "bytearray", "defaultdict", "deque"}


def _dataclass_decorator(cls: ast.ClassDef) -> ast.expr | None:
    """The ``dataclass`` decorator node of ``cls``, if any."""
    for dec in cls.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        name = dotted_name(target)
        if name.split(".")[-1] == "dataclass":
            return dec
    return None


def _is_frozen(dec: ast.expr) -> bool:
    if not isinstance(dec, ast.Call):
        return False
    for kw in dec.keywords:
        if kw.arg == "frozen" and isinstance(kw.value, ast.Constant):
            return bool(kw.value.value)
    return False


def _is_mutable_literal(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        return name.split(".")[-1] in _MUTABLE_CALLS
    return False


class FrozenMessageRule(Rule):
    """Every dataclass in a ``messages.py`` is frozen."""

    name = "frozen-message"
    description = "wire-message dataclasses must be frozen=True"
    paper_ref = "Sec. IV (messages cannot be altered in flight)"

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if module.path.rsplit("/", 1)[-1] != "messages.py":
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            dec = _dataclass_decorator(node)
            if dec is not None and not _is_frozen(dec):
                yield self.finding(
                    module,
                    node,
                    f"message dataclass {node.name!r} is not frozen=True",
                )


class MutableDefaultRule(Rule):
    """No shared mutable default values."""

    name = "mutable-default"
    description = "no mutable literals as argument or field defaults"
    paper_ref = "hygiene (shared-instance aliasing)"

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                args = node.args
                for default in [*args.defaults, *args.kw_defaults]:
                    if default is not None and _is_mutable_literal(default):
                        yield self.finding(
                            module,
                            default,
                            f"mutable default argument in {node.name}() — "
                            f"use None or a factory",
                        )
            elif isinstance(node, ast.ClassDef) and _dataclass_decorator(node):
                for stmt in node.body:
                    if (
                        isinstance(stmt, ast.AnnAssign)
                        and stmt.value is not None
                        and _is_mutable_literal(stmt.value)
                        and not (
                            isinstance(stmt.value, ast.Call)
                            and dotted_name(stmt.value.func).split(".")[-1]
                            == "field"
                        )
                    ):
                        yield self.finding(
                            module,
                            stmt.value,
                            f"mutable field default in dataclass "
                            f"{node.name!r} — use field(default_factory=...)",
                        )


__all__ = ["FrozenMessageRule", "MutableDefaultRule"]
