"""TEE-encapsulation rule: enclave state is reachable only via ecalls.

The hybrid fault model (Sec. IV) assumes that at a faulty node "all
components can be tampered with except the ones providing these
trusted services".  The simulation keeps that assumption honest by
construction: everything an :class:`~repro.tee.enclave.Enclave`
protects — the signing key, the accrued-cost ledger, the monotonic
counters — may be touched only by code standing in for the enclave
itself.  That code lives in ``repro/tee/`` and in the trusted-service
subclasses (``repro/core/tee_services.py``,
``repro/protocols/*/tee_services.py``).

Everywhere else:

* any access (read or write) to the enclave-private attributes
  (``_key``, ``_accrued``, ``_ring``, ``_crypto``, ``_tee``,
  ``_enter``, ``_charge``, ``_sign``, ``_sign_batch``, ``_verify``,
  ``_verify_many``) is flagged — untrusted code cannot even *name*
  sealed state;
* the signing-key internals of :mod:`repro.crypto.keys` (``_secret``,
  ``_check_tag``, ``_kp``) are policed the same way, with ``keys.py``
  itself the only trusted holder: the verification fast paths (the
  ``KeyRing`` memo, the certificate instance memos) and the batched
  ecalls must route through the public ``verify``/``sign`` API and can
  never reach a raw secret;
* writes to the trusted counters (``ecalls``, and ``view``/``phase``/
  ``prepv``-style step counters) on any receiver other than ``self``
  are flagged — replicas may read a checker's view (a getter ecall in
  real SGX) but never rewind or advance it.
"""

from __future__ import annotations

import ast
from typing import Iterator, Sequence

from ..findings import Finding
from .base import ModuleInfo, Rule

#: Modules allowed to touch enclave internals.  ``crypto/keys.py`` is
#: the simulated key-asymmetry boundary: it is the only place the raw
#: signing secret may be named, so the verify fast paths cannot skip
#: the HMAC by peeking at it.
DEFAULT_TRUSTED: tuple[str, ...] = (
    "repro/tee/",
    "repro/core/tee_services.py",
    "repro/protocols/*/tee_services.py",
    "repro/crypto/keys.py",
)

#: Attributes private to the enclave or the signing-key objects (any
#: access outside is a breach).
PRIVATE_ATTRS: frozenset[str] = frozenset(
    {
        "_key",
        "_accrued",
        "_ring",
        "_crypto",
        "_tee",
        "_enter",
        "_charge",
        "_sign",
        "_sign_batch",
        "_verify",
        "_verify_many",
        "_secret",
        "_check_tag",
        "_kp",
    }
)

#: Trusted monotonic counters: reads are a getter ecall, writes are a
#: rollback/fast-forward attack and must go through an entry point.
COUNTER_ATTRS: frozenset[str] = frozenset(
    {"ecalls", "view", "phase", "prepv", "prep_view", "prep_hash", "step"}
)


def _receiver_is_self(node: ast.Attribute) -> bool:
    return isinstance(node.value, ast.Name) and node.value.id == "self"


class TeeEncapsulationRule(Rule):
    """Enclave-private state only via ecall entry points."""

    name = "tee-encapsulation"
    description = (
        "enclave keys/cost ledger/counters reachable only from repro/tee "
        "and */tee_services.py"
    )
    paper_ref = "Sec. IV (hybrid fault model), Fig. 5c (trusted services)"

    def __init__(self, trusted: Sequence[str] = DEFAULT_TRUSTED) -> None:
        self.trusted = tuple(trusted)

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if module.matches_any(self.trusted):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Attribute):
                continue
            if node.attr in PRIVATE_ATTRS:
                yield self.finding(
                    module,
                    node,
                    f"access to enclave-private attribute {node.attr!r} "
                    f"outside the trusted modules",
                )
            elif (
                node.attr in COUNTER_ATTRS
                and isinstance(node.ctx, (ast.Store, ast.Del))
                and not _receiver_is_self(node)
            ):
                yield self.finding(
                    module,
                    node,
                    f"write to trusted counter {node.attr!r} on a foreign "
                    f"object — counters advance only inside ecalls",
                )


__all__ = ["TeeEncapsulationRule", "PRIVATE_ATTRS", "COUNTER_ATTRS", "DEFAULT_TRUSTED"]
