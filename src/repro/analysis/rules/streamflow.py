"""RNG stream-purity pass: each stream's draws stay in its home layer.

:class:`~repro.sim.rng.RngRegistry` hands out *named* seeded streams —
``"net"`` for link-latency jitter, ``"client<k>.arrivals"`` for open-loop
workload generation, ``"bench.*"`` for harness self-measurement — and the
golden fingerprints are bit-identical only while each component keeps
drawing from its own stream in a schedule-independent order.  The
fingerprints catch a stream mix-up *after* a run; this pass catches it
statically: every ``registry.stream(...)`` call is a taint source labelled
with the stream's category, the interprocedural engine
(:mod:`repro.analysis.dataflow`) follows the handle and every value drawn
from it across calls, attribute stores and containers, and a use outside
the category's home layer is a finding.

Example of the bug class this exists for: a protocol handler computing a
timeout from ``network._rng.uniform(...)`` — the run still *works*, but
every protocol decision now perturbs the net stream's draw order, so two
runs that differ only in message timing diverge bit-wise.  The per-file
TEE/determinism rules cannot see this because the draw, the handle and
the consumer live in three different modules.

Observer layers (metrics, experiments, benchmarks, this analyzer) are
exempt: they may *read* values derived from any stream — that is what
measurement is — as long as they do not feed them back into protocol
state, which their own home-layer checks would catch.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, Optional

from ..dataflow import FlowSpec, analyze
from ..findings import Finding
from .base import ProjectRule

if TYPE_CHECKING:
    from ..callgraph import FunctionInfo, ProjectIndex

#: Stream-name category -> path prefixes where its values may be used.
#: The category is the first dotted/slashed segment of the stream name
#: with any trailing digits stripped (``client7.arrivals`` -> ``client``).
HOME_LAYERS: dict[str, tuple[str, ...]] = {
    "net": ("repro/net/", "repro/sim/"),
    "client": ("repro/smr/", "repro/workload/", "repro/sim/"),
    "bench": ("repro/bench/", "repro/sim/"),
    "faults": ("repro/faults/", "repro/sim/"),
    # Aggregated open-loop load engine: arrival times and client marks
    # drawn from "workload.region<k>.arrivals" feed slab construction
    # (repro/workload) and ride into the smr/net layers as payloads.
    # The sharded pump (repro/shard) draws its own
    # "workload.shard-region<k>.arrivals" streams and routes the slabs.
    "workload": (
        "repro/workload/",
        "repro/smr/",
        "repro/net/",
        "repro/sim/",
        "repro/shard/",
    ),
    # Seeded latency reservoir: "metrics.reservoir" draws stay inside
    # the (observer) metrics layer by construction.
    "metrics": ("repro/metrics/", "repro/sim/"),
}

#: Layers that observe runs rather than participate in them; they may
#: consume values from any stream (latency samples in a histogram are
#: the product, not a protocol input).
OBSERVER_PATHS: tuple[str, ...] = (
    "repro/metrics/",
    "repro/experiments/",
    "repro/bench/",
    "repro/analysis/",
    # The CLI prints run reports (RunResult carries the streaming
    # collector, whose reservoir holds metrics-stream draws).
    "repro/cli.py",
)

#: The one true stream factory.
_STREAM_FACTORY = "repro.sim.rng.RngRegistry.stream"

_LABEL_PREFIX = "stream:"


def stream_category(arg: Optional[ast.expr]) -> Optional[str]:
    """Category of a stream name expression, if statically knowable.

    ``"net"`` -> ``net``; ``f"client{pid}.arrivals"`` -> ``client``
    (the leading literal part decides); a fully dynamic name yields
    ``None`` and the draw is not tracked.
    """
    text: Optional[str] = None
    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
        text = arg.value
    elif isinstance(arg, ast.JoinedStr) and arg.values:
        first = arg.values[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            text = first.value
    if not text:
        return None
    head = text.replace("/", ".").split(".")[0]
    head = head.rstrip("0123456789")
    return head or None


class _StreamFlowSpec(FlowSpec):
    name = "stream-purity"

    def __init__(self, index: ProjectIndex) -> None:
        self.index = index

    def _is_stream_call(self, node: ast.Call) -> bool:
        if not (
            isinstance(node.func, ast.Attribute) and node.func.attr == "stream"
        ):
            return False
        site = self.index.call_of.get(id(node))
        if site is not None and site.callee == _STREAM_FACTORY:
            return True
        # Untyped receiver fallback: conventional registry names.
        recv = node.func.value
        tail = recv.attr if isinstance(recv, ast.Attribute) else (
            recv.id if isinstance(recv, ast.Name) else ""
        )
        return tail == "rng" or tail.endswith("_rng") or tail == "registry"

    def source_label(
        self, node: ast.expr, fn: FunctionInfo, index: ProjectIndex
    ) -> Optional[str]:
        if isinstance(node, ast.Call) and self._is_stream_call(node):
            arg = node.args[0] if node.args else None
            if arg is None:
                for kw in node.keywords:
                    if kw.arg == "name":
                        arg = kw.value
                        break
            cat = stream_category(arg)
            if cat is not None and cat in HOME_LAYERS:
                return f"{_LABEL_PREFIX}{cat}"
        return None

    @staticmethod
    def _out_of_home(module: str, label: str) -> Optional[str]:
        """The offending category if ``module`` is not a home for it."""
        cat = label[len(_LABEL_PREFIX):]
        homes = HOME_LAYERS.get(cat, ())
        if any(module.startswith(p) for p in homes):
            return None
        if any(module.startswith(p) for p in OBSERVER_PATHS):
            return None
        return cat

    def check_use(self, fn, stmt, taints) -> Iterator[tuple[ast.AST, str]]:
        for t in sorted(taints, key=lambda t: (t.label, t.origin)):
            cat = self._out_of_home(fn.module, t.label)
            if cat is not None:
                yield (
                    stmt,
                    f"value drawn from the {cat!r} RNG stream "
                    f"(created at {t.origin}) is consumed outside its home "
                    f"layer {HOME_LAYERS[cat]} — cross-purpose stream use "
                    f"couples unrelated draw orders and breaks fingerprint "
                    f"bit-identity",
                )


class StreamPurityRule(ProjectRule):
    """Interprocedural: RNG stream draws stay within the stream's layer."""

    name = "stream-purity"
    description = (
        "values drawn from a named RngRegistry stream must stay in the "
        "stream's home layer (interprocedural taint)"
    )
    paper_ref = "Sec. VIII (deterministic replay); repro.sim.rng"

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        for hit in analyze(index, _StreamFlowSpec(index)):
            yield self.finding_at(hit.fn.module, hit.node, hit.message)


__all__ = [
    "HOME_LAYERS",
    "OBSERVER_PATHS",
    "StreamPurityRule",
    "stream_category",
]
