"""Lint rules — one visitor per invariant (see docs/invariants.md).

Per-file rules subclass :class:`Rule`; the whole-program passes
subclass :class:`ProjectRule` and run over the shared
:class:`~repro.analysis.callgraph.ProjectIndex`.
"""

from .base import ImportMap, ModuleInfo, ProjectRule, Rule, dotted_name
from .deepfreeze import DeepFreezeRule
from .determinism import DeterminismRule
from .hygiene import AllExportsRule, FloatEqualityRule
from .messages import FrozenMessageRule, MutableDefaultRule
from .secretflow import SecretFlowRule
from .streamflow import StreamPurityRule
from .substrate import SubstrateBoundaryRule
from .tee import TeeEncapsulationRule


def default_rules() -> list[Rule]:
    """The full rule set with default scoping, in reporting order."""
    return [
        DeterminismRule(),
        TeeEncapsulationRule(),
        FrozenMessageRule(),
        MutableDefaultRule(),
        FloatEqualityRule(),
        AllExportsRule(),
        # Whole-program passes (shared ProjectIndex, built once per run).
        StreamPurityRule(),
        SecretFlowRule(),
        SubstrateBoundaryRule(),
        DeepFreezeRule(),
    ]


__all__ = [
    "Rule",
    "ProjectRule",
    "ModuleInfo",
    "ImportMap",
    "dotted_name",
    "DeterminismRule",
    "TeeEncapsulationRule",
    "FrozenMessageRule",
    "MutableDefaultRule",
    "FloatEqualityRule",
    "AllExportsRule",
    "StreamPurityRule",
    "SecretFlowRule",
    "SubstrateBoundaryRule",
    "DeepFreezeRule",
    "default_rules",
]
