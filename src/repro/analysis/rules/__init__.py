"""Lint rules — one visitor per invariant (see docs/invariants.md)."""

from .base import ImportMap, ModuleInfo, Rule, dotted_name
from .determinism import DeterminismRule
from .hygiene import AllExportsRule, FloatEqualityRule
from .messages import FrozenMessageRule, MutableDefaultRule
from .tee import TeeEncapsulationRule


def default_rules() -> list[Rule]:
    """The full rule set with default scoping, in reporting order."""
    return [
        DeterminismRule(),
        TeeEncapsulationRule(),
        FrozenMessageRule(),
        MutableDefaultRule(),
        FloatEqualityRule(),
        AllExportsRule(),
    ]


__all__ = [
    "Rule",
    "ModuleInfo",
    "ImportMap",
    "dotted_name",
    "DeterminismRule",
    "TeeEncapsulationRule",
    "FrozenMessageRule",
    "MutableDefaultRule",
    "FloatEqualityRule",
    "AllExportsRule",
    "default_rules",
]
