"""Determinism rule: all randomness and time flows through the simulator.

The reproduction's regression traces (and the paper's evaluation
methodology) depend on runs being bit-deterministic per root seed:
every stochastic model component draws from a named
:class:`~repro.sim.rng.RngRegistry` stream and the only clock is
:attr:`Simulator.now <repro.sim.simulator.Simulator.now>`.  A single
``time.time()`` or module-level ``random`` call silently breaks both.

This rule bans, outside an allow-listed set of modules:

* wall-clock reads (``time.time``/``monotonic``/``perf_counter``/...,
  ``datetime.now``/``utcnow``/``today``);
* the stdlib ``random`` module entirely (import or call);
* entropy sources (``os.urandom``, ``uuid.uuid1``/``uuid4``,
  ``secrets``);
* constructing generators outside the registry
  (``numpy.random.default_rng``, the legacy ``numpy.random.*`` global
  functions, ``numpy.random.seed``/``RandomState``).

``numpy.random.Generator`` *annotations* are fine — only calls and
imports are flagged.

The rule also guards the network fast path: inside :mod:`repro.net`
(except the latency models themselves), a scalar ``.sample()`` call
inside a loop or comprehension is flagged — per-destination scalar
sampling both costs the multicast fast path its batching and makes the
RNG draw order depend on control flow.  Batch through
``LatencyModel.sample_many`` / ``sample_per_link`` instead (see
docs/invariants.md).
"""

from __future__ import annotations

import ast
from typing import Iterator, Sequence

from ..findings import Finding
from .base import ImportMap, ModuleInfo, Rule, dotted_name

#: Fully-qualified callables that read wall-clock time or entropy.
BANNED_CALLS: tuple[str, ...] = (
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
    "os.urandom",
    "os.getrandom",
    "uuid.uuid1",
    "uuid.uuid4",
)

#: Prefixes banned as a whole (any attribute under them).
BANNED_PREFIXES: tuple[str, ...] = (
    "random.",
    "secrets.",
    "numpy.random.",
)

#: Modules whose *import* alone is a violation.
BANNED_MODULES: tuple[str, ...] = ("random", "secrets")

#: Modules allowed to construct generators: the registry itself.
DEFAULT_ALLOWED: tuple[str, ...] = ("repro/sim/rng.py",)

#: Subtree where per-destination scalar ``.sample()`` loops are flagged.
SCALAR_SAMPLE_PATHS: tuple[str, ...] = ("repro/net/",)

#: Modules inside that subtree allowed to loop over scalar ``sample``:
#: the latency models' own batch fallback (``sample_per_link``).
SCALAR_SAMPLE_ALLOWED: tuple[str, ...] = ("repro/net/latency.py",)

#: AST nodes that repeat their body/element expression.
_LOOP_NODES = (
    ast.For,
    ast.AsyncFor,
    ast.While,
    ast.ListComp,
    ast.SetComp,
    ast.DictComp,
    ast.GeneratorExp,
)


class DeterminismRule(Rule):
    """No ambient randomness or wall-clock outside the RNG registry."""

    name = "determinism"
    description = (
        "randomness/time must flow through RngRegistry streams and the "
        "simulated clock"
    )
    paper_ref = "Sec. VIII (evaluation methodology); repro.sim.rng"

    def __init__(self, allowed: Sequence[str] = DEFAULT_ALLOWED) -> None:
        self.allowed = tuple(allowed)

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if module.matches_any(SCALAR_SAMPLE_PATHS) and not module.matches_any(
            SCALAR_SAMPLE_ALLOWED
        ):
            yield from self._scalar_sample_loops(module)
        if module.matches_any(self.allowed):
            return
        imports = ImportMap.of(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for a in node.names:
                    root = a.name.split(".")[0]
                    if root in BANNED_MODULES:
                        yield self.finding(
                            module, node, f"import of nondeterministic module {a.name!r}"
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and node.module:
                    root = node.module.split(".")[0]
                    if root in BANNED_MODULES:
                        yield self.finding(
                            module,
                            node,
                            f"import from nondeterministic module {node.module!r}",
                        )
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if not name:
                    continue
                resolved = imports.resolve(name)
                if resolved in BANNED_CALLS:
                    yield self.finding(
                        module,
                        node,
                        f"call to {resolved}() — use the simulated clock / "
                        f"RngRegistry stream instead",
                    )
                elif any(resolved.startswith(p) for p in BANNED_PREFIXES):
                    yield self.finding(
                        module,
                        node,
                        f"call to {resolved}() — derive a named stream from "
                        f"RngRegistry instead",
                    )

    def _scalar_sample_loops(self, module: ModuleInfo) -> Iterator[Finding]:
        """Flag ``<model>.sample(...)`` repeated by a loop/comprehension.

        Inside :mod:`repro.net` a per-destination scalar sampling loop
        defeats the vectorized multicast fast path *and* couples the
        RNG draw order to control flow — the batch APIs
        (``sample_many`` / ``sample_per_link``) keep draw order a
        function of the destination vector alone.

        Aliased references are caught too: binding the bound method
        (``draw = model.sample``) and calling ``draw(...)`` in a loop
        is the same scalar draw with the attribute hidden one
        assignment earlier.
        """
        sample_aliases = self._sample_aliases(module.tree)
        seen: set[int] = set()
        for loop in ast.walk(module.tree):
            if not isinstance(loop, _LOOP_NODES):
                continue
            for node in ast.walk(loop):
                if not isinstance(node, ast.Call) or id(node) in seen:
                    continue
                direct = (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "sample"
                )
                aliased = (
                    isinstance(node.func, ast.Name)
                    and node.func.id in sample_aliases
                )
                if not (direct or aliased):
                    continue
                # Nested loops are walked as their own roots too —
                # report each call site once.
                seen.add(id(node))
                what = (
                    "scalar latency .sample()"
                    if direct
                    else f"scalar latency .sample() (via alias "
                    f"{node.func.id!r})"
                )
                yield self.finding(
                    module,
                    node,
                    f"{what} inside a loop — batch through "
                    f"LatencyModel.sample_many / sample_per_link so the "
                    f"multicast draw order stays vectorizable",
                )

    @staticmethod
    def _sample_aliases(tree: ast.Module) -> set[str]:
        """Names bound to a ``<expr>.sample`` bound method anywhere."""
        out: set[str] = set()
        for node in ast.walk(tree):
            value: ast.expr | None
            targets: Sequence[ast.expr]
            if isinstance(node, ast.Assign):
                value, targets = node.value, node.targets
            elif isinstance(node, ast.AnnAssign):
                value, targets = node.value, [node.target]
            else:
                continue
            if not (
                isinstance(value, ast.Attribute) and value.attr == "sample"
            ):
                continue
            for tgt in targets:
                if isinstance(tgt, ast.Name):
                    out.add(tgt.id)
        return out


__all__ = [
    "DeterminismRule",
    "BANNED_CALLS",
    "BANNED_PREFIXES",
    "BANNED_MODULES",
    "DEFAULT_ALLOWED",
    "SCALAR_SAMPLE_PATHS",
    "SCALAR_SAMPLE_ALLOWED",
]
