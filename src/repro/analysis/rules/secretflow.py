"""TEE secret-taint pass: key material never escapes the trusted base.

The reproduction models enclave-held signing keys as
:class:`~repro.crypto.keys.KeyPair` objects whose ``_secret`` bytes are
the simulation's stand-in for sealed TEE state (OneShot Sec. II-C: the
attested counter/signing service is trusted *because* the key cannot
leave it).  The per-file ``tee`` rule already forbids *syntactic*
``._secret`` access outside the trusted modules; this pass closes the
interprocedural gap — a helper inside ``crypto`` that returns the secret,
stores it on a public attribute, embeds it in a message, or logs it
would pass the per-file rule while still leaking the key to arbitrary
callers.

Model:

* **sources** — reads of ``_secret``/``_kp`` attributes anywhere, and
  the ``secret`` constructor parameter inside ``crypto/keys.py``;
* **sanitizers** — ``hmac.new``, ``hmac.compare_digest`` and
  ``hashlib.sha256``: a MAC tag or digest *proves knowledge of* the key
  without revealing it, which is exactly the simulated-signature
  contract;
* **sinks** — any use in a module outside ``repro/tee/`` +
  ``repro/crypto/``; a return from a public (non-underscore) function
  even inside the trusted base; a store onto a public attribute; a
  secret-tainted argument to ``print``/``logging``/``repr`` or to the
  construction of a frozen message/cert dataclass.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, Optional

from ..dataflow import FlowSpec, analyze
from ..findings import Finding
from .base import ProjectRule

if TYPE_CHECKING:
    from ..callgraph import FunctionInfo, ProjectIndex

#: Modules allowed to hold raw key material (the simulated TCB).
TRUSTED_PATHS: tuple[str, ...] = ("repro/tee/", "repro/crypto/")

#: Attribute names whose *read* introduces secret taint.
SECRET_ATTRS: frozenset[str] = frozenset({"_secret", "_kp"})

#: Module whose ``secret``-named parameters carry key material.
KEY_MODULE = "repro/crypto/keys.py"

#: Calls that consume the secret without revealing it.
SANITIZERS: frozenset[str] = frozenset(
    {"hmac.new", "hmac.compare_digest", "hmac.digest", "hashlib.sha256"}
)

#: External call targets that would externalize the secret.
LEAKY_CALLS: tuple[str, ...] = ("print", "repr", "format")
LEAKY_PREFIXES: tuple[str, ...] = ("logging.",)

_LABEL = "secret"


def _is_trusted(module: str) -> bool:
    return any(module.startswith(p) for p in TRUSTED_PATHS)


class _SecretFlowSpec(FlowSpec):
    name = "secret-flow"

    def __init__(self, index: ProjectIndex) -> None:
        self.index = index

    # -- sources -------------------------------------------------------
    def source_label(
        self, node: ast.expr, fn: FunctionInfo, index: ProjectIndex
    ) -> Optional[str]:
        if isinstance(node, ast.Attribute) and node.attr in SECRET_ATTRS:
            return _LABEL
        return None

    def param_source(self, fn: FunctionInfo, name: str) -> Optional[str]:
        if fn.module == KEY_MODULE and name == "secret":
            return _LABEL
        return None

    # -- sanitizers ----------------------------------------------------
    def sanitizes(self, target: Optional[str], node: ast.Call) -> bool:
        return target in SANITIZERS

    # -- sinks ---------------------------------------------------------
    def check_use(self, fn, stmt, taints) -> Iterator[tuple[ast.AST, str]]:
        if _is_trusted(fn.module):
            return
        if any(t.label == _LABEL for t in taints):
            origin = min(t.origin for t in taints if t.label == _LABEL)
            yield (
                stmt,
                f"TEE secret key material (from {origin}) reaches untrusted "
                f"module {fn.module} — secrets must stay inside "
                f"{'/'.join(p.rstrip('/') for p in TRUSTED_PATHS)}",
            )

    def check_return(self, fn, node, taints) -> Iterator[tuple[ast.AST, str]]:
        if not any(t.label == _LABEL for t in taints):
            return
        if _is_trusted(fn.module) and fn.name.startswith("_"):
            return  # private helper inside the TCB: callers are audited
        yield (
            node,
            f"public function {fn.qualname} returns secret key material — "
            f"expose a MAC/digest of it instead (hmac.new proves knowledge "
            f"without revealing the key)",
        )

    def check_call(
        self, fn, node, target, arg_taints
    ) -> Iterator[tuple[ast.AST, str]]:
        if not any(t.label == _LABEL for ts in arg_taints for t in ts):
            return
        if target in LEAKY_CALLS or (
            target is not None
            and any(target.startswith(p) for p in LEAKY_PREFIXES)
        ):
            yield (
                node,
                f"secret key material passed to {target}() — key bytes must "
                f"never reach logs or console output",
            )
            return
        if target is not None and target in self.index.classes:
            cls = self.index.classes[target]
            if cls.is_dataclass and cls.frozen and not _is_trusted(cls.module):
                yield (
                    node,
                    f"secret key material stored into message/cert field of "
                    f"{target} — messages cross the (simulated) enclave "
                    f"boundary",
                )

    def check_store(
        self, fn, node, owner, attr, taints
    ) -> Iterator[tuple[ast.AST, str]]:
        if not any(t.label == _LABEL for t in taints):
            return
        if attr.startswith("_") and _is_trusted(fn.module):
            return
        yield (
            node,
            f"secret key material stored on public attribute "
            f"{(owner or '?')}.{attr} — sealed state must live on "
            f"underscore attributes inside the trusted base",
        )


class SecretFlowRule(ProjectRule):
    """Interprocedural: key material never leaves repro.tee / repro.crypto."""

    name = "secret-flow"
    description = (
        "TEE key material must not reach returns, message fields, logs or "
        "attributes outside the trusted base (interprocedural taint)"
    )
    paper_ref = "Sec. II-C (TEE services hold sealed keys); repro.crypto.keys"

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        for hit in analyze(index, _SecretFlowSpec(index)):
            yield self.finding_at(hit.fn.module, hit.node, hit.message)


__all__ = [
    "KEY_MODULE",
    "LEAKY_CALLS",
    "SANITIZERS",
    "SECRET_ATTRS",
    "SecretFlowRule",
    "TRUSTED_PATHS",
]
