"""Substrate-boundary pass: protocol code uses only the manifest API.

The ROADMAP's planned substrate refactors (columnar event kernel,
sharded queues) are only safe if protocol-layer code — everything under
``repro/protocols``, ``repro/core`` and ``repro/smr`` — touches the
simulator substrate through a *declared* narrow surface.  This pass
makes that surface machine-checked: :data:`SUBSTRATE_API` maps each
substrate class to the attribute names the protocol layer may use, the
project index types every attribute access in the protocol layer, and
an access that reaches past the manifest (``sim._queue``,
``network._rng``, ``sim.step``) is a finding.

The manifest is intentionally the *narrow* API, not the public one:
``Simulator.run``/``step`` and the queue/metrics introspection
properties are public for experiment drivers, but a protocol that calls
them is driving its own simulation — exactly the coupling a substrate
swap would break.  Subclassing :class:`~repro.sim.process.Process` is
the supported extension mechanism, so ``Process`` itself is not in the
manifest and ``self.*`` access on protocol classes is unrestricted.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from ..findings import Finding
from .base import ProjectRule

if TYPE_CHECKING:
    from ..callgraph import ProjectIndex

#: Path prefixes that make up the protocol layer.  The sharding layer
#: (router, 2PC coordinator, rebalancer, pump) is protocol code too:
#: its run *driver* lives in repro/experiments/shard.py, so everything
#: under repro/shard must stay inside the declared substrate surface.
PROTOCOL_PATHS: tuple[str, ...] = (
    "repro/protocols/",
    "repro/core/",
    "repro/smr/",
    "repro/shard/",
)

#: Substrate class qualname -> attribute names the protocol layer may
#: touch.  Inheritance composes: an access on ``Cpu`` may use anything
#: allowed on ``Cpu`` or ``Resource``.  Dunders are always permitted.
SUBSTRATE_API: dict[str, frozenset[str]] = {
    "repro.sim.simulator.Simulator": frozenset(
        {"now", "schedule", "schedule_at", "schedule_many", "rng"}
    ),
    "repro.sim.event.EventQueue": frozenset(
        {"push", "push_many", "pop", "pop_next", "live_count"}
    ),
    "repro.sim.columnar.ColumnarEventQueue": frozenset(
        {"push", "push_many", "pop", "pop_next", "live_count"}
    ),
    "repro.sim.event.Event": frozenset({"cancel", "cancelled", "time"}),
    "repro.sim.cpu.Resource": frozenset(
        {"occupy", "occupy_many", "busy_until", "queueing_delay",
         "utilization", "name"}
    ),
    "repro.sim.cpu.Cpu": frozenset(),
    "repro.sim.cpu.Nic": frozenset(
        {"serialize", "serialize_many", "bandwidth_bps"}
    ),
    "repro.sim.process.Timer": frozenset({"start", "cancel", "armed"}),
    "repro.sim.rng.RngRegistry": frozenset(
        {"stream", "spawn", "fork", "derive_seed", "root_seed"}
    ),
    "repro.net.network.Network": frozenset(
        {"send", "multicast", "register", "attach_nic", "process", "nic",
         "pids", "enable_log"}
    ),
    "repro.net.latency.LatencyModel": frozenset({"sample", "sample_many"}),
    "repro.net.latency.ConstantLatency": frozenset(),
    "repro.net.latency.UniformLatency": frozenset(),
    "repro.net.latency.TopologyLatency": frozenset(),
}


def in_protocol_layer(module: str) -> bool:
    return any(module.startswith(p) for p in PROTOCOL_PATHS)


class SubstrateBoundaryRule(ProjectRule):
    """Protocol layer touches the substrate only through the manifest."""

    name = "substrate-boundary"
    description = (
        "protocol-layer code may touch substrate objects only through the "
        "declared narrow API (SUBSTRATE_API manifest)"
    )
    paper_ref = "ROADMAP: swappable columnar kernel; repro.sim"

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        for fn in index.functions.values():
            if not in_protocol_layer(fn.module):
                continue
            env = index.local_types(fn)
            stack: list[ast.AST] = list(fn.body)
            while stack:
                node = stack.pop()
                if isinstance(
                    node,
                    (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
                ):
                    # Nested defs are indexed (and checked) separately.
                    continue
                stack.extend(ast.iter_child_nodes(node))
                if not isinstance(node, ast.Attribute):
                    continue
                recv = index.infer_type(node.value, env, fn)
                if recv is None:
                    continue
                manifest_classes = [
                    c for c in index.mro(recv) if c in SUBSTRATE_API
                ]
                if not manifest_classes:
                    continue
                allowed: set[str] = set()
                for c in manifest_classes:
                    allowed |= SUBSTRATE_API[c]
                if node.attr in allowed or (
                    node.attr.startswith("__") and node.attr.endswith("__")
                ):
                    continue
                surface = manifest_classes[0].rsplit(".", 1)[-1]
                yield self.finding_at(
                    fn.module,
                    node,
                    f"protocol-layer access to {surface}.{node.attr} is "
                    f"outside the substrate manifest (allowed on "
                    f"{surface}: {', '.join(sorted(allowed)) or 'nothing'})"
                    f" — extend SUBSTRATE_API deliberately or go through "
                    f"the narrow API",
                )


__all__ = [
    "PROTOCOL_PATHS",
    "SUBSTRATE_API",
    "SubstrateBoundaryRule",
    "in_protocol_layer",
]
