"""Hygiene rules: float equality in protocol logic, ``__all__`` discipline.

* :class:`FloatEqualityRule` — simulated time and CPU charges are
  floats; ``==``/``!=`` against a float literal inside protocol logic
  (``repro/core``, ``repro/protocols``, ``repro/smr``, ``repro/tee``)
  is almost always a latent bug (compare views/counters, or use
  tolerances in tests).
* :class:`AllExportsRule` — every module declares ``__all__``, every
  listed name is actually defined, and every public top-level
  class/function is listed.  This is what keeps ``from repro.x import
  *`` surfaces (and the docs) in sync with the code.
"""

from __future__ import annotations

import ast
from typing import Iterator, Sequence

from ..findings import Finding
from .base import ModuleInfo, Rule

#: Protocol-logic subtrees where float equality is flagged.
DEFAULT_PROTOCOL_PATHS: tuple[str, ...] = (
    "repro/core/",
    "repro/protocols/",
    "repro/smr/",
    "repro/tee/",
)


class FloatEqualityRule(Rule):
    """No ``==``/``!=`` against float literals in protocol logic."""

    name = "float-equality"
    description = "no float-literal equality comparisons in protocol logic"
    paper_ref = "hygiene (simulated time is a float)"

    def __init__(self, paths: Sequence[str] = DEFAULT_PROTOCOL_PATHS) -> None:
        self.paths = tuple(paths)

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if not module.matches_any(self.paths):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, (lhs, rhs) in zip(node.ops, zip(operands, operands[1:])):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                for side in (lhs, rhs):
                    if isinstance(side, ast.Constant) and isinstance(
                        side.value, float
                    ):
                        yield self.finding(
                            module,
                            node,
                            f"float-literal equality ({side.value!r}) — "
                            f"compare counters or use a tolerance",
                        )
                        break


def _assigned_names(stmt: ast.stmt) -> list[str]:
    out: list[str] = []
    if isinstance(stmt, ast.Assign):
        for t in stmt.targets:
            if isinstance(t, ast.Name):
                out.append(t.id)
            elif isinstance(t, (ast.Tuple, ast.List)):
                out.extend(e.id for e in t.elts if isinstance(e, ast.Name))
    elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
        out.append(stmt.target.id)
    return out


class AllExportsRule(Rule):
    """``__all__`` present, resolvable, and exhaustive."""

    name = "all-exports"
    description = "__all__ declared, every entry defined, every public def listed"
    paper_ref = "hygiene (stable public surfaces per package)"

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        tree = module.tree
        top_level: set[str] = set()
        exported: list[str] | None = None
        all_node: ast.stmt | None = None
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                top_level.add(stmt.name)
            elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
                for a in stmt.names:
                    if a.name == "*":
                        continue
                    top_level.add(a.asname or a.name.split(".")[0])
            elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                names = _assigned_names(stmt)
                top_level.update(names)
                if "__all__" in names:
                    all_node = stmt
                    value = stmt.value
                    if isinstance(value, (ast.List, ast.Tuple)) and all(
                        isinstance(e, ast.Constant) and isinstance(e.value, str)
                        for e in value.elts
                    ):
                        exported = [e.value for e in value.elts]
        if exported is None:
            if all_node is not None:
                yield self.finding(
                    module, all_node, "__all__ must be a literal list of strings"
                )
            else:
                yield self.finding(
                    module, tree.body[0] if tree.body else tree, "module has no __all__"
                )
            return
        for name in exported:
            if name not in top_level:
                yield self.finding(
                    module,
                    all_node,
                    f"__all__ lists {name!r} but the module does not define it",
                )
        public_defs = {
            stmt.name
            for stmt in tree.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
            and not stmt.name.startswith("_")
        }
        for name in sorted(public_defs - set(exported)):
            yield self.finding(
                module,
                all_node,
                f"public definition {name!r} missing from __all__",
            )


__all__ = ["FloatEqualityRule", "AllExportsRule", "DEFAULT_PROTOCOL_PATHS"]
