"""Deep-immutability pass: frozen messages are frozen all the way down.

Protocol messages, certificates and blocks are frozen dataclasses so
that a replica can hand a reference to another replica (the simulation
"sends" by reference) without either side being able to mutate shared
state — the in-memory analogue of serialization.  ``frozen=True`` only
freezes the *top* layer: a ``tuple[Signature, ...]`` field is safe, but
a ``list`` — or a tuple of unfrozen dataclasses — re-opens the channel
one level down, and ``__hash__``/digest caching silently keys on state
that can change.

This pass walks every field annotation of every frozen dataclass in the
message/cert/block modules *transitively*: type aliases
(``QuorumCert = Union[...]``, ``Digest = bytes``) are expanded, frozen
dataclasses recurse into their own fields, and the first mutable
container reachable on any path is reported at the field that reaches
it, with the path spelled out.  Plain (non-dataclass) project classes
and unknown external types are treated as opaque — the per-file
``frozen-message`` rule already guards the declaration sites.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, Optional

from ..findings import Finding
from .base import ProjectRule, dotted_name

if TYPE_CHECKING:
    from ..callgraph import ProjectIndex

#: Modules whose frozen dataclasses are wire-format payloads.
PAYLOAD_FILES: tuple[str, ...] = (
    "messages.py",
    "certificates.py",
    "block.py",
)

#: Container/type names (last dotted segment) that are mutable.
MUTABLE_TYPES: frozenset[str] = frozenset(
    {
        "list", "List", "dict", "Dict", "set", "Set", "bytearray",
        "deque", "Deque", "defaultdict", "DefaultDict", "Counter",
        "OrderedDict", "MutableMapping", "MutableSequence", "MutableSet",
        "ndarray", "array",
    }
)

#: Immutable leaves — no need to recurse.
IMMUTABLE_LEAVES: frozenset[str] = frozenset(
    {
        "int", "float", "str", "bytes", "bool", "complex", "None",
        "NoneType", "object", "Digest",
    }
)

#: Generic wrappers to recurse through: parameters stay payload state.
_RECURSE_GENERICS: frozenset[str] = frozenset(
    {"tuple", "Tuple", "frozenset", "FrozenSet", "Optional", "Union",
     "ClassVar", "Final", "Annotated"}
)

_OPAQUE_GENERICS: frozenset[str] = frozenset({"Literal", "Callable", "Type"})


def is_payload_module(path: str) -> bool:
    return path.rsplit("/", 1)[-1] in PAYLOAD_FILES


class DeepFreezeRule(ProjectRule):
    """No mutable container reachable through a frozen payload field."""

    name = "deep-freeze"
    description = (
        "frozen message/cert dataclass fields must be transitively "
        "immutable (no list/dict/set/unfrozen dataclass at any depth)"
    )
    paper_ref = "Sec. IV (signed messages are immutable once sent)"

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        for cls in index.classes.values():
            if not (cls.is_dataclass and cls.frozen):
                continue
            if not is_payload_module(cls.module):
                continue
            for fname, ann in cls.fields.items():
                chain = self._classify(
                    index, ann, cls.module, [cls.name], frozenset({cls.qualname})
                )
                if chain is not None:
                    yield self.finding_at(
                        cls.module,
                        ann,
                        f"field {cls.name}.{fname} reaches mutable type via "
                        f"{' -> '.join(chain)} — frozen payloads must be "
                        f"immutable at every depth (tuple/frozenset/frozen "
                        f"dataclass)",
                    )

    # ------------------------------------------------------------------
    def _classify(
        self,
        index: ProjectIndex,
        ann: Optional[ast.expr],
        module: str,
        stack: list[str],
        seen: frozenset[str] = frozenset(),
    ) -> Optional[list[str]]:
        """Mutability chain reachable from ``ann``, or None if frozen."""
        if ann is None or len(stack) > 12:
            return None
        if isinstance(ann, ast.Constant):
            if ann.value is None or ann.value is Ellipsis:
                return None
            if isinstance(ann.value, str):
                try:
                    parsed = ast.parse(ann.value, mode="eval").body
                except SyntaxError:
                    return None
                return self._classify(index, parsed, module, stack, seen)
            return None
        if isinstance(ann, ast.BinOp) and isinstance(ann.op, ast.BitOr):
            return self._classify(
                index, ann.left, module, stack, seen
            ) or self._classify(index, ann.right, module, stack, seen)
        if isinstance(ann, ast.Subscript):
            base = dotted_name(ann.value).split(".")[-1]
            if base in MUTABLE_TYPES:
                return stack + [base]
            if base in _OPAQUE_GENERICS:
                return None
            if base in _RECURSE_GENERICS:
                elts = (
                    ann.slice.elts
                    if isinstance(ann.slice, ast.Tuple)
                    else [ann.slice]
                )
                for elt in elts:
                    chain = self._classify(index, elt, module, stack, seen)
                    if chain is not None:
                        return chain
                return None
            # Unknown generic: classify its base name below.
            return self._classify(index, ann.value, module, stack, seen)
        name = dotted_name(ann)
        if not name:
            return None
        last = name.split(".")[-1]
        if last in MUTABLE_TYPES:
            return stack + [last]
        if last in IMMUTABLE_LEAVES:
            return None
        resolved = index.resolve_dotted(module, name)
        if resolved in seen:
            return None  # recursive payload type: cycle already audited
        seen = seen | {resolved}
        if resolved in index.classes:
            target = index.classes[resolved]
            if target.is_dataclass and not target.frozen:
                return stack + [f"{target.name} (unfrozen dataclass)"]
            if target.is_dataclass and target.frozen:
                for fname, fann in target.fields.items():
                    chain = self._classify(
                        index,
                        fann,
                        target.module,
                        stack + [f"{target.name}.{fname}"],
                        seen,
                    )
                    if chain is not None:
                        return chain
            return None  # plain class: opaque, guarded elsewhere
        if resolved in index.type_aliases:
            owner_mod = resolved.rsplit(".", 1)[0]
            owner_path = index.modname_to_path.get(owner_mod, module)
            return self._classify(
                index,
                index.type_aliases[resolved],
                owner_path,
                stack + [last],
                seen,
            )
        return None


__all__ = [
    "DeepFreezeRule",
    "IMMUTABLE_LEAVES",
    "MUTABLE_TYPES",
    "PAYLOAD_FILES",
    "is_payload_module",
]
