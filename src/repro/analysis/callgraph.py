"""Project-wide symbol table and call graph.

The per-file rules of :mod:`repro.analysis.rules` see one module at a
time; the interprocedural passes (stream purity, secret taint,
substrate boundaries, deep immutability) need to follow a value across
function and module boundaries.  :class:`ProjectIndex` is the shared
substrate they run on:

* a **symbol table** — every top-level function, every class with its
  methods, dataclass fields and (best-effort) attribute types, every
  module-level type alias;
* **import resolution** — per-module alias maps that understand
  relative imports and follow ``__init__`` re-export chains, so
  ``repro.sim.Simulator`` resolves to
  ``repro.sim.simulator.Simulator``;
* **type-inference lite** — parameter annotations, ``self``,
  constructor-call assignments and attribute chains give most
  receivers a concrete class, which is what lets a call like
  ``self.sim.schedule(...)`` resolve to
  ``Simulator.schedule`` without executing anything;
* the **call graph** itself — every ``ast.Call`` mapped to a project
  function/class qualname or an external dotted name, with forward and
  reverse edges.

Building the index costs one pass over every module plus a bounded
attribute-type fixpoint; :func:`build_project_index` memoizes the
result per content digest so the four whole-program passes (and
repeated :func:`~repro.analysis.engine.lint_package` calls in one
process, e.g. the test suite) share a single build.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field
from typing import Iterable, Optional

from .rules.base import ModuleInfo, dotted_name


# ----------------------------------------------------------------------
# Module naming
# ----------------------------------------------------------------------
def modname_of(path: str) -> str:
    """Dotted module name of a POSIX source path.

    ``repro/sim/simulator.py`` -> ``repro.sim.simulator``;
    ``repro/sim/__init__.py`` -> ``repro.sim``.
    """
    parts = path[:-3].split("/") if path.endswith(".py") else path.split("/")
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def is_package(path: str) -> bool:
    return path.endswith("/__init__.py") or path == "__init__.py"


def _package_of(path: str) -> str:
    """The package a module's relative imports are resolved against."""
    modname = modname_of(path)
    if is_package(path):
        return modname
    return modname.rsplit(".", 1)[0] if "." in modname else ""


def import_aliases(module: ModuleInfo) -> dict[str, str]:
    """Alias -> absolute dotted name for every import in ``module``.

    Unlike the per-file :class:`~repro.analysis.rules.base.ImportMap`,
    relative imports are resolved against the module's package, so
    ``from ...crypto import Digest`` inside
    ``repro/protocols/common/base.py`` maps ``Digest`` to
    ``repro.crypto.Digest``.
    """
    pkg = _package_of(module.path)
    out: dict[str, str] = {}
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for a in node.names:
                if a.asname:
                    out[a.asname] = a.name
                else:
                    out[a.name.split(".")[0]] = a.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0:
                base = node.module or ""
            else:
                hops = pkg.split(".") if pkg else []
                hops = hops[: max(0, len(hops) - (node.level - 1))]
                base = ".".join(hops)
                if node.module:
                    base = f"{base}.{node.module}" if base else node.module
            for a in node.names:
                if a.name == "*":
                    continue
                full = f"{base}.{a.name}" if base else a.name
                out[a.asname or a.name] = full
    return out


# ----------------------------------------------------------------------
# Symbols
# ----------------------------------------------------------------------
@dataclass
class FunctionInfo:
    """One analyzable body: a def, a method, or module top level."""

    qualname: str
    module: str  # POSIX path, e.g. "repro/sim/simulator.py"
    name: str
    node: Optional[ast.AST]  # FunctionDef/AsyncFunctionDef; None = module
    cls: Optional[str]  # owning class qualname for methods
    body: list = field(default_factory=list)
    args: Optional[ast.arguments] = None

    @property
    def is_method(self) -> bool:
        return self.cls is not None

    def param_names(self) -> list[str]:
        if self.args is None:
            return []
        return [a.arg for a in [*self.args.posonlyargs, *self.args.args]] + [
            a.arg for a in self.args.kwonlyargs
        ]

    def is_stub(self) -> bool:
        """True for bodies with no behaviour (protocol/ABC stubs)."""
        for stmt in self.body:
            if isinstance(stmt, (ast.Pass, ast.Raise)):
                continue
            if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
                continue  # docstring or bare `...`
            return False
        return True


@dataclass
class ClassInfo:
    """One class definition plus everything inferred about it."""

    qualname: str
    module: str
    name: str
    node: ast.ClassDef
    bases: list[str] = field(default_factory=list)
    methods: dict[str, str] = field(default_factory=dict)  # name -> qualname
    attr_types: dict[str, str] = field(default_factory=dict)
    is_dataclass: bool = False
    frozen: bool = False
    #: Dataclass field name -> annotation node, in declaration order.
    fields: dict[str, ast.expr] = field(default_factory=dict)


@dataclass
class CallSite:
    """One resolved (or unresolved) call expression."""

    caller: str  # caller function qualname
    node: ast.Call
    #: Project target: a FunctionInfo qualname or a ClassInfo qualname
    #: (construction).  None if the call leaves the project or could
    #: not be resolved.
    callee: Optional[str] = None
    #: Absolute dotted name for non-project targets ("hmac.new").
    external: Optional[str] = None

    @property
    def target(self) -> Optional[str]:
        return self.callee or self.external


def _dataclass_meta(cls: ast.ClassDef) -> tuple[bool, bool]:
    """(is_dataclass, frozen) from the decorator list."""
    for dec in cls.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        name = dotted_name(target)
        if name.split(".")[-1] == "dataclass":
            frozen = False
            if isinstance(dec, ast.Call):
                for kw in dec.keywords:
                    if kw.arg == "frozen" and isinstance(kw.value, ast.Constant):
                        frozen = bool(kw.value.value)
            return True, frozen
    return False, False


class ProjectIndex:
    """Whole-program symbol table + call graph over a module set."""

    def __init__(self, modules: dict[str, ModuleInfo]) -> None:
        self.modules = modules
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.type_aliases: dict[str, ast.expr] = {}
        self.aliases: dict[str, dict[str, str]] = {}
        self.modname_to_path: dict[str, str] = {}
        self.calls: dict[str, list[CallSite]] = {}
        self.callers: dict[str, set[str]] = {}
        self.call_of: dict[int, CallSite] = {}
        self._local_types: dict[str, dict[str, str]] = {}
        self._mro_cache: dict[str, list[str]] = {}
        self._build()

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------
    def _build(self) -> None:
        for path, module in self.modules.items():
            self.modname_to_path[modname_of(path)] = path
            self.aliases[path] = import_aliases(module)
        for path, module in self.modules.items():
            self._collect_symbols(path, module)
        self._resolve_bases()
        # Attribute types can depend on other classes' attribute types
        # (``self.ring = credentials.ring``): two rounds let one level
        # of indirection settle, which covers the tree in practice.
        for _ in range(2):
            for info in list(self.classes.values()):
                self._infer_attr_types(info)
        for fn in list(self.functions.values()):
            self._resolve_calls(fn)

    def _collect_symbols(self, path: str, module: ModuleInfo) -> None:
        modname = modname_of(path)
        top_body: list[ast.stmt] = []
        for stmt in module.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{modname}.{stmt.name}"
                self.functions[qual] = FunctionInfo(
                    qualname=qual,
                    module=path,
                    name=stmt.name,
                    node=stmt,
                    cls=None,
                    body=list(stmt.body),
                    args=stmt.args,
                )
            elif isinstance(stmt, ast.ClassDef):
                cq = f"{modname}.{stmt.name}"
                is_dc, frozen = _dataclass_meta(stmt)
                info = ClassInfo(
                    qualname=cq,
                    module=path,
                    name=stmt.name,
                    node=stmt,
                    is_dataclass=is_dc,
                    frozen=frozen,
                )
                for sub in stmt.body:
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        mq = f"{cq}.{sub.name}"
                        info.methods[sub.name] = mq
                        self.functions[mq] = FunctionInfo(
                            qualname=mq,
                            module=path,
                            name=sub.name,
                            node=sub,
                            cls=cq,
                            body=list(sub.body),
                            args=sub.args,
                        )
                    elif is_dc and isinstance(sub, ast.AnnAssign) and isinstance(
                        sub.target, ast.Name
                    ):
                        info.fields[sub.target.id] = sub.annotation
                self.classes[cq] = info
            else:
                top_body.append(stmt)
                if (
                    isinstance(stmt, ast.Assign)
                    and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                ):
                    # Candidate type alias (``Digest = bytes``,
                    # ``QuorumCert = Union[...]``); consumers decide
                    # whether the right side is type-shaped.
                    self.type_aliases[f"{modname}.{stmt.targets[0].id}"] = stmt.value
        self.functions[f"{modname}.<module>"] = FunctionInfo(
            qualname=f"{modname}.<module>",
            module=path,
            name="<module>",
            node=None,
            cls=None,
            body=top_body,
            args=None,
        )

    # ------------------------------------------------------------------
    # Name resolution
    # ------------------------------------------------------------------
    def resolve_export(self, dotted: str) -> str:
        """Follow re-export chains until a definition (or dead end).

        ``repro.sim.Simulator`` -> look up ``Simulator`` in
        ``repro/sim/__init__.py``'s alias map ->
        ``repro.sim.simulator.Simulator``.
        """
        seen: set[str] = set()
        while dotted not in seen:
            seen.add(dotted)
            if (
                dotted in self.functions
                or dotted in self.classes
                or dotted in self.type_aliases
            ):
                return dotted
            head, _, last = dotted.rpartition(".")
            if not head:
                return dotted
            # ``pkg.Class.attr`` — resolve the class part, keep the tail.
            path = self.modname_to_path.get(head)
            if path is None:
                head2, _, mid = head.rpartition(".")
                path2 = self.modname_to_path.get(head2)
                if path2 is not None:
                    target = self.aliases[path2].get(mid)
                    if target is not None:
                        dotted = f"{target}.{last}"
                        continue
                return dotted
            target = self.aliases[path].get(last)
            if target is None:
                return dotted
            dotted = target
        return dotted

    def resolve_name(self, module_path: str, name: str) -> str:
        """Resolve a bare name used in ``module_path`` to a qualname."""
        amap = self.aliases.get(module_path, {})
        if name in amap:
            return self.resolve_export(amap[name])
        cand = f"{modname_of(module_path)}.{name}"
        if (
            cand in self.functions
            or cand in self.classes
            or cand in self.type_aliases
        ):
            return cand
        return name

    def resolve_dotted(self, module_path: str, dotted: str) -> str:
        """Resolve a dotted expression (``a.b.c``) used in a module."""
        head, _, rest = dotted.partition(".")
        base = self.resolve_name(module_path, head)
        return self.resolve_export(f"{base}.{rest}") if rest else base

    # ------------------------------------------------------------------
    # Classes: bases, MRO, attribute types
    # ------------------------------------------------------------------
    def _resolve_bases(self) -> None:
        for info in self.classes.values():
            for b in info.node.bases:
                name = dotted_name(b)
                if not name:
                    continue
                resolved = self.resolve_dotted(info.module, name)
                if resolved in self.classes:
                    info.bases.append(resolved)

    def mro(self, cls_qualname: str) -> list[str]:
        """Linearized ancestry (BFS, cycle-safe; not strict C3)."""
        cached = self._mro_cache.get(cls_qualname)
        if cached is not None:
            return cached
        out: list[str] = []
        queue = [cls_qualname]
        while queue:
            q = queue.pop(0)
            if q in out or q not in self.classes:
                continue
            out.append(q)
            queue.extend(self.classes[q].bases)
        self._mro_cache[cls_qualname] = out
        return out

    def lookup_method(self, cls_qualname: str, name: str) -> Optional[str]:
        for c in self.mro(cls_qualname):
            m = self.classes[c].methods.get(name)
            if m is not None:
                return m
        return None

    def attr_type(self, cls_qualname: str, attr: str) -> Optional[str]:
        for c in self.mro(cls_qualname):
            t = self.classes[c].attr_types.get(attr)
            if t is not None:
                return t
        return None

    def resolve_annotation(
        self, ann: Optional[ast.expr], module_path: str
    ) -> Optional[str]:
        """Class qualname an annotation denotes, if any.

        Unwraps ``Optional[X]`` and string annotations; containers and
        typing constructs that are not a single concrete class yield
        ``None``.
        """
        if ann is None:
            return None
        if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            try:
                ann = ast.parse(ann.value, mode="eval").body
            except SyntaxError:
                return None
        if isinstance(ann, ast.Subscript):
            base = dotted_name(ann.value).split(".")[-1]
            if base == "Optional":
                return self.resolve_annotation(ann.slice, module_path)
            return None
        name = dotted_name(ann)
        if not name:
            return None
        resolved = self.resolve_dotted(module_path, name)
        return resolved if resolved in self.classes else None

    def _infer_attr_types(self, info: ClassInfo) -> None:
        # Class-body annotations (dataclass fields included).
        for stmt in info.node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                t = self.resolve_annotation(stmt.annotation, info.module)
                if t is not None:
                    info.attr_types.setdefault(stmt.target.id, t)
        # ``self.x = <expr>`` in every method.
        for mq in info.methods.values():
            fn = self.functions[mq]
            env = self.local_types(fn)
            for node in ast.walk(fn.node) if fn.node is not None else []:
                if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                    continue
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for tgt in targets:
                    if (
                        isinstance(tgt, ast.Attribute)
                        and isinstance(tgt.value, ast.Name)
                        and tgt.value.id == "self"
                    ):
                        t = None
                        if isinstance(node, ast.AnnAssign):
                            t = self.resolve_annotation(node.annotation, fn.module)
                        if t is None and node.value is not None:
                            t = self.infer_type(node.value, env, fn)
                        if t is not None:
                            info.attr_types.setdefault(tgt.attr, t)

    # ------------------------------------------------------------------
    # Expression typing
    # ------------------------------------------------------------------
    def infer_type(
        self,
        expr: ast.expr,
        env: dict[str, str],
        fn: FunctionInfo,
    ) -> Optional[str]:
        """Best-effort class qualname of ``expr``'s value."""
        if isinstance(expr, ast.Name):
            return env.get(expr.id)
        if isinstance(expr, ast.Attribute):
            base = self.infer_type(expr.value, env, fn)
            if base is not None:
                return self.attr_type(base, expr.attr)
            return None
        if isinstance(expr, ast.Call):
            target = self._call_target(expr, env, fn)
            if target is None:
                return None
            if target in self.classes:
                return target
            f = self.functions.get(target)
            if f is not None and isinstance(
                f.node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                return self.resolve_annotation(f.node.returns, f.module)
            return None
        if isinstance(expr, ast.Await):
            return self.infer_type(expr.value, env, fn)
        return None

    def local_types(self, fn: FunctionInfo) -> dict[str, str]:
        """name -> class qualname for a function's parameters/locals."""
        cached = self._local_types.get(fn.qualname)
        if cached is not None:
            return cached
        env: dict[str, str] = {}
        if fn.cls is not None:
            env["self"] = fn.cls
            env["cls"] = fn.cls
        if fn.args is not None:
            for a in [*fn.args.posonlyargs, *fn.args.args, *fn.args.kwonlyargs]:
                t = self.resolve_annotation(a.annotation, fn.module)
                if t is not None:
                    env[a.arg] = t
        # Two passes so an assignment can use a name typed later.
        self._local_types[fn.qualname] = env
        for _ in range(2):
            for node in self._walk_body(fn.body):
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    tgt = node.targets[0]
                    if isinstance(tgt, ast.Name):
                        t = self.infer_type(node.value, env, fn)
                        if t is not None:
                            env[tgt.id] = t
                elif isinstance(node, ast.AnnAssign) and isinstance(
                    node.target, ast.Name
                ):
                    t = self.resolve_annotation(node.annotation, fn.module)
                    if t is None and node.value is not None:
                        t = self.infer_type(node.value, env, fn)
                    if t is not None:
                        env[node.target.id] = t
        return env

    @staticmethod
    def _walk_body(body: Iterable[ast.stmt]):
        """Walk statements without descending into nested defs."""
        stack = list(body)
        while stack:
            node = stack.pop()
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
            ):
                continue
            yield node
            for child in ast.iter_child_nodes(node):
                stack.append(child)

    # ------------------------------------------------------------------
    # Call graph
    # ------------------------------------------------------------------
    def _call_target(
        self, call: ast.Call, env: dict[str, str], fn: FunctionInfo
    ) -> Optional[str]:
        func = call.func
        if isinstance(func, ast.Name):
            resolved = self.resolve_name(fn.module, func.id)
            if resolved in self.functions or resolved in self.classes:
                return resolved
            # Known external (e.g. imported ``deepcopy``) — keep the
            # dotted form only if it left through an import.
            amap = self.aliases.get(fn.module, {})
            return amap.get(func.id)
        if isinstance(func, ast.Attribute):
            dotted = dotted_name(func)
            if dotted:
                resolved = self.resolve_dotted(fn.module, dotted)
                if resolved in self.functions or resolved in self.classes:
                    return resolved
                head = dotted.split(".")[0]
                amap = self.aliases.get(fn.module, {})
                if head in amap and env.get(head) is None:
                    # Attribute chain rooted at an import: external.
                    base = amap[head]
                    return f"{base}.{dotted.partition('.')[2]}"
            recv = self.infer_type(func.value, env, fn)
            if recv is not None:
                m = self.lookup_method(recv, func.attr)
                if m is not None:
                    return m
        return None

    def _resolve_calls(self, fn: FunctionInfo) -> None:
        env = self.local_types(fn)
        sites: list[CallSite] = []
        walk_root: list[ast.stmt] = fn.body
        for node in ast.walk(ast.Module(body=walk_root, type_ignores=[])):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                # Module top level: nested defs are indexed separately.
                continue
            if not isinstance(node, ast.Call):
                continue
            target = self._call_target(node, env, fn)
            site = CallSite(caller=fn.qualname, node=node)
            if target is not None and (
                target in self.functions or target in self.classes
            ):
                site.callee = target
            elif target is not None:
                site.external = target
            sites.append(site)
            self.call_of[id(node)] = site
            if site.callee is not None:
                self.callers.setdefault(site.callee, set()).add(fn.qualname)
        self.calls[fn.qualname] = sites

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def callers_of(self, qualname: str) -> set[str]:
        """Direct callers; for methods, includes resolved-by-type calls
        only (the static over-approximation the passes accept)."""
        return set(self.callers.get(qualname, ()))

    def transitive_callers(self, qualname: str) -> set[str]:
        out: set[str] = set()
        queue = [qualname]
        while queue:
            q = queue.pop()
            for c in self.callers.get(q, ()):
                if c not in out:
                    out.add(c)
                    queue.append(c)
        return out


# ----------------------------------------------------------------------
# Cached builds
# ----------------------------------------------------------------------
_INDEX_CACHE: dict[str, ProjectIndex] = {}
_INDEX_CACHE_MAX = 4


def index_cache_key(modules: dict[str, ModuleInfo]) -> str:
    """Content digest of a module set (path + source bytes)."""
    h = hashlib.sha256()
    for path in sorted(modules):
        h.update(path.encode("utf-8"))
        h.update(b"\x00")
        h.update(modules[path].source.encode("utf-8"))
        h.update(b"\x01")
    return h.hexdigest()


def build_project_index(
    modules: dict[str, ModuleInfo], use_cache: bool = True
) -> ProjectIndex:
    """Build (or fetch the memoized) :class:`ProjectIndex`.

    The cache is keyed by content digest, so any edit to any module
    invalidates it; it is what lets one engine run share a single build
    across all whole-program passes, and repeated ``lint_package()``
    calls in one process (the analysis test suite) skip re-resolution
    entirely.
    """
    if not use_cache:
        return ProjectIndex(modules)
    key = index_cache_key(modules)
    idx = _INDEX_CACHE.get(key)
    if idx is None:
        idx = ProjectIndex(modules)
        if len(_INDEX_CACHE) >= _INDEX_CACHE_MAX:
            _INDEX_CACHE.pop(next(iter(_INDEX_CACHE)))
        _INDEX_CACHE[key] = idx
    return idx


def clear_index_cache() -> None:
    """Drop memoized indexes (benchmarks measure cold builds)."""
    _INDEX_CACHE.clear()


__all__ = [
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "ProjectIndex",
    "build_project_index",
    "clear_index_cache",
    "import_aliases",
    "index_cache_key",
    "is_package",
    "modname_of",
]
