"""Interprocedural taint dataflow over the project call graph.

The flow-sensitive passes (RNG stream purity, TEE secret taint) share
one engine: :class:`FlowAnalysis` runs a forward abstract
interpretation of every function body, propagating sets of
:class:`Taint` labels through assignments, calls, containers and
attribute stores, and summarizes each function as

* ``returns`` — taints a call to it introduces by itself, and
* ``param_flow`` — which parameter positions flow into its return
  value (``0`` is ``self`` for methods),

iterated to a fixpoint over the call graph, so a draw from the ``net``
RNG stream that travels ``latency.sample -> _send_one -> caller``
keeps its label across every hop.  Class attribute stores
(``self._rng = <tainted>``) are tracked flow-insensitively per class,
which is how a stream handle derived in ``__init__`` taints draws made
in a different method.

A concrete pass subclasses :class:`FlowSpec` to declare

* **sources** — expressions (or parameters) that introduce a label;
* **sanitizers** — calls whose result drops incoming taint (e.g.
  ``hmac.new``: the tag proves knowledge of the key without revealing
  it);
* **sinks** — ``check_use`` / ``check_call`` / ``check_return`` /
  ``check_store`` hooks, invoked in a final report pass once the
  summaries have converged.

Design limits (deliberate, documented here so rule authors know what
the engine can and cannot see): implicit flows through control flow
are ignored; taint entering a callee through a parameter is only
followed back out through its return value (sinks *inside* the callee
fire for the callee's own sources, not the caller's); containers are
taint-atomic (one tainted element taints the container).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator, Optional

if TYPE_CHECKING:  # annotation-only; avoids a cycle with .rules
    from .callgraph import FunctionInfo, ProjectIndex

#: Marker-label prefix for parameter-position tracking.
_PARAM = "<param:"

#: Fixpoint guard: summaries grow monotonically, so convergence is
#: certain; the bound only caps degenerate cycles.
MAX_ROUNDS = 10


@dataclass(frozen=True)
class Taint:
    """One taint label plus where it entered the program."""

    label: str
    origin: str  # "path:line" of the source expression

    @property
    def is_param_marker(self) -> bool:
        return self.label.startswith(_PARAM)


def real(taints: Iterable[Taint]) -> set[Taint]:
    """Drop parameter-position markers, keeping user-visible labels."""
    return {t for t in taints if not t.is_param_marker}


@dataclass
class Summary:
    """Converged dataflow facts about one function."""

    returns: set[Taint] = field(default_factory=set)
    param_flow: set[int] = field(default_factory=set)

    def snapshot(self) -> tuple:
        return (frozenset(self.returns), frozenset(self.param_flow))


@dataclass(frozen=True)
class FlowFinding:
    """A sink hit: where, what, and the offending labels."""

    fn: FunctionInfo
    node: ast.AST
    message: str


class FlowSpec:
    """Source/sanitizer/sink declaration for one taint pass."""

    #: Rule id the findings are reported under.
    name = "flow"
    #: Whether unresolved calls conservatively merge argument taints
    #: into their result (``float(draw)`` stays tainted).
    propagate_unresolved = True

    # -- sources -------------------------------------------------------
    def source_label(
        self, node: ast.expr, fn: FunctionInfo, index: ProjectIndex
    ) -> Optional[str]:
        """Label introduced by evaluating ``node``, if any."""
        return None

    def param_source(self, fn: FunctionInfo, name: str) -> Optional[str]:
        """Label carried by parameter ``name`` of ``fn``, if any."""
        return None

    # -- sanitizers ----------------------------------------------------
    def sanitizes(self, target: Optional[str], node: ast.Call) -> bool:
        """True if a call to ``target`` launders its inputs."""
        return False

    # -- sinks (report pass only) --------------------------------------
    def check_use(
        self, fn: FunctionInfo, stmt: ast.stmt, taints: set[Taint]
    ) -> Iterator[tuple[ast.AST, str]]:
        """A statement in ``fn`` evaluated a tainted value."""
        return iter(())

    def check_call(
        self,
        fn: FunctionInfo,
        node: ast.Call,
        target: Optional[str],
        arg_taints: list[set[Taint]],
    ) -> Iterator[tuple[ast.AST, str]]:
        """A call with (possibly) tainted arguments."""
        return iter(())

    def check_return(
        self, fn: FunctionInfo, node: ast.Return, taints: set[Taint]
    ) -> Iterator[tuple[ast.AST, str]]:
        """``fn`` returns a tainted value."""
        return iter(())

    def check_store(
        self,
        fn: FunctionInfo,
        node: ast.AST,
        owner: Optional[str],
        attr: str,
        taints: set[Taint],
    ) -> Iterator[tuple[ast.AST, str]]:
        """A tainted value was stored into ``owner.attr``."""
        return iter(())


class FlowAnalysis:
    """Run one :class:`FlowSpec` over a :class:`ProjectIndex`."""

    def __init__(self, index: ProjectIndex, spec: FlowSpec) -> None:
        self.index = index
        self.spec = spec
        self.summaries: dict[str, Summary] = {
            q: Summary() for q in index.functions
        }
        #: (class qualname, attr) -> taints stored into it anywhere.
        self.attr_taints: dict[tuple[str, str], set[Taint]] = {}

    # ------------------------------------------------------------------
    def run(self) -> list[FlowFinding]:
        for _ in range(MAX_ROUNDS):
            before = self._state_snapshot()
            for fn in self.index.functions.values():
                self._analyze(fn, report=None)
            if self._state_snapshot() == before:
                break
        findings: list[FlowFinding] = []
        for fn in self.index.functions.values():
            self._analyze(fn, report=findings)
        # Deterministic order, one finding per (location, message).
        seen: set[tuple[str, int, int, str]] = set()
        out: list[FlowFinding] = []
        for f in sorted(
            findings,
            key=lambda f: (
                f.fn.module,
                getattr(f.node, "lineno", 0),
                getattr(f.node, "col_offset", 0),
                f.message,
            ),
        ):
            key = (
                f.fn.module,
                getattr(f.node, "lineno", 0),
                getattr(f.node, "col_offset", 0),
                f.message,
            )
            if key not in seen:
                seen.add(key)
                out.append(f)
        return out

    def _state_snapshot(self) -> tuple:
        return (
            tuple(
                (q, s.snapshot()) for q, s in sorted(self.summaries.items())
            ),
            tuple(
                (k, frozenset(v))
                for k, v in sorted(self.attr_taints.items())
            ),
        )

    # ------------------------------------------------------------------
    # Per-function abstract interpretation
    # ------------------------------------------------------------------
    def _analyze(
        self, fn: FunctionInfo, report: Optional[list[FlowFinding]]
    ) -> None:
        spec = self.spec
        env: dict[str, set[Taint]] = {}
        for i, name in enumerate(fn.param_names()):
            taints = {Taint(f"{_PARAM}{i}>", f"{fn.module}:0")}
            lbl = spec.param_source(fn, name)
            if lbl is not None:
                line = getattr(fn.node, "lineno", 0)
                taints.add(Taint(lbl, f"{fn.module}:{line}"))
            env[name] = taints
        summary = self.summaries[fn.qualname]
        ctx = _FnContext(self, fn, env, summary, report)
        ctx.exec_block(fn.body)
        summary.returns |= real(ctx.returns)
        summary.param_flow |= {
            int(t.label[len(_PARAM) : -1])
            for t in ctx.returns
            if t.is_param_marker
        }


class _FnContext:
    """Mutable walk state for one function's analysis."""

    def __init__(
        self,
        analysis: FlowAnalysis,
        fn: FunctionInfo,
        env: dict[str, set[Taint]],
        summary: Summary,
        report: Optional[list[FlowFinding]],
    ) -> None:
        self.a = analysis
        self.fn = fn
        self.env = env
        self.summary = summary
        self.report = report
        self.returns: set[Taint] = set()
        #: Every taint evaluated while executing the current statement —
        #: including values consumed as call arguments whose result was
        #: laundered.  ``check_use`` sees this union, so "passed a
        #: tainted value to something" counts as a use even when nothing
        #: tainted survives the expression.
        self._stmt_acc: set[Taint] = set()

    # -- reporting helpers --------------------------------------------
    def _emit(self, hits: Iterable[tuple[ast.AST, str]]) -> None:
        if self.report is None:
            return
        for node, message in hits:
            self.report.append(FlowFinding(self.fn, node, message))

    # -- statements ----------------------------------------------------
    def exec_block(self, body: Iterable[ast.stmt]) -> None:
        for stmt in body:
            self.exec_stmt(stmt)

    def _exec_loop_body(self, body: list[ast.stmt]) -> None:
        # Two passes propagate loop-carried taint (x = f(x) patterns).
        self.exec_block(body)
        self.exec_block(body)

    def exec_stmt(self, stmt: ast.stmt) -> None:
        spec = self.a.spec
        fn = self.fn
        used: set[Taint] = set()
        outer_acc = self._stmt_acc
        self._stmt_acc = set()
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            value = stmt.value
            taints = self.eval(value) if value is not None else set()
            targets = (
                stmt.targets
                if isinstance(stmt, ast.Assign)
                else [stmt.target]
            )
            for tgt in targets:
                if isinstance(stmt, ast.AugAssign):
                    taints = taints | self.eval(tgt)
                self.assign(tgt, taints, stmt)
            used |= taints
        elif isinstance(stmt, ast.Return):
            taints = self.eval(stmt.value) if stmt.value is not None else set()
            self.returns |= taints
            if self.report is not None:
                self._emit(spec.check_return(fn, stmt, real(taints)))
            used |= taints
        elif isinstance(stmt, ast.Expr):
            used |= self.eval(stmt.value)
        elif isinstance(stmt, ast.If):
            used |= self.eval(stmt.test)
            self.exec_block(stmt.body)
            self.exec_block(stmt.orelse)
        elif isinstance(stmt, ast.While):
            used |= self.eval(stmt.test)
            self._exec_loop_body(stmt.body)
            self.exec_block(stmt.orelse)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_taints = self.eval(stmt.iter)
            self.assign(stmt.target, iter_taints, stmt)
            self._exec_loop_body(stmt.body)
            self.exec_block(stmt.orelse)
            used |= iter_taints
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                t = self.eval(item.context_expr)
                if item.optional_vars is not None:
                    self.assign(item.optional_vars, t, stmt)
                used |= t
            self.exec_block(stmt.body)
        elif isinstance(stmt, ast.Try):
            self.exec_block(stmt.body)
            for handler in stmt.handlers:
                self.exec_block(handler.body)
            self.exec_block(stmt.orelse)
            self.exec_block(stmt.finalbody)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                used |= self.eval(stmt.exc)
        elif isinstance(stmt, (ast.Assert,)):
            used |= self.eval(stmt.test)
        elif isinstance(stmt, ast.Delete):
            pass
        # Imports, Pass, Break, Continue, Global, Nonlocal: no dataflow.
        used |= self._stmt_acc
        self._stmt_acc = outer_acc
        if self.report is not None and real(used):
            self._emit(spec.check_use(fn, stmt, real(used)))

    def assign(self, target: ast.expr, taints: set[Taint], stmt: ast.stmt) -> None:
        spec = self.a.spec
        if isinstance(target, ast.Name):
            # Strong update: assignment replaces a local's taints.
            self.env[target.id] = set(taints)
        elif isinstance(target, ast.Attribute):
            owner: Optional[str] = None
            if (
                isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and self.fn.cls is not None
            ):
                owner = self.fn.cls
                key = (owner, target.attr)
                store = self.a.attr_taints.setdefault(key, set())
                store |= real(taints)
            else:
                owner = self.a.index.infer_type(
                    target.value, self.a.index.local_types(self.fn), self.fn
                )
                if owner is not None:
                    key = (owner, target.attr)
                    store = self.a.attr_taints.setdefault(key, set())
                    store |= real(taints)
            if self.report is not None and real(taints):
                self._emit(
                    spec.check_store(self.fn, stmt, owner, target.attr, real(taints))
                )
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self.assign(elt, taints, stmt)
        elif isinstance(target, ast.Starred):
            self.assign(target.value, taints, stmt)
        elif isinstance(target, ast.Subscript):
            # Storing into a container: taint the container variable.
            base = target.value
            if isinstance(base, ast.Name):
                self.env[base.id] = self.env.get(base.id, set()) | taints

    # -- expressions ---------------------------------------------------
    def eval(self, e: Optional[ast.expr]) -> set[Taint]:
        if e is None:
            return set()
        spec = self.a.spec
        out: set[Taint] = set()
        lbl = spec.source_label(e, self.fn, self.a.index)
        if lbl is not None:
            out.add(Taint(lbl, f"{self.fn.module}:{getattr(e, 'lineno', 0)}"))
        if isinstance(e, ast.Name):
            out |= self.env.get(e.id, set())
        elif isinstance(e, ast.Attribute):
            out |= self.eval(e.value)
            if (
                isinstance(e.value, ast.Name)
                and e.value.id == "self"
                and self.fn.cls is not None
            ):
                for c in self.a.index.mro(self.fn.cls):
                    out |= self.a.attr_taints.get((c, e.attr), set())
            else:
                t = self.a.index.infer_type(
                    e.value, self.a.index.local_types(self.fn), self.fn
                )
                if t is not None:
                    for c in self.a.index.mro(t):
                        out |= self.a.attr_taints.get((c, e.attr), set())
        elif isinstance(e, ast.Call):
            out |= self._eval_call(e)
        elif isinstance(e, ast.Lambda):
            pass
        elif isinstance(e, ast.Constant):
            pass
        else:
            for child in ast.iter_child_nodes(e):
                if isinstance(child, ast.expr):
                    out |= self.eval(child)
                elif isinstance(child, ast.comprehension):
                    t = self.eval(child.iter)
                    self.assign(child.target, t, ast.Pass())
                    for cond in child.ifs:
                        self.eval(cond)
                elif isinstance(child, ast.keyword):
                    out |= self.eval(child.value)
        self._stmt_acc |= out
        return out

    def _eval_call(self, e: ast.Call) -> set[Taint]:
        spec = self.a.spec
        index = self.a.index
        site = index.call_of.get(id(e))
        target = site.target if site is not None else None

        arg_taints = [self.eval(a) for a in e.args]
        kw_taints = {kw.arg: self.eval(kw.value) for kw in e.keywords}
        recv_taints: set[Taint] = set()
        if isinstance(e.func, ast.Attribute):
            recv_taints = self.eval(e.func.value)
        else:
            self.eval(e.func)

        if self.report is not None:
            self._emit(
                spec.check_call(
                    self.fn,
                    e,
                    target,
                    [real(t) for t in arg_taints + list(kw_taints.values())],
                )
            )

        if spec.sanitizes(target, e):
            return set()

        out: set[Taint] = set()
        callee = site.callee if site is not None else None
        if callee is not None and callee in index.functions:
            fi = index.functions[callee]
            summary = self.a.summaries[callee]
            out |= summary.returns
            # Positional mapping: methods called through an attribute
            # receiver have ``self`` at position 0.
            offset = 1 if (fi.is_method and isinstance(e.func, ast.Attribute)) else 0
            names = fi.param_names()
            for i in summary.param_flow:
                j = i - offset
                if j == -1:
                    out |= recv_taints
                elif 0 <= j < len(arg_taints):
                    out |= arg_taints[j]
                elif i < len(names) and names[i] in kw_taints:
                    out |= kw_taints[names[i]]
            if fi.is_stub():
                # Protocol/ABC stub: assume args may flow to the result
                # (the concrete implementor is unknown statically).
                for t in arg_taints:
                    out |= t
                for t in kw_taints.values():
                    out |= t
                out |= recv_taints
        elif callee is not None and callee in index.classes:
            # Construction: the instance carries its argument taints.
            for t in arg_taints:
                out |= t
            for t in kw_taints.values():
                out |= t
        else:
            if spec.propagate_unresolved:
                for t in arg_taints:
                    out |= t
                for t in kw_taints.values():
                    out |= t
                out |= recv_taints
        return out


def analyze(index: ProjectIndex, spec: FlowSpec) -> list[FlowFinding]:
    """Convenience: run ``spec`` to fixpoint and report its sinks."""
    return FlowAnalysis(index, spec).run()


__all__ = [
    "FlowAnalysis",
    "FlowFinding",
    "FlowSpec",
    "MAX_ROUNDS",
    "Summary",
    "Taint",
    "analyze",
    "real",
]
