"""Lint findings and suppression matching.

A :class:`Finding` pinpoints one invariant violation; suppressions are
strings of the form ``rule``, ``rule:path`` or ``rule:path:line``
(paths are POSIX-style, relative to the source root, e.g.
``repro/sim/rng.py``).  The curated project-wide list lives in
``pyproject.toml`` under ``[tool.repro.lint]``.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str  # POSIX path relative to the lint root's parent
    line: int
    col: int
    message: str

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def render(self) -> str:
        return f"{self.location()}: [{self.rule}] {self.message}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass(frozen=True)
class Suppression:
    """A parsed suppression pattern."""

    rule: str
    path: str = ""  # empty = any path
    line: int = 0  # 0 = any line

    @staticmethod
    def parse(spec: str) -> "Suppression":
        parts = spec.strip().split(":")
        if not parts or not parts[0]:
            raise ValueError(f"empty suppression spec {spec!r}")
        rule = parts[0]
        path = parts[1] if len(parts) > 1 else ""
        line = 0
        if len(parts) > 2:
            try:
                line = int(parts[2])
            except ValueError as exc:
                raise ValueError(
                    f"bad line number in suppression {spec!r}"
                ) from exc
        if len(parts) > 3:
            raise ValueError(f"too many fields in suppression {spec!r}")
        return Suppression(rule=rule, path=path, line=line)

    def matches(self, finding: Finding) -> bool:
        if self.rule != finding.rule:
            return False
        if self.path and self.path != finding.path:
            return False
        if self.line and self.line != finding.line:
            return False
        return True

    def spec(self) -> str:
        out = self.rule
        if self.path:
            out += f":{self.path}"
        if self.line:
            out += f":{self.line}"
        return out


__all__ = ["Finding", "Suppression"]
