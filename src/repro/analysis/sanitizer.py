"""Runtime sanitizers: determinism replay and an equivocation oracle.

The static rules in :mod:`repro.analysis.rules` catch *sources* of
nondeterminism; this module catches the *symptom*.  It runs a small
cluster twice under the same root seed, fingerprints each run (hash of
the full message timeline plus hash of the decided chain), and fails
loudly on any divergence — which is exactly what a stray ``time.time()``
or an unseeded generator produces.

The equivocation oracle replays a run's decision records and asserts
the TEE guarantee the protocols are built on (Sec. IV): no two
conflicting blocks are certified/decided in the same view, and all
replicas decide prefix-consistent chains.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional

from ..metrics import MetricsCollector
from ..net import ConstantLatency, Network
from ..net.latency import LatencyModel
from ..protocols.common import ProtocolConfig, build_cluster
from ..protocols.registry import get_protocol
from ..sim import Simulator


class DeterminismViolation(AssertionError):
    """Two same-seed runs produced different traces."""


class EquivocationDetected(AssertionError):
    """Conflicting blocks were decided in the same view."""


@dataclass(frozen=True)
class RunFingerprint:
    """Canonical digest of one run's observable behaviour."""

    protocol: str
    seed: int
    events: int
    messages: int
    decisions: int
    timeline_hash: str
    chain_hash: str

    def digest(self) -> str:
        return hashlib.sha256(
            f"{self.timeline_hash}:{self.chain_hash}:{self.events}:"
            f"{self.messages}".encode()
        ).hexdigest()


def _hash_timeline(message_log) -> str:
    h = hashlib.sha256()
    for env in message_log:
        h.update(
            f"{env.src}>{env.dst}:{type(env.payload).__name__}:{env.size}:"
            f"{env.send_time!r}:{env.deliver_time!r}\n".encode()
        )
    return h.hexdigest()


def _hash_chain(collector: MetricsCollector) -> str:
    h = hashlib.sha256()
    for d in sorted(
        collector.decisions, key=lambda d: (d.time, d.replica, d.view)
    ):
        h.update(
            f"{d.replica}:{d.view}:{d.block_hash.hex()}:{d.ntxs}:"
            f"{d.time!r}:{d.kind}\n".encode()
        )
    return h.hexdigest()


def fingerprint_of(
    protocol: str,
    seed: int,
    sim: Simulator,
    network: Network,
    collector: MetricsCollector,
) -> RunFingerprint:
    """Fingerprint an already-executed run (message log must be on).

    Extracted from :func:`fingerprint_run` so harnesses that build
    their own cluster (the fuzzer, the experiment runner) produce
    digests on the same canonical form.
    """
    if network.message_log is None:
        raise ValueError("fingerprinting requires network.enable_log()")
    return RunFingerprint(
        protocol=protocol,
        seed=seed,
        events=sim.events_executed,
        messages=len(network.message_log),
        decisions=len(collector.decisions),
        timeline_hash=_hash_timeline(network.message_log),
        chain_hash=_hash_chain(collector),
    )


def fingerprint_run(
    protocol: str = "oneshot",
    seed: int = 7,
    f: int = 1,
    target_blocks: int = 6,
    latency: Optional[LatencyModel] = None,
    latency_s: float = 0.002,
    timeout_base: float = 0.2,
    max_sim_time: float = 60.0,
    kernel: str = "scalar",
    gst: float = 0.0,
    pre_gst_extra: float = 0.0,
    setup=None,
    replica_factory=None,
) -> tuple[RunFingerprint, MetricsCollector]:
    """Run a small cluster to ``target_blocks`` and fingerprint it.

    ``kernel`` selects the simulation substrate (the kernel-parity
    tests fingerprint the same scenario under every kernel and require
    bit-identical digests).  ``gst``/``pre_gst_extra`` configure
    pre-GST asynchrony, ``setup`` (if given) is called with the built
    :class:`~repro.net.network.Network` before the run — the hook
    point for installing delay hooks or other conditions — and
    ``replica_factory`` is forwarded to ``build_cluster`` (the zoo
    property tests fingerprint clusters carrying inert fault mixins).
    """
    info = get_protocol(protocol)
    sim = Simulator(seed=seed, kernel=kernel)
    network = Network(
        sim,
        latency=latency or ConstantLatency(latency_s),
        gst=gst,
        pre_gst_extra=pre_gst_extra,
    )
    network.enable_log()
    if setup is not None:
        setup(network)
    cluster = build_cluster(
        info.replica_cls,
        sim,
        network,
        ProtocolConfig(n=info.n_for(f), f=f, timeout_base=timeout_base),
        replica_factory=replica_factory,
    )
    cluster.start()
    reference = cluster.replicas[0]
    sim.run(
        until=max_sim_time, stop_when=lambda: len(reference.log) >= target_blocks
    )
    cluster.stop()
    fp = fingerprint_of(protocol, seed, sim, network, cluster.collector)
    return fp, cluster.collector


def check_determinism(
    protocol: str = "oneshot",
    seed: int = 7,
    runs: int = 2,
    latency_factory=None,
    **kwargs,
) -> RunFingerprint:
    """Replay the same seeded run ``runs`` times; raise on divergence.

    ``latency_factory`` (if given) is called once per run to build a
    fresh latency model — which is how the test suite injects a
    deliberately nondeterministic clock and proves the sanitizer
    catches it.
    """
    if runs < 2:
        raise ValueError("need at least two runs to compare")
    first: Optional[RunFingerprint] = None
    for i in range(runs):
        latency = latency_factory() if latency_factory is not None else None
        fp, _ = fingerprint_run(protocol=protocol, seed=seed, latency=latency, **kwargs)
        if first is None:
            first = fp
        elif fp != first:
            diffs = [
                name
                for name in (
                    "events",
                    "messages",
                    "decisions",
                    "timeline_hash",
                    "chain_hash",
                )
                if getattr(fp, name) != getattr(first, name)
            ]
            raise DeterminismViolation(
                f"run {i + 1} of {protocol!r} (seed {seed}) diverged from "
                f"run 1 in: {', '.join(diffs)}"
            )
    assert first is not None
    return first


def find_equivocations(
    collector: MetricsCollector, replicas: Optional[set[int]] = None
) -> list[str]:
    """Conflicts in a run's decision records (empty means safe).

    Checks the two safety properties the trusted services guarantee:

    * **view agreement** — all decisions recorded for one view commit
      the same block (the once-per-view TEE counters make certifying
      two blocks in one view impossible);
    * **prefix consistency** — any two replicas' decided hash
      sequences agree on their common prefix.

    ``replicas`` (if given) restricts the oracle to those pids — the
    fuzzer's safety oracle judges only *correct* replicas, since a
    Byzantine replica's own decision records carry no guarantees.
    """
    decisions = collector.decisions
    if replicas is not None:
        decisions = [d for d in decisions if d.replica in replicas]
    problems: list[str] = []
    by_view: dict[int, set] = {}
    for d in decisions:
        by_view.setdefault(d.view, set()).add(d.block_hash)
    for view in sorted(by_view):
        hashes = by_view[view]
        if len(hashes) > 1:
            short = ", ".join(sorted(h.hex()[:12] for h in hashes))
            problems.append(
                f"view {view}: {len(hashes)} conflicting blocks decided ({short})"
            )
    chains: dict[int, list] = {}
    for d in sorted(decisions, key=lambda d: (d.time, d.view)):
        chains.setdefault(d.replica, []).append(d.block_hash)
    pids = sorted(chains)
    for i, a in enumerate(pids):
        for b in pids[i + 1 :]:
            ca, cb = chains[a], chains[b]
            for k, (ha, hb) in enumerate(zip(ca, cb)):
                if ha != hb:
                    problems.append(
                        f"replicas {a} and {b} diverge at height {k}: "
                        f"{ha.hex()[:12]} vs {hb.hex()[:12]}"
                    )
                    break
    return problems


def assert_no_equivocation(collector: MetricsCollector) -> None:
    """Raise :class:`EquivocationDetected` if the run is unsafe."""
    problems = find_equivocations(collector)
    if problems:
        raise EquivocationDetected("; ".join(problems))


def replay_and_check(
    protocol: str = "oneshot", seed: int = 7, **kwargs
) -> RunFingerprint:
    """One-call gate: deterministic replay *and* equivocation oracle."""
    fp, collector = fingerprint_run(protocol=protocol, seed=seed, **kwargs)
    fp2, _ = fingerprint_run(protocol=protocol, seed=seed, **kwargs)
    if fp2 != fp:
        raise DeterminismViolation(
            f"{protocol!r} (seed {seed}) is not replay-stable"
        )
    assert_no_equivocation(collector)
    return fp


__all__ = [
    "RunFingerprint",
    "DeterminismViolation",
    "EquivocationDetected",
    "fingerprint_of",
    "fingerprint_run",
    "check_determinism",
    "find_equivocations",
    "assert_no_equivocation",
    "replay_and_check",
]
