"""The lint engine: parse every module under a root, run every rule.

``LintEngine(rules).run(root)`` walks ``root`` (normally the installed
``repro`` package directory), parses each ``*.py`` once, feeds the
tree to every per-file rule, builds the shared
:class:`~repro.analysis.callgraph.ProjectIndex` once and hands it to
every whole-program :class:`~repro.analysis.rules.base.ProjectRule`,
then partitions the resulting findings against the suppression layers
into *active* and *suppressed*:

1. inline ``repro: lint-ignore[rule-id]`` comments (written after a
   ``#``) — the preferred, line-precise mechanism; unused ignores are
   reported so they cannot rot;
2. the curated ``[tool.repro.lint]`` list in ``pyproject.toml`` — for
   whole-file policy decisions (e.g. the bench modules' wall-clock
   reads).

Reports render as text, JSON, SARIF 2.1.0 (CI upload) or
GitHub-Actions ``::error`` annotations.
"""

from __future__ import annotations

import ast
import json
import re
import tomllib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Sequence

from .callgraph import build_project_index
from .findings import Finding, Suppression
from .rules import ModuleInfo, ProjectRule, Rule, default_rules

#: One inline ignore comment: a ``#`` followed by
#: ``repro: lint-ignore[rule-a, rule-b]``.
_IGNORE_RE = re.compile(
    r"#\s*repro:\s*lint-ignore\[([A-Za-z0-9_\-]+(?:\s*,\s*[A-Za-z0-9_\-]+)*)\]"
)


@dataclass
class InlineIgnore:
    """A parsed per-line suppression comment."""

    path: str
    line: int
    rules: tuple[str, ...]
    used: set = field(default_factory=set)  # rule ids that matched

    def matches(self, finding: Finding) -> bool:
        return (
            finding.path == self.path
            and finding.line == self.line
            and finding.rule in self.rules
        )

    def unused_rules(self) -> tuple[str, ...]:
        return tuple(r for r in self.rules if r not in self.used)

    def spec(self) -> str:
        return f"{self.path}:{self.line}: lint-ignore[{', '.join(self.rules)}]"


def parse_inline_ignores(source: str, path: str) -> list[InlineIgnore]:
    """Collect ``# repro: lint-ignore[...]`` comments from a module."""
    out: list[InlineIgnore] = []
    for lineno, text in enumerate(source.splitlines(), start=1):
        m = _IGNORE_RE.search(text)
        if m is not None:
            rules = tuple(r.strip() for r in m.group(1).split(","))
            out.append(InlineIgnore(path=path, line=lineno, rules=rules))
    return out


@dataclass
class LintReport:
    """Outcome of one engine run."""

    root: str
    modules_checked: int = 0
    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    unused_suppressions: list[Suppression] = field(default_factory=list)
    #: ``path:line`` ignore comments that matched nothing (warning only).
    unused_ignores: list[str] = field(default_factory=list)
    parse_errors: list[str] = field(default_factory=list)
    #: rule id -> {description, paper_ref}, for SARIF metadata.
    rule_meta: dict = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        return not self.findings and not self.parse_errors

    def render_text(self) -> str:
        lines: list[str] = []
        for err in self.parse_errors:
            lines.append(f"PARSE ERROR: {err}")
        for f in self.findings:
            lines.append(f.render())
        for s in self.unused_suppressions:
            lines.append(f"note: unused suppression {s.spec()!r}")
        for spec in self.unused_ignores:
            lines.append(f"note: unused inline ignore {spec}")
        lines.append(
            f"{len(self.findings)} finding(s) in {self.modules_checked} "
            f"module(s), {len(self.suppressed)} suppressed"
        )
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps(
            {
                "root": self.root,
                "clean": self.clean,
                "modules_checked": self.modules_checked,
                "findings": [f.to_dict() for f in self.findings],
                "suppressed": [f.to_dict() for f in self.suppressed],
                "unused_suppressions": [s.spec() for s in self.unused_suppressions],
                "unused_ignores": list(self.unused_ignores),
                "parse_errors": list(self.parse_errors),
            },
            indent=2,
        )

    def to_sarif(self) -> str:
        """SARIF 2.1.0 document for CI code-scanning upload."""
        rules = [
            {
                "id": rid,
                "shortDescription": {"text": meta.get("description", rid)},
                "properties": {"paper_ref": meta.get("paper_ref", "")},
            }
            for rid, meta in sorted(self.rule_meta.items())
        ]
        results = [
            {
                "ruleId": f.rule,
                "level": "error",
                "message": {"text": f.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {"uri": f.path},
                            "region": {
                                "startLine": max(f.line, 1),
                                "startColumn": f.col + 1,
                            },
                        }
                    }
                ],
            }
            for f in self.findings
        ]
        doc = {
            "$schema": (
                "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json"
            ),
            "version": "2.1.0",
            "runs": [
                {
                    "tool": {
                        "driver": {
                            "name": "oneshot-repro-lint",
                            "rules": rules,
                        }
                    },
                    "results": results,
                }
            ],
        }
        return json.dumps(doc, indent=2)

    def render_github(self) -> str:
        """GitHub-Actions ``::error`` workflow annotations."""

        def esc(text: str) -> str:
            return (
                text.replace("%", "%25")
                .replace("\r", "%0D")
                .replace("\n", "%0A")
            )

        lines = [
            f"::error file={f.path},line={f.line},col={f.col + 1},"
            f"title={f.rule}::{esc(f.message)}"
            for f in self.findings
        ]
        for err in self.parse_errors:
            lines.append(f"::error title=parse-error::{esc(err)}")
        return "\n".join(lines)


class LintEngine:
    """Runs a rule set over a package tree."""

    def __init__(
        self,
        rules: Optional[Sequence[Rule]] = None,
        suppressions: Iterable[Suppression] = (),
    ) -> None:
        self.rules = list(rules) if rules is not None else default_rules()
        self.suppressions = list(suppressions)

    # ------------------------------------------------------------------
    # Module loading
    # ------------------------------------------------------------------
    @staticmethod
    def load_module(path: Path, rel: str) -> ModuleInfo:
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        return ModuleInfo(path=rel, tree=tree, source=source)

    def check_module(self, module: ModuleInfo) -> list[Finding]:
        out: list[Finding] = []
        for rule in self.rules:
            out.extend(rule.check(module))
        return out

    def check_source(self, source: str, path: str = "repro/example.py") -> list[Finding]:
        """Lint a source string with the per-file rules (convenience)."""
        module = ModuleInfo(path=path, tree=ast.parse(source), source=source)
        return self.check_module(module)

    # ------------------------------------------------------------------
    # Runs
    # ------------------------------------------------------------------
    def run(
        self, root: Path, only_paths: Optional[set[str]] = None
    ) -> LintReport:
        """Lint every ``*.py`` under ``root``.

        Module paths in findings are relative to ``root``'s *parent*,
        so linting ``.../src/repro`` yields paths like
        ``repro/sim/rng.py`` — the form the suppression list uses.

        ``only_paths`` restricts *reporting* to the given module paths
        (``--changed-only``); the analysis itself always covers the
        whole tree, because the interprocedural passes need the full
        call graph to be sound.
        """
        root = Path(root)
        report = LintReport(root=str(root))
        modules: dict[str, ModuleInfo] = {}
        for path in sorted(root.rglob("*.py")):
            rel = path.relative_to(root.parent).as_posix()
            try:
                modules[rel] = self.load_module(path, rel)
            except SyntaxError as exc:
                report.parse_errors.append(f"{rel}: {exc}")
        self._run_rules(report, modules, only_paths)
        return report

    def run_sources(
        self,
        sources: dict[str, str],
        only_paths: Optional[set[str]] = None,
    ) -> LintReport:
        """Lint an in-memory module set (multi-module test fixtures)."""
        report = LintReport(root="<memory>")
        modules: dict[str, ModuleInfo] = {}
        for rel, source in sources.items():
            try:
                modules[rel] = ModuleInfo(
                    path=rel, tree=ast.parse(source), source=source
                )
            except SyntaxError as exc:
                report.parse_errors.append(f"{rel}: {exc}")
        self._run_rules(report, modules, only_paths)
        return report

    # ------------------------------------------------------------------
    def _run_rules(
        self,
        report: LintReport,
        modules: dict[str, ModuleInfo],
        only_paths: Optional[set[str]],
    ) -> None:
        report.modules_checked = len(modules)
        report.rule_meta = {
            r.name: {"description": r.description, "paper_ref": r.paper_ref}
            for r in self.rules
        }
        raw: list[Finding] = []
        file_rules = [r for r in self.rules if not isinstance(r, ProjectRule)]
        project_rules = [r for r in self.rules if isinstance(r, ProjectRule)]
        for module in modules.values():
            for rule in file_rules:
                raw.extend(rule.check(module))
        if project_rules:
            # One shared index per run; memoized by content digest so
            # repeated runs in one process skip the rebuild entirely.
            index = build_project_index(modules)
            for rule in project_rules:
                raw.extend(rule.check_project(index))

        ignores: list[InlineIgnore] = []
        for module in modules.values():
            ignores.extend(parse_inline_ignores(module.source, module.path))

        used_supp: set[int] = set()
        for f in raw:
            ignore = next((ig for ig in ignores if ig.matches(f)), None)
            if ignore is not None:
                ignore.used.add(f.rule)
                report.suppressed.append(f)
                continue
            for i, s in enumerate(self.suppressions):
                if s.matches(f):
                    used_supp.add(i)
                    report.suppressed.append(f)
                    break
            else:
                report.findings.append(f)

        if only_paths is None:
            report.unused_suppressions = [
                s for i, s in enumerate(self.suppressions) if i not in used_supp
            ]
            report.unused_ignores = [
                f"{ig.path}:{ig.line}: lint-ignore[{', '.join(ig.unused_rules())}]"
                for ig in ignores
                if ig.unused_rules()
            ]
        else:
            # Partial view: filter findings, skip staleness accounting
            # (a suppression for an unchanged file is not "unused").
            report.findings = [
                f for f in report.findings if f.path in only_paths
            ]
            report.suppressed = [
                f for f in report.suppressed if f.path in only_paths
            ]
            report.parse_errors = [
                e
                for e in report.parse_errors
                if e.split(":", 1)[0] in only_paths
            ]
        report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))


def load_suppressions(pyproject: Path) -> list[Suppression]:
    """Read ``[tool.repro.lint] suppressions`` from a pyproject file."""
    with open(pyproject, "rb") as fh:
        data = tomllib.load(fh)
    specs = data.get("tool", {}).get("repro", {}).get("lint", {}).get(
        "suppressions", []
    )
    return [Suppression.parse(s) for s in specs]


def find_pyproject(start: Path) -> Optional[Path]:
    """Nearest ``pyproject.toml`` at or above ``start``."""
    for candidate in [start, *start.parents]:
        p = candidate / "pyproject.toml"
        if p.is_file():
            return p
    return None


def lint_package(
    root: Optional[Path] = None,
    pyproject: Optional[Path] = None,
    rules: Optional[Sequence[Rule]] = None,
    ignore_suppressions: bool = False,
    only_paths: Optional[set[str]] = None,
) -> LintReport:
    """Lint the installed ``repro`` package with the project suppressions."""
    if root is None:
        import repro

        root = Path(repro.__file__).resolve().parent
    if pyproject is None and not ignore_suppressions:
        pyproject = find_pyproject(Path(root))
    suppressions = (
        []
        if ignore_suppressions or pyproject is None
        else load_suppressions(pyproject)
    )
    engine = LintEngine(rules=rules, suppressions=suppressions)
    return engine.run(Path(root), only_paths=only_paths)


__all__ = [
    "InlineIgnore",
    "LintEngine",
    "LintReport",
    "lint_package",
    "load_suppressions",
    "find_pyproject",
    "parse_inline_ignores",
]
