"""The lint engine: parse every module under a root, run every rule.

``LintEngine(rules).run(root)`` walks ``root`` (normally the installed
``repro`` package directory), parses each ``*.py`` once, feeds the
tree to every rule, and partitions the resulting findings against the
suppression list into *active* and *suppressed*.  Unused suppressions
are themselves reported so the curated list in ``pyproject.toml``
cannot rot.
"""

from __future__ import annotations

import ast
import json
import tomllib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Sequence

from .findings import Finding, Suppression
from .rules import ModuleInfo, Rule, default_rules


@dataclass
class LintReport:
    """Outcome of one engine run."""

    root: str
    modules_checked: int = 0
    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    unused_suppressions: list[Suppression] = field(default_factory=list)
    parse_errors: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings and not self.parse_errors

    def render_text(self) -> str:
        lines: list[str] = []
        for err in self.parse_errors:
            lines.append(f"PARSE ERROR: {err}")
        for f in self.findings:
            lines.append(f.render())
        for s in self.unused_suppressions:
            lines.append(f"note: unused suppression {s.spec()!r}")
        lines.append(
            f"{len(self.findings)} finding(s) in {self.modules_checked} "
            f"module(s), {len(self.suppressed)} suppressed"
        )
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps(
            {
                "root": self.root,
                "clean": self.clean,
                "modules_checked": self.modules_checked,
                "findings": [f.to_dict() for f in self.findings],
                "suppressed": [f.to_dict() for f in self.suppressed],
                "unused_suppressions": [s.spec() for s in self.unused_suppressions],
                "parse_errors": list(self.parse_errors),
            },
            indent=2,
        )


class LintEngine:
    """Runs a rule set over a package tree."""

    def __init__(
        self,
        rules: Optional[Sequence[Rule]] = None,
        suppressions: Iterable[Suppression] = (),
    ) -> None:
        self.rules = list(rules) if rules is not None else default_rules()
        self.suppressions = list(suppressions)

    # ------------------------------------------------------------------
    # Module loading
    # ------------------------------------------------------------------
    @staticmethod
    def load_module(path: Path, rel: str) -> ModuleInfo:
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        return ModuleInfo(path=rel, tree=tree, source=source)

    def check_module(self, module: ModuleInfo) -> list[Finding]:
        out: list[Finding] = []
        for rule in self.rules:
            out.extend(rule.check(module))
        return out

    def check_source(self, source: str, path: str = "repro/example.py") -> list[Finding]:
        """Lint a source string (test/tooling convenience)."""
        module = ModuleInfo(path=path, tree=ast.parse(source), source=source)
        return self.check_module(module)

    # ------------------------------------------------------------------
    # Tree walk
    # ------------------------------------------------------------------
    def run(self, root: Path) -> LintReport:
        """Lint every ``*.py`` under ``root``.

        Module paths in findings are relative to ``root``'s *parent*,
        so linting ``.../src/repro`` yields paths like
        ``repro/sim/rng.py`` — the form the suppression list uses.
        """
        root = Path(root)
        report = LintReport(root=str(root))
        raw: list[Finding] = []
        for path in sorted(root.rglob("*.py")):
            rel = path.relative_to(root.parent).as_posix()
            try:
                module = self.load_module(path, rel)
            except SyntaxError as exc:
                report.parse_errors.append(f"{rel}: {exc}")
                continue
            report.modules_checked += 1
            raw.extend(self.check_module(module))
        used: set[int] = set()
        for f in raw:
            for i, s in enumerate(self.suppressions):
                if s.matches(f):
                    used.add(i)
                    report.suppressed.append(f)
                    break
            else:
                report.findings.append(f)
        report.unused_suppressions = [
            s for i, s in enumerate(self.suppressions) if i not in used
        ]
        report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return report


def load_suppressions(pyproject: Path) -> list[Suppression]:
    """Read ``[tool.repro.lint] suppressions`` from a pyproject file."""
    with open(pyproject, "rb") as fh:
        data = tomllib.load(fh)
    specs = data.get("tool", {}).get("repro", {}).get("lint", {}).get(
        "suppressions", []
    )
    return [Suppression.parse(s) for s in specs]


def find_pyproject(start: Path) -> Optional[Path]:
    """Nearest ``pyproject.toml`` at or above ``start``."""
    for candidate in [start, *start.parents]:
        p = candidate / "pyproject.toml"
        if p.is_file():
            return p
    return None


def lint_package(
    root: Optional[Path] = None,
    pyproject: Optional[Path] = None,
    rules: Optional[Sequence[Rule]] = None,
    ignore_suppressions: bool = False,
) -> LintReport:
    """Lint the installed ``repro`` package with the project suppressions."""
    if root is None:
        import repro

        root = Path(repro.__file__).resolve().parent
    if pyproject is None and not ignore_suppressions:
        pyproject = find_pyproject(Path(root))
    suppressions = (
        []
        if ignore_suppressions or pyproject is None
        else load_suppressions(pyproject)
    )
    engine = LintEngine(rules=rules, suppressions=suppressions)
    return engine.run(Path(root))


__all__ = [
    "LintEngine",
    "LintReport",
    "lint_package",
    "load_suppressions",
    "find_pyproject",
]
