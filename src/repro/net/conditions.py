"""Network-condition injectors.

The paper's Sec. VIII-d studies *unstable and degraded* conditions by
artificially triggering catch-up/piggyback executions.  These helpers
install delay hooks on a :class:`~repro.net.network.Network` to slow
specific nodes or time windows, which is how a leader "misses" the
previous view's certificate and must fall back.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional

from .network import DelayHook, Network


def degrade_window(
    network: Network,
    start: float,
    end: float,
    extra_s: float,
    nodes: Optional[Iterable[int]] = None,
) -> DelayHook:
    """Add ``extra_s`` to messages sent in ``[start, end)``.

    If ``nodes`` is given, only messages from or to those nodes are
    affected.  Returns the installed hook so callers can remove it.
    """
    node_set = frozenset(nodes) if nodes is not None else None

    def hook(now: float, src: int, dst: int, size: int) -> float:
        if not (start <= now < end):
            return 0.0
        if node_set is not None and src not in node_set and dst not in node_set:
            return 0.0
        return extra_s

    network.delay_hooks.append(hook)
    return hook


def slow_node(
    network: Network,
    node: int,
    extra_s: float,
    start: float = 0.0,
    end: float = math.inf,
) -> DelayHook:
    """Make every message from ``node`` take ``extra_s`` longer."""

    def hook(now: float, src: int, dst: int, size: int) -> float:
        if src == node and start <= now < end:
            return extra_s
        return 0.0

    network.delay_hooks.append(hook)
    return hook


def isolate_node(
    network: Network,
    node: int,
    start: float,
    end: float,
    delay_s: float = 60.0,
) -> DelayHook:
    """Effectively partition ``node`` during ``[start, end)``.

    Links stay reliable (the paper assumes no loss), so isolation is a
    very large delay rather than a drop: messages eventually arrive.
    """

    def hook(now: float, src: int, dst: int, size: int) -> float:
        if (src == node or dst == node) and start <= now < end:
            return delay_s
        return 0.0

    network.delay_hooks.append(hook)
    return hook


def remove_hook(network: Network, hook: DelayHook) -> None:
    """Uninstall a previously installed hook (no-op if absent)."""
    try:
        network.delay_hooks.remove(hook)
    except ValueError:
        pass


__all__ = ["degrade_window", "slow_node", "isolate_node", "remove_hook"]
