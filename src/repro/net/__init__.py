"""Network substrate: latency models, AWS-region topologies, and the
reliable partially-synchronous message fabric."""

from .conditions import degrade_window, isolate_node, remove_hook, slow_node
from .latency import (
    ConstantLatency,
    LatencyModel,
    TopologyLatency,
    UniformLatency,
    sample_per_link,
)
from .message import HEADER_BYTES, Envelope, payload_size
from .network import DEFAULT_BANDWIDTH_BPS, Network
from .regions import EU4, LOCAL, TOPOLOGIES, US4, WORLD11, Topology, rtt_ms

__all__ = [
    "degrade_window",
    "isolate_node",
    "remove_hook",
    "slow_node",
    "ConstantLatency",
    "LatencyModel",
    "TopologyLatency",
    "UniformLatency",
    "sample_per_link",
    "HEADER_BYTES",
    "Envelope",
    "payload_size",
    "DEFAULT_BANDWIDTH_BPS",
    "Network",
    "EU4",
    "LOCAL",
    "TOPOLOGIES",
    "US4",
    "WORLD11",
    "Topology",
    "rtt_ms",
]
