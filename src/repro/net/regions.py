"""AWS region topologies used by the paper's evaluation.

Three deployments (Sec. VIII):

* **EU** — Ireland, London, Paris, Frankfurt; largest average RTT
  29 ms (Ireland–Frankfurt).
* **US** — N. Virginia, Ohio, N. California, Oregon; largest 65 ms
  (Oregon–N. Virginia).
* **WORLD** — the 4 US + 4 EU regions plus Singapore, Sydney and
  Canada Central; largest 278 ms (Sydney–Paris).

Matrices are round-trip times in milliseconds; the network uses half of
the RTT as the one-way propagation delay.  Off-paper entries are filled
with representative public inter-region measurements; the three values
the paper states (29, 65, 278 ms) are exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

IRELAND = "eu-west-1"
LONDON = "eu-west-2"
PARIS = "eu-west-3"
FRANKFURT = "eu-central-1"
N_VIRGINIA = "us-east-1"
OHIO = "us-east-2"
N_CALIFORNIA = "us-west-1"
OREGON = "us-west-2"
SINGAPORE = "ap-southeast-1"
SYDNEY = "ap-southeast-2"
CANADA = "ca-central-1"

#: Intra-region RTT (same availability-zone neighbourhood), ms.
INTRA_REGION_RTT_MS = 0.6

# Pairwise RTTs in milliseconds (symmetric; representative of public
# AWS inter-region measurements; paper-stated maxima are exact).
_RTT_MS: dict[frozenset, float] = {}


def _put(a: str, b: str, rtt: float) -> None:
    _RTT_MS[frozenset((a, b))] = rtt


# EU block (paper: max 29 ms Ireland-Frankfurt)
_put(IRELAND, LONDON, 10.0)
_put(IRELAND, PARIS, 18.0)
_put(IRELAND, FRANKFURT, 29.0)
_put(LONDON, PARIS, 9.0)
_put(LONDON, FRANKFURT, 16.0)
_put(PARIS, FRANKFURT, 10.0)

# US block (paper: max 65 ms Oregon-N.Virginia)
_put(N_VIRGINIA, OHIO, 11.0)
_put(N_VIRGINIA, N_CALIFORNIA, 61.0)
_put(N_VIRGINIA, OREGON, 65.0)
_put(OHIO, N_CALIFORNIA, 50.0)
_put(OHIO, OREGON, 49.0)
_put(N_CALIFORNIA, OREGON, 22.0)

# Transatlantic
_put(N_VIRGINIA, IRELAND, 68.0)
_put(N_VIRGINIA, LONDON, 76.0)
_put(N_VIRGINIA, PARIS, 79.0)
_put(N_VIRGINIA, FRANKFURT, 89.0)
_put(OHIO, IRELAND, 76.0)
_put(OHIO, LONDON, 83.0)
_put(OHIO, PARIS, 86.0)
_put(OHIO, FRANKFURT, 96.0)
_put(N_CALIFORNIA, IRELAND, 130.0)
_put(N_CALIFORNIA, LONDON, 137.0)
_put(N_CALIFORNIA, PARIS, 141.0)
_put(N_CALIFORNIA, FRANKFURT, 147.0)
_put(OREGON, IRELAND, 125.0)
_put(OREGON, LONDON, 132.0)
_put(OREGON, PARIS, 136.0)
_put(OREGON, FRANKFURT, 144.0)

# Asia-Pacific (paper: max 278 ms Sydney-Paris)
_put(SINGAPORE, SYDNEY, 92.0)
_put(SINGAPORE, N_VIRGINIA, 220.0)
_put(SINGAPORE, OHIO, 212.0)
_put(SINGAPORE, N_CALIFORNIA, 170.0)
_put(SINGAPORE, OREGON, 162.0)
_put(SINGAPORE, IRELAND, 240.0)
_put(SINGAPORE, LONDON, 230.0)
_put(SINGAPORE, PARIS, 235.0)
_put(SINGAPORE, FRANKFURT, 225.0)
_put(SYDNEY, N_VIRGINIA, 200.0)
_put(SYDNEY, OHIO, 192.0)
_put(SYDNEY, N_CALIFORNIA, 140.0)
_put(SYDNEY, OREGON, 140.0)
_put(SYDNEY, IRELAND, 260.0)
_put(SYDNEY, LONDON, 265.0)
_put(SYDNEY, PARIS, 278.0)
_put(SYDNEY, FRANKFURT, 270.0)

# Canada Central
_put(CANADA, N_VIRGINIA, 15.0)
_put(CANADA, OHIO, 25.0)
_put(CANADA, N_CALIFORNIA, 75.0)
_put(CANADA, OREGON, 60.0)
_put(CANADA, IRELAND, 70.0)
_put(CANADA, LONDON, 78.0)
_put(CANADA, PARIS, 85.0)
_put(CANADA, FRANKFURT, 92.0)
_put(CANADA, SINGAPORE, 215.0)
_put(CANADA, SYDNEY, 200.0)


def rtt_ms(a: str, b: str) -> float:
    """Round-trip time between two regions in milliseconds."""
    if a == b:
        return INTRA_REGION_RTT_MS
    try:
        return _RTT_MS[frozenset((a, b))]
    except KeyError:
        raise KeyError(f"no RTT entry for regions {a!r} <-> {b!r}") from None


@dataclass(frozen=True)
class Topology:
    """A named multi-region deployment.

    Replicas are assigned to regions round-robin (replica ``i`` lives in
    ``regions[i % len(regions)]``), spreading the cluster evenly like
    the paper's per-region EC2 fleets.
    """

    name: str
    regions: tuple[str, ...]

    def region_of(self, node: int) -> str:
        return self.regions[node % len(self.regions)]

    def rtt_matrix_ms(self) -> np.ndarray:
        """Full region-pair RTT matrix (ms), indexed by region position."""
        n = len(self.regions)
        mat = np.empty((n, n))
        for i, a in enumerate(self.regions):
            for j, b in enumerate(self.regions):
                mat[i, j] = rtt_ms(a, b)
        return mat

    def one_way_s(self, src: int, dst: int) -> float:
        """One-way propagation delay between two *nodes*, in seconds."""
        return rtt_ms(self.region_of(src), self.region_of(dst)) / 2.0 / 1000.0

    def max_rtt_ms(self) -> float:
        return float(self.rtt_matrix_ms().max())


EU4 = Topology("eu", (IRELAND, LONDON, PARIS, FRANKFURT))
US4 = Topology("us", (N_VIRGINIA, OHIO, N_CALIFORNIA, OREGON))
WORLD11 = Topology(
    "world",
    (
        N_VIRGINIA,
        OHIO,
        N_CALIFORNIA,
        OREGON,
        IRELAND,
        LONDON,
        PARIS,
        FRANKFURT,
        SINGAPORE,
        SYDNEY,
        CANADA,
    ),
)

#: Single-site topology for local / degraded-network experiments.
LOCAL = Topology("local", (IRELAND,))

TOPOLOGIES = {t.name: t for t in (EU4, US4, WORLD11, LOCAL)}


__all__ = [
    "Topology",
    "rtt_ms",
    "EU4",
    "US4",
    "WORLD11",
    "LOCAL",
    "TOPOLOGIES",
    "INTRA_REGION_RTT_MS",
]
