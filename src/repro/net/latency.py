"""Propagation-latency models.

A latency model maps a (src, dst) node pair to a one-way propagation
delay sample.  Deployment experiments use :class:`TopologyLatency`
(region RTT matrix halved, with multiplicative log-normal jitter);
logic tests use :class:`ConstantLatency`.
"""

from __future__ import annotations

import math
from typing import Protocol

import numpy as np

from .regions import Topology


class LatencyModel(Protocol):
    """One-way propagation delay sampler."""

    def sample(self, src: int, dst: int, rng: np.random.Generator) -> float:
        """Return a one-way delay in seconds for this transmission."""
        ...


class ConstantLatency:
    """Fixed one-way delay between every pair of distinct nodes."""

    def __init__(self, delay_s: float, loopback_s: float = 1e-6) -> None:
        if delay_s < 0:
            raise ValueError("delay must be non-negative")
        self.delay_s = delay_s
        self.loopback_s = loopback_s

    def sample(self, src: int, dst: int, rng: np.random.Generator) -> float:
        return self.loopback_s if src == dst else self.delay_s


class UniformLatency:
    """One-way delay drawn uniformly from ``[low, high]``."""

    def __init__(self, low_s: float, high_s: float) -> None:
        if not 0 <= low_s <= high_s:
            raise ValueError("need 0 <= low <= high")
        self.low_s = low_s
        self.high_s = high_s

    def sample(self, src: int, dst: int, rng: np.random.Generator) -> float:
        if src == dst:
            return 1e-6
        return float(rng.uniform(self.low_s, self.high_s))


class TopologyLatency:
    """Region-matrix latency with multiplicative log-normal jitter.

    The jitter factor has median 1 and shape ``sigma`` (default 6 %),
    matching the mild per-packet variance of inter-region links while
    keeping region means equal to the paper's figures.
    """

    def __init__(self, topology: Topology, sigma: float = 0.06) -> None:
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        self.topology = topology
        self.sigma = sigma

    def sample(self, src: int, dst: int, rng: np.random.Generator) -> float:
        base = self.topology.one_way_s(src, dst)
        if src == dst:
            return 1e-6
        if self.sigma == 0.0:
            return base
        jitter = math.exp(rng.normal(0.0, self.sigma))
        return base * jitter


__all__ = [
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "TopologyLatency",
]
