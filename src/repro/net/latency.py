"""Propagation-latency models.

A latency model maps a (src, dst) node pair to a one-way propagation
delay sample.  Deployment experiments use :class:`TopologyLatency`
(region RTT matrix halved, with multiplicative log-normal jitter);
logic tests use :class:`ConstantLatency`.

Vectorized sampling contract
----------------------------

Models may additionally expose ``sample_many(src, dsts, rng)``: one
batched draw covering a whole multicast, returning a list of delays
aligned with ``dsts``.  The contract — relied on by the golden-run
fingerprints — is *stream identity* with the scalar path:

* loopback entries (``dst == src``) consume **no** RNG draws and get
  the model's loopback delay;
* every other entry consumes exactly the draws the scalar
  :meth:`LatencyModel.sample` call would, in destination order, so a
  batched draw of ``k`` remote destinations advances ``rng`` by the
  same state transition as ``k`` scalar calls (numpy ``Generator``
  fills batched ``uniform``/``normal`` requests element-by-element
  from the same bit stream).

A model that cannot satisfy stream identity must simply not define
``sample_many``; :func:`sample_per_link` is the sanctioned per-link
loop the network falls back to (the determinism lint flags ad-hoc
``latency.sample`` loops inside :mod:`repro.net` instead).

Draw-free models
----------------

Models additionally expose ``draw_free``: true when sampling consumes
**no** RNG draws (:class:`ConstantLatency` always;
:class:`TopologyLatency` when ``sigma == 0``).  The network uses it to
decide whether the pre-GST extra-delay draws can be batched separately
from the latency draws: with a draw-free model the two never interleave
on the shared stream, so batching stays stream-identical.  A model that
omits the attribute is treated as draw-consuming (the safe default).
"""

from __future__ import annotations

import math
from typing import Protocol, Sequence

import numpy as np

from .regions import Topology


class LatencyModel(Protocol):
    """One-way propagation delay sampler."""

    def sample(self, src: int, dst: int, rng: np.random.Generator) -> float:
        """Return a one-way delay in seconds for this transmission."""
        ...


def sample_per_link(
    model: LatencyModel,
    src: int,
    dsts: Sequence[int],
    rng: np.random.Generator,
) -> list[float]:
    """Per-link fallback for models without ``sample_many``.

    Mirrors the network's scalar send loop exactly: one
    :meth:`LatencyModel.sample` call per remote destination, in
    destination order, and **no** call for loopback entries (whose
    returned slot is 0.0 — the network overrides loopback delivery and
    never reads it).
    """
    sample = model.sample
    return [0.0 if dst == src else sample(src, dst, rng) for dst in dsts]


class ConstantLatency:
    """Fixed one-way delay between every pair of distinct nodes."""

    #: Sampling never touches the RNG (see module docstring).
    draw_free = True

    def __init__(self, delay_s: float, loopback_s: float = 1e-6) -> None:
        if delay_s < 0:
            raise ValueError("delay must be non-negative")
        self.delay_s = delay_s
        self.loopback_s = loopback_s

    def sample(self, src: int, dst: int, rng: np.random.Generator) -> float:
        return self.loopback_s if src == dst else self.delay_s

    def sample_many(
        self, src: int, dsts: Sequence[int], rng: np.random.Generator
    ) -> list[float]:
        """Draw-free: one list build, no RNG interaction at all."""
        delay = self.delay_s
        loop = self.loopback_s
        return [loop if dst == src else delay for dst in dsts]


class UniformLatency:
    """One-way delay drawn uniformly from ``[low, high]``."""

    #: Every remote sample consumes one uniform draw.
    draw_free = False

    def __init__(self, low_s: float, high_s: float) -> None:
        if not 0 <= low_s <= high_s:
            raise ValueError("need 0 <= low <= high")
        self.low_s = low_s
        self.high_s = high_s

    def sample(self, src: int, dst: int, rng: np.random.Generator) -> float:
        if src == dst:
            return 1e-6
        return float(rng.uniform(self.low_s, self.high_s))

    def sample_many(
        self, src: int, dsts: Sequence[int], rng: np.random.Generator
    ) -> list[float]:
        """One batched uniform draw for the remote destinations."""
        remote = sum(1 for dst in dsts if dst != src)
        if remote == 0:
            return [1e-6] * len(dsts)
        draws = rng.uniform(self.low_s, self.high_s, size=remote)
        out: list[float] = []
        i = 0
        for dst in dsts:
            if dst == src:
                out.append(1e-6)
            else:
                out.append(float(draws[i]))
                i += 1
        return out


class TopologyLatency:
    """Region-matrix latency with multiplicative log-normal jitter.

    The jitter factor has median 1 and shape ``sigma`` (default 6 %),
    matching the mild per-packet variance of inter-region links while
    keeping region means equal to the paper's figures.
    """

    def __init__(self, topology: Topology, sigma: float = 0.06) -> None:
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        self.topology = topology
        self.sigma = sigma

    @property
    def draw_free(self) -> bool:
        """Jitter-free matrices (``sigma == 0``) never touch the RNG."""
        return self.sigma == 0.0

    def sample(self, src: int, dst: int, rng: np.random.Generator) -> float:
        base = self.topology.one_way_s(src, dst)
        if src == dst:
            return 1e-6
        if self.sigma == 0.0:
            return base
        jitter = math.exp(rng.normal(0.0, self.sigma))
        return base * jitter

    def sample_many(
        self, src: int, dsts: Sequence[int], rng: np.random.Generator
    ) -> list[float]:
        """One batched normal draw, then per-element ``math.exp``.

        The exponential stays ``math.exp`` (not ``np.exp``) so every
        delay is bit-identical to the scalar path on any platform —
        only the *draws* are batched.
        """
        one_way = self.topology.one_way_s
        sigma = self.sigma
        if sigma == 0.0:
            return [
                1e-6 if dst == src else one_way(src, dst) for dst in dsts
            ]
        remote = sum(1 for dst in dsts if dst != src)
        if remote == 0:
            return [1e-6] * len(dsts)
        draws = rng.normal(0.0, sigma, size=remote)
        out: list[float] = []
        i = 0
        for dst in dsts:
            if dst == src:
                out.append(1e-6)
            else:
                out.append(one_way(src, dst) * math.exp(draws[i]))
                i += 1
        return out


__all__ = [
    "LatencyModel",
    "sample_per_link",
    "ConstantLatency",
    "UniformLatency",
    "TopologyLatency",
]
