"""Message envelopes and wire-size accounting.

Protocol messages are plain Python objects; the network only needs to
know *how big* they would be on the wire to charge NIC serialization.
Message types expose ``wire_size()``; anything else is charged a small
fixed overhead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

#: TCP/IP + framing overhead charged per message (bytes).
HEADER_BYTES = 66


def payload_size(payload: Any) -> int:
    """Best-effort wire size of a protocol payload in bytes."""
    ws = getattr(payload, "wire_size", None)
    if callable(ws):
        return int(ws())
    return 64  # small control message default


@dataclass(slots=True)
class Envelope:
    """A message in flight: addressing, payload, and accounting."""

    src: int
    dst: int
    payload: Any
    size: int
    send_time: float
    deliver_time: float = 0.0
    seq: int = field(default=0)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Envelope {self.src}->{self.dst} {type(self.payload).__name__} "
            f"{self.size}B @{self.send_time:.6f}>"
        )


__all__ = ["Envelope", "payload_size", "HEADER_BYTES"]
