"""Reliable point-to-point network with partial synchrony.

Semantics (Sec. IV of the paper):

* fully connected, **reliable** — messages are never lost;
* *partial synchrony* — there is a known bound Δ and an unknown GST
  such that messages sent after GST arrive within Δ.  Before GST the
  network may add arbitrary extra delay (bounded here by
  ``pre_gst_extra`` to keep runs finite).

Cost model: a message occupies the sender's NIC for
``bytes/bandwidth`` (so broadcasting a 115.6 KB block to 60 peers
serializes 60 copies), then travels for a one-way latency sampled from
the latency model, plus any condition-injected delay.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional

from ..sim import Nic, Process, Simulator
from .latency import ConstantLatency, LatencyModel, sample_per_link
from .message import HEADER_BYTES, Envelope, payload_size

#: A delay hook receives (now, src, dst, size) and returns extra
#: seconds.  Contract: hooks must be deterministic functions of their
#: arguments (plus their own state) and must **not** draw from the
#: network RNG stream — that is what lets the multicast fast path batch
#: latency draws around hook calls bit-identically.  A hook needing
#: randomness takes its own named stream from ``sim.rng``.
DelayHook = Callable[[float, int, int, int], float]

#: Default NIC bandwidth: 250 Mbit/s — t2.micro's sustainable
#: inter-region throughput (its "low-to-moderate" class bursts to
#: 1 Gbit/s but throttles under the broadcast-heavy steady state).
DEFAULT_BANDWIDTH_BPS = 250e6


class Network:
    """Discrete-event message fabric connecting registered processes."""

    def __init__(
        self,
        sim: Simulator,
        latency: Optional[LatencyModel] = None,
        bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
        gst: float = 0.0,
        delta: float = 0.5,
        pre_gst_extra: float = 0.0,
        fifo_links: bool = False,
    ) -> None:
        self.sim = sim
        self.latency: LatencyModel = latency or ConstantLatency(1e-4)
        self.bandwidth_bps = bandwidth_bps
        self.gst = gst
        self.delta = delta
        self.pre_gst_extra = pre_gst_extra
        #: TCP-style per-connection ordering: with fifo_links a message
        #: never overtakes an earlier message on the same (src, dst)
        #: link (jitter can otherwise reorder within a link).
        self.fifo_links = fifo_links
        self._procs: dict[int, Process] = {}
        self._nics: dict[int, Nic] = {}
        self._seq = 0
        self._rng = sim.rng.stream("net", purpose="link latency jitter")
        self.delay_hooks: list[DelayHook] = []
        self._link_clock: dict[tuple[int, int], float] = {}
        # accounting
        self.messages_sent = 0
        self.bytes_sent = 0
        self.message_log: Optional[list[Envelope]] = None

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def register(self, proc: Process, bandwidth_bps: Optional[float] = None) -> None:
        """Attach a process (replica or client) to the fabric."""
        if proc.pid in self._procs:
            raise ValueError(f"pid {proc.pid} already registered")
        self._procs[proc.pid] = proc
        self._nics[proc.pid] = Nic(
            bandwidth_bps or self.bandwidth_bps, name=f"nic{proc.pid}"
        )

    def attach_nic(self, pid: int, nic: Nic) -> None:
        """Bind ``pid``'s outgoing traffic to an existing NIC.

        Lets several logical processes share one physical interface —
        e.g. parallel consensus instances co-located on one machine
        (the multi-instance deployments of
        :mod:`repro.experiments.parallel`).
        """
        if pid not in self._procs:
            raise KeyError(f"unknown pid {pid}")
        self._nics[pid] = nic

    def process(self, pid: int) -> Process:
        return self._procs[pid]

    def nic(self, pid: int) -> Nic:
        return self._nics[pid]

    @property
    def pids(self) -> list[int]:
        return list(self._procs)

    # ------------------------------------------------------------------
    # Tracing
    # ------------------------------------------------------------------
    def enable_log(self) -> None:
        """Record every envelope (tests and trace experiments)."""
        if self.message_log is None:
            self.message_log = []

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def send(self, src: int, dst: int, payload: Any) -> Envelope:
        """Send ``payload`` from ``src`` to ``dst``; returns the envelope."""
        return self._send_one(
            src, dst, payload, payload_size(payload) + HEADER_BYTES, self.sim.now
        )

    def _send_one(
        self, src: int, dst: int, payload: Any, size: int, now: float
    ) -> Envelope:
        """Transmit one pre-sized message at ``now`` (shared fast path).

        ``size`` and ``now`` are computed by the caller so a multicast
        charges the (potentially expensive) payload sizing walk once
        per message, not once per destination.
        """
        if dst not in self._procs:
            raise KeyError(f"unknown destination {dst}")
        seq = self._seq
        self._seq = seq + 1
        env = Envelope(src, dst, payload, size, now, 0.0, seq)
        if src == dst:
            # Loopback: no NIC occupancy, negligible latency.
            deliver = now + 1e-6
        else:
            ser_end = self._nics[src].serialize(now, size)
            prop = self.latency.sample(src, dst, self._rng)
            extra = self._extra_delay(now, src, dst, size)
            deliver = ser_end + prop + extra
            if self.fifo_links:
                link = (src, dst)
                deliver = max(deliver, self._link_clock.get(link, 0.0))
                self._link_clock[link] = deliver
        env.deliver_time = deliver
        self.messages_sent += 1
        self.bytes_sent += size
        if self.message_log is not None:
            self.message_log.append(env)
        self.sim.schedule_at(
            deliver,
            self._deliver,
            env,
            label=f"deliver {src}->{dst}",
        )
        return env

    def multicast(self, src: int, dsts: Iterable[int], payload: Any) -> list[Envelope]:
        """Unicast fan-out to each destination (TCP-style, as in Salticidae).

        Sizes the payload once and samples each link's latency in
        destination order, so the result (envelopes, NIC occupancy and
        RNG draw sequence) is bit-identical to calling :meth:`send` per
        destination — only cheaper.

        Fast path: the whole destination vector is sampled in one
        batched draw (:meth:`LatencyModel.sample_many` where the model
        provides it), pre-GST extra delays are drawn in one batched
        uniform request, NIC occupancy and delivery times are computed
        for the batch, and the deliveries enter the event queue through
        one :meth:`Simulator.schedule_many` bulk insert.  Delay hooks
        compose with the batch because hooks never consume the network
        RNG stream (the :data:`DelayHook` contract).  The single case
        the batch cannot reproduce bit-identically is pre-GST asynchrony
        with a *draw-consuming* latency model — there the scalar path
        interleaves latency and extra-delay draws per destination on one
        stream — so exactly that case falls back to the scalar
        :meth:`_send_one` loop.
        """
        size = payload_size(payload) + HEADER_BYTES
        now = self.sim.now
        pre_gst = now < self.gst and self.pre_gst_extra > 0
        if pre_gst and not getattr(self.latency, "draw_free", False):
            send_one = self._send_one
            return [send_one(src, dst, payload, size, now) for dst in dsts]
        return self._multicast_fast(src, list(dsts), payload, size, now, pre_gst)

    def _multicast_fast(
        self,
        src: int,
        dsts: list[int],
        payload: Any,
        size: int,
        now: float,
        pre_gst: bool,
    ) -> list[Envelope]:
        """Vectorized fan-out (batched draws, batched occupancy).

        Every arithmetic step replays the scalar path's float
        operations in the same order (NIC completion times by repeated
        addition, ``(ser_end + prop) + extra`` delivery sums with the
        extra accumulated ``0.0 + draw`` then ``+= hook`` exactly as
        :meth:`_extra_delay` does), so the produced envelopes are
        bit-identical to :meth:`_send_one` in a loop — proven by the
        golden fingerprints and the multicast equivalence property
        tests.
        """
        procs = self._procs
        for dst in dsts:
            if dst not in procs:
                # All-or-nothing: reject the whole batch before any RNG
                # draw, NIC occupancy or scheduling happens.
                raise KeyError(f"unknown destination {dst}")
        n_remote = sum(1 for dst in dsts if dst != src)

        sample_many = getattr(self.latency, "sample_many", None)
        if sample_many is not None:
            props = sample_many(src, dsts, self._rng)
        else:
            props = sample_per_link(self.latency, src, dsts, self._rng)

        # Pre-GST extras in one batched draw.  Stream-identical to the
        # scalar interleaving because this branch is only reachable
        # with a draw-free latency model (multicast falls back
        # otherwise): the extras are then the *only* draws, one per
        # remote destination, in destination order.  ``.tolist()``
        # yields exact Python floats (reprs feed the fingerprints).
        extras: list[float] = []
        if pre_gst and n_remote:
            extras = self._rng.uniform(
                0.0, self.pre_gst_extra, size=n_remote
            ).tolist()
        hooks = self.delay_hooks
        has_extra = pre_gst or bool(hooks)

        seq = self._seq
        fifo = self.fifo_links
        link_clock = self._link_clock
        nic = self._nics.get(src)
        if nic is not None:
            # NIC serialization is FIFO repeated addition, accumulated
            # the way Resource.occupy would (bit-identical float sums).
            ser_ends = nic.serialize_many(now, size, n_remote)
        else:
            ser_ends = [now] * n_remote

        envs: list[Envelope] = []
        times: list[float] = []
        argss: list[tuple[Envelope]] = []
        append_env = envs.append
        append_time = times.append
        append_args = argss.append
        ri = 0
        for dst, prop in zip(dsts, props):
            env = Envelope(src, dst, payload, size, now, 0.0, seq)
            seq += 1
            if src == dst:
                # Loopback: no NIC occupancy, latency or extra delay.
                deliver = now + 1e-6
            else:
                deliver = ser_ends[ri] + prop
                if has_extra:
                    # Mirror _extra_delay's accumulation exactly.
                    extra = 0.0
                    if pre_gst:
                        extra = extra + extras[ri]
                    for hook in hooks:
                        extra += max(0.0, hook(now, src, dst, size))
                    deliver = deliver + extra
                ri += 1
                if fifo:
                    link = (src, dst)
                    deliver = max(deliver, link_clock.get(link, 0.0))
                    link_clock[link] = deliver
            env.deliver_time = deliver
            append_env(env)
            append_time(deliver)
            append_args((env,))
        self._seq = seq
        self.messages_sent += len(envs)
        self.bytes_sent += size * len(envs)
        if self.message_log is not None:
            self.message_log.extend(envs)
        self.sim.schedule_many(times, self._deliver, argss, label="deliver")
        return envs

    def _extra_delay(self, now: float, src: int, dst: int, size: int) -> float:
        extra = 0.0
        if now < self.gst and self.pre_gst_extra > 0:
            # Pre-GST asynchrony: adversarially variable delay.
            extra += float(self._rng.uniform(0.0, self.pre_gst_extra))
        for hook in self.delay_hooks:
            extra += max(0.0, hook(now, src, dst, size))
        return extra

    def _deliver(self, env: Envelope) -> None:
        self._procs[env.dst].on_message(env.src, env.payload)


__all__ = ["Network", "DelayHook", "DEFAULT_BANDWIDTH_BPS"]
