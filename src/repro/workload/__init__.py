"""Aggregated open-loop workload generation (the million-client engine).

Replaces N independent Poisson client processes with one
superposed-Poisson generator per region (equivalent in law; see
:mod:`repro.workload.arrivals`), minting arrivals in columnar slabs
that flow through the batched submit path
(:class:`~repro.smr.client.SubmitTxBatch` →
:meth:`~repro.smr.mempool.Mempool.submit_batch`) without materializing
per-transaction Python objects.
"""

from .arrivals import DEFAULT_SLAB_ROWS, PerClientArrivals, SuperposedArrivals
from .engine import (
    VIRTUAL_CLIENT_BASE,
    WORKLOAD_PID,
    RegionSpec,
    WorkloadEngine,
    attach_workload,
    split_regions,
)

__all__ = [
    "DEFAULT_SLAB_ROWS",
    "PerClientArrivals",
    "SuperposedArrivals",
    "VIRTUAL_CLIENT_BASE",
    "WORKLOAD_PID",
    "RegionSpec",
    "WorkloadEngine",
    "attach_workload",
    "split_regions",
]
