"""Arrival-time generation for the aggregated open-loop load engine.

**Why aggregation is exact.**  N independent Poisson processes with
rates λ₁…λ_N superpose into one Poisson process with rate Σλᵢ whose
events carry independent marks: each event belongs to client *i* with
probability λᵢ/Σλᵢ (the superposition/thinning theorem).  With equal
per-client rates the marks are iid-uniform over the client population.
:class:`SuperposedArrivals` simulates exactly that — one exponential
stream for the pooled process plus one uniform-integer stream for the
marks — so its law matches N independent
:class:`~repro.smr.client.PoissonClient` processes while costing one
RNG call per *slab* instead of one simulator event per *arrival*.
That is what makes million-client populations affordable: the state is
one int64 counter per virtual client (for per-client ``tx_id``
numbering) and the work per arrival is a few vectorized numpy ops.

**Streams.**  The aggregated mode draws from
``workload.region<k>.arrivals`` (a *new* stream purpose — documented
in docs/invariants.md; it does not and cannot reproduce the legacy
per-client draw sequence).  The compatibility mode
(:class:`PerClientArrivals`) instead draws from the *legacy* streams
``client<pid>.arrivals`` and relies on the prefix property of
``Generator.exponential``: a batched ``size=k`` request returns
bit-identical values to ``k`` scalar requests, so the arrival times it
mints are exactly those the legacy :class:`PoissonClient` processes
would produce — pinned by a golden fingerprint test.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..sim.rng import RngRegistry
from ..smr.transaction import TxBatch

#: Default rows per minted slab: one simulator event carries this many
#: arrivals.  Large enough to amortize event and numpy-call overhead,
#: small enough that slab granularity (a slab is dispatched at its last
#: arrival's time) stays well under a block interval at target rates.
DEFAULT_SLAB_ROWS = 512


def _number_occurrences(
    marks: np.ndarray, counters: np.ndarray
) -> np.ndarray:
    """Per-client occurrence numbers for a slab of client marks.

    Row *j* gets ``counters[marks[j]]`` plus the number of earlier rows
    in the slab with the same mark — i.e. exactly the ``tx_id`` the
    marked client's own :class:`~repro.smr.transaction.TxFactory` would
    assign — and ``counters`` is advanced by each client's occurrence
    count.  Fully vectorized (stable argsort + group-start subtraction).
    """
    n = len(marks)
    order = np.argsort(marks, kind="stable")
    sorted_marks = marks[order]
    idx = np.arange(n, dtype=np.int64)
    first = np.empty(n, dtype=bool)
    first[0] = True
    first[1:] = sorted_marks[1:] != sorted_marks[:-1]
    group_start = np.maximum.accumulate(np.where(first, idx, 0))
    rank = np.empty(n, dtype=np.int64)
    rank[order] = idx - group_start
    tx_ids = counters[marks] + rank
    uniq, counts = np.unique(marks, return_counts=True)
    counters[uniq] += counts
    return tx_ids


class SuperposedArrivals:
    """Pooled-Poisson arrival generator for one region.

    Equivalent in law to ``n_clients`` independent Poisson clients
    whose rates sum to ``rate_tps`` (see module docstring).  ``rng`` is
    an injected named stream (``workload.region<k>.arrivals``);
    ``client_base`` offsets the virtual client ids so regions (and the
    replicas' synthetic sources) never collide.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        n_clients: int,
        rate_tps: float,
        payload_bytes: int = 0,
        client_base: int = 0,
        start: float = 0.0,
    ) -> None:
        if n_clients <= 0:
            raise ValueError("n_clients must be positive")
        if rate_tps <= 0:
            raise ValueError("rate must be positive")
        self.rng = rng
        self.n_clients = n_clients
        self.rate_tps = rate_tps
        self.payload_bytes = payload_bytes
        self.client_base = client_base
        #: Next tx_id per virtual client — the only per-client state
        #: (8 B each; 8 MB for a million clients).
        self._counters = np.zeros(n_clients, dtype=np.int64)
        self._t = float(start)
        self.minted = 0

    @property
    def clock(self) -> float:
        """Time of the last minted arrival."""
        return self._t

    def next_slab(self, rows: int = DEFAULT_SLAB_ROWS) -> TxBatch:
        """Mint the next ``rows`` arrivals as one columnar slab."""
        if rows <= 0:
            raise ValueError("rows must be positive")
        gaps = self.rng.exponential(1.0 / self.rate_tps, size=rows)
        times = self._t + np.cumsum(gaps)
        self._t = float(times[-1])
        marks = self.rng.integers(0, self.n_clients, size=rows)
        tx_ids = _number_occurrences(marks, self._counters)
        self.minted += rows
        return TxBatch(
            self.client_base + marks, tx_ids, times, self.payload_bytes
        )


class PerClientArrivals:
    """Compatibility-mode generator: the legacy clients' exact arrivals.

    Draws each client's inter-arrival gaps from the *same* named stream
    the legacy :class:`~repro.smr.client.PoissonClient` uses
    (``client<pid>.arrivals``, purpose ``"client tx arrivals"``), in
    batches — bit-identical to the scalar draws by the numpy
    prefix property — so the merged arrival sequence is exactly what
    ``len(pids)`` independent client processes would submit.  Useful
    for pinning the aggregated engine's plumbing against the legacy
    mode on small populations; the superposed generator is the one that
    scales.
    """

    #: Gaps drawn per batched request while extending one client's
    #: timeline past the horizon.
    CHUNK = 64

    def __init__(
        self,
        registry: RngRegistry,
        pids: Sequence[int],
        rate_tps: float,
        payload_bytes: int = 0,
    ) -> None:
        if not pids:
            raise ValueError("need at least one client pid")
        if rate_tps <= 0:
            raise ValueError("rate must be positive")
        self.pids = list(pids)
        self.rate_tps = rate_tps
        self.payload_bytes = payload_bytes
        self._rngs = [
            registry.stream(f"client{pid}.arrivals", purpose="client tx arrivals")
            for pid in self.pids
        ]

    def arrivals_until(self, horizon: float) -> TxBatch:
        """All arrivals in ``[0, horizon)``, merged and time-sorted.

        Single-shot.  The arrival *times* are bit-identical to what the
        legacy client processes produce by ``horizon`` (prefix property
        of batched draws); the stream cursor may sit a partial chunk
        further along, which is invisible to anything except a later
        draw from the same stream in the same run.
        """
        scale = 1.0 / self.rate_tps
        all_times: list[np.ndarray] = []
        all_cids: list[np.ndarray] = []
        all_tids: list[np.ndarray] = []
        for pid, rng in zip(self.pids, self._rngs):
            t = 0.0
            times: list[float] = []
            done = False
            while not done:
                gaps = rng.exponential(scale, size=self.CHUNK)
                for g in gaps.tolist():
                    t += g
                    if t >= horizon:
                        done = True
                        break
                    times.append(t)
            arr = np.array(times, dtype=np.float64)
            all_times.append(arr)
            all_cids.append(np.full(len(arr), pid, dtype=np.int64))
            all_tids.append(np.arange(len(arr), dtype=np.int64))
        times = np.concatenate(all_times)
        order = np.argsort(times, kind="stable")
        return TxBatch(
            np.concatenate(all_cids)[order],
            np.concatenate(all_tids)[order],
            times[order],
            self.payload_bytes,
        )


__all__ = [
    "DEFAULT_SLAB_ROWS",
    "PerClientArrivals",
    "SuperposedArrivals",
]
