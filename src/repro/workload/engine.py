"""The aggregated open-loop load engine.

One :class:`WorkloadEngine` process replaces N independent
:class:`~repro.smr.client.PoissonClient` processes.  Per region it owns
a :class:`~repro.workload.arrivals.SuperposedArrivals` generator; it
mints arrivals in columnar slabs and, when a slab's *last* arrival time
is reached, multicasts the whole slab to every replica as one
:class:`~repro.smr.client.SubmitTxBatch` message.  Each row's true
arrival time rides in the slab's ``submit_times`` column, so per-tx
timing is preserved even though the simulator executes one event per
slab instead of one per arrival.

Deliberate differences from the per-client mode (documented, not
accidental):

* slab granularity — a slab is dispatched when its last arrival
  occurs, so the first rows of a slab reach the mempool up to
  ``slab_rows / rate`` seconds after their nominal arrival.  At the
  engine's target rates (≥100k tx/s) that skew is microseconds.
* no reply tracking — virtual clients do not register with the network
  or populate the replicas' client-routing maps; commit latency is
  measured replica-side by the (streaming) metrics collector.  A
  million-entry routing dict per replica would be pure overhead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..net import Network
from ..sim import Process, Simulator
from ..smr import SubmitTxBatch
from .arrivals import DEFAULT_SLAB_ROWS, SuperposedArrivals

#: Process id of the engine on the network fabric — far above replica
#: pids (0..n) and legacy client pids.
WORKLOAD_PID = 90_000

#: First virtual client id.  Replica synthetic sources use
#: ``10_000 + pid`` and legacy clients use small pids, so a disjoint
#: base keeps ``(client_id, tx_id)`` keys globally unique.
VIRTUAL_CLIENT_BASE = 1_000_000


@dataclass(frozen=True)
class RegionSpec:
    """One region's share of the offered load."""

    n_clients: int
    rate_tps: float
    payload_bytes: int = 0


def split_regions(
    virtual_clients: int,
    offered_tps: float,
    regions: int,
    payload_bytes: int = 0,
) -> tuple[RegionSpec, ...]:
    """Divide a client population and offered load across regions.

    Near-even split (remainders go to the earliest regions), preserving
    the totals exactly.
    """
    if virtual_clients < regions or regions <= 0:
        raise ValueError("need at least one virtual client per region")
    base, extra = divmod(virtual_clients, regions)
    out = []
    for i in range(regions):
        n = base + (1 if i < extra else 0)
        out.append(
            RegionSpec(
                n_clients=n,
                rate_tps=offered_tps * (n / virtual_clients),
                payload_bytes=payload_bytes,
            )
        )
    return tuple(out)


class WorkloadEngine(Process):
    """Aggregated open-loop load across all regions, one process."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        replica_pids: Sequence[int],
        regions: Sequence[RegionSpec],
        pid: int = WORKLOAD_PID,
        slab_rows: int = DEFAULT_SLAB_ROWS,
    ) -> None:
        super().__init__(sim, pid, name="workload")
        if not regions:
            raise ValueError("need at least one region")
        if slab_rows <= 0:
            raise ValueError("slab_rows must be positive")
        self.network = network
        self.replica_pids = list(replica_pids)
        self.regions = tuple(regions)
        self.slab_rows = slab_rows
        self.generators: list[SuperposedArrivals] = []
        base = VIRTUAL_CLIENT_BASE
        for i, spec in enumerate(self.regions):
            rng = sim.rng.stream(
                f"workload.region{i}.arrivals",
                purpose="aggregated open-loop arrivals",
            )
            self.generators.append(
                SuperposedArrivals(
                    rng,
                    n_clients=spec.n_clients,
                    rate_tps=spec.rate_tps,
                    payload_bytes=spec.payload_bytes,
                    client_base=base,
                )
            )
            base += spec.n_clients
        self.virtual_clients = base - VIRTUAL_CLIENT_BASE
        self.txs_offered = 0
        self.slabs_sent = 0
        self._running = False
        network.register(self)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin offering load; call once after the cluster starts."""
        if self._running:
            return
        self._running = True
        for ri in range(len(self.regions)):
            self._schedule(ri)

    def stop(self) -> None:
        self._running = False

    # ------------------------------------------------------------------
    # Slab pump
    # ------------------------------------------------------------------
    def _schedule(self, ri: int) -> None:
        slab = self.generators[ri].next_slab(self.slab_rows)
        fire_at = float(slab.submit_times[-1])
        self.after(max(0.0, fire_at - self.sim.now), self._emit, ri, slab)

    def _emit(self, ri: int, slab) -> None:
        if not self._running:
            return
        self.network.multicast(self.pid, self.replica_pids, SubmitTxBatch(slab))
        self.txs_offered += len(slab)
        self.slabs_sent += 1
        self._schedule(ri)

    def on_message(self, sender: int, payload: object) -> None:
        """Virtual clients do not consume replies (see module docstring)."""

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def offered_rate_tps(self) -> float:
        """Configured aggregate offered load."""
        return sum(r.rate_tps for r in self.regions)

    def observed_rate_tps(self) -> float:
        """Arrivals actually dispatched per simulated second so far."""
        now = self.sim.now
        return self.txs_offered / now if now > 0 else 0.0


def attach_workload(
    sim: Simulator,
    network: Network,
    replica_pids: Sequence[int],
    offered_tps: float,
    virtual_clients: int,
    regions: int = 1,
    payload_bytes: int = 0,
    slab_rows: int = DEFAULT_SLAB_ROWS,
    pid: int = WORKLOAD_PID,
) -> WorkloadEngine:
    """Build and register a :class:`WorkloadEngine` from scalar knobs."""
    specs = split_regions(virtual_clients, offered_tps, regions, payload_bytes)
    return WorkloadEngine(
        sim, network, replica_pids, specs, pid=pid, slab_rows=slab_rows
    )


__all__ = [
    "RegionSpec",
    "VIRTUAL_CLIENT_BASE",
    "WORKLOAD_PID",
    "WorkloadEngine",
    "attach_workload",
    "split_regions",
]
