"""Verification memoization — the wall-clock fast path for crypto.

Two memo layers make signature and certificate verification O(1) after
first sight:

* :class:`~repro.crypto.keys.KeyRing` keeps a bounded memo of
  ``(signer, digest, tag)`` triples it has already HMAC-checked, so a
  signature is verified once per process, not once per receiving
  replica (the ring is shared public information — see
  :func:`repro.tee.attestation.provision`);
* frozen certificate dataclasses carry an instance-level memo
  (:func:`seen_valid` / :func:`record_valid`) of the ``(ring, quorum)``
  pairs they verified against, so a certificate received by N replicas
  costs one structural + cryptographic check, not N.

Both layers cache **successes only**.  A failed verification is never
recorded: a forged or bit-flipped tag misses the memo (the tag is part
of the key / the instance differs) and falls through to the real HMAC
check, which rejects it — cache present or not.  Caching only
successes also keeps the memo trivially consistent when a ring learns
new keys.

**Simulated cost is never elided.**  The cost ledgers
(`CryptoCostModel`, the enclave `_charge` path, and the
``qc_verify_cost_sigs`` / ``nv_verify_cost_sigs`` helpers) charge the
full per-signature verification cost whether or not the memo hits:
replicas charge *before* calling ``verify``, and the charge is a pure
function of the certificate's shape.  Only redundant Python work is
skipped, which is why golden-run fingerprints are bit-identical with
the memos on or off (:func:`set_enabled` exists so tests can prove
that).
"""

from __future__ import annotations

from typing import Any, Hashable

#: Attribute slot used for the per-instance certificate memo.  The
#: name is not one of the enclave-private attributes policed by the
#: tee-encapsulation lint rule: the memo holds no secrets, only the
#: fact "this frozen instance verified against that ring".
_MEMO_ATTR = "_verified_for"

_enabled = True


def enabled() -> bool:
    """Whether verification memos are currently active."""
    return _enabled


def set_enabled(flag: bool) -> bool:
    """Globally enable/disable the verification memos; returns the
    previous setting.

    Exists for tests (proving charged costs and fingerprints are
    memo-independent) and for the crypto bench's cold path.  Protocol
    code never calls this.
    """
    global _enabled
    previous = _enabled
    _enabled = bool(flag)
    return previous


def seen_valid(cert: Any, ring: Hashable, quorum: int = -1) -> bool:
    """True iff ``cert`` already fully verified against ``(ring, quorum)``."""
    if not _enabled:
        return False
    memo = getattr(cert, _MEMO_ATTR, None)
    return memo is not None and (ring, quorum) in memo


def record_valid(cert: Any, ring: Hashable, quorum: int = -1) -> None:
    """Record a successful verification of ``cert`` against ``(ring,
    quorum)``.

    The memo is keyed by the ring *object* (rings hash by identity and
    outlive every certificate of their run), so a different ring —
    e.g. one missing a signer — never aliases a recorded success.
    """
    if not _enabled:
        return
    memo = getattr(cert, _MEMO_ATTR, None)
    if memo is None:
        memo = set()
        object.__setattr__(cert, _MEMO_ATTR, memo)
    memo.add((ring, quorum))


__all__ = ["enabled", "set_enabled", "seen_valid", "record_valid"]
