"""Simulated cryptography substrate.

Hashing (:mod:`repro.crypto.hashing`), attributable signatures and key
rings (:mod:`repro.crypto.keys`), and the t2.micro-calibrated CPU cost
model (:mod:`repro.crypto.costs`).
"""

from . import memo
from .costs import FREE, T2_MICRO, CryptoCostModel
from .hashing import (
    GENESIS_DIGEST,
    Digest,
    digest_of,
    digest_of_boolfree,
    encode,
    sha256,
    short,
)
from .keys import SIG_MEMO_CAPACITY, KeyPair, KeyRing, PublicKey, Signature

__all__ = [
    "memo",
    "SIG_MEMO_CAPACITY",
    "FREE",
    "T2_MICRO",
    "CryptoCostModel",
    "GENESIS_DIGEST",
    "Digest",
    "digest_of",
    "digest_of_boolfree",
    "encode",
    "sha256",
    "short",
    "KeyPair",
    "KeyRing",
    "PublicKey",
    "Signature",
]
