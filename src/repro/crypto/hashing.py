"""Hashing and canonical encodings.

Blocks and certificates are hashed with SHA-256 over a canonical byte
encoding.  The encoding is length-prefixed and type-tagged so distinct
structures can never collide by concatenation.
"""

from __future__ import annotations

import hashlib
from typing import Any

Digest = bytes

GENESIS_DIGEST: Digest = b"\x00" * 32


def encode(obj: Any) -> bytes:
    """Canonically encode ``obj`` (ints, strs, bytes, None, sequences).

    The encoding is injective over the supported types: every value is
    tagged with a one-byte type marker and length-prefixed.
    """
    if obj is None:
        return b"N"
    if isinstance(obj, bool):  # must precede int check
        return b"B1" if obj else b"B0"
    if isinstance(obj, int):
        raw = str(obj).encode("ascii")
        return b"I" + len(raw).to_bytes(4, "big") + raw
    if isinstance(obj, str):
        raw = obj.encode("utf-8")
        return b"S" + len(raw).to_bytes(4, "big") + raw
    if isinstance(obj, (bytes, bytearray)):
        return b"Y" + len(obj).to_bytes(4, "big") + bytes(obj)
    if isinstance(obj, (tuple, list)):
        parts = [encode(x) for x in obj]
        body = b"".join(parts)
        return b"L" + len(parts).to_bytes(4, "big") + body
    raise TypeError(f"cannot canonically encode {type(obj).__name__}")


def sha256(data: bytes) -> Digest:
    """Raw SHA-256 digest of ``data``."""
    return hashlib.sha256(data).digest()


def digest_of(*fields: Any) -> Digest:
    """SHA-256 over the canonical encoding of a field tuple."""
    return sha256(encode(tuple(fields)))


def short(d: Digest) -> str:
    """Short human-readable prefix of a digest (logs and traces)."""
    return d.hex()[:10]


__all__ = ["Digest", "GENESIS_DIGEST", "encode", "sha256", "digest_of", "short"]
