"""Hashing and canonical encodings.

Blocks and certificates are hashed with SHA-256 over a canonical byte
encoding.  The encoding is length-prefixed and type-tagged so distinct
structures can never collide by concatenation.
"""

from __future__ import annotations

import hashlib
from functools import lru_cache
from typing import Any

Digest = bytes

GENESIS_DIGEST: Digest = b"\x00" * 32


def encode(obj: Any) -> bytes:
    """Canonically encode ``obj`` (ints, strs, bytes, None, sequences).

    The encoding is injective over the supported types: every value is
    tagged with a one-byte type marker and length-prefixed.

    Exact-type dispatch first: hashing a 400-transaction block recurses
    into thousands of small values, and one ``type() is`` probe per
    value is measurably cheaper than walking an ``isinstance`` chain.
    ``bool`` cannot be mistaken for ``int`` here because ``type(True)
    is bool``, not ``int``; subclasses of the supported types fall
    through to the original ``isinstance`` chain and encode the same
    bytes as before.
    """
    t = type(obj)
    if t is int:
        raw = b"%d" % obj
        return b"I" + len(raw).to_bytes(4, "big") + raw
    if t is bytes:
        return b"Y" + len(obj).to_bytes(4, "big") + obj
    if t is str:
        raw = obj.encode("utf-8")
        return b"S" + len(raw).to_bytes(4, "big") + raw
    if t is tuple or t is list:
        parts = [encode(x) for x in obj]
        return b"L" + len(parts).to_bytes(4, "big") + b"".join(parts)
    if obj is None:
        return b"N"
    if t is bool:
        return b"B1" if obj else b"B0"
    # Slow path: subclasses of the supported types (bool before int).
    if isinstance(obj, bool):
        return b"B1" if obj else b"B0"
    if isinstance(obj, int):
        raw = str(obj).encode("ascii")
        return b"I" + len(raw).to_bytes(4, "big") + raw
    if isinstance(obj, str):
        raw = obj.encode("utf-8")
        return b"S" + len(raw).to_bytes(4, "big") + raw
    if isinstance(obj, (bytes, bytearray)):
        return b"Y" + len(obj).to_bytes(4, "big") + bytes(obj)
    if isinstance(obj, (tuple, list)):
        parts = [encode(x) for x in obj]
        body = b"".join(parts)
        return b"L" + len(parts).to_bytes(4, "big") + body
    raise TypeError(f"cannot canonically encode {type(obj).__name__}")


def sha256(data: bytes) -> Digest:
    """Raw SHA-256 digest of ``data``."""
    return hashlib.sha256(data).digest()


#: Sentinels standing in for True/False in memo keys.  ``True == 1``
#: and ``False == 0`` in Python, so a raw field tuple is NOT an
#: injective cache key even though the canonical *encoding* is (bools
#: get the ``B`` tag, ints the ``I`` tag): ``(0,)`` and ``(False,)``
#: would share one memo slot and one of them would get the other's
#: digest back.  The sentinels compare equal only to themselves.
_TRUE_KEY = object()
_FALSE_KEY = object()


def _contains_bool(fields: tuple) -> bool:
    """Whether a bool lurks anywhere in the (nested) field tuple.

    ``bool`` cannot be subclassed, so ``type(y) is bool`` is complete;
    tuple subclasses (NamedTuples) are walked via ``isinstance``.
    """
    for y in fields:
        t = y.__class__
        if t is bool:
            return True
        if t is int or t is str or t is bytes or y is None:
            continue
        if isinstance(y, tuple) and _contains_bool(y):
            return True
    return False


def _substitute_bools(x: Any) -> Any:
    """Rebuild ``x`` with bools replaced by the sentinels."""
    t = type(x)
    if t is bool:
        return _TRUE_KEY if x else _FALSE_KEY
    if t is tuple or isinstance(x, tuple):
        return tuple(_substitute_bools(y) for y in x)
    return x


@lru_cache(maxsize=1 << 16)
def _digest_of_hashable(fields: tuple) -> Digest:
    """Memoized digest of a *bool-free* hashable field tuple.

    Certificates and votes are verified many times per view but their
    signed-content digests never change; caching here means each
    distinct field tuple is encoded and hashed once per process, not
    once per verification.  Keying on ``fields`` directly is injective
    only because callers route every tuple containing a bool to
    :func:`_digest_of_disambiguated` instead (``False == 0`` would
    otherwise share a slot with a differently-encoded tuple).  Purely
    a speed memo — the function is a pure map, so cached and fresh
    results are bit-identical.
    """
    return sha256(encode(fields))


@lru_cache(maxsize=1 << 16)
def _digest_of_disambiguated(key: tuple, fields: tuple) -> Digest:
    """Memo for field tuples that contain bools, keyed on the
    sentinel-substituted form (see :func:`_substitute_bools`)."""
    return sha256(encode(fields))


def digest_of(*fields: Any) -> Digest:
    """SHA-256 over the canonical encoding of a field tuple."""
    try:
        if _contains_bool(fields):
            return _digest_of_disambiguated(_substitute_bools(fields), fields)
        return _digest_of_hashable(fields)
    except TypeError:  # some field is unhashable (e.g. a list)
        return sha256(encode(fields))


def digest_of_boolfree(*fields: Any) -> Digest:
    """:func:`digest_of` for field tuples the caller *guarantees*
    contain no bool anywhere (however deeply nested).

    Same bytes as :func:`digest_of` — it skips only the
    :func:`_contains_bool` walk, which for a 400-transaction block
    tuple re-traverses ~2000 nested values on every call even when the
    digest itself is memoized.  The guarantee matters: a smuggled
    ``True`` would share a memo slot with ``1`` (``True == 1``) and
    come back with the wrong digest.  Use only where the field types
    are structurally bool-free (e.g. block hashing: strings, ints,
    digests and tuples thereof).
    """
    try:
        return _digest_of_hashable(fields)
    except TypeError:  # some field is unhashable (e.g. a list)
        return sha256(encode(fields))


def short(d: Digest) -> str:
    """Short human-readable prefix of a digest (logs and traces)."""
    return d.hex()[:10]


__all__ = [
    "Digest",
    "GENESIS_DIGEST",
    "encode",
    "sha256",
    "digest_of",
    "digest_of_boolfree",
    "short",
]
