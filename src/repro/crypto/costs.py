"""CPU cost model for cryptographic operations.

Calibrated against OpenSSL ECDSA prime256v1 on a single ``t2.micro``
vCPU (the paper's instance type).  Representative figures for that
class of hardware:

* ECDSA-P256 sign   ≈ 150 µs
* ECDSA-P256 verify ≈ 400 µs (verification is ~2-3x sign for P-256,
  and t2.micro's burstable core throttles under sustained load)
* SHA-256           ≈ 2 µs fixed + ~2.5 µs per KB

The protocols never read these numbers directly: replicas charge their
:class:`~repro.sim.cpu.Cpu` through this model, so changing the
calibration changes performance but not behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CryptoCostModel:
    """Durations (seconds) charged for each cryptographic operation."""

    sign_time: float = 150e-6
    verify_time: float = 400e-6
    hash_base: float = 2e-6
    hash_per_kb: float = 2.5e-6

    def sign(self) -> float:
        return self.sign_time

    def verify(self, count: int = 1) -> float:
        """Cost of verifying ``count`` individual signatures."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return self.verify_time * count

    def hash(self, nbytes: int) -> float:
        """Cost of hashing ``nbytes`` of data."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return self.hash_base + self.hash_per_kb * (nbytes / 1024.0)


#: Default calibration used by the experiment harness.
T2_MICRO = CryptoCostModel()

#: A "free crypto" model for logic-only tests (keeps tests fast and
#: makes timing assertions about the protocol structure alone).
FREE = CryptoCostModel(sign_time=0.0, verify_time=0.0, hash_base=0.0, hash_per_kb=0.0)


__all__ = ["CryptoCostModel", "T2_MICRO", "FREE"]
