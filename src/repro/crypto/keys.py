"""Key pairs and the public-key ring.

The paper's replicas and trusted components sign with ECDSA
(prime256v1).  We simulate an asymmetric scheme with HMAC-SHA256 tags:
a :class:`KeyPair` holds a secret; the :class:`KeyRing` (the "public
key" side distributed during attestation) can *verify* tags but the
secret itself is only reachable through the key-pair object, which for
TEE keys lives inside the enclave.  Within the simulation this gives
exactly the EUF-CMA-style behaviour protocols rely on: a signature
verifies iff it was produced by the named signer over those exact
bytes.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Iterable

from . import memo as _memo
from .hashing import Digest

#: Default bound on a :class:`KeyRing`'s verified-signature memo.  At
#: ~100 bytes per entry this caps the memo near 6 MB; eviction is
#: FIFO (oldest first), which for consensus traffic — signatures are
#: re-verified within a few views of first sight — behaves like LRU
#: without per-hit bookkeeping.
SIG_MEMO_CAPACITY = 1 << 16


@dataclass(frozen=True)
class Signature:
    """An attributable signature: ``signer`` id plus an HMAC tag.

    ``signer`` mirrors the paper's ``σ·id`` — the identity of whoever
    produced the signature.
    """

    signer: int
    tag: bytes

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"sig({self.signer},{self.tag.hex()[:8]})"


class KeyPair:
    """A signing key bound to an integer identity."""

    __slots__ = ("owner", "_secret")

    def __init__(self, owner: int, secret: bytes) -> None:
        self.owner = owner
        self._secret = secret

    @classmethod
    def generate(cls, owner: int, master_seed: int = 0, domain: str = "") -> "KeyPair":
        """Deterministically derive a key pair (simulated key generation)."""
        secret = hashlib.sha256(
            f"keygen:{master_seed}:{domain}:{owner}".encode()
        ).digest()
        return cls(owner, secret)

    def sign(self, data: Digest) -> Signature:
        """Sign a digest; only the holder of this object can do this."""
        tag = hmac.new(self._secret, data, hashlib.sha256).digest()
        return Signature(self.owner, tag)

    def _check_tag(self, data: Digest, sig: Signature) -> bool:
        if sig.signer != self.owner:
            return False
        expect = hmac.new(self._secret, data, hashlib.sha256).digest()
        return hmac.compare_digest(expect, sig.tag)

    def public(self) -> "PublicKey":
        return PublicKey(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<KeyPair owner={self.owner}>"


class PublicKey:
    """Verification-only handle for a :class:`KeyPair`.

    Holding a public key lets you verify but not sign: the secret is
    not reachable through the public API (the simulated analogue of key
    asymmetry).
    """

    __slots__ = ("owner", "_kp")

    def __init__(self, kp: KeyPair) -> None:
        self.owner = kp.owner
        self._kp = kp

    def verify(self, data: Digest, sig: Signature) -> bool:
        return self._kp._check_tag(data, sig)


class KeyRing:
    """The set of public keys known to a party (replica, TEE, client).

    Verification results are memoized: a ``(signer, digest, tag)``
    triple that has HMAC-verified once is accepted from the memo on
    every later sight (the triple *is* the statement being proved, so
    a hit is sound by construction — any tampering with the tag, the
    signed bytes, or the claimed signer changes the key and misses).
    Only successes are cached; the memo is bounded by
    ``memo_capacity`` with FIFO eviction, and an evicted signature
    simply re-verifies cold.  Wall-clock work is all the memo elides —
    simulated verification cost is charged by callers from the
    certificate's shape, memo hit or miss (see :mod:`repro.crypto.memo`).
    """

    def __init__(self, memo_capacity: int = SIG_MEMO_CAPACITY) -> None:
        self._keys: dict[int, PublicKey] = {}
        #: Verified (signer, digest, tag) triples, insertion-ordered.
        self._verified: dict[tuple[int, Digest, bytes], None] = {}
        self._capacity = memo_capacity

    def add(self, pk: PublicKey) -> None:
        self._keys[pk.owner] = pk

    def __contains__(self, owner: int) -> bool:
        return owner in self._keys

    def __len__(self) -> int:
        return len(self._keys)

    @property
    def memo_size(self) -> int:
        """Number of verified-signature memo entries currently held."""
        return len(self._verified)

    @property
    def memo_capacity(self) -> int:
        return self._capacity

    def verify(self, data: Digest, sig: Signature) -> bool:
        """Verify ``sig`` over ``data`` against the signer's public key."""
        key = (sig.signer, data, sig.tag)
        memo = self._verified
        if key in memo and _memo.enabled():
            return True
        pk = self._keys.get(sig.signer)
        if pk is None or not pk.verify(data, sig):
            return False
        if self._capacity > 0 and _memo.enabled():
            if len(memo) >= self._capacity:
                memo.pop(next(iter(memo)))
            memo[key] = None
        return True

    def verify_all(self, data: Digest, sigs: Iterable[Signature]) -> bool:
        """Verify a multi-signature over the same data.

        Accepts any iterable, consumes it in a single pass without
        materializing a copy, and short-circuits on the first failure.
        """
        for s in sigs:
            if not self.verify(data, s):
                return False
        return True


__all__ = ["Signature", "KeyPair", "PublicKey", "KeyRing", "SIG_MEMO_CAPACITY"]
