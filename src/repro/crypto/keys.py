"""Key pairs and the public-key ring.

The paper's replicas and trusted components sign with ECDSA
(prime256v1).  We simulate an asymmetric scheme with HMAC-SHA256 tags:
a :class:`KeyPair` holds a secret; the :class:`KeyRing` (the "public
key" side distributed during attestation) can *verify* tags but the
secret itself is only reachable through the key-pair object, which for
TEE keys lives inside the enclave.  Within the simulation this gives
exactly the EUF-CMA-style behaviour protocols rely on: a signature
verifies iff it was produced by the named signer over those exact
bytes.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass

from .hashing import Digest


@dataclass(frozen=True)
class Signature:
    """An attributable signature: ``signer`` id plus an HMAC tag.

    ``signer`` mirrors the paper's ``σ·id`` — the identity of whoever
    produced the signature.
    """

    signer: int
    tag: bytes

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"sig({self.signer},{self.tag.hex()[:8]})"


class KeyPair:
    """A signing key bound to an integer identity."""

    __slots__ = ("owner", "_secret")

    def __init__(self, owner: int, secret: bytes) -> None:
        self.owner = owner
        self._secret = secret

    @classmethod
    def generate(cls, owner: int, master_seed: int = 0, domain: str = "") -> "KeyPair":
        """Deterministically derive a key pair (simulated key generation)."""
        secret = hashlib.sha256(
            f"keygen:{master_seed}:{domain}:{owner}".encode()
        ).digest()
        return cls(owner, secret)

    def sign(self, data: Digest) -> Signature:
        """Sign a digest; only the holder of this object can do this."""
        tag = hmac.new(self._secret, data, hashlib.sha256).digest()
        return Signature(self.owner, tag)

    def _check_tag(self, data: Digest, sig: Signature) -> bool:
        if sig.signer != self.owner:
            return False
        expect = hmac.new(self._secret, data, hashlib.sha256).digest()
        return hmac.compare_digest(expect, sig.tag)

    def public(self) -> "PublicKey":
        return PublicKey(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<KeyPair owner={self.owner}>"


class PublicKey:
    """Verification-only handle for a :class:`KeyPair`.

    Holding a public key lets you verify but not sign: the secret is
    not reachable through the public API (the simulated analogue of key
    asymmetry).
    """

    __slots__ = ("owner", "_kp")

    def __init__(self, kp: KeyPair) -> None:
        self.owner = kp.owner
        self._kp = kp

    def verify(self, data: Digest, sig: Signature) -> bool:
        return self._kp._check_tag(data, sig)


class KeyRing:
    """The set of public keys known to a party (replica, TEE, client)."""

    def __init__(self) -> None:
        self._keys: dict[int, PublicKey] = {}

    def add(self, pk: PublicKey) -> None:
        self._keys[pk.owner] = pk

    def __contains__(self, owner: int) -> bool:
        return owner in self._keys

    def __len__(self) -> int:
        return len(self._keys)

    def verify(self, data: Digest, sig: Signature) -> bool:
        """Verify ``sig`` over ``data`` against the signer's public key."""
        pk = self._keys.get(sig.signer)
        return pk is not None and pk.verify(data, sig)

    def verify_all(self, data: Digest, sigs: list[Signature]) -> bool:
        """Verify a multi-signature list over the same data."""
        return all(self.verify(data, s) for s in sigs)


__all__ = ["Signature", "KeyPair", "PublicKey", "KeyRing"]
