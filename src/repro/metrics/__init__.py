"""Measurement: run-time event collection, aggregation, reporting."""

from .collector import (
    CATCHUP,
    NORMAL,
    PIGGYBACK,
    STREAM_WINDOW,
    Decision,
    MetricsCollector,
    ViewOutcome,
)
from .report import GainCell, render_series, render_table
from .streaming import P2Quantile, ReservoirSample, StreamingMoments
from .stats import RunStats, block_latencies, compute_stats, decrease_pct, gain_pct
from .timeline import (
    CLASSIFIERS,
    Wave,
    classify_damysus,
    classify_hotstuff,
    classify_oneshot,
    extract_waves,
    render_timeline,
)

__all__ = [
    "CATCHUP",
    "NORMAL",
    "PIGGYBACK",
    "STREAM_WINDOW",
    "Decision",
    "MetricsCollector",
    "ViewOutcome",
    "P2Quantile",
    "ReservoirSample",
    "StreamingMoments",
    "GainCell",
    "render_series",
    "render_table",
    "RunStats",
    "block_latencies",
    "compute_stats",
    "decrease_pct",
    "gain_pct",
    "CLASSIFIERS",
    "Wave",
    "classify_damysus",
    "classify_hotstuff",
    "classify_oneshot",
    "extract_waves",
    "render_timeline",
]
