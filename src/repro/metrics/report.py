"""Paper-style table rendering.

Sec. VIII reports gains as ``X% (Y, Z)`` — average X with range Y..Z
over the swept fault thresholds.  These helpers render exactly that
shape so benchmark output can be compared to the paper side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class GainCell:
    """An ``X% (Y, Z)`` entry."""

    avg: float
    lo: float
    hi: float

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "GainCell":
        if not values:
            raise ValueError("no values")
        return cls(
            avg=sum(values) / len(values), lo=min(values), hi=max(values)
        )

    def render(self, sign: str = "+") -> str:
        mark = sign if self.avg >= 0 else "-"
        return f"{mark}{abs(self.avg):.0f}% ({self.lo:.0f}, {self.hi:.0f})"


def render_table(
    title: str,
    row_labels: Sequence[str],
    col_labels: Sequence[str],
    cells: Sequence[Sequence[str]],
) -> str:
    """Simple fixed-width text table."""
    widths = [max(len(str(r)) for r in row_labels) + 2]
    for j, col in enumerate(col_labels):
        w = len(col)
        for row in cells:
            w = max(w, len(row[j]))
        widths.append(w + 2)
    lines = [title]
    header = "".ljust(widths[0]) + "".join(
        c.rjust(widths[j + 1]) for j, c in enumerate(col_labels)
    )
    lines.append(header)
    lines.append("-" * len(header))
    for label, row in zip(row_labels, cells):
        lines.append(
            str(label).ljust(widths[0])
            + "".join(c.rjust(widths[j + 1]) for j, c in enumerate(row))
        )
    return "\n".join(lines)


def render_series(
    title: str,
    x_label: str,
    xs: Sequence,
    series: dict[str, Sequence[float]],
    fmt: str = "{:,.0f}",
) -> str:
    """Render figure data (one column per x, one row per series)."""
    cols = [str(x) for x in xs]
    rows = list(series)
    cells = [[fmt.format(v) for v in series[name]] for name in rows]
    return render_table(f"{title}  (x = {x_label})", rows, cols, cells)


__all__ = ["GainCell", "render_table", "render_series"]
