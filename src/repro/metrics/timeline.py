"""Message-flow timelines — Figs. 2-4 in text form.

Groups a run's message log into *waves* (one protocol step each: all
``store`` messages of view v are one wave) and renders them in time
order, which is exactly what the paper's figures draw with arrows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..net.message import Envelope

#: Maps a payload to its (step name, view) wave, or None to skip.
Classifier = Callable[[Any], Optional[tuple[str, int]]]


def classify_oneshot(payload: Any) -> Optional[tuple[str, int]]:
    """Wave classification for OneShot messages."""
    from ..core.certificates import nv_triple
    from ..core.messages import (
        DeliverMsg,
        NewViewMsg,
        PrepCertMsg,
        ProposalMsg,
        StoreMsg,
        VoteMsg,
    )

    if isinstance(payload, NewViewMsg):
        return ("new-view", nv_triple(payload.cert)[0] + 1)
    if isinstance(payload, ProposalMsg):
        return ("proposal", payload.proposal.view)
    if isinstance(payload, StoreMsg):
        return ("store", payload.cert.stored_view)
    if isinstance(payload, PrepCertMsg):
        return ("prep-cert", payload.cert.stored_view)
    if isinstance(payload, DeliverMsg):
        return ("deliver", payload.acc.view + 1)
    if isinstance(payload, VoteMsg):
        return ("vote", payload.vote.view)
    return None


def classify_damysus(payload: Any) -> Optional[tuple[str, int]]:
    """Wave classification for Damysus (basic and chained) messages."""
    from ..protocols.damysus.chained import ChainedDamProposalMsg
    from ..protocols.damysus.messages import (
        DamCertMsg,
        DamNewViewMsg,
        DamProposalMsg,
        DamVoteMsg,
    )

    if isinstance(payload, DamNewViewMsg):
        return ("new-view", payload.commitment.view)
    if isinstance(payload, (DamProposalMsg, ChainedDamProposalMsg)):
        return ("proposal", payload.proposal.view)
    if isinstance(payload, DamVoteMsg):
        return (f"vote-{payload.vote.phase}", payload.vote.view)
    if isinstance(payload, DamCertMsg):
        return (f"cert-{payload.cert.phase}", payload.cert.view)
    return None


def classify_hotstuff(payload: Any) -> Optional[tuple[str, int]]:
    """Wave classification for HotStuff (basic and chained) messages."""
    from ..protocols.hotstuff.messages import (
        HsNewViewMsg,
        HsProposalMsg,
        HsQcMsg,
        HsVoteMsg,
    )

    if isinstance(payload, HsNewViewMsg):
        return ("new-view", payload.view)
    if isinstance(payload, HsProposalMsg):
        return ("proposal", payload.view)
    if isinstance(payload, HsVoteMsg):
        return (f"vote-{payload.vote.phase}", payload.vote.view)
    if isinstance(payload, HsQcMsg):
        return (f"qc-{payload.qc.phase}", payload.qc.view)
    return None


#: Registry of classifiers by protocol name.
CLASSIFIERS: dict[str, Classifier] = {
    "oneshot": classify_oneshot,
    "oneshot-chained": classify_oneshot,
    "damysus": classify_damysus,
    "damysus-chained": classify_damysus,
    "hotstuff": classify_hotstuff,
    "hotstuff-chained": classify_hotstuff,
}


@dataclass
class Wave:
    """All messages of one protocol step in one view."""

    step: str
    view: int
    first_send: float = float("inf")
    last_deliver: float = 0.0
    count: int = 0
    senders: set = field(default_factory=set)
    receivers: set = field(default_factory=set)

    def absorb(self, env: Envelope) -> None:
        self.first_send = min(self.first_send, env.send_time)
        self.last_deliver = max(self.last_deliver, env.deliver_time)
        self.count += 1
        self.senders.add(env.src)
        self.receivers.add(env.dst)

    def endpoints(self) -> str:
        def side(nodes: set) -> str:
            if len(nodes) == 1:
                return f"r{next(iter(nodes))}"
            return "*"

        return f"{side(self.senders)}->{side(self.receivers)}"


def extract_waves(
    log: list[Envelope],
    classify: Classifier = classify_oneshot,
    first_view: Optional[int] = None,
    last_view: Optional[int] = None,
) -> list[Wave]:
    """Group the message log into waves, ordered by first send time."""
    waves: dict[tuple[str, int], Wave] = {}
    for env in log:
        key = classify(env.payload)
        if key is None:
            continue
        step, view = key
        if first_view is not None and view < first_view:
            continue
        if last_view is not None and view > last_view:
            continue
        wave = waves.get(key)
        if wave is None:
            wave = waves[key] = Wave(step=step, view=view)
        wave.absorb(env)
    return sorted(waves.values(), key=lambda w: (w.first_send, w.view))


def render_timeline(
    waves: list[Wave], title: str = "message flow", origin: Optional[float] = None
) -> str:
    """Fig. 2/3/4-style text rendering of a wave sequence."""
    if not waves:
        return f"{title}: (no messages)"
    t0 = origin if origin is not None else waves[0].first_send
    lines = [title]
    for w in waves:
        lines.append(
            f"  +{(w.first_send - t0) * 1e3:7.2f}ms  view {w.view:<3d} "
            f"{w.step:<9s} {w.endpoints():<8s} x{w.count}"
        )
    return "\n".join(lines)


__all__ = [
    "Wave",
    "Classifier",
    "CLASSIFIERS",
    "classify_oneshot",
    "classify_damysus",
    "classify_hotstuff",
    "extract_waves",
    "render_timeline",
]
