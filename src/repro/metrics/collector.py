"""Event collection during a run.

Replicas report proposals, executions and view outcomes; the collector
stores flat records that :mod:`repro.metrics.stats` aggregates into the
paper's throughput/latency numbers.

Two modes:

* **legacy** (default) — every record kept; exact statistics; memory
  grows with the number of decisions.  The golden-fingerprint runs and
  the paper-figure experiments use this mode unchanged.
* **streaming** (``MetricsCollector(streaming=True)``) — per-block
  state is folded into O(1) aggregates (running moments, P² quantile
  sketches, an optional seeded reservoir) the moment a block finishes
  reporting, so a million-client open-loop run holds a small constant
  number of records no matter how long it runs.  ``compute_stats``
  reads the same :class:`~repro.metrics.stats.RunStats` fields from the
  sketch state (quantiles are estimates, within ~1% on large runs).
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..crypto import Digest
from .streaming import P2Quantile, ReservoirSample, StreamingMoments

#: Bound on simultaneously *open* (partially reported) blocks in
#: streaming mode.  A block is open from its first execution report
#: until all ``n_replicas`` have reported (or it ages past this window
#: and is finalized early with the reports it has).  Consensus keeps at
#: most a handful of blocks in flight, so 4096 is orders of magnitude
#: of slack, not a tuning knob.
STREAM_WINDOW = 4096

#: Execution kinds (Sec. V) plus bookkeeping outcomes.
NORMAL = "normal"
PIGGYBACK = "piggyback"
CATCHUP = "catchup"


@dataclass(frozen=True)
class Decision:
    """One replica executing one block."""

    replica: int
    view: int
    block_hash: Digest
    ntxs: int
    time: float
    kind: str  # execution kind of the decisive view


@dataclass(frozen=True)
class ViewOutcome:
    """A replica leaving a view, either by deciding or by timing out."""

    replica: int
    view: int
    outcome: str  # "decide" | "timeout"
    time: float


class MetricsCollector:
    """Flat event store shared by all replicas of a run.

    In streaming mode (see module docstring) the flat lists stay empty
    and every report folds into bounded aggregate state instead.
    ``n_replicas`` lets a block finalize eagerly once every replica has
    reported it; ``warmup_blocks`` blocks are excluded from the
    statistics inside the collector (the runner's post-hoc trim cannot
    work on a stream).  ``reservoir_rng`` (a named stream from
    :mod:`repro.sim.rng`) enables the seeded latency reservoir; without
    it only the deterministic P² sketches run.
    """

    def __init__(
        self,
        streaming: bool = False,
        n_replicas: Optional[int] = None,
        warmup_blocks: int = 0,
        reservoir_rng: Optional[np.random.Generator] = None,
        reservoir_capacity: int = 4096,
    ) -> None:
        self.streaming = streaming
        self.n_replicas = n_replicas
        self.decisions: list[Decision] = []
        self.view_outcomes: list[ViewOutcome] = []
        # OrderedDicts so streaming-window eviction unlinks the oldest
        # entry in O(1) (popping a plain dict's front rescans earlier
        # evictions' tombstones).  Legacy mode never evicts; the
        # per-block insert cost difference is noise there.
        self._proposal_times: OrderedDict[Digest, float] = OrderedDict()
        self._decisive_kind: OrderedDict[int, str] = OrderedDict()
        # Streaming-mode state (inert in legacy mode).
        self._warmup_left = max(0, warmup_blocks) if streaming else 0
        #: hash -> [sum of exec times, n reports, ntxs, earliest exec]
        self._open: OrderedDict[Digest, list] = OrderedDict()
        self._blocks_done = 0
        self._txs_done = 0
        self._t_first = math.inf
        self._t_last = -math.inf
        self._timeout_count = 0
        self._outcome_count = 0
        self._views_decided = 0
        self._lat = StreamingMoments()
        self._p50 = P2Quantile(0.50)
        self._p99 = P2Quantile(0.99)
        self.reservoir: Optional[ReservoirSample] = (
            ReservoirSample(reservoir_rng, reservoir_capacity)
            if (streaming and reservoir_rng is not None)
            else None
        )

    # ------------------------------------------------------------------
    # Reporting API (called by replicas)
    # ------------------------------------------------------------------
    def on_propose(self, replica: int, view: int, block_hash: Digest, now: float) -> None:
        """First proposal time of a block — the latency clock start."""
        if self.streaming and len(self._proposal_times) >= 4 * STREAM_WINDOW:
            # A proposal whose block never executes (e.g. a leader
            # equivocation discarded by all) must not pin memory.
            self._proposal_times.popitem(last=False)
        self._proposal_times.setdefault(block_hash, now)

    def on_execute(
        self,
        replica: int,
        view: int,
        block_hash: Digest,
        ntxs: int,
        now: float,
        kind: str,
    ) -> None:
        if self.streaming:
            self._on_execute_streaming(view, block_hash, ntxs, now, kind)
            return
        self.decisions.append(
            Decision(replica, view, block_hash, ntxs, now, kind)
        )
        self._decisive_kind.setdefault(view, kind)

    def _on_execute_streaming(
        self, view: int, block_hash: Digest, ntxs: int, now: float, kind: str
    ) -> None:
        if view not in self._decisive_kind:
            if len(self._decisive_kind) >= STREAM_WINDOW:
                self._decisive_kind.popitem(last=False)
            self._decisive_kind[view] = kind
            self._views_decided += 1
        rec = self._open.get(block_hash)
        if rec is None:
            if len(self._open) >= STREAM_WINDOW:
                h, oldest = self._open.popitem(last=False)
                self._finalize_block(h, oldest)
            rec = [now, 1, ntxs, now]
            self._open[block_hash] = rec
        else:
            rec[0] += now
            rec[1] += 1
            if now < rec[3]:
                rec[3] = now
        if self.n_replicas is not None and rec[1] >= self.n_replicas:
            del self._open[block_hash]
            self._finalize_block(block_hash, rec)

    def _finalize_block(self, block_hash: Digest, rec: list) -> None:
        """Fold one fully-reported block into the O(1) aggregates."""
        t0 = self._proposal_times.pop(block_hash, None)
        if self._warmup_left > 0:
            self._warmup_left -= 1
            return
        time_sum, n_reports, ntxs, earliest = rec
        self._blocks_done += 1
        self._txs_done += ntxs
        start = t0 if t0 is not None else earliest
        if start < self._t_first:
            self._t_first = start
        if earliest > self._t_last:
            self._t_last = earliest
        if t0 is None:
            return
        lat = time_sum / n_reports - t0
        self._lat.add(lat)
        self._p50.add(lat)
        self._p99.add(lat)
        if self.reservoir is not None:
            self.reservoir.add(lat)

    def flush(self) -> None:
        """Finalize still-open blocks (streaming mode, end of run).

        Called by ``compute_stats`` before reading the aggregates so
        blocks that never reached all ``n_replicas`` reports (run cut
        off mid-flight) still count with the reports they have.
        """
        while self._open:
            h, rec = self._open.popitem(last=False)
            self._finalize_block(h, rec)

    def on_view_outcome(self, replica: int, view: int, outcome: str, now: float) -> None:
        if self.streaming:
            self._outcome_count += 1
            if outcome == "timeout":
                self._timeout_count += 1
            return
        self.view_outcomes.append(ViewOutcome(replica, view, outcome, now))

    # ------------------------------------------------------------------
    # Streaming snapshot
    # ------------------------------------------------------------------
    def streaming_stats(self) -> dict:
        """The aggregate fields ``compute_stats`` assembles into
        :class:`~repro.metrics.stats.RunStats` (streaming mode only)."""
        if not self.streaming:
            raise ValueError("streaming_stats requires streaming mode")
        self.flush()
        if self._blocks_done:
            duration = max(self._t_last - self._t_first, 1e-9)
            tput = self._txs_done / duration
        else:
            duration = 0.0
            tput = 0.0
        return {
            "throughput_tps": tput,
            "mean_latency_s": self._lat.mean(),
            "p50_latency_s": self._p50.value(),
            "p99_latency_s": self._p99.value(),
            "blocks_decided": self._blocks_done,
            "txs_decided": self._txs_done,
            "views_decided": self._views_decided,
            "timeouts": self._timeout_count,
            "duration_s": duration,
        }

    def state_size(self) -> int:
        """Retained records — bounded by a constant in streaming mode."""
        n = (
            len(self.decisions)
            + len(self.view_outcomes)
            + len(self._proposal_times)
            + len(self._decisive_kind)
            + len(self._open)
        )
        if self.reservoir is not None:
            n += len(self.reservoir)
        return n

    # ------------------------------------------------------------------
    # Lookup helpers
    # ------------------------------------------------------------------
    def proposal_time(self, block_hash: Digest) -> Optional[float]:
        return self._proposal_times.get(block_hash)

    def decided_blocks(self) -> dict[Digest, float]:
        """Unique decided blocks -> earliest execution time."""
        out: dict[Digest, float] = {}
        for d in self.decisions:
            t = out.get(d.block_hash)
            if t is None or d.time < t:
                out[d.block_hash] = d.time
        return out

    def decisions_of(self, replica: int) -> list[Decision]:
        return [d for d in self.decisions if d.replica == replica]

    def execution_kinds(self) -> dict[int, str]:
        """Decisive view -> execution kind (normal/piggyback/catchup)."""
        return dict(self._decisive_kind)

    def timeouts(self) -> int:
        if self.streaming:
            return self._timeout_count
        return sum(1 for v in self.view_outcomes if v.outcome == "timeout")


__all__ = [
    "MetricsCollector",
    "Decision",
    "ViewOutcome",
    "NORMAL",
    "PIGGYBACK",
    "CATCHUP",
    "STREAM_WINDOW",
]
