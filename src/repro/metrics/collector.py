"""Event collection during a run.

Replicas report proposals, executions and view outcomes; the collector
stores flat records that :mod:`repro.metrics.stats` aggregates into the
paper's throughput/latency numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..crypto import Digest

#: Execution kinds (Sec. V) plus bookkeeping outcomes.
NORMAL = "normal"
PIGGYBACK = "piggyback"
CATCHUP = "catchup"


@dataclass(frozen=True)
class Decision:
    """One replica executing one block."""

    replica: int
    view: int
    block_hash: Digest
    ntxs: int
    time: float
    kind: str  # execution kind of the decisive view


@dataclass(frozen=True)
class ViewOutcome:
    """A replica leaving a view, either by deciding or by timing out."""

    replica: int
    view: int
    outcome: str  # "decide" | "timeout"
    time: float


class MetricsCollector:
    """Flat event store shared by all replicas of a run."""

    def __init__(self) -> None:
        self.decisions: list[Decision] = []
        self.view_outcomes: list[ViewOutcome] = []
        self._proposal_times: dict[Digest, float] = {}
        self._decisive_kind: dict[int, str] = {}  # view -> execution kind

    # ------------------------------------------------------------------
    # Reporting API (called by replicas)
    # ------------------------------------------------------------------
    def on_propose(self, replica: int, view: int, block_hash: Digest, now: float) -> None:
        """First proposal time of a block — the latency clock start."""
        self._proposal_times.setdefault(block_hash, now)

    def on_execute(
        self,
        replica: int,
        view: int,
        block_hash: Digest,
        ntxs: int,
        now: float,
        kind: str,
    ) -> None:
        self.decisions.append(
            Decision(replica, view, block_hash, ntxs, now, kind)
        )
        self._decisive_kind.setdefault(view, kind)

    def on_view_outcome(self, replica: int, view: int, outcome: str, now: float) -> None:
        self.view_outcomes.append(ViewOutcome(replica, view, outcome, now))

    # ------------------------------------------------------------------
    # Lookup helpers
    # ------------------------------------------------------------------
    def proposal_time(self, block_hash: Digest) -> Optional[float]:
        return self._proposal_times.get(block_hash)

    def decided_blocks(self) -> dict[Digest, float]:
        """Unique decided blocks -> earliest execution time."""
        out: dict[Digest, float] = {}
        for d in self.decisions:
            t = out.get(d.block_hash)
            if t is None or d.time < t:
                out[d.block_hash] = d.time
        return out

    def decisions_of(self, replica: int) -> list[Decision]:
        return [d for d in self.decisions if d.replica == replica]

    def execution_kinds(self) -> dict[int, str]:
        """Decisive view -> execution kind (normal/piggyback/catchup)."""
        return dict(self._decisive_kind)

    def timeouts(self) -> int:
        return sum(1 for v in self.view_outcomes if v.outcome == "timeout")


__all__ = [
    "MetricsCollector",
    "Decision",
    "ViewOutcome",
    "NORMAL",
    "PIGGYBACK",
    "CATCHUP",
]
