"""Aggregation of run metrics into the paper's reported quantities.

* **Throughput** — transactions executed per second over the measured
  span (first proposal to last execution), counting each block once.
* **Latency** — per decided block, time from its (first) proposal to
  its execution, averaged over replicas; then averaged over blocks.
  This is the "latency measured by the replicas" of Sec. VIII.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .collector import MetricsCollector


@dataclass(frozen=True)
class RunStats:
    """Headline numbers for a single run."""

    throughput_tps: float
    mean_latency_s: float
    p50_latency_s: float
    p99_latency_s: float
    blocks_decided: int
    txs_decided: int
    views_decided: int
    timeouts: int
    duration_s: float

    def __str__(self) -> str:  # pragma: no cover - human formatting
        return (
            f"throughput={self.throughput_tps:,.0f} tx/s  "
            f"latency={self.mean_latency_s * 1e3:.1f} ms "
            f"(p50={self.p50_latency_s * 1e3:.1f}, p99={self.p99_latency_s * 1e3:.1f})  "
            f"blocks={self.blocks_decided}  timeouts={self.timeouts}"
        )


def block_latencies(collector: MetricsCollector) -> dict[bytes, float]:
    """Per-block proposal→execution latency, averaged over replicas."""
    sums: dict[bytes, float] = {}
    counts: dict[bytes, int] = {}
    for d in collector.decisions:
        t0 = collector.proposal_time(d.block_hash)
        if t0 is None:
            continue
        sums[d.block_hash] = sums.get(d.block_hash, 0.0) + (d.time - t0)
        counts[d.block_hash] = counts.get(d.block_hash, 0) + 1
    return {h: sums[h] / counts[h] for h in sums}


def compute_stats(collector: MetricsCollector) -> RunStats:
    """Summarize a run; degenerate runs yield zeroed stats.

    A streaming collector is summarized from its O(1) aggregate state
    (quantiles are P² estimates); a legacy collector from its exact
    flat records.  Field-for-field the two modes report the same
    quantities.
    """
    if getattr(collector, "streaming", False):
        return RunStats(**collector.streaming_stats())
    decided = collector.decided_blocks()
    lats = np.array(sorted(block_latencies(collector).values()))
    ntx_by_block: dict[bytes, int] = {}
    for d in collector.decisions:
        ntx_by_block[d.block_hash] = d.ntxs
    txs = sum(ntx_by_block.values())

    if decided:
        t_first = min(
            (collector.proposal_time(h) or t) for h, t in decided.items()
        )
        t_last = max(decided.values())
        duration = max(t_last - t_first, 1e-9)
        tput = txs / duration
    else:
        duration = 0.0
        tput = 0.0

    return RunStats(
        throughput_tps=tput,
        mean_latency_s=float(lats.mean()) if lats.size else 0.0,
        p50_latency_s=float(np.percentile(lats, 50)) if lats.size else 0.0,
        p99_latency_s=float(np.percentile(lats, 99)) if lats.size else 0.0,
        blocks_decided=len(decided),
        txs_decided=txs,
        views_decided=len(collector.execution_kinds()),
        timeouts=collector.timeouts(),
        duration_s=duration,
    )


def gain_pct(new: float, old: float) -> float:
    """Percentage gain of ``new`` over ``old`` (paper's +X%)."""
    if old <= 0:
        return float("inf")
    return (new / old - 1.0) * 100.0


def decrease_pct(new: float, old: float) -> float:
    """Percentage decrease of ``new`` w.r.t. ``old`` (paper's −X%)."""
    if old <= 0:
        return float("nan")
    return (1.0 - new / old) * 100.0


__all__ = [
    "RunStats",
    "block_latencies",
    "compute_stats",
    "gain_pct",
    "decrease_pct",
]
