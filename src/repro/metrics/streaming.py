"""O(1)-memory streaming estimators for long-horizon runs.

A million-client open-loop run decides orders of magnitude more blocks
than the paper's 30-block experiments; storing every decision record
(the legacy :class:`~repro.metrics.collector.MetricsCollector` mode)
would dominate memory long before the simulator does.  This module
provides the two bounded-state estimators the streaming collector mode
is built from:

* :class:`P2Quantile` — the P² algorithm of Jain & Chlamtác (CACM
  1985): a single-quantile estimator that maintains five markers and
  adjusts them with piecewise-parabolic interpolation.  Deterministic
  (no randomness at all) and exact for the first five observations.
* :class:`ReservoirSample` — Vitter's Algorithm R over an *injected*
  seeded generator (a named stream from :mod:`repro.sim.rng`), giving a
  fixed-size uniform sample of the full latency population for
  cross-checks and ad-hoc percentiles.

Both are deterministic functions of (seed, observation sequence), so a
streaming run's report is replayable bit-for-bit — the same guarantee
docs/invariants.md makes for the simulation itself.
"""

from __future__ import annotations

import numpy as np

_P2_MARKERS = 5


class P2Quantile:
    """Streaming estimate of one quantile via the P² algorithm.

    ``add`` is O(1) time and the whole estimator is O(1) memory (five
    marker heights + five positions), independent of how many
    observations it absorbs.
    """

    __slots__ = ("p", "_q", "_n", "_np", "_count")

    def __init__(self, p: float) -> None:
        if not 0.0 < p < 1.0:
            raise ValueError("quantile must be in (0, 1)")
        self.p = p
        self._q: list[float] = []  # marker heights
        self._n: list[float] = []  # marker positions (1-based)
        self._np: list[float] = []  # desired positions
        self._count = 0

    @property
    def count(self) -> int:
        return self._count

    def add(self, x: float) -> None:
        x = float(x)
        self._count += 1
        q = self._q
        if self._count <= _P2_MARKERS:
            q.append(x)
            if self._count == _P2_MARKERS:
                q.sort()
                p = self.p
                self._n = [1.0, 2.0, 3.0, 4.0, 5.0]
                self._np = [
                    1.0,
                    1.0 + 2.0 * p,
                    1.0 + 4.0 * p,
                    3.0 + 2.0 * p,
                    5.0,
                ]
            return
        n = self._n
        # Locate the cell containing x, clamping the extreme markers.
        if x < q[0]:
            q[0] = x
            k = 0
        elif x >= q[4]:
            q[4] = x
            k = 3
        else:
            k = 0
            while k < 3 and x >= q[k + 1]:
                k += 1
        for i in range(k + 1, _P2_MARKERS):
            n[i] += 1.0
        p = self.p
        npos = self._np
        npos[1] += p / 2.0
        npos[2] += p
        npos[3] += (1.0 + p) / 2.0
        npos[4] += 1.0
        # Adjust the three interior markers toward their desired spots.
        for i in (1, 2, 3):
            d = npos[i] - n[i]
            if (d >= 1.0 and n[i + 1] - n[i] > 1.0) or (
                d <= -1.0 and n[i - 1] - n[i] < -1.0
            ):
                sign = 1.0 if d >= 1.0 else -1.0
                cand = self._parabolic(i, sign)
                if q[i - 1] < cand < q[i + 1]:
                    q[i] = cand
                else:
                    q[i] = self._linear(i, sign)
                n[i] += sign

    def _parabolic(self, i: int, d: float) -> float:
        q, n = self._q, self._n
        return q[i] + d / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + d)
            * (q[i + 1] - q[i])
            / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, d: float) -> float:
        q, n = self._q, self._n
        j = i + int(d)
        return q[i] + d * (q[j] - q[i]) / (n[j] - n[i])

    def value(self) -> float:
        """Current quantile estimate (0.0 before any observation).

        Exact (numpy ``percentile`` on the buffered points) while fewer
        than five observations have arrived; the P² middle marker
        afterwards.
        """
        if self._count == 0:
            return 0.0
        if self._count < _P2_MARKERS:
            return float(np.percentile(np.array(self._q), self.p * 100.0))
        return self._q[2]


class ReservoirSample:
    """Fixed-capacity uniform sample of a stream (Algorithm R).

    The generator is *injected* — callers hand it a named stream from
    :mod:`repro.sim.rng` (purpose ``"streaming latency reservoir"``) so
    the sample is deterministic under the run seed and never touches
    global numpy state.
    """

    __slots__ = ("capacity", "_rng", "_buf", "_seen")

    def __init__(self, rng: np.random.Generator, capacity: int = 4096) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._rng = rng
        self._buf: list[float] = []
        self._seen = 0

    def __len__(self) -> int:
        return len(self._buf)

    @property
    def seen(self) -> int:
        """Total observations offered (≥ the retained sample size)."""
        return self._seen

    def add(self, x: float) -> None:
        self._seen += 1
        if len(self._buf) < self.capacity:
            self._buf.append(float(x))
            return
        j = int(self._rng.integers(0, self._seen))
        if j < self.capacity:
            self._buf[j] = float(x)

    def values(self) -> list[float]:
        return list(self._buf)

    def quantile(self, q: float) -> float:
        if not self._buf:
            return 0.0
        return float(np.percentile(np.array(self._buf), q * 100.0))


class StreamingMoments:
    """Running count/sum/min/max — the O(1) core of throughput stats."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def add(self, x: float) -> None:
        x = float(x)
        self.count += 1
        self.total += x
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x

    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


__all__ = ["P2Quantile", "ReservoirSample", "StreamingMoments"]
