"""Command-line entry points.

Examples::

    oneshot-repro run --protocol oneshot --f 4 --deployment eu
    oneshot-repro fig7 --deployment eu --f 1 2 4 --blocks 20
    oneshot-repro gains --deployment us
    oneshot-repro steps
    oneshot-repro degraded
    oneshot-repro complexity
    oneshot-repro ablations
    oneshot-repro parallel --k 1 2 4
    oneshot-repro timeline --protocol damysus --views 3 5
    oneshot-repro sweep --grid fig7 --workers 4
    oneshot-repro bench --tolerance 0.25
    oneshot-repro bench --suite crypto
    oneshot-repro bench --suite net
    oneshot-repro fuzz run --seeds 200
    oneshot-repro fuzz replay tests/fuzz/corpus/*.json
    oneshot-repro fuzz shrink fuzz-findings/seed10-liveness.json
    oneshot-repro lint --format json
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from typing import Optional, Sequence

from .experiments import (
    ExperimentConfig,
    check_linearity,
    compute_gains,
    render_ablations,
    render_complexity,
    render_degraded,
    render_fig7,
    render_gains,
    render_parallel,
    render_steps_table,
    run_all_ablations,
    run_complexity,
    run_degraded,
    run_experiment,
    run_fig7,
    run_parallel_scaling,
    steps_table,
)
from .experiments.sweep import (
    run_ablations_sweep,
    run_degraded_sweep,
    run_fig7_sweep,
)
from .experiments.fig7 import PAPER_F_VALUES
from .sim import DEFAULT_KERNEL, available_kernels


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument("--deployment", default="eu", choices=["eu", "us", "world", "local"])
    p.add_argument("--blocks", type=int, default=20, help="decided blocks per run")
    p.add_argument("--seed", type=int, default=7)


def _cmd_run(args: argparse.Namespace) -> int:
    cfg = ExperimentConfig(
        protocol=args.protocol,
        f=args.f,
        payload_bytes=args.payload,
        deployment=args.deployment,
        target_blocks=args.blocks,
        seed=args.seed,
        kernel=args.kernel,
        workload=args.workload,
        offered_tps=args.offered_tps,
        virtual_clients=args.clients,
        workload_regions=args.regions,
        streaming_metrics=args.streaming_metrics,
    )
    result = run_experiment(cfg)
    print(cfg.describe())
    print(result.stats)
    if result.engine is not None:
        print(
            f"offered load: {result.engine.txs_offered:,} txs from "
            f"{result.engine.virtual_clients:,} virtual clients "
            f"({result.engine.observed_rate_tps():,.0f} tx/s)"
        )
    return 0


def _cmd_fig7(args: argparse.Namespace) -> int:
    res = run_fig7(
        args.deployment,
        f_values=tuple(args.f),
        target_blocks=args.blocks,
        seed=args.seed,
    )
    print(render_fig7(res))
    return 0


def _cmd_gains(args: argparse.Namespace) -> int:
    res = run_fig7(
        args.deployment,
        f_values=tuple(args.f),
        target_blocks=args.blocks,
        seed=args.seed,
    )
    print(render_gains(compute_gains(res)))
    return 0


def _cmd_steps(args: argparse.Namespace) -> int:
    print(render_steps_table(steps_table(seed=args.seed)))
    return 0


def _cmd_degraded(args: argparse.Namespace) -> int:
    print(render_degraded(run_degraded(target_blocks=args.blocks, seed=args.seed)))
    return 0


def _cmd_complexity(args: argparse.Namespace) -> int:
    result = run_complexity(f_values=tuple(args.f), seed=args.seed)
    print(render_complexity(result))
    problems = check_linearity(result)
    print(f"linearity violations: {problems or 'none'}")
    return 0 if not problems else 1


def _cmd_ablations(args: argparse.Namespace) -> int:
    print(render_ablations(run_all_ablations(target_blocks=args.blocks)))
    return 0


def _cmd_parallel(args: argparse.Namespace) -> int:
    scaling = run_parallel_scaling(ks=tuple(args.k), seed=args.seed)
    print(render_parallel(scaling))
    return 0


def _shard_config(args: argparse.Namespace, k: int) -> ExperimentConfig:
    return ExperimentConfig(
        protocol=args.protocol,
        f=args.f,
        deployment=args.deployment,
        local_latency_s=args.latency,
        max_sim_time=args.time,
        seed=args.seed,
        kernel=args.kernel,
        workload="open",
        offered_tps=args.offered_tps,
        virtual_clients=args.clients,
        shards=k,
        cross_shard_permille=args.cross,
        hot_key_permille=args.hot,
        shard_epoch_s=args.epoch,
        shard_slots=args.slots,
    )


def _cmd_shard(args: argparse.Namespace) -> int:
    from .experiments import render_shard, run_shard_scaling, run_sharded

    if args.shard_command == "run":
        run = run_sharded(_shard_config(args, args.k))
        print(run.describe())
        for m in run.pump.migrations:
            print(
                f"  epoch {m.epoch} @ {m.at_time:.2f}s: moved "
                f"{len(m.moved_slots)} slots, imbalance "
                f"{m.imbalance_before:.2f} -> {m.imbalance_after:.2f}"
            )
        print(f"fingerprint: {run.fingerprint.digest()}")
        return 0 if run.atomicity.ok else 1
    # sweep
    scaling = run_shard_scaling(
        ks=tuple(args.k), config=_shard_config(args, 1)
    )
    print(render_shard(scaling))
    print(f"scaling k={min(scaling.runs)} -> k={max(scaling.runs)}: "
          f"{scaling.scaling_x():.2f}x")
    bad = [k for k, r in scaling.runs.items() if not r.atomicity.ok]
    return 0 if not bad else 1


def _cmd_timeline(args: argparse.Namespace) -> int:
    from .metrics import CLASSIFIERS, extract_waves, render_timeline
    from .net import Network
    from .protocols.common import ProtocolConfig, build_cluster
    from .protocols.registry import get_protocol
    from .experiments.deployments import latency_model_for
    from .sim import Simulator

    info = get_protocol(args.protocol)
    sim = Simulator(seed=args.seed)
    network = Network(sim, latency=latency_model_for("local", 0.005))
    network.enable_log()
    cluster = build_cluster(
        info.replica_cls, sim, network, ProtocolConfig(n=info.n_for(1), f=1)
    )
    cluster.start()
    ref = cluster.replicas[0]
    sim.run(until=60.0, stop_when=lambda: ref.view > args.views[1] + 1)
    cluster.stop()
    waves = extract_waves(
        network.message_log,
        CLASSIFIERS[args.protocol],
        first_view=args.views[0],
        last_view=args.views[1],
    )
    print(
        render_timeline(
            waves, title=f"{args.protocol} views {args.views[0]}-{args.views[1]}:"
        )
    )
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    """Run a paper-scale grid across a worker pool.

    The merged output is byte-identical for any ``--workers`` value:
    results are joined in task-key order, never completion order.
    """
    if args.grid == "fig7":
        res = run_fig7_sweep(
            args.deployment,
            f_values=tuple(args.f),
            target_blocks=args.blocks,
            seed=args.seed,
            workers=args.workers,
        )
        print(render_fig7(res))
    elif args.grid == "ablations":
        print(
            render_ablations(
                run_ablations_sweep(
                    target_blocks=args.blocks, workers=args.workers
                )
            )
        )
    else:  # degraded
        print(
            render_degraded(
                run_degraded_sweep(
                    target_blocks=args.blocks,
                    seed=args.seed,
                    workers=args.workers,
                )
            )
        )
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    """Benchmark regression gate (docs/BENCHMARKS in README).

    Runs the selected suites (kernel microbenches, one e2e consensus
    run, the crypto verification-fast-path benches, and/or the network
    multicast-fast-path benches), compares against the recorded
    baselines and rewrites them when healthy.

    Exit code contract: 0 = within tolerance (baseline JSONs written),
    1 = regression beyond ``--tolerance`` (baselines left untouched),
    2 = bad invocation (nonexistent --output-dir).
    """
    from pathlib import Path

    from .bench import (
        annotate_speedups,
        BenchReport,
        compare,
        profile_call,
        regressions,
        render_report,
        run_suite,
        suite_names,
    )

    out_dir = Path(args.output_dir)
    if not out_dir.is_dir():
        print(
            f"error: --output-dir {args.output_dir!r} is not a directory",
            file=sys.stderr,
        )
        return 2

    kernel = args.kernel
    # The registry is the single source of truth: "all" is every
    # registered tier, and run_suite fails loudly on unknown names
    # (argparse choices are derived from the same registry).
    suites = suite_names() if args.suite == "all" else [args.suite]

    if args.profile:
        # Diagnostic mode: profiler overhead skews every wall-clock
        # rate, so reports are printed for orientation but baselines
        # are neither compared against nor rewritten.
        for s in suites:
            report, table = profile_call(
                lambda: run_suite(s, quick=args.quick, kernel=kernel),
                top_n=args.profile_top,
            )
            print(render_report(report))
            print(
                f"[{report.name}] cProfile top {args.profile_top} "
                "by cumulative time (rates above include profiler "
                "overhead; baselines untouched):"
            )
            print(table)
        return 0

    failed = False
    for report in (
        run_suite(s, quick=args.quick, kernel=kernel) for s in suites
    ):
        path = out_dir / f"BENCH_{report.name}.json"
        deltas = None
        if path.is_file():
            deltas = compare(
                report, BenchReport.load(path), tolerance=args.tolerance
            )
            annotate_speedups(report, deltas)
        print(render_report(report, deltas))
        if deltas and regressions(deltas):
            failed = True
            print(f"regression: baseline {path} left untouched", file=sys.stderr)
        else:
            report.write(path)
    return 1 if failed else 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    """Adversarial scenario fuzzing (docs/fuzzing.md).

    ``fuzz run`` — generate and execute ``--seeds`` scenarios from
    ``--start-seed``, judging each with the safety and liveness
    oracles; failing seeds are shrunk to minimized counterexamples and
    written as repro files into ``--out``.  Exit 0 = all clean,
    1 = findings written.

    ``fuzz replay FILE...`` — re-run saved repro files and verify each
    reproduces its recorded failure kind and fingerprint digest
    byte-identically.  Exit 0 = all reproduce, 1 = drift.

    ``fuzz shrink FILE`` — re-minimize a repro file in place (or to
    ``--out-file``).
    """
    from pathlib import Path

    from .fuzz import (
        FuzzConfig,
        generate_scenario,
        load_repro,
        replay_repro,
        run_scenario,
        save_repro,
        shrink,
        ReplayMismatch,
    )

    if args.fuzz_command == "run":
        cfg = FuzzConfig(
            protocols=tuple(args.protocols),
            max_f=args.max_f,
        )
        out_dir = Path(args.out)
        findings = 0
        for seed in range(args.start_seed, args.start_seed + args.seeds):
            scenario = generate_scenario(seed, cfg)
            if args.no_view_sync:
                scenario = dataclasses.replace(scenario, view_sync=False)
            result = run_scenario(scenario)
            if result.ok:
                if args.verbose:
                    print(f"seed {seed}: ok ({scenario.describe()})")
                continue
            findings += 1
            print(f"seed {seed}: {result.report.describe()}")
            print(f"  scenario: {scenario.describe()}")
            outcome = shrink(scenario, failing=result, max_runs=args.shrink_runs)
            path = save_repro(
                out_dir / f"seed{seed}-{outcome.result.failure}.json",
                outcome.result,
                note=(
                    f"found by `fuzz run` seed {seed}; shrunk in "
                    f"{outcome.runs} runs"
                ),
            )
            print(
                f"  minimized ({outcome.runs} shrink runs): "
                f"{outcome.scenario.describe()}"
            )
            print(f"  repro written: {path}")
        print(
            f"{args.seeds} scenario(s) from seed {args.start_seed}: "
            f"{findings} finding(s)"
        )
        return 1 if findings else 0

    if args.fuzz_command == "replay":
        failed = 0
        for name in args.files:
            try:
                result = replay_repro(name)
            except ReplayMismatch as exc:
                failed += 1
                print(f"MISMATCH {exc}")
                continue
            print(f"ok {name}: {result.report.describe()}")
        return 1 if failed else 0

    # shrink
    repro = load_repro(args.file)
    outcome = shrink(repro.scenario, max_runs=args.shrink_runs)
    out_path = Path(args.out_file) if args.out_file else Path(args.file)
    save_repro(
        out_path,
        outcome.result,
        note=f"re-minimized from {args.file} in {outcome.runs} runs",
    )
    print(f"minimized ({outcome.runs} runs): {outcome.scenario.describe()}")
    print(f"written: {out_path}")
    return 0


def _changed_module_paths(ref: str, root: "Path") -> Optional[set[str]]:
    """Module paths (``repro/...`` form) differing from git ``ref``.

    Combines ``git diff --name-only <ref>`` with untracked files, maps
    repo-relative paths onto the lint root's coordinate system, and
    returns None (with a message) if git is unavailable or ``ref`` does
    not resolve.
    """
    import subprocess
    from pathlib import Path

    def _git(*argv: str) -> Optional[str]:
        try:
            proc = subprocess.run(
                ["git", *argv],
                capture_output=True,
                text=True,
                cwd=str(root),
                timeout=30,
            )
        except (OSError, subprocess.TimeoutExpired):
            return None
        return proc.stdout if proc.returncode == 0 else None

    toplevel = _git("rev-parse", "--show-toplevel")
    if toplevel is None:
        print("error: --changed-only requires a git checkout", file=sys.stderr)
        return None
    repo = Path(toplevel.strip())
    diff = _git("diff", "--name-only", ref, "--", "*.py")
    if diff is None:
        print(
            f"error: --changed-only ref {ref!r} did not resolve", file=sys.stderr
        )
        return None
    untracked = _git("ls-files", "--others", "--exclude-standard", "--", "*.py")
    names = set(diff.split()) | set((untracked or "").split())
    # Lint paths are relative to the lint root's *parent* (e.g.
    # ``src/repro/sim/rng.py`` reports as ``repro/sim/rng.py``).
    base = root.resolve().parent
    out: set[str] = set()
    for name in names:
        p = (repo / name).resolve()
        try:
            out.add(p.relative_to(base).as_posix())
        except ValueError:
            continue  # changed file outside the lint root
    return out


def _cmd_lint(args: argparse.Namespace) -> int:
    """Static invariant gate (docs/invariants.md).

    Exit code contract: 0 = clean (no findings outside the curated
    suppression list in pyproject.toml), 1 = violations found,
    2 = bad invocation (nonexistent --root / --pyproject, or a
    --changed-only ref that does not resolve).
    """
    from pathlib import Path

    from .analysis import default_rules, lint_package

    if args.rules:
        for rule in default_rules():
            print(f"{rule.name:20s} {rule.description}  [{rule.paper_ref}]")
        return 0
    if args.root and not Path(args.root).is_dir():
        print(f"error: --root {args.root!r} is not a directory", file=sys.stderr)
        return 2
    if args.pyproject and not Path(args.pyproject).is_file():
        print(
            f"error: --pyproject {args.pyproject!r} does not exist", file=sys.stderr
        )
        return 2
    if args.root:
        root = Path(args.root)
    else:
        import repro

        root = Path(repro.__file__).resolve().parent
    only_paths: Optional[set[str]] = None
    if args.changed_only is not None:
        only_paths = _changed_module_paths(args.changed_only, root)
        if only_paths is None:
            return 2
        if not only_paths:
            print("0 finding(s): no modules changed vs "
                  f"{args.changed_only}")
            return 0
    report = lint_package(
        root=root,
        pyproject=Path(args.pyproject) if args.pyproject else None,
        ignore_suppressions=args.no_suppressions,
        only_paths=only_paths,
    )
    if args.format == "json":
        print(report.to_json())
    elif args.format == "sarif":
        print(report.to_sarif())
    elif args.format == "github":
        out = report.render_github()
        if out:
            print(out)
    else:
        print(report.render_text())
    return 0 if report.clean else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="oneshot-repro",
        description="OneShot (IPPS 2024) reproduction harness",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("run", help="single protocol run")
    p.add_argument(
        "--protocol",
        default="oneshot",
        choices=["oneshot", "oneshot-chained", "damysus", "hotstuff"],
    )
    p.add_argument("--f", type=int, default=1)
    p.add_argument("--payload", type=int, default=0, choices=[0, 256])
    p.add_argument(
        "--kernel",
        default=DEFAULT_KERNEL,
        choices=list(available_kernels()),
        help="simulation substrate kernel (identical results, different "
        "wall-clock speed)",
    )
    p.add_argument(
        "--workload",
        default="saturated",
        choices=["saturated", "open"],
        help="load model: closed-loop saturated sources (paper default) "
        "or the aggregated open-loop engine (repro.workload)",
    )
    p.add_argument(
        "--offered-tps",
        type=float,
        default=10_000.0,
        help="aggregate offered load in open mode (tx/s)",
    )
    p.add_argument(
        "--clients",
        type=int,
        default=100_000,
        help="virtual open-loop client population in open mode",
    )
    p.add_argument(
        "--regions",
        type=int,
        default=1,
        help="regions the open-mode population is split across",
    )
    p.add_argument(
        "--streaming-metrics",
        action="store_true",
        help="O(1)-memory streaming collector (P² quantile estimates)",
    )
    _add_common(p)
    p.set_defaults(func=_cmd_run)

    p = sub.add_parser("fig7", help="Fig. 7 panel for one deployment")
    p.add_argument("--f", type=int, nargs="+", default=list(PAPER_F_VALUES))
    _add_common(p)
    p.set_defaults(func=_cmd_fig7)

    p = sub.add_parser("gains", help="Sec. VIII gain tables")
    p.add_argument("--f", type=int, nargs="+", default=list(PAPER_F_VALUES))
    _add_common(p)
    p.set_defaults(func=_cmd_gains)

    p = sub.add_parser("steps", help="Sec. V execution-type table")
    p.add_argument("--seed", type=int, default=11)
    p.set_defaults(func=_cmd_steps)

    p = sub.add_parser("degraded", help="Sec. VIII-d degraded network")
    p.add_argument("--blocks", type=int, default=30)
    p.add_argument("--seed", type=int, default=17)
    p.set_defaults(func=_cmd_degraded)

    p = sub.add_parser("complexity", help="message complexity vs cluster size")
    p.add_argument("--f", type=int, nargs="+", default=[1, 2, 4, 10])
    p.add_argument("--seed", type=int, default=13)
    p.set_defaults(func=_cmd_complexity)

    p = sub.add_parser("ablations", help="Sec. VI-F optimization ablations")
    p.add_argument("--blocks", type=int, default=24)
    p.set_defaults(func=_cmd_ablations)

    p = sub.add_parser("parallel", help="multi-instance scaling")
    p.add_argument("--k", type=int, nargs="+", default=[1, 2, 4, 8])
    p.add_argument("--seed", type=int, default=9)
    p.set_defaults(func=_cmd_parallel)

    p = sub.add_parser(
        "shard", help="sharded consensus: routed keyspace, 2PC, rebalancing"
    )
    shard_sub = p.add_subparsers(dest="shard_command", required=True)

    def _shard_args(ps: argparse.ArgumentParser) -> None:
        ps.add_argument(
            "--protocol",
            default="oneshot",
            choices=["oneshot", "oneshot-chained", "damysus", "hotstuff"],
        )
        ps.add_argument("--f", type=int, default=1)
        ps.add_argument(
            "--deployment",
            default="local",
            choices=["eu", "us", "world", "local"],
        )
        ps.add_argument(
            "--latency",
            type=float,
            default=0.002,
            help="per-hop latency in the local deployment (s)",
        )
        ps.add_argument(
            "--kernel", default=DEFAULT_KERNEL, choices=list(available_kernels())
        )
        ps.add_argument(
            "--time", type=float, default=4.0, help="simulated seconds"
        )
        ps.add_argument("--seed", type=int, default=7)
        ps.add_argument(
            "--offered-tps",
            type=float,
            default=2_000.0,
            help="offered load per shard-sweep base (tx/s)",
        )
        ps.add_argument("--clients", type=int, default=10_000)
        ps.add_argument(
            "--cross",
            type=int,
            default=100,
            help="cross-shard transactions, permille",
        )
        ps.add_argument(
            "--hot",
            type=int,
            default=0,
            help="clients collapsed onto one hot key, permille",
        )
        ps.add_argument(
            "--epoch",
            type=float,
            default=0.0,
            help="routing epoch length (s); 0 disables rebalancing",
        )
        ps.add_argument("--slots", type=int, default=64)

    ps = shard_sub.add_parser("run", help="one sharded run")
    _shard_args(ps)
    ps.add_argument("--k", type=int, default=2, help="shard count")
    ps.set_defaults(func=_cmd_shard)

    ps = shard_sub.add_parser("sweep", help="weak-scaling shard sweep")
    _shard_args(ps)
    ps.add_argument("--k", type=int, nargs="+", default=[1, 2, 4, 8])
    ps.set_defaults(func=_cmd_shard)

    p = sub.add_parser("timeline", help="message-flow timeline of a run")
    p.add_argument(
        "--protocol",
        default="oneshot",
        choices=[
            "oneshot",
            "oneshot-chained",
            "damysus",
            "damysus-chained",
            "hotstuff",
            "hotstuff-chained",
        ],
    )
    p.add_argument("--views", type=int, nargs=2, default=[2, 4], metavar=("FIRST", "LAST"))
    p.add_argument("--seed", type=int, default=7)
    p.set_defaults(func=_cmd_timeline)

    p = sub.add_parser(
        "sweep", help="run an experiment grid across a worker pool"
    )
    p.add_argument(
        "--grid",
        default="fig7",
        choices=["fig7", "ablations", "degraded"],
        help="which experiment grid to sweep",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=0,
        help="pool size (0 = one per CPU, 1 = sequential)",
    )
    p.add_argument("--f", type=int, nargs="+", default=list(PAPER_F_VALUES))
    _add_common(p)
    p.set_defaults(func=_cmd_sweep)

    from .bench import suite_names

    p = sub.add_parser(
        "bench",
        help="kernel + e2e + crypto + net + lint + workload benchmarks "
        "with regression gate",
    )
    p.add_argument(
        "--quick",
        action="store_true",
        help="shrink iteration counts (smoke tests; noisier rates)",
    )
    p.add_argument(
        "--suite",
        default="all",
        choices=[*suite_names(), "all"],
        help="which bench suite to run (default: all, i.e. every "
        "registered tier)",
    )
    p.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional slowdown vs baseline (default 0.25)",
    )
    p.add_argument(
        "--output-dir",
        default=".",
        help="directory holding the BENCH_<suite>.json baselines",
    )
    p.add_argument(
        "--kernel",
        default=DEFAULT_KERNEL,
        choices=list(available_kernels()),
        help="simulation substrate kernel for the kernel/e2e/net suites",
    )
    p.add_argument(
        "--profile",
        action="store_true",
        help="run each suite under cProfile and print the hottest "
        "functions (diagnostic; baselines are not compared or rewritten)",
    )
    p.add_argument(
        "--profile-top",
        type=int,
        default=20,
        metavar="N",
        help="rows in the --profile table (default 20)",
    )
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser(
        "fuzz",
        help="adversarial scenario fuzzing with safety/liveness oracles",
    )
    fuzz_sub = p.add_subparsers(dest="fuzz_command", required=True)

    pf = fuzz_sub.add_parser("run", help="generate + run N seeded scenarios")
    pf.add_argument("--seeds", type=int, default=100, help="scenario count")
    pf.add_argument("--start-seed", type=int, default=0, help="first seed")
    pf.add_argument(
        "--protocols",
        nargs="+",
        default=["oneshot", "damysus", "hotstuff"],
        help="protocols to draw scenarios from",
    )
    pf.add_argument("--max-f", type=int, default=2, help="largest f to draw")
    pf.add_argument(
        "--out",
        default="fuzz-findings",
        help="directory for minimized repro files of failing seeds",
    )
    pf.add_argument(
        "--shrink-runs",
        type=int,
        default=200,
        help="shrinking budget (scenario executions) per finding",
    )
    pf.add_argument("--verbose", action="store_true", help="print passing seeds too")
    pf.add_argument(
        "--no-view-sync",
        action="store_true",
        help="run scenarios with the historical pacemaker (no view "
        "synchronizer) — reproduces the HotStuff view-split livelock",
    )
    pf.set_defaults(func=_cmd_fuzz)

    pf = fuzz_sub.add_parser(
        "replay", help="re-run repro files, verify recorded outcome + digest"
    )
    pf.add_argument("files", nargs="+", help="repro JSON files")
    pf.set_defaults(func=_cmd_fuzz)

    pf = fuzz_sub.add_parser("shrink", help="re-minimize a repro file")
    pf.add_argument("file", help="repro JSON file")
    pf.add_argument(
        "--out-file", default=None, help="write minimized repro here (default: in place)"
    )
    pf.add_argument(
        "--shrink-runs", type=int, default=200, help="shrinking budget"
    )
    pf.set_defaults(func=_cmd_fuzz)

    p = sub.add_parser("lint", help="static invariant checks (docs/invariants.md)")
    p.add_argument("--root", default=None, help="package dir to lint (default: repro)")
    p.add_argument("--pyproject", default=None, help="pyproject.toml with suppressions")
    p.add_argument(
        "--format",
        default="text",
        choices=["text", "json", "sarif", "github"],
        help="output style: human text, JSON, SARIF 2.1.0, or "
        "GitHub-Actions ::error annotations",
    )
    p.add_argument(
        "--no-suppressions",
        action="store_true",
        help="ignore the curated suppression list",
    )
    p.add_argument(
        "--changed-only",
        metavar="REF",
        default=None,
        help="report findings only for modules differing from git REF "
        "(analysis still covers the whole tree)",
    )
    p.add_argument("--rules", action="store_true", help="list rules and exit")
    p.set_defaults(func=_cmd_lint)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


__all__ = ["build_parser", "main"]


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
