"""The OneShot replica — Fig. 5a (prepare / decide / new-view) and
Fig. 5b (deliver), with the Sec. VI-F optimizations.

A replica's behaviour per view:

* **As leader** it waits for either a prepare certificate from the
  previous view (→ *normal execution*, l.11-13) or f+1 new-view
  certificates (l.15-27), which lead to a *piggyback execution* (all
  f+1 store the same block → reconstruct the prepare certificate), a
  direct proposal via a ``B = true`` accumulator (re-vote avoidance),
  or a *catch-up execution* (deliver phase, Fig. 5b).
* **As any replica** it stores leader proposals via ``TEEstore``
  (l.29-33), executes on prepare certificates (l.41-46), and on
  timeout ships its latest proposal to the next leader (l.48-52).

View synchronization: certificates for a higher view are themselves
proof that f+1 replicas reached that view, so a lagging replica
*jumps*, fast-forwarding its CHECKER by storing its latest proposal
once per skipped view (each ``TEEstore`` increments the TEE view by
exactly one — the enclave interface has no other way forward).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Optional

from ..crypto import Digest
from ..metrics import CATCHUP, NORMAL, PIGGYBACK
from ..smr import GENESIS, Block, create_leaf
from .certificates import (
    GENESIS_PROPOSAL,
    GENESIS_QC,
    Accumulator,
    NewViewCert,
    PrepareCert,
    Proposal,
    QuorumCert,
    StoreCert,
    VoteCert,
    certifies,
    nv_triple,
    nv_verify_cost_sigs,
    qc_ref,
    qc_signer_ids,
    qc_verify_cost_sigs,
    verify_new_view,
    verify_qc,
)
from .messages import (
    DeliverMsg,
    NewViewMsg,
    PrepCertMsg,
    ProposalMsg,
    PullReply,
    PullRequest,
    StoreMsg,
    VoteMsg,
)
from .pulling import Puller
from .tee_services import AccumulatorService, Checker
from ..protocols.common import BaseReplica, QuorumTracker


@dataclass(frozen=True)
class OneShotOptions:
    """Toggles for the Sec. VI-F optimizations (ablation knobs)."""

    #: l.24 / Fig. 5c l.18 — skip the deliver phase when the highest
    #: new-view certificate is certified by its own hash.
    avoid_revotes: bool = True
    #: VI-F(b) — omit the block from a new-view certificate when the
    #: next leader provably has it.
    omit_known_blocks: bool = True
    #: VI-F(c) — abandon a running deliver phase if the previous view's
    #: prepare certificate shows up.
    preempt_catchup: bool = True


@dataclass(frozen=True)
class Prop:
    """The ``prop`` variable (l.3): latest proposal from a leader."""

    block: Optional[Block]
    proposal: Proposal
    qc: QuorumCert


class OneShotReplica(BaseReplica):
    """A OneShot replica (N = 2f+1)."""

    MIN_N_FACTOR = 2
    PROTOCOL = "oneshot"
    #: Replies forward the prepare certificate — one reply suffices.
    CERTIFIED_REPLIES = True
    #: Optimization toggles; subclass via :func:`oneshot_with_options`.
    OPTIONS = OneShotOptions()

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        cfg = self.config
        self.checker = Checker(
            self.pid,
            self.creds.keypair,
            self.ring,
            cfg.crypto_costs,
            cfg.tee_costs,
            self.leader_of,
        )
        self.accumulator = AccumulatorService(
            self.pid,
            self.creds.keypair,
            self.ring,
            cfg.crypto_costs,
            cfg.tee_costs,
            cfg.quorum,
        )
        self.prop = Prop(GENESIS, GENESIS_PROPOSAL, GENESIS_QC)
        self.last_store: Optional[StoreCert] = None
        #: Last proposal the CHECKER accepted — always storable again,
        #: so it can drive TEE fast-forwards across skipped views.
        self._ff_proposal: Proposal = GENESIS_PROPOSAL
        self.puller = Puller(self)
        # Leader-side collection state
        self._nv_tracker: QuorumTracker[NewViewCert] = QuorumTracker(cfg.quorum)
        self._store_tracker: QuorumTracker[StoreCert] = QuorumTracker(cfg.quorum)
        self._vote_tracker: QuorumTracker = QuorumTracker(cfg.quorum)
        self._prep_certs: dict[int, PrepareCert] = {}  # stored_view -> φ_c
        self._led_view = -1  # highest view this replica proposed in
        self._deliver: Optional[tuple[int, Digest]] = None  # (view, h)
        self._current_proposal: Optional[Proposal] = None
        self._proposal_kind: dict[Digest, str] = {}
        for mtype, handler in (
            (NewViewMsg, self.on_new_view),
            (ProposalMsg, self.on_proposal),
            (StoreMsg, self.on_store),
            (PrepCertMsg, self.on_prep_cert),
            (DeliverMsg, self.on_deliver),
            (VoteMsg, self.on_vote),
            (PullRequest, self.puller.on_pull_request),
            (PullReply, self.puller.on_pull_reply),
        ):
            self.register_handler(mtype, handler)

    # ------------------------------------------------------------------
    # Boot & view plumbing
    # ------------------------------------------------------------------
    def on_start(self) -> None:
        self._maybe_lead()

    def on_enter_view(self, view: int) -> None:
        if view % 64 == 0:
            self._prune(view)
        self._maybe_lead()

    def _prune(self, view: int) -> None:
        horizon = view - 4
        self._nv_tracker.clear_below(horizon)
        self._store_tracker.clear_below(horizon)
        self._vote_tracker.clear_below(horizon)
        for w in [w for w in self._prep_certs if w < horizon]:
            del self._prep_certs[w]

    def _sync_tee(self, target: int) -> None:
        """Fast-forward the CHECKER to ``target`` (if behind).

        The TEE's only way forward is one ``TEEstore`` per view, so a
        lagging replica re-stores its last accepted proposal once per
        skipped view.  ``prepv`` is unchanged by these calls (the
        proposal's view is already ``prepv``), so no safety state is
        fabricated — only the counter catches up.
        """
        steps = target - self.checker.view
        if steps <= 0:
            return
        for _ in range(steps):
            if self.checker.tee_store(self._ff_proposal) is None:
                break  # pragma: no cover - _ff_proposal is storable
        self.charge_enclave(self.checker)

    def _advance_to(self, view: int) -> None:
        """Jump to ``view`` on certificate evidence, fast-forwarding the TEE."""
        self._sync_tee(view)
        if self._deliver is not None and self._deliver[0] < view:
            self._deliver = None
        if view > self.view:
            self.enter_view(view)

    # ------------------------------------------------------------------
    # New-view ½-phase (receive side, leader of the new view)
    # ------------------------------------------------------------------
    def on_new_view(self, sender: int, msg: NewViewMsg) -> None:
        cert = msg.cert
        if isinstance(cert, PrepareCert):
            self._on_nv_prep_cert(cert)
        elif isinstance(cert, NewViewCert):
            self._on_nv_timeout_cert(cert)

    def _on_nv_prep_cert(self, cert: PrepareCert) -> None:
        w = cert.stored_view  # targets view w+1
        if w + 1 < self.view or self.leader_of(w + 1) != self.pid:
            return
        if w in self._prep_certs:
            return  # already have one; skip re-verification
        self.charge(self.config.crypto_costs.verify(len(cert.sigs)))
        if cert.prop_view != cert.stored_view:
            return  # new-view prepare certs are decide-phase certs
        if not cert.verify(self.ring, self.config.quorum):
            return
        self._prep_certs[w] = cert
        if w + 1 > self.view:
            self._advance_to(w + 1)
        self._maybe_lead()

    def _on_nv_timeout_cert(self, cert: NewViewCert) -> None:
        w, h, v1 = nv_triple(cert)
        if w + 1 < self.view or self.leader_of(w + 1) != self.pid:
            return
        self.charge(self.config.crypto_costs.verify(nv_verify_cost_sigs(cert)))
        if not verify_new_view(cert, self.ring, self.config.quorum):
            return
        if cert.block is not None:
            self.add_block(cert.block)
        quorum = self._nv_tracker.add(w, cert.store.sig.signer, cert)
        if quorum is not None:
            self._on_nv_quorum(w, quorum)

    def _on_nv_quorum(self, w: int, certs: list[NewViewCert]) -> None:
        """l.15-27: f+1 new-view certificates for stored view ``w``."""
        v = w + 1
        if v > self.view:
            self._advance_to(v)
        if v != self.view or self._led_view >= v or self._deliver is not None:
            return
        triples = {nv_triple(c) for c in certs}
        if len(triples) == 1:
            # PIGGYBACK (l.17-20): all f+1 stored the same block.
            _, h, v1 = triples.pop()
            sigs = tuple(c.store.sig for c in certs)
            phi_c = PrepareCert(
                stored_view=w, block_hash=h, prop_view=v1, sigs=sigs
            )
            self._propose(h, phi_c, PIGGYBACK)
            return
        # Accumulator path (l.21-27).  Among certificates with the
        # highest proposal view, prefer a self-certified one — that is
        # what lets the B flag skip the deliver phase (Sec. VI-F a).
        top = max(
            certs,
            key=lambda c: (nv_triple(c)[2], certifies(nv_triple(c)[1], c)),
        )
        rest = [c for c in certs if c is not top]
        acc = self.accumulator.tee_accum(top, rest)
        done = self.charge_enclave(self.accumulator)
        if acc is None:  # pragma: no cover - inputs pre-verified
            return
        if acc.certified and self.OPTIONS.avoid_revotes:
            # l.24-25: the top block already has a quorum certificate.
            self._propose(acc.block_hash, acc, NORMAL)
            return
        # CATCH-UP (l.26-27): start the deliver phase.  Re-attach the
        # block so every replica can vote on a block it has received.
        if top.block is None:
            blk = self.store.get(top.store.block_hash)
            if blk is not None:
                top = replace(top, block=blk)
        self._deliver = (v, top.store.block_hash)
        self.broadcast_at(done, DeliverMsg(acc=acc, top=top))

    # ------------------------------------------------------------------
    # Leading
    # ------------------------------------------------------------------
    def _known_prep_cert(self, view: int) -> Optional[PrepareCert]:
        """A prepare certificate usable to lead ``view`` (l.12)."""
        if view == 0:
            return GENESIS_QC
        return self._prep_certs.get(view - 1)

    def _maybe_lead(self) -> None:
        """Run the leader's prepare-phase logic if ready (l.11-13)."""
        v = self.view
        if self.stopped or not self.is_leader(v) or self._led_view >= v:
            return
        phi_c = self._known_prep_cert(v)
        if phi_c is None:
            return
        if self._deliver is not None:
            if not self.OPTIONS.preempt_catchup:
                return
            # VI-F(c): preempt the catch-up execution.
            self._deliver = None
        self._propose(phi_c.block_hash, phi_c, NORMAL)

    def _propose(self, h: Digest, qc: QuorumCert, kind: str) -> None:
        """l.5-8: createLeaf, certify via TEEprepare, broadcast."""
        block = create_leaf(h, self.view, self.mempool.next_batch(self.sim.now), self.pid)
        self.charge(self.config.crypto_costs.hash(block.wire_size()))
        phi_p = self.checker.tee_prepare(block.hash)
        done = self.charge_enclave(self.checker)
        if phi_p is None:
            return  # TEE refused: already proposed in this view
        self._led_view = self.view
        self._current_proposal = phi_p
        self._proposal_kind[block.hash] = kind
        self.add_block(block)
        self.collector.on_propose(self.pid, self.view, block.hash, self.sim.now)
        self.broadcast_at(done, ProposalMsg(block, phi_p, qc, exec_kind=kind))

    # ------------------------------------------------------------------
    # Prepare phase, replica side (l.29-33)
    # ------------------------------------------------------------------
    def on_proposal(self, sender: int, msg: ProposalMsg) -> None:
        phi_p = msg.proposal
        v = phi_p.view
        if v < self.view or sender != self.leader_of(v):
            return
        cost = self.config.crypto_costs.verify(
            1 + qc_verify_cost_sigs(msg.qc)
        ) + self.config.crypto_costs.hash(msg.block.wire_size())
        self.charge(cost)
        if not phi_p.verify(self.ring):
            return
        ref = qc_ref(msg.qc)
        if ref is None or not verify_qc(msg.qc, self.ring, self.config.quorum):
            return
        qv, qh = ref
        # l.30/l.32: φ_qc is for ⟨view, h⟩, b ≻ h, H(b) == φ_p.hash.
        if qv != v or msg.block.hash != phi_p.block_hash or not msg.block.extends(qh):
            return
        if v > self.view:
            self._advance_to(v)
        if v != self.view:
            return
        self.add_block(msg.block)
        self._proposal_kind[msg.block.hash] = msg.exec_kind
        self.prop = Prop(msg.block, phi_p, msg.qc)
        self.puller.pull(msg.qc)  # Sec. VI-E: fetch the parent if missing
        self._sync_tee(v)  # catch the CHECKER up if this replica lagged
        phi_s = self.checker.tee_store(phi_p)
        done = self.charge_enclave(self.checker)
        if phi_s is None:
            return
        self._ff_proposal = phi_p
        self.last_store = phi_s
        self.send_at(done, sender, StoreMsg(phi_s))

    # ------------------------------------------------------------------
    # Decide ½-phase, leader side (l.36-39)
    # ------------------------------------------------------------------
    def on_store(self, sender: int, msg: StoreMsg) -> None:
        cert = msg.cert
        v = self.view
        # l.37: only store(view, h, view) counts.
        if cert.stored_view != v or cert.prop_view != v or self._led_view != v:
            return
        self.charge(self.config.crypto_costs.verify(1))
        if not cert.verify(self.ring):
            return
        quorum = self._store_tracker.add(
            (v, cert.block_hash), cert.sig.signer, cert
        )
        if quorum is None:
            return
        phi_c = PrepareCert(
            stored_view=v,
            block_hash=cert.block_hash,
            prop_view=v,
            sigs=tuple(c.sig for c in quorum),
        )
        done = max(self.sim.now, self.cpu.busy_until)
        assert self._current_proposal is not None
        self.broadcast_at(done, PrepCertMsg(phi_c, self._current_proposal))

    # ------------------------------------------------------------------
    # Decide ½-phase, replica side (l.41-46)
    # ------------------------------------------------------------------
    def on_prep_cert(self, sender: int, msg: PrepCertMsg) -> None:
        phi_c = msg.cert
        v = phi_c.stored_view
        if phi_c.prop_view != v or sender != self.leader_of(v):
            return
        if v < self.view:
            # Stale for the decide phase — but if it certifies the view
            # this replica is now leading from, it is exactly the l.12
            # "prepare certificate from the previous view" (and the
            # trigger for catch-up preemption, Sec. VI-F c).
            if v == self.view - 1 and self.is_leader():
                self._on_nv_prep_cert(phi_c)
            return
        self.charge(self.config.crypto_costs.verify(len(phi_c.sigs) + 1))
        if not phi_c.verify(self.ring, self.config.quorum):
            return
        phi_p = msg.proposal
        if (
            phi_p.view != v
            or phi_p.block_hash != phi_c.block_hash
            or not phi_p.verify(self.ring)
        ):
            return
        if v > self.view:
            self._advance_to(v)
        if v != self.view:
            return
        h = phi_c.block_hash
        kind = self._proposal_kind.get(h, NORMAL)
        self.commit_chain(h, kind, context=phi_c)
        # Keep the TEE in lock-step even if this replica never stored
        # the proposal (a small certificate can overtake a large block).
        self._sync_tee(v + 1)
        # l.45: prop := ⟨b, φ_p, φ_c⟩; view++.
        self.prop = Prop(self.store.get(h), phi_p, phi_c)
        self.record_decision_progress()
        done = max(self.sim.now, self.cpu.busy_until)
        self.enter_view(v + 1)
        # l.46: forward φ_c as the new-view certificate.
        self.send_at(done, self.leader_of(self.view), NewViewMsg(phi_c))

    # ------------------------------------------------------------------
    # Deliver phase (Fig. 5b)
    # ------------------------------------------------------------------
    def on_deliver(self, sender: int, msg: DeliverMsg) -> None:
        acc, top = msg.acc, msg.top
        v = acc.view + 1  # deliver runs in the view after the stored view
        if v < self.view or sender != self.leader_of(v):
            return
        self.charge(
            self.config.crypto_costs.verify(1 + nv_verify_cost_sigs(top))
        )
        # l.5: acc valid ∧ VERIFY(φ_n) ∧ b₁ ≻ h₂.
        if not acc.is_valid(self.ring, self.config.quorum):
            return
        if not verify_new_view(top, self.ring, self.config.quorum):
            return
        if (
            acc.block_hash != top.store.block_hash
            or top.store.stored_view != acc.view
        ):
            return
        ref = qc_ref(top.qc)
        if ref is None:
            return
        _, h2 = ref
        b1 = top.block
        if b1 is not None and not (b1.extends(h2) or b1.hash == h2):
            return
        if v > self.view:
            self._advance_to(v)
        if v != self.view:
            return
        if b1 is not None:
            self.add_block(b1)
        else:
            # Vote only for received blocks — pull it first (Sec. VI-B f).
            self.puller.pull_hash(
                top.store.prop_view, top.store.block_hash, acc.ids
            )
            return
        self.puller.pull(top.qc)
        self._sync_tee(v)  # votes must carry the current view
        vote = self.checker.tee_vote(top.store.block_hash)
        done = self.charge_enclave(self.checker)
        self.send_at(done, sender, VoteMsg(vote))

    def on_vote(self, sender: int, msg: VoteMsg) -> None:
        """Fig. 5b l.8-11: assemble the vote certificate, then propose."""
        vote = msg.vote
        if self._deliver is None:
            return
        dv, dh = self._deliver
        if vote.view != dv or vote.block_hash != dh or dv != self.view:
            return
        self.charge(self.config.crypto_costs.verify(1))
        if not vote.verify(self.ring):
            return
        quorum = self._vote_tracker.add((dv, dh), vote.sig.signer, vote)
        if quorum is None:
            return
        phi_vc = VoteCert(
            block_hash=dh, view=dv, sigs=tuple(x.sig for x in quorum)
        )
        self._deliver = None
        self._propose(dh, phi_vc, CATCHUP)

    # ------------------------------------------------------------------
    # New-view ½-phase, timeout side (l.48-52)
    # ------------------------------------------------------------------
    def on_timeout(self) -> None:
        w = self.view
        self._deliver = None
        self.enter_view(w + 1)
        if self.last_store is not None and self.last_store.stored_view == w:
            phi_s = self.last_store  # l.51: "if not already executed"
            done = self.sim.now
        else:
            self._sync_tee(w)  # no-op unless this replica lagged
            phi_s = self.checker.tee_store(self.prop.proposal)
            done = self.charge_enclave(self.checker)
            if phi_s is None:  # pragma: no cover - honest props store
                return
            self._ff_proposal = self.prop.proposal
            self.last_store = phi_s
        leader = self.leader_of(self.view)
        block = self.prop.block
        nv = NewViewCert(block=block, store=phi_s, qc=self.prop.qc)
        if (
            block is not None
            and self.OPTIONS.omit_known_blocks
            and self._leader_has_block(leader, nv)
        ):
            nv = replace(nv, block=None)  # VI-F(b)
        self.send_at(done, leader, NewViewMsg(nv))

    def _leader_has_block(self, leader: int, nv: NewViewCert) -> bool:
        """VI-F(b): the new leader provably received this block already.

        True when the proposal's quorum certificate certifies the block
        itself and the leader is among its signers (it stored/voted for
        the block, so it received it).
        """
        assert nv.block is not None
        if not certifies(nv.block.hash, nv):
            return False
        return leader in qc_signer_ids(nv.qc)

    # ------------------------------------------------------------------
    # Pulling integration
    # ------------------------------------------------------------------
    def on_missing_block(self, h: Digest, context: Any = None) -> None:
        """Pull a missing chain block from the certifiers of ``context``.

        Any of the f+1 nodes behind the triggering certificate executed
        the full chain, so each holds every ancestor (Sec. VI-E).
        """
        if context is not None:
            view = getattr(context, "stored_view", 0)
            self.puller.pull_hash(view, h, qc_signer_ids(context))


def oneshot_with_options(options: OneShotOptions) -> type[OneShotReplica]:
    """A OneShot replica class with specific optimization toggles."""

    class _Configured(OneShotReplica):
        OPTIONS = options

    _Configured.__name__ = "OneShotReplica"
    _Configured.__qualname__ = "OneShotReplica"
    return _Configured


__all__ = ["OneShotReplica", "OneShotOptions", "Prop", "oneshot_with_options"]
