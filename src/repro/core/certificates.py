"""OneShot certificates — Definitions 1-6 of the paper.

* **Proposal** (Def. 1): ``prop(h, v)_σ`` — produced by ``TEEprepare``,
  at most one per view.
* **Store certificate** (Def. 2): ``store(v₂, h, v₁)_σ`` — produced by
  ``TEEstore``; block ``h`` proposed at ``v₁`` was "stored" at ``v₂``.
* **Prepare certificate** (Def. 3): ``prep(v₂, h, v₁)_{σ⃗^{f+1}}`` —
  f+1 store-certificate signatures combined by a leader.
* **Vote / vote certificate** (Def. 4): ``vote(h, v)_σ`` and
  ``vc(h, v)_{σ⃗^{f+1}}`` — the catch-up deliver phase.
* **Accumulator** (Def. 5): ``acc(B, v, h, id⃗)_σ`` — produced by
  ``TEEaccum``; certifies the highest new-view certificate.
* **New-view certificate** (Def. 6): a prepare certificate or
  ``nv(b, φ_s, φ_qc)``.

A *quorum certificate* ``φ_qc`` is a prepare certificate, a vote
certificate, or a ``B = true`` accumulator; :func:`qc_ref` maps each to
the ⟨view, hash⟩ pair it is *for*, following Sec. VI-B(f):
``prep(v−1, h, v')`` and ``acc(true, v−1, h, id⃗)`` are for ⟨v, h⟩,
``vc(h, v)`` is for ⟨v, h⟩.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from ..crypto import Digest, KeyRing, Signature, digest_of
from ..crypto.memo import record_valid, seen_valid
from ..smr import GENESIS, Block

#: Phase labels of the CHECKER counter.
PH0, PH1 = 0, 1

#: Simulated ECDSA signature size on the wire.
SIG_BYTES = 64


# ----------------------------------------------------------------------
# Signed-content digests (domain-separated)
# ----------------------------------------------------------------------
def proposal_digest(h: Digest, view: int) -> Digest:
    return digest_of("os-prop", h, view)


def store_digest(stored_view: int, h: Digest, prop_view: int) -> Digest:
    return digest_of("os-store", stored_view, h, prop_view)


def vote_digest(h: Digest, view: int) -> Digest:
    return digest_of("os-vote", h, view)


def accumulator_digest(
    certified: bool, view: int, h: Digest, ids: tuple[int, ...]
) -> Digest:
    return digest_of("os-acc", certified, view, h, ids)


# ----------------------------------------------------------------------
# Def. 1 — Proposals
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Proposal:
    """``prop(h, v)_σ``; ``view == -1`` is the unsigned genesis bootstrap."""

    block_hash: Digest
    view: int
    sig: Optional[Signature]

    @property
    def is_genesis(self) -> bool:
        return self.view == -1

    def verify(self, ring: KeyRing) -> bool:
        if self.is_genesis:
            return self.block_hash == GENESIS.hash and self.sig is None
        return self.sig is not None and ring.verify(
            proposal_digest(self.block_hash, self.view), self.sig
        )

    def wire_size(self) -> int:
        return 40 + SIG_BYTES


#: The bootstrap proposal every replica starts from.
GENESIS_PROPOSAL = Proposal(block_hash=GENESIS.hash, view=-1, sig=None)


# ----------------------------------------------------------------------
# Def. 2 — Store certificates
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StoreCert:
    """``store(v₂, h, v₁)_σ``."""

    stored_view: int  # v2
    block_hash: Digest
    prop_view: int  # v1
    sig: Signature

    def digest(self) -> Digest:
        return store_digest(self.stored_view, self.block_hash, self.prop_view)

    def verify(self, ring: KeyRing) -> bool:
        return ring.verify(self.digest(), self.sig)

    def wire_size(self) -> int:
        return 48 + SIG_BYTES


# ----------------------------------------------------------------------
# Def. 3 — Prepare certificates
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PrepareCert:
    """``prep(v₂, h, v₁)_{σ⃗^{f+1}}`` — f+1 store-cert signatures.

    The instance with ``stored_view == prop_view == -1`` over the
    genesis hash is the bootstrap certificate, valid by convention.
    """

    stored_view: int
    block_hash: Digest
    prop_view: int
    sigs: tuple[Signature, ...]

    @property
    def is_genesis(self) -> bool:
        return (
            self.stored_view == -1
            and self.prop_view == -1
            and self.block_hash == GENESIS.hash
        )

    def signer_ids(self) -> tuple[int, ...]:
        return tuple(s.signer for s in self.sigs)

    def verify(self, ring: KeyRing, quorum: int) -> bool:
        if self.is_genesis:
            return True
        if seen_valid(self, ring, quorum):
            return True
        if len(set(self.signer_ids())) < quorum:
            return False
        digest = store_digest(self.stored_view, self.block_hash, self.prop_view)
        if not ring.verify_all(digest, self.sigs):
            return False
        record_valid(self, ring, quorum)
        return True

    def wire_size(self) -> int:
        return 48 + SIG_BYTES * len(self.sigs)


#: Bootstrap certificate: "genesis was prepared before view 0".
GENESIS_QC = PrepareCert(
    stored_view=-1, block_hash=GENESIS.hash, prop_view=-1, sigs=()
)


# ----------------------------------------------------------------------
# Def. 4 — Votes
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Vote:
    """``vote(h, v)_σ``."""

    block_hash: Digest
    view: int
    sig: Signature

    def verify(self, ring: KeyRing) -> bool:
        return ring.verify(vote_digest(self.block_hash, self.view), self.sig)

    def wire_size(self) -> int:
        return 40 + SIG_BYTES


@dataclass(frozen=True)
class VoteCert:
    """``vc(h, v)_{σ⃗^{f+1}}``."""

    block_hash: Digest
    view: int
    sigs: tuple[Signature, ...]

    def signer_ids(self) -> tuple[int, ...]:
        return tuple(s.signer for s in self.sigs)

    def verify(self, ring: KeyRing, quorum: int) -> bool:
        if seen_valid(self, ring, quorum):
            return True
        if len(set(self.signer_ids())) < quorum:
            return False
        if not ring.verify_all(vote_digest(self.block_hash, self.view), self.sigs):
            return False
        record_valid(self, ring, quorum)
        return True

    def wire_size(self) -> int:
        return 40 + SIG_BYTES * len(self.sigs)


# ----------------------------------------------------------------------
# Def. 5 — Accumulators
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Accumulator:
    """``acc(B, v, h, id⃗)_σ``.

    ``certified`` is the Boolean B: whether the top new-view
    certificate is certified by its own hash (the re-vote-avoidance
    marker of Sec. VI-F(a)).  ``ids`` are the f+1 contributors — used
    by the block-pulling subprotocol.
    """

    certified: bool  # B
    view: int  # v (the stored view of the contributing certificates)
    block_hash: Digest
    ids: tuple[int, ...]
    sig: Signature

    def is_valid(self, ring: KeyRing, quorum: int) -> bool:
        """Def. 5 validity: correct signature + f+1 unique ids."""
        if seen_valid(self, ring, quorum):
            return True
        if len(set(self.ids)) < quorum:
            return False
        ok = ring.verify(
            accumulator_digest(self.certified, self.view, self.block_hash, self.ids),
            self.sig,
        )
        if ok:
            record_valid(self, ring, quorum)
        return ok

    def wire_size(self) -> int:
        return 48 + 4 * len(self.ids) + SIG_BYTES


#: A quorum certificate φ_qc (Sec. VI-B(f)).
QuorumCert = Union[PrepareCert, VoteCert, Accumulator]


def qc_ref(qc: QuorumCert) -> Optional[tuple[int, Digest]]:
    """The ⟨view, hash⟩ pair a quorum certificate is *for*.

    Returns None for a ``B = false`` accumulator, which is not usable
    as a quorum certificate.
    """
    if isinstance(qc, PrepareCert):
        return (qc.stored_view + 1, qc.block_hash)
    if isinstance(qc, VoteCert):
        return (qc.view, qc.block_hash)
    if isinstance(qc, Accumulator):
        if not qc.certified:
            return None
        return (qc.view + 1, qc.block_hash)
    return None


def qc_signer_ids(qc: QuorumCert) -> tuple[int, ...]:
    """The f+1 node ids certifying ``qc`` (targets for block pulls)."""
    if isinstance(qc, Accumulator):
        return qc.ids
    return qc.signer_ids()


def verify_qc(qc: QuorumCert, ring: KeyRing, quorum: int) -> bool:
    if isinstance(qc, Accumulator):
        return qc.is_valid(ring, quorum)
    return qc.verify(ring, quorum)


def qc_verify_cost_sigs(qc: QuorumCert) -> int:
    """How many individual signature checks verifying ``qc`` costs.

    This is *simulated* cost: the number of ECDSA verifications the
    modeled hardware performs, charged to the replica's CPU before
    ``verify`` is called.  The wall-clock verification memos
    (:mod:`repro.crypto.memo`) intentionally do **not** reduce it — a
    real replica cannot skip a signature check just because another
    replica already did it, so the charge depends only on the
    certificate's shape, never on cache state.
    """
    if isinstance(qc, Accumulator):
        return 1
    if isinstance(qc, PrepareCert) and qc.is_genesis:
        return 0
    return len(qc.sigs)


# ----------------------------------------------------------------------
# Def. 6 — New-view certificates
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class NewViewCert:
    """``nv(b, φ_s, φ_qc)``.

    ``block`` may be None under the large-block-omission optimization
    (Sec. VI-F(b)) — the receiver pulls it if needed.
    """

    block: Optional[Block]
    store: StoreCert
    qc: QuorumCert

    def wire_size(self) -> int:
        qc_size = self.qc.wire_size()
        blk = self.block.wire_size() if self.block is not None else 0
        return 8 + blk + self.store.wire_size() + qc_size


#: Either arm of Def. 6.
NewView = Union[PrepareCert, NewViewCert]


def nv_triple(nv: NewView) -> tuple[int, Digest, int]:
    """The ⟨v₂, h, v₁⟩ a new-view certificate is *for* (Def. 6)."""
    if isinstance(nv, PrepareCert):
        return (nv.stored_view, nv.block_hash, nv.prop_view)
    return (nv.store.stored_view, nv.store.block_hash, nv.store.prop_view)


def certifies(h: Digest, nv: NewView) -> bool:
    """Def. 6's ``certifies(h', φ_n)``: the nv certificate's quorum
    certificate is for the very block the store certificate stores."""
    if not isinstance(nv, NewViewCert):
        return False
    ref = qc_ref(nv.qc)
    return ref is not None and ref[1] == nv.store.block_hash == h


def verify_new_view(nv: NewViewCert, ring: KeyRing, quorum: int) -> bool:
    """Structural + cryptographic validity of an nv-form certificate.

    Checks the store certificate's signature, the inner quorum
    certificate, and Def. 6's consistency: either the stored block
    extends the qc's block at the proposal view (timeout after an
    undecided proposal, l.31), or the qc certifies the stored block
    itself (timeout after a decision, l.45).

    The full check is memoized on the (frozen) instance per
    ``(ring, quorum)``: the next leader and every deliver-phase replica
    receive the same certificate object, so it is checked once, not
    once per receiver.  Simulated cost is unaffected — callers charge
    :func:`nv_verify_cost_sigs` regardless.
    """
    if seen_valid(nv, ring, quorum):
        return True
    if not nv.store.verify(ring):
        return False
    if not verify_qc(nv.qc, ring, quorum):
        return False
    ref = qc_ref(nv.qc)
    if ref is None:
        return False
    qc_view, qc_hash = ref
    if qc_hash == nv.store.block_hash:
        # Self-certified (decided in view v₁, qc is for ⟨v₁+1, h⟩).
        if qc_view != nv.store.prop_view + 1:
            return False
    else:
        # Extends case: qc is for ⟨v₁, h'⟩ and b ≻ h'.
        if qc_view != nv.store.prop_view:
            return False
        if nv.block is not None and not nv.block.extends(qc_hash):
            return False
    if nv.block is not None and nv.block.hash != nv.store.block_hash:
        return False
    record_valid(nv, ring, quorum)
    return True


def nv_verify_cost_sigs(nv: NewView) -> int:
    """Signature checks needed to verify a new-view certificate.

    Like :func:`qc_verify_cost_sigs`, this reports *simulated*
    signature-check cost — a pure function of the certificate's shape,
    charged in full whether or not the wall-clock verification memo
    hits (see :mod:`repro.crypto.memo`).
    """
    if isinstance(nv, PrepareCert):
        return qc_verify_cost_sigs(nv)
    return 1 + qc_verify_cost_sigs(nv.qc)


__all__ = [
    "PH0",
    "PH1",
    "SIG_BYTES",
    "Proposal",
    "GENESIS_PROPOSAL",
    "StoreCert",
    "PrepareCert",
    "GENESIS_QC",
    "Vote",
    "VoteCert",
    "Accumulator",
    "QuorumCert",
    "NewView",
    "NewViewCert",
    "proposal_digest",
    "store_digest",
    "vote_digest",
    "accumulator_digest",
    "qc_ref",
    "qc_signer_ids",
    "verify_qc",
    "qc_verify_cost_sigs",
    "nv_triple",
    "certifies",
    "verify_new_view",
    "nv_verify_cost_sigs",
]
