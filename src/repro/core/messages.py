"""OneShot wire messages.

One message type per arrow in Figs. 2-5:

* ``NewViewMsg`` — new-view ½-phase (backup → next leader), l.46/l.52.
* ``ProposalMsg`` — prepare phase (leader → all), l.8.
* ``StoreMsg`` — prepare phase reply (replica → leader), l.33.
* ``PrepCertMsg`` — decide ½-phase (leader → all), l.39.
* ``DeliverMsg`` — deliver phase of catch-up executions (leader → all),
  l.27 / Fig. 5b.
* ``VoteMsg`` — deliver phase reply (replica → leader), Fig. 5b l.6.
* ``PullRequest`` / ``PullReply`` — Fig. 6 block pulling.

``ProposalMsg.exec_kind`` is measurement metadata (which execution type
the leader ran) consumed by the metrics layer only — protocol logic
never branches on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..crypto import Digest
from ..smr import Block
from .certificates import (
    Accumulator,
    NewView,
    NewViewCert,
    PrepareCert,
    Proposal,
    QuorumCert,
    StoreCert,
    Vote,
)


@dataclass(frozen=True)
class NewViewMsg:
    """φ_n sent to the next view's leader."""

    cert: NewView  # PrepareCert | NewViewCert

    def wire_size(self) -> int:
        return 8 + self.cert.wire_size()


@dataclass(frozen=True)
class ProposalMsg:
    """⟨b, φ_p, φ_qc⟩ broadcast by the leader (l.8)."""

    block: Block
    proposal: Proposal
    qc: QuorumCert
    exec_kind: str = "normal"  # metrics metadata only

    def wire_size(self) -> int:
        return 8 + self.block.wire_size() + self.proposal.wire_size() + self.qc.wire_size()


@dataclass(frozen=True)
class StoreMsg:
    """φ_s sent back to the leader (l.33)."""

    cert: StoreCert

    def wire_size(self) -> int:
        return 8 + self.cert.wire_size()


@dataclass(frozen=True)
class PrepCertMsg:
    """φ_c broadcast in the decide ½-phase (l.39).

    Carries the proposal too so replicas that missed the proposal can
    still adopt ``prop`` (and pull the block).
    """

    cert: PrepareCert
    proposal: Proposal

    def wire_size(self) -> int:
        return 8 + self.cert.wire_size() + self.proposal.wire_size()


@dataclass(frozen=True)
class DeliverMsg:
    """⟨acc, φ_0⟩ starting the deliver phase (l.27)."""

    acc: Accumulator
    top: NewViewCert

    def wire_size(self) -> int:
        return 8 + self.acc.wire_size() + self.top.wire_size()


@dataclass(frozen=True)
class VoteMsg:
    """φ_v from the deliver phase (Fig. 5b l.6)."""

    vote: Vote

    def wire_size(self) -> int:
        return 8 + self.vote.wire_size()


@dataclass(frozen=True)
class PullRequest:
    """⟨v, h⟩ pull request (Fig. 6 l.11)."""

    view: int
    block_hash: Digest

    def wire_size(self) -> int:
        return 48


@dataclass(frozen=True)
class PullReply:
    """⟨v, b⟩ pull reply (Fig. 6 l.16)."""

    view: int
    block: Block

    def wire_size(self) -> int:
        return 16 + self.block.wire_size()


__all__ = [
    "NewViewMsg",
    "ProposalMsg",
    "StoreMsg",
    "PrepCertMsg",
    "DeliverMsg",
    "VoteMsg",
    "PullRequest",
    "PullReply",
]
