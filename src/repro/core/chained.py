"""Chained (pipelined) OneShot.

The paper closes with: "As other streamlined protocols, OneShot can be
seamlessly turned into a chained version" (Sec. IX).  This module is
that version.  Per view the leader proposes one block whose quorum
certificate doubles as the *decide* message for the previous block:

* view v's leader broadcasts ⟨b_v, φ_p, φ_c(b_{v-1})⟩ — the embedded
  prepare certificate simultaneously justifies b_v and **commits**
  b_{v-1} (f+1 replicas stored it: OneShot's 1-chain commit rule);
* replicas store b_v and send their store certificates to the *next*
  view's leader, which assembles φ_c(b_v) and proposes b_{v+1}.

A view therefore costs two communication waves instead of four, and a
block is decided every view — roughly doubling throughput at equal
commit latency.  The unhappy paths (timeouts, new-view certificates,
piggyback / accumulator / deliver) are inherited unchanged from the
basic replica: a failed view falls back to exactly Fig. 5's machinery,
and the recovery proposal re-enters the pipeline.
"""

from __future__ import annotations

from typing import Optional

from ..metrics import NORMAL
from .certificates import (
    Accumulator,
    PrepareCert,
    qc_ref,
    qc_verify_cost_sigs,
    verify_qc,
)
from .messages import ProposalMsg, StoreMsg
from .replica import OneShotReplica, Prop


def _qc_commits(qc) -> bool:
    """Whether a proposal's quorum certificate commits its block.

    A prepare certificate or a ``B = true`` accumulator attests that
    f+1 replicas stored the block — OneShot's commit condition.  A vote
    certificate (catch-up deliver phase) only proves one correct node
    holds the block, so the committed prefix waits one more view.
    """
    if isinstance(qc, PrepareCert):
        return not qc.is_genesis
    return isinstance(qc, Accumulator) and qc.certified


class ChainedOneShotReplica(OneShotReplica):
    """Pipelined OneShot: one block per view, two waves per view."""

    PROTOCOL = "oneshot-chained"

    # ------------------------------------------------------------------
    # Prepare phase, replica side: store toward the *next* leader and
    # commit the certificate's block.
    # ------------------------------------------------------------------
    def on_proposal(self, sender: int, msg: ProposalMsg) -> None:
        phi_p = msg.proposal
        v = phi_p.view
        if v < self.view or sender != self.leader_of(v):
            return
        cost = self.config.crypto_costs.verify(
            1 + qc_verify_cost_sigs(msg.qc)
        ) + self.config.crypto_costs.hash(msg.block.wire_size())
        self.charge(cost)
        if not phi_p.verify(self.ring):
            return
        ref = qc_ref(msg.qc)
        if ref is None or not verify_qc(msg.qc, self.ring, self.config.quorum):
            return
        qv, qh = ref
        if qv != v or msg.block.hash != phi_p.block_hash or not msg.block.extends(qh):
            return
        if v > self.view:
            self._advance_to(v)
        if v != self.view:
            return
        self.add_block(msg.block)
        self._proposal_kind[msg.block.hash] = msg.exec_kind
        self.prop = Prop(msg.block, phi_p, msg.qc)
        self.puller.pull(msg.qc)
        # 1-chain commit: the certificate decides the previous block.
        if _qc_commits(msg.qc):
            kind = self._proposal_kind.get(qh, msg.exec_kind)
            self.commit_chain(qh, kind, context=msg.qc)
            self.record_decision_progress()
        self._sync_tee(v)
        phi_s = self.checker.tee_store(phi_p)
        done = self.charge_enclave(self.checker)
        if phi_s is None:
            return
        self._ff_proposal = phi_p
        self.last_store = phi_s
        # Pipelining: the store certificate goes to the NEXT leader.
        self.send_at(done, self.leader_of(v + 1), StoreMsg(phi_s))

    # ------------------------------------------------------------------
    # Next leader: assemble the certificate, enter the view, propose.
    # ------------------------------------------------------------------
    def on_store(self, sender: int, msg: StoreMsg) -> None:
        cert = msg.cert
        v = cert.stored_view
        if (
            cert.prop_view != v
            or self.leader_of(v + 1) != self.pid
            or v + 1 < self.view
        ):
            return
        self.charge(self.config.crypto_costs.verify(1))
        if not cert.verify(self.ring):
            return
        quorum = self._store_tracker.add(
            (v, cert.block_hash), cert.sig.signer, cert
        )
        if quorum is None:
            return
        phi_c = PrepareCert(
            stored_view=v,
            block_hash=cert.block_hash,
            prop_view=v,
            sigs=tuple(c.sig for c in quorum),
        )
        if v + 1 > self.view:
            self._advance_to(v + 1)
        if self.view != v + 1 or self._led_view >= self.view:
            return
        if self._deliver is not None:
            if not self.OPTIONS.preempt_catchup:
                return
            self._deliver = None  # fresher evidence preempts the deliver
        self._propose(cert.block_hash, phi_c, NORMAL)


__all__ = ["ChainedOneShotReplica"]
