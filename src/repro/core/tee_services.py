"""OneShot's trusted services — the CHECKER and ACCUMULATOR (Fig. 5c).

CHECKER state: a ``(view, phase)`` counter and ``prepv`` (the view of
the latest proposed block it stored).  Its guarantees:

* ``TEEprepare`` — at most **one proposal per view** (the phase bit
  flips ``ph₀ → ph₁`` and is only reset by ``TEEstore``);
* ``TEEstore`` — at most **one store certificate per view** (the view
  counter increments), only for verified leader proposals with
  ``view ≥ v ≥ prepv``;
* ``TEEvote`` — votes carry the TEE's current view.

ACCUMULATOR: ``TEEaccum`` verifies f+1 new-view certificates from
distinct signers for the same stored view, asserts the first has the
highest proposal view, and emits a signed accumulator whose Boolean B
records whether that certificate is certified by its own hash
(Sec. VI-F(a), re-vote avoidance).

Unlike Damysus's components (see
:mod:`repro.protocols.damysus.tee_services`), the CHECKER stores only a
*view number* (not a hash) and the ACCUMULATOR is never invoked in
normal executions.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from ..crypto import CryptoCostModel, Digest, KeyPair, KeyRing
from ..smr import GENESIS
from ..tee import Enclave, TeeCostModel
from .certificates import (
    PH0,
    PH1,
    Accumulator,
    NewViewCert,
    Proposal,
    StoreCert,
    Vote,
    accumulator_digest,
    certifies,
    nv_triple,
    proposal_digest,
    store_digest,
    verify_new_view,
    vote_digest,
)


class Checker(Enclave):
    """The per-replica CHECKER service."""

    def __init__(
        self,
        owner: int,
        keypair: KeyPair,
        ring: KeyRing,
        crypto_costs: CryptoCostModel,
        tee_costs: TeeCostModel,
        leader_of: Callable[[int], int],
    ) -> None:
        super().__init__(owner, keypair, ring, crypto_costs, tee_costs)
        self._leader_of = leader_of
        self.view = 0
        self.phase = PH0
        #: View of the latest proposed block stored (genesis = -1).
        self.prepv = -1

    def rebind_leader_map(self, leader_of: Callable[[int], int]) -> None:
        """Replace the view -> leader map used to validate proposals.

        The map is part of the enclave's provisioning, not its mutable
        protocol state, so swapping it (e.g. the staggered rotations of
        the multi-instance experiments) is a supported reconfiguration
        — callers must keep it consistent with the host replica's own
        ``leader_of`` or every proposal check diverges.
        """
        self._leader_of = leader_of

    # -- l.5-8, Fig. 5c -------------------------------------------------
    def tee_prepare(self, h: Digest) -> Optional[Proposal]:
        """Certify a proposal; at most once per view."""
        self._enter()
        if self.phase != PH0:
            return None
        self.phase = PH1
        return Proposal(
            block_hash=h,
            view=self.view,
            sig=self._sign(proposal_digest(h, self.view)),
        )

    # -- l.10-13, Fig. 5c -----------------------------------------------
    def tee_store(self, prop: Proposal) -> Optional[StoreCert]:
        """Store a proposal; increments the view; at most once per view."""
        self._enter()
        if not self._verify_proposal(prop):
            return None
        if not (self.view >= prop.view >= self.prepv):
            return None
        self.prepv = prop.view
        self.view += 1
        self.phase = PH0
        return StoreCert(
            stored_view=self.view - 1,
            block_hash=prop.block_hash,
            prop_view=prop.view,
            sig=self._sign(
                store_digest(self.view - 1, prop.block_hash, prop.view)
            ),
        )

    def _verify_proposal(self, prop: Proposal) -> bool:
        """VERIFY(φ_p) ∧ φ_p is from the leader (of its view)."""
        if prop.is_genesis:
            return prop.block_hash == GENESIS.hash
        if prop.sig is None or prop.sig.signer != self._leader_of(prop.view):
            return False
        return self._verify(proposal_digest(prop.block_hash, prop.view), prop.sig)

    # -- l.21-22, Fig. 5c -----------------------------------------------
    def tee_vote(self, h: Digest) -> Vote:
        """Vote for a block at the TEE's current view (deliver phase)."""
        self._enter()
        return Vote(
            block_hash=h,
            view=self.view,
            sig=self._sign(vote_digest(h, self.view)),
        )

    def tee_vote_batch(self, hs: Sequence[Digest]) -> list[Vote]:
        """Vote for several blocks in a single ecall.

        Semantically ``[tee_vote(h) for h in hs]`` (voting mutates no
        CHECKER state, so the batch is order-insensitive and produces
        bit-identical votes), but the SGX transition overhead is paid
        once for the whole batch instead of once per vote; the crypto
        ledger still charges every signature in full.  Hosts with many
        co-located protocol instances use this to amortize deliver-phase
        voting; an empty batch is rejected rather than charged a free
        transition.
        """
        if not hs:
            raise ValueError("tee_vote_batch needs at least one block hash")
        self._enter()
        view = self.view
        sigs = self._sign_batch([vote_digest(h, view) for h in hs])
        return [
            Vote(block_hash=h, view=view, sig=s) for h, s in zip(hs, sigs)
        ]


class AccumulatorService(Enclave):
    """The per-replica ACCUMULATOR service (used only when leading)."""

    def __init__(
        self,
        owner: int,
        keypair: KeyPair,
        ring: KeyRing,
        crypto_costs: CryptoCostModel,
        tee_costs: TeeCostModel,
        quorum: int,
    ) -> None:
        super().__init__(owner, keypair, ring, crypto_costs, tee_costs)
        self.quorum = quorum

    # -- l.15-19, Fig. 5c -----------------------------------------------
    def tee_accum(
        self, top: NewViewCert, rest: list[NewViewCert]
    ) -> Optional[Accumulator]:
        """Certify that ``top`` carries the highest proposal view.

        ``top`` and every element of ``rest`` must be valid nv-form
        certificates for the same stored view, from f+1 distinct
        signers in total, with ``top``'s proposal view maximal.
        """
        self._enter()
        certs = [top, *rest]
        if len(certs) < self.quorum:
            return None
        signers: list[int] = []
        v2_top, h_top, v1_top = nv_triple(top)
        for nv in certs:
            if not isinstance(nv, NewViewCert):
                return None
            # Cost model: verifying each certificate inside the enclave.
            if not verify_new_view(nv, self._ring, self.quorum):
                return None
            self._charge(
                self._crypto.verify(1 + len(getattr(nv.qc, "sigs", ())))
                * self._tee.crypto_factor
            )
            v2, _, v1 = nv_triple(nv)
            if v2 != v2_top or v1 > v1_top:
                return None
            signers.append(nv.store.sig.signer)
        if len(set(signers)) < self.quorum:
            return None
        ids = tuple(signers)
        certified = certifies(h_top, top)
        return Accumulator(
            certified=certified,
            view=v2_top,
            block_hash=h_top,
            ids=ids,
            sig=self._sign(
                accumulator_digest(certified, v2_top, h_top, ids)
            ),
        )


__all__ = ["Checker", "AccumulatorService"]
