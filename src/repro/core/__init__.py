"""OneShot — the paper's primary contribution.

Certificates (Defs 1-6), trusted services (CHECKER / ACCUMULATOR,
Fig. 5c), the replica state machine (Fig. 5a/5b), the block-pulling
subprotocol (Fig. 6) and the Sec. VI-F optimizations.
"""

from .certificates import (
    GENESIS_PROPOSAL,
    GENESIS_QC,
    Accumulator,
    NewView,
    NewViewCert,
    PrepareCert,
    Proposal,
    QuorumCert,
    StoreCert,
    Vote,
    VoteCert,
    certifies,
    nv_triple,
    qc_ref,
    qc_signer_ids,
    verify_new_view,
    verify_qc,
)
from .messages import (
    DeliverMsg,
    NewViewMsg,
    PrepCertMsg,
    ProposalMsg,
    PullReply,
    PullRequest,
    StoreMsg,
    VoteMsg,
)
from .pulling import Puller
from .replica import OneShotOptions, OneShotReplica, Prop, oneshot_with_options
from .tee_services import AccumulatorService, Checker

__all__ = [
    "GENESIS_PROPOSAL",
    "GENESIS_QC",
    "Accumulator",
    "NewView",
    "NewViewCert",
    "PrepareCert",
    "Proposal",
    "QuorumCert",
    "StoreCert",
    "Vote",
    "VoteCert",
    "certifies",
    "nv_triple",
    "qc_ref",
    "qc_signer_ids",
    "verify_new_view",
    "verify_qc",
    "DeliverMsg",
    "NewViewMsg",
    "PrepCertMsg",
    "ProposalMsg",
    "PullReply",
    "PullRequest",
    "StoreMsg",
    "VoteMsg",
    "Puller",
    "OneShotOptions",
    "OneShotReplica",
    "Prop",
    "oneshot_with_options",
    "AccumulatorService",
    "Checker",
]
