"""Block-pulling subprotocol (Fig. 6).

When a replica learns of a block hash through a quorum certificate but
has never received the block, it pulls it from one of the f+1 nodes
that certified the hash — at least one of which is correct and holds
the block.  Anti-DoS rule (Sec. VI-E): a node answers a given
requester's pull for a given block at most once.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..crypto import Digest
from .certificates import QuorumCert, qc_signer_ids
from .messages import PullRequest, PullReply

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .replica import OneShotReplica


class Puller:
    """Pull-state attached to a replica.

    The paper piggybacks pull requests/replies onto protocol messages;
    we send them as (small) standalone messages, which preserves the
    message count within a constant and keeps the logic explicit.
    """

    #: Re-ask a different certifier if no reply within this long.
    RETRY_S = 1.0

    def __init__(self, replica: "OneShotReplica") -> None:
        self.replica = replica
        #: hash -> (view, candidate ids, next candidate index)
        self.pulling: dict[Digest, tuple[int, tuple[int, ...], int]] = {}
        #: (requester, hash) pairs already answered (anti-DoS).
        self.served: set[tuple[int, Digest]] = set()

    # -- Fig. 6 l.3-7 ----------------------------------------------------
    def pull(self, qc: QuorumCert) -> None:
        """Start pulling the block a quorum certificate is for."""
        from .certificates import qc_ref

        ref = qc_ref(qc)
        if ref is None:
            return
        view, h = ref
        self.pull_hash(view, h, qc_signer_ids(qc))

    def pull_hash(self, view: int, h: Digest, ids: tuple[int, ...]) -> None:
        r = self.replica
        if r.log.is_executed(h) or h in r.store or h in self.pulling:
            return
        candidates = tuple(i for i in ids if i != r.pid) or ids
        self.pulling[h] = (view, candidates, 0)
        self._ask(h)

    def _ask(self, h: Digest) -> None:
        entry = self.pulling.get(h)
        if entry is None:
            return
        view, candidates, idx = entry
        target = candidates[idx % len(candidates)]
        self.pulling[h] = (view, candidates, idx + 1)
        r = self.replica
        r.network.send(r.pid, target, PullRequest(view=view, block_hash=h))
        r.after(self.RETRY_S, self._retry, h)

    def _retry(self, h: Digest) -> None:
        if h in self.pulling and not self.replica.stopped:
            self._ask(h)

    # -- Fig. 6 l.13-16 ---------------------------------------------------
    def on_pull_request(self, sender: int, msg: PullRequest) -> None:
        key = (sender, msg.block_hash)
        if key in self.served:
            return
        block = self.replica.store.get(msg.block_hash)
        if block is None:
            return
        self.served.add(key)
        done = self.replica.charge(self.replica.config.handler_overhead)
        self.replica.send_at(done, sender, PullReply(view=msg.view, block=block))

    # -- Fig. 6 l.18-20 ---------------------------------------------------
    def on_pull_reply(self, sender: int, msg: PullReply) -> None:
        r = self.replica
        h = msg.block.hash
        r.charge(r.config.crypto_costs.hash(msg.block.wire_size()))
        if h in self.pulling:
            del self.pulling[h]
        r.add_block(msg.block)


__all__ = ["Puller"]
