#!/usr/bin/env python
"""Chained (pipelined) OneShot vs the basic protocol.

The paper's conclusion notes that OneShot "can be seamlessly turned
into a chained version".  This example runs both side by side and then
prints the chained pipeline's message timeline: each view costs only a
proposal wave and a store wave, because the next proposal carries the
certificate that decides the previous block.

Run:  python examples/chained_pipeline.py
"""

from repro.metrics import compute_stats, extract_waves, render_timeline
from repro.net import ConstantLatency, Network
from repro.protocols.common import ProtocolConfig, build_cluster
from repro.protocols.registry import get_protocol
from repro.sim import Simulator


def run(protocol: str, log: bool = False):
    info = get_protocol(protocol)
    sim = Simulator(seed=11)
    network = Network(sim, latency=ConstantLatency(0.005))
    if log:
        network.enable_log()
    cluster = build_cluster(
        info.replica_cls, sim, network, ProtocolConfig(n=5, f=2)
    )
    cluster.start()
    sim.run(until=2.0)
    cluster.stop()
    return cluster, network


def main() -> None:
    print("Basic vs chained OneShot — N=5 (f=2), 5 ms links, 2 sim-seconds\n")
    results = {}
    for protocol in ("oneshot", "oneshot-chained"):
        cluster, network = run(protocol, log=(protocol == "oneshot-chained"))
        stats = compute_stats(cluster.collector)
        results[protocol] = (stats, network)
        print(f"{protocol:17s} {stats}")

    basic = results["oneshot"][0]
    chained, network = results["oneshot-chained"]
    gain = (chained.throughput_tps / basic.throughput_tps - 1) * 100
    print(f"\npipelining gain: +{gain:.0f}% throughput at similar latency\n")

    waves = extract_waves(network.message_log, first_view=3, last_view=5)
    print(render_timeline(waves, title="chained pipeline, views 3-5:"))
    print(
        "\nNote the pattern: store(v) flows to the NEXT leader, whose"
        "\nproposal(v+1) both extends and decides block v — no separate"
        "\ndecide broadcast, one block per view."
    )


if __name__ == "__main__":
    main()
