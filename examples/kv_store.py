#!/usr/bin/env python
"""A replicated key-value store on top of OneShot.

Three clients submit ``set``/``add`` operations over the simulated
network; replicas order them through consensus and apply them to their
deterministic KV state machines.  Because OneShot replies carry the
prepare certificate, a client trusts the *first* reply it receives
(Sec. VI-C) — no f+1 reply quorum needed.

Run:  python examples/kv_store.py
"""

from repro.core import OneShotReplica
from repro.net import ConstantLatency, Network
from repro.protocols.common import ProtocolConfig, build_cluster
from repro.sim import Simulator
from repro.smr import Client


def main() -> None:
    sim = Simulator(seed=7)
    network = Network(sim, latency=ConstantLatency(0.004))
    config = ProtocolConfig(n=5, f=2)

    # saturated=False: blocks carry only real client transactions.
    cluster = build_cluster(
        OneShotReplica, sim, network, config, saturated=False
    )
    replica_pids = [r.pid for r in cluster.replicas]
    clients = [
        Client(
            sim,
            network,
            pid=1000 + i,
            replica_pids=replica_pids,
            f=config.f,
            payload_bytes=32,
            certified_replies=True,  # single-reply trust (OneShot)
        )
        for i in range(3)
    ]
    cluster.start()

    # A scripted workload: each client writes its own keys, then all
    # increment one shared counter.
    txs = []
    def submit_all() -> None:
        for i, c in enumerate(clients):
            txs.append(c.submit(("set", f"owner:{i}", f"client-{c.pid}")))
            txs.append(c.submit(("add", "counter", 1)))
            txs.append(c.submit(("set", f"color:{i}", ["red", "green", "blue"][i])))
    sim.schedule(0.010, submit_all)

    sim.run(until=3.0)
    cluster.stop()

    print("Replicated KV store on OneShot (3 clients, 9 transactions)")
    committed = sum(1 for t in txs if clients[t.client_id - 1000].latency(t) is not None)
    print(f"  committed {committed}/{len(txs)} transactions")
    for t in txs[:3]:
        lat = clients[t.client_id - 1000].latency(t)
        print(f"  tx {t.key()} op={t.op!r:32s} latency={lat * 1e3:.1f} ms")

    print("  state on every replica:")
    for r in cluster.replicas:
        kv = r.log.state
        print(
            f"    r{r.pid}: counter={kv.get('counter')} "
            f"owner:0={kv.get('owner:0')!r} digest={kv.state_digest().hex()[:12]}"
        )
    digests = {r.log.state.state_digest() for r in cluster.replicas}
    print(f"  all replicas converged to one state: {len(digests) == 1}")


if __name__ == "__main__":
    main()
