#!/usr/bin/env python
"""Compare OneShot, Damysus and HotStuff across AWS deployments.

A miniature of the paper's Fig. 7: every protocol runs on the EU, US
and world-wide region topologies (f=2, 0 B payloads) and the script
prints throughput/latency side by side.

Run:  python examples/region_comparison.py
"""

from repro.experiments import ExperimentConfig, run_experiment


def main() -> None:
    f = 2
    print(f"f={f}, 0B payloads, 400-tx blocks, 20 decided blocks per run\n")
    header = f"{'deployment':12s} {'protocol':10s} {'throughput':>12s} {'latency':>10s}"
    print(header)
    print("-" * len(header))
    for deployment in ("eu", "us", "world"):
        for protocol in ("hotstuff", "damysus", "oneshot"):
            cfg = ExperimentConfig(
                protocol=protocol,
                f=f,
                deployment=deployment,
                target_blocks=20,
                seed=5,
            )
            stats = run_experiment(cfg).stats
            print(
                f"{deployment:12s} {protocol:10s} "
                f"{stats.throughput_tps:>9,.0f} tx/s "
                f"{stats.mean_latency_s * 1e3:>7.1f} ms"
            )
        print()
    print("Expected shape (paper Sec. VIII): OneShot > Damysus > HotStuff in")
    print("throughput and the reverse in latency, in every deployment.")


if __name__ == "__main__":
    main()
