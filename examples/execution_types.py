#!/usr/bin/env python
"""The three OneShot execution types, traced message by message.

Forces a normal, a piggyback and a catch-up execution (Figs. 2-4) and
prints each one's communication steps as measured from the network's
message log — reproducing the Sec. V table:

    normal      1 block  / 4 steps
    piggyback   2 blocks / 6 steps
    catch-up    2 blocks / 8 steps

Run:  python examples/execution_types.py
"""

from repro.experiments.steps_table import (
    PAPER_STEPS,
    measure_execution,
    render_steps_table,
    steps_table,
)
from repro.metrics import CATCHUP, NORMAL, PIGGYBACK

DESCRIPTIONS = {
    NORMAL: "the leader knows the previous view's prepare certificate",
    PIGGYBACK: (
        "the previous leader crashed after f+1 replicas stored its block; "
        "the new leader reconstructs the certificate and piggybacks"
    ),
    CATCHUP: (
        "the previous leader reached fewer than f+1 replicas; the new "
        "leader runs the deliver phase before proposing"
    ),
}


def main() -> None:
    rows = steps_table()
    print(render_steps_table(rows))
    print()
    for row in rows:
        print(f"{row.kind}: {DESCRIPTIONS[row.kind]}")
        for step, view in row.waves:
            print(f"    view {view}: {step}")
        blocks, steps = PAPER_STEPS[row.kind]
        status = "matches" if row.matches_paper else "DIFFERS FROM"
        print(
            f"    -> {row.blocks} block(s) in {row.steps} steps "
            f"({status} the paper's {blocks}/{steps})\n"
        )


if __name__ == "__main__":
    main()
