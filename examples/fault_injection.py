#!/usr/bin/env python
"""Byzantine behaviour under OneShot: faults happen, safety holds.

Runs a 7-replica OneShot cluster (f=3) with three simultaneously
faulty replicas — one crashed, one silent-when-leading, one that keeps
*attempting* to equivocate (and is stopped by its CHECKER every time) —
and shows that the correct replicas keep agreeing and keep deciding.

Run:  python examples/fault_injection.py
"""

from repro.core import OneShotReplica
from repro.faults import FaultPlan
from repro.metrics import compute_stats
from repro.net import ConstantLatency, Network
from repro.protocols.common import ProtocolConfig, build_cluster
from repro.sim import Simulator
from repro.smr import prefix_agreement


def main() -> None:
    sim = Simulator(seed=13)
    network = Network(sim, latency=ConstantLatency(0.005))
    config = ProtocolConfig(n=7, f=3, timeout_base=0.25)

    plan = (
        FaultPlan()
        .add(1, "crashed", start=0.5)
        .add(3, "silent-leader")
        .add(5, "equivocate")
    )
    cluster = build_cluster(
        OneShotReplica,
        sim,
        network,
        config,
        replica_factory=plan.factory(),
    )
    cluster.start()
    sim.run(until=8.0)
    cluster.stop()

    stats = compute_stats(cluster.collector)
    correct = cluster.correct_replicas()
    print("OneShot N=7 (f=3) with 3 faulty replicas:")
    print("  r1 crashes at t=0.5s, r3 is silent whenever it leads,")
    print("  r5 attempts a second proposal in every view it leads\n")
    print(f"  {stats}")
    print(f"  correct replicas: {[r.pid for r in correct]}")
    print(
        "  common-prefix agreement among correct replicas: "
        f"{prefix_agreement([r.log for r in correct])}"
    )
    equivocator = cluster.replicas[5]
    print(
        f"  r5 equivocation attempts: {equivocator.equivocation_attempts}, "
        f"successes: {equivocator.equivocation_successes} "
        "(the CHECKER allows one proposal per view)"
    )
    kinds = cluster.collector.execution_kinds()
    by_kind = {k: sum(1 for v in kinds.values() if v == k) for k in set(kinds.values())}
    print(f"  execution kinds observed: {by_kind}")
    print(f"  timed-out views: {stats.timeouts // max(1, len(correct))}")


if __name__ == "__main__":
    main()
