#!/usr/bin/env python
"""Quickstart: run a 5-replica OneShot cluster and watch it decide.

Builds a cluster tolerating f=2 Byzantine faults (N = 2f+1 = 5), runs
it for two simulated seconds on a 5 ms network, and prints the decided
chain and headline metrics.

Run:  python examples/quickstart.py
"""

from repro.core import OneShotReplica
from repro.metrics import compute_stats
from repro.net import ConstantLatency, Network
from repro.protocols.common import ProtocolConfig, build_cluster
from repro.sim import Simulator
from repro.smr import prefix_agreement


def main() -> None:
    sim = Simulator(seed=42)
    network = Network(sim, latency=ConstantLatency(0.005))
    config = ProtocolConfig(n=5, f=2)

    cluster = build_cluster(
        OneShotReplica, sim, network, config, payload_bytes=0
    )
    cluster.start()
    sim.run(until=2.0)
    cluster.stop()

    stats = compute_stats(cluster.collector)
    print("OneShot, N=5 (f=2), constant 5 ms links, 2 simulated seconds")
    print(f"  {stats}")
    print(f"  replicas agree on a common prefix: {prefix_agreement(cluster.logs())}")

    head = cluster.replicas[0].log
    print(f"  replica 0 decided {len(head)} blocks; last five:")
    for block in head.blocks[-5:]:
        print(
            f"    view {block.view:3d}  {block.hash.hex()[:12]}  "
            f"{len(block.txs)} txs  (proposed by r{block.proposer})"
        )

    kinds = cluster.collector.execution_kinds()
    by_kind = {k: sum(1 for v in kinds.values() if v == k) for k in set(kinds.values())}
    print(f"  execution kinds: {by_kind}")


if __name__ == "__main__":
    main()
