#!/usr/bin/env python
"""Parallel OneShot instances on shared machines.

Gupta et al. ("Dissecting BFT Consensus", EuroSys'23) point out that
2f+1 hybrid protocols lack parallelism; the paper answers that
parallel executions address it (Sec. II).  This example runs k
independent OneShot instances whose i-th replicas share machine i's
single core and NIC, with leader rotation staggered so the k
simultaneous leaders land on different machines.

Run:  python examples/parallel_instances.py
"""

from repro.experiments.parallel import render_parallel, run_parallel_scaling
from repro.smr import prefix_agreement


def main() -> None:
    print("k independent OneShot instances, N=3 machines (f=1), 2ms links\n")
    scaling = run_parallel_scaling(ks=(1, 2, 4, 8), sim_time=2.0)
    print(render_parallel(scaling))

    for k, run in sorted(scaling.runs.items()):
        ok = all(prefix_agreement(c.logs()) for c in run.clusters)
        assert ok
    print("\nEvery instance maintained agreement independently.")
    print(
        "Aggregate throughput scales with k until the shared core"
        " saturates (busiest core -> 100%), then extra instances only"
        " add latency — the trade-off the objection and the paper's"
        " reply are about."
    )


if __name__ == "__main__":
    main()
