"""Property tests: CHECKER counter invariants under arbitrary call
sequences — the heart of the hybrid fault model (Lemma 1 relies on
exactly these)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.certificates import GENESIS_PROPOSAL, proposal_digest
from repro.core.tee_services import Checker
from repro.crypto import FREE, digest_of
from repro.tee import TeeCostModel, provision

N = 4
CREDS = provision(N)
RING = CREDS[0].ring


def leader_of(view):
    return view % N


def fresh_checker(owner=0):
    return Checker(
        owner, CREDS[owner].keypair, RING, FREE, TeeCostModel.free(), leader_of
    )


call = st.one_of(
    st.tuples(st.just("prepare"), st.integers(0, 5)),
    st.tuples(st.just("store_genesis"), st.just(0)),
    st.tuples(st.just("store_signed"), st.integers(0, 8)),
    st.tuples(st.just("vote"), st.integers(0, 5)),
)


def run_calls(checker, calls):
    proposals, stores, votes = [], [], []
    for kind, arg in calls:
        if kind == "prepare":
            p = checker.tee_prepare(digest_of("blk", arg))
            if p is not None:
                proposals.append(p)
        elif kind == "store_genesis":
            s = checker.tee_store(GENESIS_PROPOSAL)
            if s is not None:
                stores.append(s)
        elif kind == "store_signed":
            from repro.core.certificates import Proposal

            view = arg
            h = digest_of("signed", arg)
            sig = CREDS[leader_of(view)].keypair.sign(proposal_digest(h, view))
            s = checker.tee_store(Proposal(h, view, sig))
            if s is not None:
                stores.append(s)
        elif kind == "vote":
            votes.append(checker.tee_vote(digest_of("v", arg)))
    return proposals, stores, votes


@given(st.lists(call, max_size=30))
def test_view_monotonic_and_one_store_per_view(calls):
    checker = fresh_checker()
    _, stores, _ = run_calls(checker, calls)
    stored_views = [s.stored_view for s in stores]
    # Strictly increasing: one store certificate per view, ever.
    assert stored_views == sorted(set(stored_views))


@given(st.lists(call, max_size=30))
def test_at_most_one_proposal_per_view(calls):
    checker = fresh_checker()
    proposals, _, _ = run_calls(checker, calls)
    views = [p.view for p in proposals]
    assert len(views) == len(set(views))


@given(st.lists(call, max_size=30))
def test_prepv_monotonic(calls):
    checker = fresh_checker()
    prepvs = []
    for c in calls:
        run_calls(checker, [c])
        prepvs.append(checker.prepv)
    assert prepvs == sorted(prepvs)


@given(st.lists(call, max_size=30))
def test_stored_proposal_view_never_below_prepv(calls):
    checker = fresh_checker()
    _, stores, _ = run_calls(checker, calls)
    best = -1
    for s in stores:
        assert s.prop_view >= best
        best = max(best, s.prop_view)


@given(st.lists(call, max_size=30))
def test_all_emitted_certificates_verify(calls):
    checker = fresh_checker()
    proposals, stores, votes = run_calls(checker, calls)
    assert all(p.verify(RING) for p in proposals)
    assert all(s.verify(RING) for s in stores)
    assert all(v.verify(RING) for v in votes)
