"""Property tests: vectorized multicast ≡ per-destination send.

The multicast fast path (batched ``sample_many`` draws, bulk
``schedule_many`` insert) must be *observationally identical* to the
scalar reference — one :meth:`Network._send_one` per destination in
destination order.  "Identical" means bit-equal envelopes (send and
delivery times, seq numbers, sizes), equal NIC occupancy, and the
same per-link FIFO ordering, across jittered latency models, FIFO
links on/off, loopback destinations mixed into the vector, and the
pre-GST fallback where extra-delay draws interleave with latency
draws on the same RNG stream.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import Network, UniformLatency
from repro.net.latency import ConstantLatency, TopologyLatency
from repro.net.message import HEADER_BYTES, payload_size
from repro.net.regions import WORLD11
from repro.sim import Process, Simulator


class _Sink(Process):
    def on_message(self, sender, payload):
        pass


def _net(n, latency, fifo, seed, pre_gst=0.0, gst=0.0):
    sim = Simulator(seed=seed)
    network = Network(
        sim, latency=latency, fifo_links=fifo, gst=gst, pre_gst_extra=pre_gst
    )
    network.enable_log()
    for pid in range(n):
        network.register(_Sink(sim, pid))
    return sim, network


def _scalar_reference(network, sim, src, dsts, payload):
    """The pre-fast-path multicast body: one _send_one per dst."""
    size = payload_size(payload) + HEADER_BYTES
    now = sim.now
    return [network._send_one(src, dst, payload, size, now) for dst in dsts]


def _env_tuple(env):
    return (env.src, env.dst, env.size, env.send_time, env.deliver_time, env.seq)


N = 7

latencies = st.sampled_from(
    [
        ConstantLatency(0.002),
        UniformLatency(0.001, 0.01),
        TopologyLatency(WORLD11, sigma=0.06),
        TopologyLatency(WORLD11, sigma=0.0),
    ]
)
dst_vectors = st.lists(
    st.integers(min_value=0, max_value=N - 1), min_size=1, max_size=12
)


@settings(max_examples=60, deadline=None)
@given(
    latency=latencies,
    fifo=st.booleans(),
    seed=st.integers(min_value=0, max_value=50),
    rounds=st.lists(dst_vectors, min_size=1, max_size=4),
)
def test_multicast_bit_identical_to_scalar_sends(latency, fifo, seed, rounds):
    """Same seed, same rounds of fan-out: the fast path and the scalar
    loop must produce bit-equal logs, NIC state, and link clocks."""
    sim_a, net_a = _net(N, latency, fifo, seed)
    sim_b, net_b = _net(N, latency, fifo, seed)
    for dsts in rounds:
        net_a.multicast(0, dsts, "payload")
        _scalar_reference(net_b, sim_b, 0, dsts, "payload")
        sim_a.run()
        sim_b.run()
    assert [_env_tuple(e) for e in net_a.message_log] == [
        _env_tuple(e) for e in net_b.message_log
    ]
    nic_a, nic_b = net_a.nic(0), net_b.nic(0)
    assert nic_a.busy_until == nic_b.busy_until
    assert nic_a.total_busy == nic_b.total_busy
    assert nic_a.jobs == nic_b.jobs
    assert net_a._link_clock == net_b._link_clock
    assert net_a.messages_sent == net_b.messages_sent
    assert net_a.bytes_sent == net_b.bytes_sent


@settings(max_examples=40, deadline=None)
@given(
    latency=latencies,
    seed=st.integers(min_value=0, max_value=50),
    rounds=st.lists(dst_vectors, min_size=1, max_size=4),
)
def test_pre_gst_fallback_matches_scalar_interleaving(latency, seed, rounds):
    """Before GST with extra delay, latency and extra-delay draws
    interleave per destination on the same stream — multicast must take
    the scalar path and reproduce that interleaving exactly."""
    sim_a, net_a = _net(N, latency, True, seed, pre_gst=0.3, gst=10_000.0)
    sim_b, net_b = _net(N, latency, True, seed, pre_gst=0.3, gst=10_000.0)
    for dsts in rounds:
        net_a.multicast(0, dsts, "payload")
        _scalar_reference(net_b, sim_b, 0, dsts, "payload")
        sim_a.run()
        sim_b.run()
    assert [_env_tuple(e) for e in net_a.message_log] == [
        _env_tuple(e) for e in net_b.message_log
    ]


draw_free_latencies = st.sampled_from(
    [ConstantLatency(0.002), TopologyLatency(WORLD11, sigma=0.0)]
)


@settings(max_examples=40, deadline=None)
@given(
    latency=draw_free_latencies,
    seed=st.integers(min_value=0, max_value=50),
    rounds=st.lists(dst_vectors, min_size=1, max_size=4),
)
def test_pre_gst_batched_extras_match_scalar_draws(latency, seed, rounds):
    """With a *draw-free* latency model, pre-GST extras are the only
    draws on the net stream, so the fast path batches them in one
    uniform request — which must be stream-identical to the scalar
    path's one-draw-per-destination interleaving."""
    sim_a, net_a = _net(N, latency, False, seed, pre_gst=0.3, gst=10_000.0)
    sim_b, net_b = _net(N, latency, False, seed, pre_gst=0.3, gst=10_000.0)
    for dsts in rounds:
        net_a.multicast(0, dsts, "payload")
        _scalar_reference(net_b, sim_b, 0, dsts, "payload")
        sim_a.run()
        sim_b.run()
    assert [_env_tuple(e) for e in net_a.message_log] == [
        _env_tuple(e) for e in net_b.message_log
    ]


@settings(max_examples=40, deadline=None)
@given(
    latency=latencies,
    pre_gst=st.booleans(),
    seed=st.integers(min_value=0, max_value=50),
    rounds=st.lists(dst_vectors, min_size=1, max_size=4),
)
def test_delay_hooks_compose_with_fast_path(latency, pre_gst, seed, rounds):
    """Deterministic delay hooks (the DelayHook contract: no network-RNG
    draws) must not force the scalar path — batched multicast with hooks
    installed stays bit-identical to the per-destination reference,
    including hook extras clamped at zero and stacked hooks."""
    extra = 0.3 if pre_gst else 0.0
    gst = 10_000.0 if pre_gst else 0.0
    sim_a, net_a = _net(N, latency, False, seed, pre_gst=extra, gst=gst)
    sim_b, net_b = _net(N, latency, False, seed, pre_gst=extra, gst=gst)
    hooks = [
        lambda now, s, d, size: ((s * 7 + d * 13) % 5) * 1e-4,
        lambda now, s, d, size: -1.0 if d % 2 else 0.002,  # clamped to 0
    ]
    net_a.delay_hooks.extend(hooks)
    net_b.delay_hooks.extend(hooks)
    for dsts in rounds:
        net_a.multicast(0, dsts, "payload")
        _scalar_reference(net_b, sim_b, 0, dsts, "payload")
        sim_a.run()
        sim_b.run()
    assert [_env_tuple(e) for e in net_a.message_log] == [
        _env_tuple(e) for e in net_b.message_log
    ]
    assert net_a.nic(0).busy_until == net_b.nic(0).busy_until


@settings(max_examples=40, deadline=None)
@given(
    latency=latencies,
    seed=st.integers(min_value=0, max_value=50),
    rounds=st.lists(dst_vectors, min_size=1, max_size=5),
)
def test_fifo_links_never_reorder_within_a_link(latency, seed, rounds):
    """With fifo_links, delivery times on each (src, dst) link are
    monotone in send order — the fast path keeps the link clock."""
    sim, network = _net(N, latency, True, seed)
    for dsts in rounds:
        network.multicast(0, dsts, "payload")
        sim.run()
    last = {}
    for env in network.message_log:
        link = (env.src, env.dst)
        if link in last:
            assert env.deliver_time >= last[link]
        last[link] = env.deliver_time
