"""Property tests: quorum tracker correctness over random add streams."""

from hypothesis import given
from hypothesis import strategies as st

from repro.protocols.common import QuorumTracker

adds = st.lists(
    st.tuples(st.integers(0, 2), st.integers(0, 9)),  # (key, signer)
    max_size=50,
)


@given(adds, st.integers(1, 5))
def test_fires_exactly_at_threshold_of_distinct_signers(stream, threshold):
    tracker = QuorumTracker(threshold)
    seen: dict[int, set[int]] = {}
    fired: set[int] = set()
    for key, signer in stream:
        result = tracker.add(key, signer, (key, signer))
        distinct = seen.setdefault(key, set())
        is_new = signer not in distinct and key not in fired
        distinct.add(signer)
        if result is not None:
            # Fired: exactly when the distinct count first reaches the
            # threshold, with exactly `threshold` items.
            assert key not in fired
            assert is_new
            assert len(distinct) == threshold
            assert len(result) == threshold
            assert len({s for _, s in result}) == threshold
            fired.add(key)
        else:
            assert key in fired or len(distinct) < threshold or not is_new


@given(adds, st.integers(1, 5))
def test_never_fires_twice(stream, threshold):
    tracker = QuorumTracker(threshold)
    fire_counts: dict[int, int] = {}
    for key, signer in stream:
        if tracker.add(key, signer, signer) is not None:
            fire_counts[key] = fire_counts.get(key, 0) + 1
    assert all(c == 1 for c in fire_counts.values())


@given(adds)
def test_count_matches_distinct_signers(stream):
    tracker = QuorumTracker(1000)  # never fires
    seen: dict[int, set[int]] = {}
    for key, signer in stream:
        tracker.add(key, signer, signer)
        seen.setdefault(key, set()).add(signer)
    for key, signers in seen.items():
        assert tracker.count(key) == len(signers)
