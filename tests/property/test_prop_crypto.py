"""Property tests: the simulated signature scheme behaves like EUF-CMA."""

from hypothesis import given
from hypothesis import strategies as st

from repro.crypto import KeyPair, KeyRing, Signature, sha256
from repro.tee import provision

CREDS = provision(5)
RING = CREDS[0].ring


@given(st.binary(min_size=1, max_size=64), st.integers(0, 4))
def test_roundtrip(data, owner):
    d = sha256(data)
    sig = CREDS[owner].keypair.sign(d)
    assert RING.verify(d, sig)
    assert sig.signer == owner


@given(st.binary(min_size=1, max_size=64), st.binary(min_size=1, max_size=64), st.integers(0, 4))
def test_tampered_message_rejected(data, other, owner):
    if sha256(data) == sha256(other):
        return
    sig = CREDS[owner].keypair.sign(sha256(data))
    assert not RING.verify(sha256(other), sig)


@given(st.binary(min_size=1, max_size=64), st.integers(0, 4), st.integers(0, 4))
def test_signer_reattribution_rejected(data, owner, claimed):
    if owner == claimed:
        return
    d = sha256(data)
    sig = CREDS[owner].keypair.sign(d)
    assert not RING.verify(d, Signature(claimed, sig.tag))


@given(st.binary(min_size=32, max_size=32), st.integers(0, 4))
def test_random_tags_rejected(tag, owner):
    d = sha256(b"message")
    real = CREDS[owner].keypair.sign(d)
    if tag == real.tag:
        return
    assert not RING.verify(d, Signature(owner, tag))


@given(st.binary(min_size=1, max_size=64))
def test_cross_instance_keys_disjoint(data):
    """Keys from a different provisioning domain never verify."""
    d = sha256(data)
    stranger = KeyPair.generate(0, master_seed=0, domain="other-world")
    assert not RING.verify(d, stranger.sign(d))
