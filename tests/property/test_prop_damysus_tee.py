"""Property tests: Damysus CHECKER invariants under arbitrary calls."""

from hypothesis import given
from hypothesis import strategies as st

from repro.crypto import FREE, digest_of
from repro.protocols.damysus.certificates import (
    COMMIT,
    PREPARE,
    DamCert,
    vote_digest,
)
from repro.protocols.damysus.tee_services import DamysusChecker
from repro.tee import TeeCostModel, provision

N = 4
QUORUM = 3
CREDS = provision(N)
RING = CREDS[0].ring


def fresh():
    return DamysusChecker(
        0, CREDS[0].keypair, RING, FREE, TeeCostModel.free(), QUORUM
    )


def prep_cert(h, view):
    d = vote_digest(h, view, PREPARE)
    return DamCert(h, view, PREPARE, tuple(CREDS[o].keypair.sign(d) for o in (1, 2, 3)))


call = st.one_of(
    st.tuples(st.just("new_view"), st.integers(0, 6)),
    st.tuples(st.just("prepare"), st.integers(0, 3)),
    st.tuples(st.just("vote"), st.integers(0, 3)),
    st.tuples(st.just("store"), st.integers(0, 6)),
)


def drive(checker, calls):
    commitments, proposals, votes = [], [], []
    for kind, arg in calls:
        if kind == "new_view":
            c = checker.new_view(arg)
            if c is not None:
                commitments.append(c)
        elif kind == "prepare":
            p = checker.tee_prepare(digest_of("b", arg))
            if p is not None:
                proposals.append(p)
        elif kind == "vote":
            v = checker.tee_vote_prepare(digest_of("b", arg))
            if v is not None:
                votes.append(v)
        elif kind == "store":
            h = digest_of("b", arg % 4)
            checker.tee_store(prep_cert(h, arg))
    return commitments, proposals, votes


@given(st.lists(call, max_size=25))
def test_commitment_views_strictly_increase(calls):
    commitments, _, _ = drive(fresh(), calls)
    views = [c.view for c in commitments]
    assert views == sorted(set(views))


@given(st.lists(call, max_size=25))
def test_one_proposal_and_one_vote_per_view(calls):
    _, proposals, votes = drive(fresh(), calls)
    assert len({p.view for p in proposals}) == len(proposals)
    assert len({v.view for v in votes}) == len(votes)


@given(st.lists(call, max_size=25))
def test_prepared_pair_only_advances(calls):
    checker = fresh()
    pairs = []
    for c in calls:
        drive(checker, [c])
        pairs.append(checker.prep_view)
    assert pairs == sorted(pairs)


@given(st.lists(call, max_size=25))
def test_all_emitted_certificates_verify(calls):
    commitments, proposals, votes = drive(fresh(), calls)
    assert all(c.verify(RING) for c in commitments)
    assert all(p.verify(RING) for p in proposals)
    assert all(v.verify(RING) for v in votes)


@given(st.lists(call, max_size=25))
def test_store_only_after_vote_in_same_view(calls):
    """A commit vote (tee_store output) exists only for views where a
    prepare vote was issued first — the step machine's discipline."""
    checker = fresh()
    commit_views = []
    vote_views = set()
    for kind, arg in calls:
        if kind == "new_view":
            checker.new_view(arg)
        elif kind == "prepare":
            checker.tee_prepare(digest_of("b", arg))
        elif kind == "vote":
            v = checker.tee_vote_prepare(digest_of("b", arg))
            if v is not None:
                vote_views.add(v.view)
        elif kind == "store":
            h = digest_of("b", arg % 4)
            out = checker.tee_store(prep_cert(h, arg))
            if out is not None:
                commit_views.append(out.view)
    assert all(v in vote_views for v in commit_views)
