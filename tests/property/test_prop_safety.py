"""Property tests: SAFETY — correct replicas never execute conflicting
blocks (Lemma 1), for every protocol, under randomized fault schedules,
network latencies and seeds.

These are the most important tests in the repository: they search the
space the safety proof quantifies over.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import FaultPlan
from repro.net import ConstantLatency, Network, UniformLatency
from repro.protocols.common import ProtocolConfig, build_cluster
from repro.protocols.registry import get_protocol
from repro.sim import Simulator
from repro.smr import prefix_agreement

BEHAVIOURS = ["crashed", "silent-leader", "slow", "withhold", "garbage"]


@st.composite
def scenarios(draw):
    protocol = draw(
        st.sampled_from(
            [
                "oneshot",
                "oneshot-chained",
                "damysus",
                "damysus-chained",
                "hotstuff",
                "hotstuff-chained",
            ]
        )
    )
    f = draw(st.integers(1, 2))
    info = get_protocol(protocol)
    n = info.n_for(f)
    n_faults = draw(st.integers(0, f))
    pids = draw(
        st.lists(
            st.integers(0, n - 1), min_size=n_faults, max_size=n_faults, unique=True
        )
    )
    behaviours = draw(
        st.lists(
            st.sampled_from(BEHAVIOURS), min_size=n_faults, max_size=n_faults
        )
    )
    seed = draw(st.integers(0, 2**16))
    jitter = draw(st.booleans())
    return protocol, f, list(zip(pids, behaviours)), seed, jitter


def run_scenario(protocol, f, faults, seed, jitter, sim_time=2.5):
    info = get_protocol(protocol)
    sim = Simulator(seed=seed)
    latency = (
        UniformLatency(0.001, 0.01) if jitter else ConstantLatency(0.003)
    )
    net = Network(sim, latency)
    cfg = ProtocolConfig(n=info.n_for(f), f=f, timeout_base=0.15)
    plan = FaultPlan()
    for pid, behaviour in faults:
        plan.add(pid, behaviour)
    cluster = build_cluster(
        info.replica_cls, sim, net, cfg, replica_factory=plan.factory()
    )
    cluster.start()
    sim.run(until=sim_time)
    cluster.stop()
    return cluster


@settings(max_examples=20, deadline=None)
@given(scenarios())
def test_safety_under_random_faults(scenario):
    protocol, f, faults, seed, jitter = scenario
    cluster = run_scenario(protocol, f, faults, seed, jitter)
    logs = [r.log for r in cluster.correct_replicas()]
    assert prefix_agreement(logs), (
        f"SAFETY VIOLATION: {protocol} f={f} faults={faults} seed={seed}"
    )


@settings(max_examples=10, deadline=None)
@given(scenarios())
def test_liveness_without_faults_or_with_crashes_only(scenario):
    """With only crash-like faults and a synchronous network, every
    run makes progress (Lemma 2)."""
    protocol, f, faults, seed, jitter = scenario
    crashes_only = [(pid, "crashed") for pid, _ in faults]
    cluster = run_scenario(protocol, f, crashes_only, seed, jitter, sim_time=4.0)
    correct = cluster.correct_replicas()
    assert max(len(r.log) for r in correct) >= 3, (
        f"NO PROGRESS: {protocol} f={f} crashes={crashes_only} seed={seed}"
    )


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 2**16))
def test_oneshot_safety_with_full_byzantine_budget(seed):
    """f=2, n=5 with two misbehaving replicas of different kinds."""
    cluster = run_scenario(
        "oneshot", 2, [(1, "withhold"), (3, "silent-leader")], seed, True
    )
    assert prefix_agreement([r.log for r in cluster.correct_replicas()])


@settings(max_examples=8, deadline=None)
@given(st.integers(0, 2**16), st.floats(0.0, 0.5))
def test_oneshot_safety_under_pre_gst_asynchrony(seed, extra):
    """Before GST the network may delay arbitrarily — safety must hold
    regardless (partial synchrony, Sec. IV)."""
    sim = Simulator(seed=seed)
    net = Network(
        sim, ConstantLatency(0.003), gst=1.0, pre_gst_extra=extra
    )
    cfg = ProtocolConfig(n=5, f=2, timeout_base=0.1)
    info = get_protocol("oneshot")
    cluster = build_cluster(info.replica_cls, sim, net, cfg)
    cluster.start()
    sim.run(until=3.0)
    cluster.stop()
    assert prefix_agreement(cluster.logs())
    # And after GST there is progress.
    assert max(len(r.log) for r in cluster.replicas) >= 2
