"""Property tests: block-store ancestry invariants over random trees."""

from hypothesis import given
from hypothesis import strategies as st

from repro.smr import GENESIS, BlockStore, create_leaf


@st.composite
def block_trees(draw):
    """A random block tree: each new block picks a random parent."""
    n = draw(st.integers(min_value=1, max_value=14))
    blocks = [GENESIS]
    parents = {GENESIS.hash: None}
    for view in range(n):
        parent = blocks[draw(st.integers(0, len(blocks) - 1))]
        b = create_leaf(parent.hash, view, (), proposer=draw(st.integers(0, 3)))
        if b.hash not in parents:
            blocks.append(b)
            parents[b.hash] = parent.hash
    order = draw(st.permutations(blocks[1:]))
    return blocks, parents, order


def real_ancestors(parents, h):
    out = []
    cur = parents.get(h)
    while cur is not None:
        out.append(cur)
        cur = parents.get(cur)
    return out


@given(block_trees())
def test_extends_plus_matches_parent_walk(tree):
    blocks, parents, order = tree
    store = BlockStore()
    for b in order:  # random insertion order
        store.add(b)
    for b in blocks:
        ancs = set(real_ancestors(parents, b.hash))
        for other in blocks:
            expected = other.hash in ancs
            assert store.extends_plus(b.hash, other.hash) == expected


@given(block_trees())
def test_heights_settle_regardless_of_insertion_order(tree):
    blocks, parents, order = tree
    store = BlockStore()
    for b in order:
        store.add(b)
    for b in blocks:
        assert store.height(b.hash) == len(real_ancestors(parents, b.hash))


@given(block_trees())
def test_conflicts_symmetric_and_chain_free(tree):
    blocks, parents, order = tree
    store = BlockStore()
    for b in order:
        store.add(b)
    for a in blocks:
        for b in blocks:
            assert store.conflicts(a.hash, b.hash) == store.conflicts(
                b.hash, a.hash
            )
            if store.extends_plus(a.hash, b.hash):
                assert not store.conflicts(a.hash, b.hash)


@given(block_trees())
def test_path_from_is_contiguous_and_complete(tree):
    blocks, parents, order = tree
    store = BlockStore()
    for b in order:
        store.add(b)
    executed = {GENESIS.hash}
    for tip in blocks[1:]:
        path = store.path_from(tip.hash, executed)
        # Path is a contiguous parent chain ending at the tip.
        assert path[-1].hash == tip.hash
        for x, y in zip(path, path[1:]):
            assert y.parent == x.hash
        assert path[0].parent in executed or path[0].parent == GENESIS.hash
