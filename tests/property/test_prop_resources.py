"""Property tests: FIFO resource (CPU/NIC) occupancy invariants."""

from hypothesis import given
from hypothesis import strategies as st

from repro.sim import Resource

jobs = st.lists(
    st.tuples(
        st.floats(0.0, 10.0, allow_nan=False),  # submission delta
        st.floats(0.0, 1.0, allow_nan=False),  # duration
    ),
    max_size=30,
)


@given(jobs)
def test_completions_monotonic_and_non_overlapping(job_list):
    r = Resource()
    now = 0.0
    prev_end = 0.0
    total = 0.0
    for delta, duration in job_list:
        now += delta
        end = r.occupy(now, duration)
        # Work never completes before it is submitted + its duration.
        assert end >= now + duration
        # FIFO: completions are monotone.
        assert end >= prev_end
        # No overlap: each job occupies after the previous ends.
        assert end - duration >= min(prev_end, end - duration)
        prev_end = end
        total += duration
    assert r.total_busy == sum(d for _, d in job_list)
    assert r.jobs == len(job_list)


@given(jobs)
def test_busy_until_equals_last_completion(job_list):
    r = Resource()
    now, last = 0.0, 0.0
    for delta, duration in job_list:
        now += delta
        last = r.occupy(now, duration)
    assert r.busy_until == last


@given(jobs)
def test_utilization_bounded(job_list):
    r = Resource()
    now = 0.0
    for delta, duration in job_list:
        now += delta
        r.occupy(now, duration)
    horizon = max(now, r.busy_until, 1e-9)
    assert 0.0 <= r.utilization(horizon) <= 1.0
