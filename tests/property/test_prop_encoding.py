"""Property tests: canonical encoding is injective and stable."""

from hypothesis import given
from hypothesis import strategies as st

from repro.crypto import digest_of, encode

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**64), max_value=2**64),
    st.text(max_size=20),
    st.binary(max_size=20),
)
values = st.recursive(
    scalars, lambda inner: st.lists(inner, max_size=4).map(tuple), max_leaves=12
)


@given(values)
def test_encode_total_and_stable(v):
    assert encode(v) == encode(v)


@given(values, values)
def test_encode_injective(a, b):
    """Distinct values never share an encoding (tuple/list are
    intentionally identified, so compare through a normal form)."""

    def norm(x):
        if isinstance(x, (tuple, list)):
            return tuple(norm(y) for y in x)
        return (type(x).__name__, x)

    if norm(a) != norm(b):
        assert encode(a) != encode(b)
    else:
        assert encode(a) == encode(b)


@given(values, values)
def test_digest_collision_free_in_practice(a, b):
    def norm(x):
        if isinstance(x, (tuple, list)):
            return tuple(norm(y) for y in x)
        return (type(x).__name__, x)

    if norm(a) != norm(b):
        assert digest_of(a) != digest_of(b)


@given(st.lists(scalars, max_size=5))
def test_list_tuple_identified(items):
    assert encode(items) == encode(tuple(items))
