"""Property tests: the simulator is bit-deterministic per seed."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import TopologyLatency, Network
from repro.net.regions import EU4
from repro.protocols.common import ProtocolConfig, build_cluster
from repro.protocols.registry import get_protocol
from repro.sim import Simulator


def run_fingerprint(protocol, seed, sim_time=1.0):
    info = get_protocol(protocol)
    sim = Simulator(seed=seed)
    net = Network(sim, TopologyLatency(EU4))
    cfg = ProtocolConfig(n=info.n_for(1), f=1, timeout_base=0.3)
    cluster = build_cluster(info.replica_cls, sim, net, cfg)
    cluster.start()
    sim.run(until=sim_time)
    cluster.stop()
    return (
        net.messages_sent,
        net.bytes_sent,
        sim.events_executed,
        tuple(len(r.log) for r in cluster.replicas),
        cluster.replicas[0].log.log_digest(),
    )


@settings(max_examples=6, deadline=None)
@given(st.integers(0, 2**32), st.sampled_from(["oneshot", "damysus", "hotstuff"]))
def test_same_seed_same_trace(seed, protocol):
    assert run_fingerprint(protocol, seed) == run_fingerprint(protocol, seed)


@settings(max_examples=5, deadline=None)
@given(st.integers(0, 2**16))
def test_different_seeds_jitter_timing_not_safety(seed):
    a = run_fingerprint("oneshot", seed)
    b = run_fingerprint("oneshot", seed + 1)
    # Both made progress; traces may differ, logs stay chains.
    assert a[3][0] > 0 and b[3][0] > 0
