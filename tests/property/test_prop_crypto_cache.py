"""Property tests: the verification memos are sound and bounded.

The fast path (PR 3) memoizes successful signature and certificate
verifications.  These tests prove the properties the protocols rely
on: (a) a tampered tag, wrong signer id, or wrong digest never
verifies, whether the genuine signature is already memoized ("warm")
or not ("cold"); (b) the ``KeyRing`` memo is bounded — eviction works
and long sweeps cannot grow it without limit; (c) eviction never
changes results, only wall-clock cost.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.certificates import PrepareCert, store_digest
from repro.crypto import KeyPair, KeyRing, Signature, memo, sha256

PAIRS = [KeyPair.generate(i, master_seed=17, domain="cache-prop") for i in range(5)]


def fresh_ring(capacity=None):
    ring = KeyRing() if capacity is None else KeyRing(memo_capacity=capacity)
    for kp in PAIRS:
        ring.add(kp.public())
    return ring


# ----------------------------------------------------------------------
# (a) forgeries never verify, warm or cold
# ----------------------------------------------------------------------
@given(
    st.binary(min_size=1, max_size=64),
    st.integers(0, 4),
    st.integers(0, 255),
    st.integers(0, 31),
)
def test_bitflipped_tag_never_verifies_warm_or_cold(data, owner, flip, pos):
    d = sha256(data)
    sig = PAIRS[owner].sign(d)
    tag = bytearray(sig.tag)
    tag[pos] ^= flip
    forged = Signature(owner, bytes(tag))

    cold = fresh_ring()
    assert cold.verify(d, forged) == (flip == 0)

    warm = fresh_ring()
    assert warm.verify(d, sig)  # memoize the genuine signature
    assert warm.verify(d, forged) == (flip == 0)


@given(st.binary(min_size=1, max_size=64), st.integers(0, 4), st.integers(0, 4))
def test_reattributed_signer_never_verifies_warm(data, owner, claimed):
    if owner == claimed:
        return
    d = sha256(data)
    sig = PAIRS[owner].sign(d)
    ring = fresh_ring()
    assert ring.verify(d, sig)  # warm
    assert not ring.verify(d, Signature(claimed, sig.tag))


@given(st.binary(min_size=1, max_size=64), st.binary(min_size=1, max_size=64), st.integers(0, 4))
def test_wrong_digest_never_verifies_warm(data, other, owner):
    d, e = sha256(data), sha256(other)
    if d == e:
        return
    sig = PAIRS[owner].sign(d)
    ring = fresh_ring()
    assert ring.verify(d, sig)  # warm
    assert not ring.verify(e, sig)


@given(st.integers(0, 4), st.integers(0, 31), st.integers(1, 255))
def test_tampered_quorum_cert_never_verifies_warm(signer_slot, pos, flip):
    """A certificate instance with one flipped tag byte fails even when
    a genuine twin has already been verified and memoized."""
    slot = signer_slot % 3
    h = sha256(b"qc-block")
    digest = store_digest(2, h, 2)
    sigs = [PAIRS[i].sign(digest) for i in range(3)]
    ring = fresh_ring()
    genuine = PrepareCert(stored_view=2, block_hash=h, prop_view=2, sigs=tuple(sigs))
    assert genuine.verify(ring, 3)
    assert genuine.verify(ring, 3)  # warm: instance memo answers

    tag = bytearray(sigs[slot].tag)
    tag[pos] ^= flip
    sigs[slot] = Signature(sigs[slot].signer, bytes(tag))
    forged = PrepareCert(stored_view=2, block_hash=h, prop_view=2, sigs=tuple(sigs))
    assert not forged.verify(ring, 3)


# ----------------------------------------------------------------------
# (b) the memo is bounded; eviction works
# ----------------------------------------------------------------------
@given(st.integers(1, 16), st.integers(1, 80))
def test_memo_never_exceeds_capacity(capacity, n):
    ring = fresh_ring(capacity=capacity)
    for i in range(n):
        d = sha256(b"bounded-%d" % i)
        assert ring.verify(d, PAIRS[0].sign(d))
    assert ring.memo_size <= capacity
    assert ring.memo_size == min(n, capacity)


@given(st.integers(1, 8))
def test_evicted_signature_still_verifies(capacity):
    """Eviction is a wall-clock event only: a pushed-out signature
    re-verifies cold with the same result."""
    ring = fresh_ring(capacity=capacity)
    first = sha256(b"first")
    sig = PAIRS[0].sign(first)
    assert ring.verify(first, sig)
    for i in range(capacity + 3):  # push the first entry out
        d = sha256(b"filler-%d" % i)
        ring.verify(d, PAIRS[1].sign(d))
    assert ring.verify(first, sig)
    assert ring.memo_size <= capacity


def test_zero_capacity_disables_the_memo():
    ring = fresh_ring(capacity=0)
    d = sha256(b"nocache")
    assert ring.verify(d, PAIRS[0].sign(d))
    assert ring.memo_size == 0


def test_failures_are_never_memoized():
    """Only successes enter the memo — a rejected forgery leaves no
    trace that could later be mistaken for a verified triple."""
    ring = fresh_ring()
    d = sha256(b"fail")
    assert not ring.verify(d, Signature(0, b"\x00" * 32))
    assert ring.memo_size == 0


def test_global_disable_switch_bypasses_both_layers():
    """memo.set_enabled(False) forces every check down the cold path
    (used to prove fingerprints and ledgers are memo-independent)."""
    ring = fresh_ring()
    d = sha256(b"switch")
    sig = PAIRS[0].sign(d)
    assert ring.verify(d, sig)
    prev = memo.set_enabled(False)
    try:
        assert ring.verify(d, sig)  # still verifies, via the HMAC
        h = sha256(b"switch-block")
        digest = store_digest(1, h, 1)
        cert = PrepareCert(
            stored_view=1,
            block_hash=h,
            prop_view=1,
            sigs=tuple(PAIRS[i].sign(digest) for i in range(3)),
        )
        assert cert.verify(ring, 3)
        assert not memo.seen_valid(cert, ring, 3)  # nothing was recorded
    finally:
        memo.set_enabled(prev)
