"""Property tests: chained HotStuff's 3-chain commit rule.

Feeds randomized QC/block arrival orders into `_chain_update` and
checks the commit rule's defining properties: a block commits only
with a full direct-parent 3-chain of QCs, commits happen in chain
order, and the lock never regresses.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.crypto import FREE, digest_of
from repro.metrics import MetricsCollector
from repro.net import ConstantLatency, Network
from repro.protocols.common import ProtocolConfig
from repro.protocols.hotstuff.certificates import HsQC, hs_vote_digest
from repro.protocols.hotstuff.chained import GENERIC, ChainedHotStuffReplica
from repro.sim import Simulator
from repro.smr import GENESIS, Mempool, create_leaf
from repro.tee import provision

N, F = 4, 1
QUORUM = 2 * F + 1
CREDS = provision(N)


def make_replica():
    sim = Simulator(0)
    net = Network(sim, ConstantLatency(0.001))
    cfg = ProtocolConfig(n=N, f=F, crypto_costs=FREE)
    return ChainedHotStuffReplica(
        sim=sim,
        network=net,
        pid=0,
        config=cfg,
        credentials=CREDS[0],
        mempool=Mempool(),
        collector=MetricsCollector(),
    )


def qc_for(block, view):
    d = hs_vote_digest(GENERIC, view, block.hash)
    return HsQC(
        GENERIC,
        view,
        block.hash,
        tuple(CREDS[i].keypair.sign(d) for i in range(QUORUM)),
    )


def build_chain(length, skip_views=()):
    """A straight chain; views in ``skip_views`` get no QC."""
    blocks, qcs = [], {}
    parent = GENESIS.hash
    for view in range(length):
        b = create_leaf(parent, view, (), proposer=view % N)
        blocks.append(b)
        if view not in skip_views:
            qcs[b.hash] = qc_for(b, view)
        parent = b.hash
    return blocks, qcs


def _committable(i, length, skip):
    """Block i may commit iff it (or a descendant) heads a full
    3-chain of QCs — committing a block commits its whole prefix."""
    return any(
        j + 2 < length and not ({j, j + 1, j + 2} & skip)
        for j in range(i, length)
    )


@given(st.integers(4, 10), st.sets(st.integers(0, 9), max_size=3))
def test_commit_requires_three_chain_in_order(length, skip):
    """QCs arrive in view order (as the pipeline delivers them):
    exactly the blocks with a descendant 3-chain commit."""
    blocks, qcs = build_chain(length, skip_views=skip)
    replica = make_replica()
    for b in blocks:
        replica.store.add(b)
    for b in blocks:  # view order
        qc = qcs.get(b.hash)
        if qc is not None:
            replica._register_qc(qc)
            replica._chain_update(qc)
    committed = {b.hash for b in replica.log.blocks}
    for i, b in enumerate(blocks):
        assert (b.hash in committed) == _committable(i, length, skip), (
            i,
            skip,
        )


@given(
    st.integers(4, 10),
    st.sets(st.integers(0, 9), max_size=3),
    st.randoms(use_true_random=False),
)
def test_no_unsafe_commit_under_any_arrival_order(length, skip, rng):
    """However QCs are reordered, nothing commits without a descendant
    3-chain (reordering may delay commits, never add unsafe ones)."""
    blocks, qcs = build_chain(length, skip_views=skip)
    replica = make_replica()
    for b in blocks:
        replica.store.add(b)
    order = list(qcs.values())
    rng.shuffle(order)
    for qc in order:
        replica._register_qc(qc)
        replica._chain_update(qc)
    committed = {b.hash for b in replica.log.blocks}
    for i, b in enumerate(blocks):
        if b.hash in committed:
            assert _committable(i, length, skip), (i, skip)


@given(st.integers(4, 10), st.randoms(use_true_random=False))
def test_commits_in_chain_order(length, rng):
    blocks, qcs = build_chain(length)
    replica = make_replica()
    for b in blocks:
        replica.store.add(b)
    order = list(qcs.values())
    rng.shuffle(order)
    for qc in order:
        replica._register_qc(qc)
        replica._chain_update(qc)
    log = replica.log.blocks
    assert [b.view for b in log] == sorted(b.view for b in log)
    for parent, child in zip(log, log[1:]):
        assert child.extends(parent.hash)


@given(st.integers(4, 10), st.randoms(use_true_random=False))
def test_lock_monotone(length, rng):
    blocks, qcs = build_chain(length)
    replica = make_replica()
    for b in blocks:
        replica.store.add(b)
    order = list(qcs.values())
    rng.shuffle(order)
    lock_views = []
    for qc in order:
        replica._register_qc(qc)
        replica._chain_update(qc)
        lock_views.append(replica.locked_qc.view)
    assert lock_views == sorted(lock_views)
