"""Zoo-wide windowing properties: every behaviour, every protocol.

Two properties pin the :class:`~repro.faults.byzantine.ByzantineMixin`
window contract the fuzzer's scenario grammar relies on:

* **no-op outside** — a fault whose ``[start, end)`` window never
  overlaps the run leaves the fingerprint bit-identical to a faultless
  run (the mixin may not perturb schedules, RNG draws or messages
  while dormant);
* **fires inside** — with the window open over the run, the behaviour
  observably changes the run (fingerprint drift, or for the
  CHECKER-blocked equivocator, attempt counters).
"""

import pytest

from repro.analysis import fingerprint_run
from repro.faults import BEHAVIOURS, FaultPlan

from ..conftest import make_cluster

PROTOCOLS = ["oneshot", "damysus", "hotstuff"]

#: Attrs making slow-cycle behaviours bite within a short (< 0.1 s
#: sim-time) local run: default restart outages start at 0.75 s, long
#: after an 8-block run already finished.
FIRING_ATTRS = {
    "restart": {"restart_period": 0.02, "outage": 0.01, "seal_interval": 0.01},
    "slow": {"slow_delay": 0.05},
}


def _digest(protocol: str, plan=None) -> str:
    factory = plan.factory() if plan is not None else None
    fp, _ = fingerprint_run(
        protocol, seed=7, target_blocks=8, replica_factory=factory
    )
    return fp.digest()


@pytest.mark.parametrize("protocol", PROTOCOLS)
@pytest.mark.parametrize("behaviour", sorted(BEHAVIOURS))
def test_noop_outside_window(protocol, behaviour):
    # Window opens long after the run is over: bit-identical run.
    plan = FaultPlan().add(
        1, behaviour, start=1000.0, **FIRING_ATTRS.get(behaviour, {})
    )
    assert _digest(protocol, plan) == _digest(protocol)


@pytest.mark.parametrize("protocol", PROTOCOLS)
@pytest.mark.parametrize(
    "behaviour", sorted(b for b in BEHAVIOURS if b != "equivocate")
)
def test_fires_inside_window(protocol, behaviour):
    # Window open over the whole run: the behaviour must leave a trace.
    plan = FaultPlan().add(1, behaviour, **FIRING_ATTRS.get(behaviour, {}))
    assert _digest(protocol, plan) != _digest(protocol)


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_equivocator_attempts_blocked_or_inert(protocol):
    # The equivocator's split-brain attack targets OneShot's proposal
    # flow: on OneShot it must *attempt* (and be refused by the
    # CHECKER's once-per-view guard); on the other protocols it is
    # inert by construction.  Nowhere does it succeed.
    plan = FaultPlan().add(1, "equivocate")
    _, collector = fingerprint_run(
        protocol, seed=7, target_blocks=8, replica_factory=plan.factory()
    )
    sim, net, cluster = make_cluster(protocol, f=1, seed=7, replica_factory=plan.factory())
    cluster.start()
    sim.run(until=2.0)
    cluster.stop()
    byz = cluster.replicas[1]
    assert byz.equivocation_successes == 0
    if protocol == "oneshot":
        assert byz.equivocation_attempts > 0
    else:
        assert byz.equivocation_attempts == 0
        assert _digest(protocol, plan) == _digest(protocol)


@pytest.mark.parametrize("protocol", PROTOCOLS)
@pytest.mark.parametrize("behaviour", sorted(BEHAVIOURS))
def test_faulty_now_gate_tracks_window(protocol, behaviour):
    # The mixin's window gate itself: closed before start, open in
    # [start, end), closed after — probed live inside a running sim.
    plan = FaultPlan().add(
        1, behaviour, start=0.2, end=0.5, **FIRING_ATTRS.get(behaviour, {})
    )
    sim, net, cluster = make_cluster(
        protocol, f=1, seed=7, replica_factory=plan.factory()
    )
    byz = cluster.replicas[1]
    probes = {}
    for t in (0.1, 0.35, 0.6):
        sim.schedule_at(
            t,
            lambda t=t: probes.__setitem__(t, byz._faulty_now()),
            label="zoo window probe",
        )
    cluster.start()
    sim.run(until=1.0)
    cluster.stop()
    assert probes == {0.1: False, 0.35: True, 0.6: False}
