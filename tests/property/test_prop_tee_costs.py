"""Property tests: TEE cost accounting is exact.

``Enclave.drain_cost()`` must return precisely
``ecalls * ecall_overhead + Σ (crypto cost × crypto_factor)`` for any
interleaving of ecalls — the paper's performance model (Sec. VII)
hinges on the simulated SGX tax being an exact ledger, not an
estimate.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import CryptoCostModel, KeyPair, KeyRing, digest_of
from repro.tee import Enclave, TeeCostModel


class ProbeEnclave(Enclave):
    """Minimal trusted service exposing one entry point per crypto op."""

    def ecall_noop(self):
        self._enter()

    def ecall_sign(self, i: int):
        self._enter()
        return self._sign(digest_of("probe", i))

    def ecall_verify(self, i: int):
        self._enter()
        d = digest_of("probe", i)
        return self._verify(d, self._key.sign(d))

    def ecall_verify_many(self, i: int, k: int):
        self._enter()
        d = digest_of("probe", i)
        sigs = tuple(self._key.sign(d) for _ in range(k))
        return self._verify_many(d, sigs)


def build_enclave(crypto: CryptoCostModel, tee: TeeCostModel) -> ProbeEnclave:
    kp = KeyPair.generate(0)
    ring = KeyRing()
    ring.add(kp.public())
    return ProbeEnclave(0, kp, ring, crypto, tee)


#: One random ecall: ("noop"|"sign"|"verify"|("verify_many", k))
ops = st.one_of(
    st.just("noop"),
    st.just("sign"),
    st.just("verify"),
    st.tuples(st.just("verify_many"), st.integers(1, 5)),
)


def run_sequence(enclave: ProbeEnclave, sequence) -> tuple[int, float]:
    """Drive the ecall sequence; return (ecalls, expected crypto cost)."""
    crypto, factor = enclave._crypto, enclave._tee.crypto_factor
    expected_crypto = 0.0
    for i, op in enumerate(sequence):
        if op == "noop":
            enclave.ecall_noop()
        elif op == "sign":
            enclave.ecall_sign(i)
            expected_crypto += crypto.sign() * factor
        elif op == "verify":
            assert enclave.ecall_verify(i)
            expected_crypto += crypto.verify() * factor
        else:
            _, k = op
            assert enclave.ecall_verify_many(i, k)
            expected_crypto += crypto.verify(k) * factor
    return len(sequence), expected_crypto


@settings(max_examples=60, deadline=None)
@given(
    st.lists(ops, max_size=40),
    st.floats(0.0, 1e-3),
    st.floats(1.0, 4.0),
)
def test_drain_cost_is_an_exact_ledger(sequence, ecall_overhead, crypto_factor):
    tee = TeeCostModel(ecall_overhead=ecall_overhead, crypto_factor=crypto_factor)
    enclave = build_enclave(CryptoCostModel(), tee)
    n_ecalls, expected_crypto = run_sequence(enclave, sequence)
    assert enclave.ecalls == n_ecalls
    drained = enclave.drain_cost()
    assert math.isclose(
        drained,
        n_ecalls * tee.ecall_overhead + expected_crypto,
        rel_tol=1e-12,
        abs_tol=1e-15,
    )
    # Draining resets the ledger but not the ecall counter.
    assert enclave.drain_cost() == 0.0
    assert enclave.ecalls == n_ecalls


@settings(max_examples=25, deadline=None)
@given(st.lists(ops, max_size=30))
def test_free_tee_with_free_crypto_accrues_zero(sequence):
    from repro.crypto.costs import FREE

    enclave = build_enclave(FREE, TeeCostModel.free())
    run_sequence(enclave, sequence)
    assert enclave.drain_cost() == 0.0


@settings(max_examples=25, deadline=None)
@given(st.lists(ops, max_size=30))
def test_free_tee_charges_only_unscaled_crypto(sequence):
    """TeeCostModel.free() removes the SGX tax: no world-switch cost,
    crypto at factor 1.0 — the accrual equals the plain crypto cost."""
    crypto = CryptoCostModel()
    enclave = build_enclave(crypto, TeeCostModel.free())
    _, expected_crypto = run_sequence(enclave, sequence)
    assert math.isclose(
        enclave.drain_cost(), expected_crypto, rel_tol=1e-12, abs_tol=1e-15
    )


@settings(max_examples=20, deadline=None)
@given(st.lists(ops, min_size=1, max_size=20), st.integers(1, 5))
def test_interleaved_drains_sum_to_one_big_drain(sequence, n_chunks):
    """Draining mid-sequence never loses or double-counts cost."""
    tee = TeeCostModel()
    a = build_enclave(CryptoCostModel(), tee)
    b = build_enclave(CryptoCostModel(), tee)
    run_sequence(a, sequence)
    total_once = a.drain_cost()

    chunk = max(1, len(sequence) // n_chunks)
    total_chunked = 0.0
    for start in range(0, len(sequence), chunk):
        # Indices must match run_sequence's enumerate for digests.
        for i, op in enumerate(sequence[start : start + chunk], start=start):
            if op == "noop":
                b.ecall_noop()
            elif op == "sign":
                b.ecall_sign(i)
            elif op == "verify":
                b.ecall_verify(i)
            else:
                b.ecall_verify_many(i, op[1])
        total_chunked += b.drain_cost()
    assert math.isclose(total_chunked, total_once, rel_tol=1e-12, abs_tol=1e-15)
