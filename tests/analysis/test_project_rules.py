"""The four whole-program passes on multi-module fixtures.

Each test lays out a synthetic package with a known violation and
asserts the exact finding location, plus a clean twin proving the
pass does not fire on the sanctioned pattern.
"""

from repro.analysis.engine import LintEngine
from repro.analysis.rules import (
    DeepFreezeRule,
    SecretFlowRule,
    StreamPurityRule,
    SubstrateBoundaryRule,
)


def run_rule(rule, files: dict):
    report = LintEngine(rules=[rule], suppressions=()).run_sources(files)
    assert report.parse_errors == []
    return report.findings


def locs(findings):
    return sorted((f.path, f.line) for f in findings)


# -- stream purity -----------------------------------------------------
STREAM_NET = {
    "repro/net/jitter.py": (
        "class Jitter:\n"
        "    def __init__(self, sim):\n"
        "        self._rng = sim.rng.stream('net')\n"
        "    def draw(self):\n"
        "        return self._rng.uniform(0.0, 1.0)\n"
    ),
}


def test_stream_purity_flags_net_draw_in_protocol_logic():
    files = dict(STREAM_NET)
    files["repro/protocols/pbft/timers.py"] = (
        "from repro.net.jitter import Jitter\n"
        "def pick_timeout(j: 'Jitter'):\n"
        "    base = j.draw()\n"
        "    return base * 2\n"
    )
    findings = run_rule(StreamPurityRule(), files)
    assert locs(findings) == [
        ("repro/protocols/pbft/timers.py", 3),
        ("repro/protocols/pbft/timers.py", 4),
    ]
    assert all(f.rule == "stream-purity" for f in findings)
    assert "'net' RNG stream" in findings[0].message


def test_stream_purity_allows_home_layer_and_observers():
    files = dict(STREAM_NET)
    # Consumption inside repro/net (home) and repro/metrics (observer).
    files["repro/net/consumer.py"] = (
        "from repro.net.jitter import Jitter\n"
        "def delay(j: 'Jitter'):\n"
        "    return j.draw()\n"
    )
    files["repro/metrics/hist.py"] = (
        "from repro.net.jitter import Jitter\n"
        "def record(j: 'Jitter'):\n"
        "    return j.draw()\n"
    )
    assert run_rule(StreamPurityRule(), files) == []


def test_stream_purity_tracks_fstring_stream_names():
    files = {
        "repro/smr/client.py": (
            "class Client:\n"
            "    def __init__(self, sim, pid):\n"
            "        self._rng = sim.rng.stream(f'client{pid}.arrivals')\n"
            "    def next_gap(self):\n"
            "        return self._rng.exponential(1.0)\n"
        ),
        "repro/protocols/pbft/replica.py": (
            "from repro.smr.client import Client\n"
            "def misuse(c: 'Client'):\n"
            "    return c.next_gap()\n"
        ),
    }
    findings = run_rule(StreamPurityRule(), files)
    assert locs(findings) == [("repro/protocols/pbft/replica.py", 3)]
    assert "'client' RNG stream" in findings[0].message


# -- secret flow -------------------------------------------------------
def test_secret_flow_flags_public_return_of_secret():
    findings = run_rule(
        SecretFlowRule(),
        {
            "repro/crypto/keys.py": (
                "class KeyPair:\n"
                "    def __init__(self, owner, secret):\n"
                "        self._secret = secret\n"
                "    def export(self):\n"
                "        return self._secret\n"
            ),
        },
    )
    assert locs(findings) == [("repro/crypto/keys.py", 5)]
    assert "returns secret key material" in findings[0].message


def test_secret_flow_allows_hmac_tags():
    findings = run_rule(
        SecretFlowRule(),
        {
            "repro/crypto/keys.py": (
                "import hmac\n"
                "import hashlib\n"
                "class KeyPair:\n"
                "    def __init__(self, owner, secret):\n"
                "        self._secret = secret\n"
                "    def sign(self, data):\n"
                "        return hmac.new(self._secret, data, hashlib.sha256).digest()\n"
            ),
        },
    )
    assert findings == []


def test_secret_flow_flags_escape_to_untrusted_module():
    findings = run_rule(
        SecretFlowRule(),
        {
            "repro/crypto/keys.py": (
                "class KeyPair:\n"
                "    def __init__(self, owner, secret):\n"
                "        self._secret = secret\n"
            ),
            "repro/protocols/pbft/replica.py": (
                "from repro.crypto.keys import KeyPair\n"
                "def peek(kp: 'KeyPair'):\n"
                "    raw = kp._secret\n"
                "    return raw\n"
            ),
        },
    )
    assert ("repro/protocols/pbft/replica.py", 3) in locs(findings)
    assert any("untrusted module" in f.message for f in findings)


def test_secret_flow_flags_secret_stored_on_public_attribute():
    findings = run_rule(
        SecretFlowRule(),
        {
            "repro/crypto/keys.py": (
                "class KeyPair:\n"
                "    def __init__(self, owner, secret):\n"
                "        self.material = secret\n"
            ),
        },
    )
    assert locs(findings) == [("repro/crypto/keys.py", 3)]
    assert "public attribute" in findings[0].message


# -- substrate boundary ------------------------------------------------
SIMULATOR = {
    "repro/sim/simulator.py": (
        "class Simulator:\n"
        "    def __init__(self):\n"
        "        self._queue = []\n"
        "    @property\n"
        "    def now(self):\n"
        "        return 0.0\n"
        "    def schedule(self, delay, fn):\n"
        "        pass\n"
        "    def step(self):\n"
        "        pass\n"
    ),
}


def test_substrate_boundary_flags_internal_reach():
    files = dict(SIMULATOR)
    files["repro/protocols/pbft/replica.py"] = (
        "from repro.sim.simulator import Simulator\n"
        "def hurry(sim: Simulator):\n"
        "    sim.step()\n"
        "    return sim._queue\n"
    )
    findings = run_rule(SubstrateBoundaryRule(), files)
    assert locs(findings) == [
        ("repro/protocols/pbft/replica.py", 3),
        ("repro/protocols/pbft/replica.py", 4),
    ]
    assert "Simulator.step" in findings[0].message
    assert "Simulator._queue" in findings[1].message


def test_substrate_boundary_allows_the_manifest_surface():
    files = dict(SIMULATOR)
    files["repro/protocols/pbft/replica.py"] = (
        "from repro.sim.simulator import Simulator\n"
        "def ok(sim: Simulator):\n"
        "    sim.schedule(1.0, ok)\n"
        "    return sim.now\n"
    )
    assert run_rule(SubstrateBoundaryRule(), files) == []


def test_substrate_boundary_ignores_non_protocol_layers():
    files = dict(SIMULATOR)
    files["repro/experiments/driver.py"] = (
        "from repro.sim.simulator import Simulator\n"
        "def drive(sim: Simulator):\n"
        "    sim.step()\n"
    )
    assert run_rule(SubstrateBoundaryRule(), files) == []


# -- deep freeze -------------------------------------------------------
def test_deep_freeze_flags_nested_mutable_containers():
    findings = run_rule(
        DeepFreezeRule(),
        {
            "repro/core/messages.py": (
                "from dataclasses import dataclass\n"
                "@dataclass(frozen=True)\n"
                "class Inner:\n"
                "    items: tuple[list, ...]\n"
                "@dataclass(frozen=True)\n"
                "class Outer:\n"
                "    inner: Inner\n"
            ),
        },
    )
    assert locs(findings) == [
        ("repro/core/messages.py", 4),
        ("repro/core/messages.py", 7),
    ]
    assert "Inner -> list" in findings[0].message
    assert "Outer -> Inner.items -> list" in findings[1].message


def test_deep_freeze_flags_unfrozen_dataclass_fields():
    findings = run_rule(
        DeepFreezeRule(),
        {
            "repro/core/messages.py": (
                "from dataclasses import dataclass\n"
                "@dataclass\n"
                "class Loose:\n"
                "    n: int\n"
                "@dataclass(frozen=True)\n"
                "class Msg:\n"
                "    body: Loose\n"
            ),
        },
    )
    assert locs(findings) == [("repro/core/messages.py", 7)]
    assert "unfrozen dataclass" in findings[0].message


def test_deep_freeze_expands_union_aliases_across_modules():
    findings = run_rule(
        DeepFreezeRule(),
        {
            "repro/core/certificates.py": (
                "from typing import Union\n"
                "from dataclasses import dataclass\n"
                "@dataclass(frozen=True)\n"
                "class Good:\n"
                "    n: int\n"
                "@dataclass(frozen=True)\n"
                "class Bad:\n"
                "    sigs: dict\n"
                "AnyCert = Union[Good, Bad]\n"
            ),
            "repro/core/messages.py": (
                "from dataclasses import dataclass\n"
                "from repro.core.certificates import AnyCert\n"
                "@dataclass(frozen=True)\n"
                "class Vote:\n"
                "    cert: AnyCert\n"
            ),
        },
    )
    assert ("repro/core/certificates.py", 8) in locs(findings)
    assert ("repro/core/messages.py", 5) in locs(findings)


def test_deep_freeze_accepts_immutable_payloads():
    findings = run_rule(
        DeepFreezeRule(),
        {
            "repro/core/messages.py": (
                "from dataclasses import dataclass\n"
                "from typing import Optional\n"
                "Digest = bytes\n"
                "@dataclass(frozen=True)\n"
                "class Tx:\n"
                "    payload: bytes\n"
                "@dataclass(frozen=True)\n"
                "class Block:\n"
                "    parent: Digest\n"
                "    txs: tuple[Tx, ...]\n"
                "    maybe: Optional[int]\n"
            ),
        },
    )
    assert findings == []


def test_deep_freeze_handles_recursive_payload_types():
    findings = run_rule(
        DeepFreezeRule(),
        {
            "repro/core/messages.py": (
                "from dataclasses import dataclass\n"
                "from typing import Optional\n"
                "@dataclass(frozen=True)\n"
                "class Node:\n"
                "    parent: 'Optional[Node]'\n"
                "    label: str\n"
            ),
        },
    )
    assert findings == []
