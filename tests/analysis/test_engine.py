"""Engine plumbing: suppressions, tree walks, reports, CLI contract."""

import json

import pytest

from repro.analysis import (
    Finding,
    LintEngine,
    Suppression,
    lint_package,
    load_suppressions,
)
from repro.cli import main as cli_main

CLEAN = 'def ok():\n    return 1\n\n__all__ = ["ok"]\n'
DIRTY = 'import time\n\ndef bad():\n    return time.time()\n\n__all__ = ["bad"]\n'


def make_tree(tmp_path, files: dict):
    """Lay out ``{relpath: source}`` under ``tmp_path/repro``."""
    root = tmp_path / "repro"
    for rel, source in files.items():
        p = root / rel
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(source)
    return root


# -- Suppression parsing ----------------------------------------------
def test_suppression_parse_roundtrip():
    for spec in ("determinism", "determinism:repro/a.py", "determinism:repro/a.py:4"):
        assert Suppression.parse(spec).spec() == spec


def test_suppression_parse_rejects_garbage():
    with pytest.raises(ValueError):
        Suppression.parse("")
    with pytest.raises(ValueError):
        Suppression.parse("rule:path:notaline")
    with pytest.raises(ValueError):
        Suppression.parse("rule:path:3:extra")


def test_suppression_matching_scopes():
    f = Finding(rule="determinism", path="repro/a.py", line=4, col=0, message="m")
    assert Suppression.parse("determinism").matches(f)
    assert Suppression.parse("determinism:repro/a.py").matches(f)
    assert Suppression.parse("determinism:repro/a.py:4").matches(f)
    assert not Suppression.parse("tee-encapsulation").matches(f)
    assert not Suppression.parse("determinism:repro/b.py").matches(f)
    assert not Suppression.parse("determinism:repro/a.py:5").matches(f)


# -- Tree walk + report ------------------------------------------------
def test_run_reports_findings_with_relative_paths(tmp_path):
    root = make_tree(tmp_path, {"good.py": CLEAN, "sub/bad.py": DIRTY})
    report = LintEngine().run(root)
    assert report.modules_checked == 2
    assert not report.clean
    assert [f.path for f in report.findings] == ["repro/sub/bad.py"]
    assert "time.time" in report.findings[0].message


def test_suppressed_findings_do_not_fail_the_run(tmp_path):
    root = make_tree(tmp_path, {"bad.py": DIRTY})
    engine = LintEngine(
        suppressions=[Suppression.parse("determinism:repro/bad.py")]
    )
    report = engine.run(root)
    assert report.clean
    assert len(report.suppressed) == 1
    assert report.unused_suppressions == []


def test_unused_suppressions_are_reported(tmp_path):
    root = make_tree(tmp_path, {"good.py": CLEAN})
    stale = Suppression.parse("determinism:repro/gone.py")
    report = LintEngine(suppressions=[stale]).run(root)
    assert report.clean  # unused suppressions warn, they don't fail
    assert report.unused_suppressions == [stale]
    assert "unused suppression" in report.render_text()


def test_parse_errors_fail_the_run(tmp_path):
    root = make_tree(tmp_path, {"broken.py": "def f(:\n"})
    report = LintEngine().run(root)
    assert not report.clean
    assert report.parse_errors and "repro/broken.py" in report.parse_errors[0]


def test_report_render_and_json(tmp_path):
    root = make_tree(tmp_path, {"bad.py": DIRTY})
    report = LintEngine().run(root)
    text = report.render_text()
    assert "repro/bad.py:4" in text
    assert "[determinism]" in text
    data = json.loads(report.to_json())
    assert data["clean"] is False
    assert data["findings"][0]["rule"] == "determinism"
    assert data["findings"][0]["path"] == "repro/bad.py"


# -- pyproject suppression loading ------------------------------------
def test_load_suppressions_from_pyproject(tmp_path):
    py = tmp_path / "pyproject.toml"
    py.write_text(
        "[tool.repro.lint]\n"
        'suppressions = ["determinism:repro/bad.py"]\n'
    )
    subs = load_suppressions(py)
    assert subs == [Suppression.parse("determinism:repro/bad.py")]


def test_lint_package_honours_pyproject(tmp_path):
    root = make_tree(tmp_path, {"bad.py": DIRTY})
    py = tmp_path / "pyproject.toml"
    py.write_text(
        '[tool.repro.lint]\nsuppressions = ["determinism:repro/bad.py"]\n'
    )
    assert lint_package(root=root, pyproject=py).clean
    # --no-suppressions equivalent: the violation resurfaces.
    assert not lint_package(root=root, ignore_suppressions=True).clean


# -- CLI exit-code / JSON contract ------------------------------------
def test_cli_lint_json_contract(tmp_path, capsys):
    dirty_root = make_tree(tmp_path, {"bad.py": DIRTY})
    rc = cli_main(["lint", "--root", str(dirty_root), "--format", "json"])
    data = json.loads(capsys.readouterr().out)
    assert rc == 1
    assert data["clean"] is False
    assert data["findings"][0]["rule"] == "determinism"

    clean_root = make_tree(tmp_path / "ok", {"good.py": CLEAN})
    rc = cli_main(["lint", "--root", str(clean_root), "--format", "json"])
    data = json.loads(capsys.readouterr().out)
    assert rc == 0
    assert data["clean"] is True and data["findings"] == []


def test_cli_lint_respects_suppressions_flag(tmp_path, capsys):
    root = make_tree(tmp_path, {"bad.py": DIRTY})
    py = tmp_path / "pyproject.toml"
    py.write_text(
        '[tool.repro.lint]\nsuppressions = ["determinism:repro/bad.py"]\n'
    )
    assert cli_main(["lint", "--root", str(root), "--pyproject", str(py)]) == 0
    capsys.readouterr()
    rc = cli_main(
        ["lint", "--root", str(root), "--pyproject", str(py), "--no-suppressions"]
    )
    assert rc == 1
    capsys.readouterr()


def test_cli_lint_rules_listing(capsys):
    assert cli_main(["lint", "--rules"]) == 0
    out = capsys.readouterr().out
    for name in (
        "determinism",
        "tee-encapsulation",
        "frozen-message",
        "mutable-default",
        "float-equality",
        "all-exports",
    ):
        assert name in out
