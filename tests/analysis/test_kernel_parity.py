"""Kernel-parity gate: scalar and columnar substrates are bit-identical.

The columnar kernel is only allowed to be *faster*: for every scenario
the repo exercises — the three protocols' baseline runs, smoke-size
fig7/ablation/degraded configurations, pre-GST asynchrony and
delay-hook injection — both kernels must produce byte-identical message
timelines and decided chains.  Any divergence means the array kernel
changed observable scheduling and must be treated as a correctness
bug, never re-pinned.
"""

import pytest

from repro.analysis.sanitizer import _hash_chain, _hash_timeline, fingerprint_run
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.faults import every_kth_view, forced_execution_factory
from repro.net.latency import UniformLatency

PROTOCOLS = ("oneshot", "damysus", "hotstuff")
KERNELS = ("scalar", "columnar")


def _run_hashes(kernel, replica_factory=None, **overrides):
    """Fingerprint one ``run_experiment`` scenario under ``kernel``."""
    cfg = ExperimentConfig(kernel=kernel, **overrides)
    run = run_experiment(cfg, replica_factory=replica_factory, enable_message_log=True)
    return (
        run.sim.events_executed,
        len(run.network.message_log),
        _hash_timeline(run.network.message_log),
        _hash_chain(run.collector),
    )


# ----------------------------------------------------------------------
# Baseline goldens (same scenario the pinned fingerprints use)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_baseline_fingerprints_identical_across_kernels(protocol):
    fps = {
        kernel: fingerprint_run(
            protocol, seed=7, f=1, target_blocks=6, kernel=kernel
        )[0]
        for kernel in KERNELS
    }
    assert fps["columnar"] == fps["scalar"]
    assert fps["columnar"].digest() == fps["scalar"].digest()


def test_columnar_matches_pre_fastpath_golden_digest():
    """Transitivity check made explicit: the columnar kernel reproduces
    the digest pinned in test_fastpath_determinism.GOLDEN, so parity
    holds against the *pre-fast-path* behaviour, not just today's."""
    from .test_fastpath_determinism import GOLDEN

    for protocol, (events, messages, decisions, digest) in GOLDEN.items():
        fp, _ = fingerprint_run(
            protocol, seed=7, f=1, target_blocks=6, kernel="columnar"
        )
        assert fp.events == events
        assert fp.messages == messages
        assert fp.decisions == decisions
        assert fp.digest() == digest


# ----------------------------------------------------------------------
# Smoke-size experiment configs (fig7 / ablation / degraded)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_fig7_smoke_config_identical_across_kernels(protocol):
    """Fig. 7 at smoke size: an ``eu`` topology deployment, whose
    per-link gaussian jitter makes every remote latency a drawn value —
    the batched ``sample_many`` path under both kernels."""
    results = [
        _run_hashes(
            kernel,
            protocol=protocol,
            f=1,
            payload_bytes=0,
            deployment="eu",
            target_blocks=4,
            seed=7,
        )
        for kernel in KERNELS
    ]
    assert results[0] == results[1]


def test_ablation_smoke_config_identical_across_kernels():
    """Degraded-execution ablation at smoke size: forced catch-up every
    other view exercises the abnormal-path timers and cancellations."""
    factory = forced_execution_factory("catchup", every_kth_view(2))
    results = [
        _run_hashes(
            kernel,
            replica_factory=factory,
            protocol="oneshot",
            f=1,
            deployment="local",
            local_latency_s=0.005,
            timeout_base=0.2,
            target_blocks=6,
            seed=23,
        )
        for kernel in KERNELS
    ]
    assert results[0] == results[1]


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_degraded_smoke_config_identical_across_kernels(protocol):
    """Sec. VIII-d degraded conditions at smoke size: 10 ms links and
    256 B payloads (nonzero NIC serialization per transaction)."""
    results = [
        _run_hashes(
            kernel,
            protocol=protocol,
            f=1,
            payload_bytes=256,
            deployment="local",
            local_latency_s=0.010,
            timeout_base=0.2,
            target_blocks=4,
            seed=17,
        )
        for kernel in KERNELS
    ]
    assert results[0] == results[1]


# ----------------------------------------------------------------------
# Pre-GST asynchrony and delay hooks (the paths the vectorized
# multicast had to reproduce draw-for-draw)
# ----------------------------------------------------------------------
def test_pre_gst_scenario_identical_across_kernels():
    """Draw-free latency + pre-GST extras: the batched-uniform fast
    path.  The extras are real RNG draws, so this pins stream identity
    through schedule_many bulk inserts on both kernels."""
    fps = {
        kernel: fingerprint_run(
            "oneshot",
            seed=11,
            f=1,
            target_blocks=6,
            gst=0.05,
            pre_gst_extra=0.01,
            kernel=kernel,
        )[0]
        for kernel in KERNELS
    }
    assert fps["columnar"] == fps["scalar"]


def test_pre_gst_draw_consuming_fallback_identical_across_kernels():
    """Pre-GST with a draw-consuming latency model takes the scalar
    per-destination fallback (interleaved draws); both kernels must
    still replay it identically."""
    fps = {
        kernel: fingerprint_run(
            "oneshot",
            seed=11,
            f=1,
            target_blocks=6,
            latency=UniformLatency(0.001, 0.004),
            gst=0.05,
            pre_gst_extra=0.01,
            kernel=kernel,
        )[0]
        for kernel in KERNELS
    }
    assert fps["columnar"] == fps["scalar"]


def _install_hook(network):
    # Deterministic per-link penalty (DelayHook contract: no RNG use).
    network.delay_hooks.append(
        lambda now, src, dst, size: ((src * 7 + dst * 13) % 5) * 1e-4
    )


def test_delay_hook_scenario_identical_across_kernels():
    fps = {
        kernel: fingerprint_run(
            "oneshot",
            seed=13,
            f=1,
            target_blocks=6,
            setup=_install_hook,
            kernel=kernel,
        )[0]
        for kernel in KERNELS
    }
    assert fps["columnar"] == fps["scalar"]


def test_pre_gst_plus_delay_hook_scenario_identical_across_kernels():
    """The combined case: batched pre-GST uniforms *and* hook extras
    accumulated per destination, under both kernels."""
    fps = {
        kernel: fingerprint_run(
            "damysus",
            seed=13,
            f=1,
            target_blocks=6,
            gst=0.05,
            pre_gst_extra=0.01,
            setup=_install_hook,
            kernel=kernel,
        )[0]
        for kernel in KERNELS
    }
    assert fps["columnar"] == fps["scalar"]
