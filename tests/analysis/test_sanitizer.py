"""Runtime determinism sanitizer and equivocation oracle."""

import time

import numpy as np
import pytest

from repro.analysis import (
    DeterminismViolation,
    EquivocationDetected,
    assert_no_equivocation,
    check_determinism,
    find_equivocations,
    fingerprint_run,
    replay_and_check,
)
from repro.metrics import Decision, MetricsCollector

H0, H1, H2 = b"\x00" * 32, b"\x01" * 32, b"\x02" * 32


class WallClockLatency:
    """Deliberately nondeterministic: delay depends on the host clock.

    This is the regression class the sanitizer exists to catch — a
    stray ``time.time()`` leaking wall-clock state into the simulation.
    """

    def __init__(self, base_s: float = 0.002) -> None:
        self.base_s = base_s

    def sample(self, src: int, dst: int, rng: np.random.Generator) -> float:
        if src == dst:
            return 1e-6
        return self.base_s + (time.time_ns() % 997) * 1e-9


# -- determinism replay ------------------------------------------------
def test_same_seed_runs_are_identical():
    fp = check_determinism(protocol="oneshot", seed=11, target_blocks=3)
    assert fp.decisions > 0 and fp.timeline_hash


def test_fingerprint_changes_with_seed():
    # Jittered latency actually consumes the seeded RNG, so different
    # root seeds must yield different timelines.
    from repro.net import UniformLatency

    fp_a, _ = fingerprint_run(
        protocol="oneshot", seed=1, target_blocks=3, latency=UniformLatency(0.001, 0.003)
    )
    fp_b, _ = fingerprint_run(
        protocol="oneshot", seed=2, target_blocks=3, latency=UniformLatency(0.001, 0.003)
    )
    assert fp_a.digest() != fp_b.digest()


def test_detects_injected_wall_clock_regression():
    """Acceptance gate: a deliberately injected time.time() dependency
    must trip the sanitizer."""
    with pytest.raises(DeterminismViolation, match="diverged"):
        check_determinism(
            protocol="oneshot",
            seed=7,
            target_blocks=3,
            latency_factory=WallClockLatency,
        )


def test_check_determinism_needs_two_runs():
    with pytest.raises(ValueError):
        check_determinism(runs=1)


# -- equivocation oracle ----------------------------------------------
def _decide(c: MetricsCollector, replica, view, h, t):
    c.decisions.append(
        Decision(replica=replica, view=view, block_hash=h, ntxs=1, time=t, kind="fast")
    )


def test_clean_run_has_no_equivocations():
    c = MetricsCollector()
    for r in range(3):
        _decide(c, r, 1, H1, 0.1 + r * 0.01)
        _decide(c, r, 2, H2, 0.2 + r * 0.01)
    assert find_equivocations(c) == []
    assert_no_equivocation(c)


def test_detects_conflicting_blocks_in_one_view():
    c = MetricsCollector()
    _decide(c, 0, 1, H1, 0.1)
    _decide(c, 1, 1, H2, 0.1)  # same view, different block
    problems = find_equivocations(c)
    assert any("view 1" in p and "conflicting" in p for p in problems)
    with pytest.raises(EquivocationDetected):
        assert_no_equivocation(c)


def test_detects_chain_prefix_divergence():
    c = MetricsCollector()
    _decide(c, 0, 1, H1, 0.1)
    _decide(c, 0, 2, H2, 0.2)
    _decide(c, 1, 1, H1, 0.1)
    _decide(c, 1, 3, H0, 0.3)  # different block at height 1
    problems = find_equivocations(c)
    assert any("diverge at height 1" in p for p in problems)


def test_lagging_replica_prefix_is_fine():
    # A replica that decided fewer blocks is not an equivocation.
    c = MetricsCollector()
    _decide(c, 0, 1, H1, 0.1)
    _decide(c, 0, 2, H2, 0.2)
    _decide(c, 1, 1, H1, 0.1)
    assert find_equivocations(c) == []


# -- combined gate -----------------------------------------------------
@pytest.mark.parametrize("protocol", ["oneshot", "damysus", "hotstuff"])
def test_replay_and_check_protocols(protocol):
    fp = replay_and_check(protocol=protocol, seed=5, target_blocks=3)
    assert fp.decisions >= 3
