"""Frozen-message and mutable-default rules."""

from repro.analysis import LintEngine
from repro.analysis.rules import FrozenMessageRule, MutableDefaultRule


def lint_frozen(source: str, path: str = "repro/core/messages.py"):
    return LintEngine(rules=[FrozenMessageRule()]).check_source(source, path=path)


def lint_defaults(source: str, path: str = "repro/core/replica.py"):
    return LintEngine(rules=[MutableDefaultRule()]).check_source(source, path=path)


# -- frozen messages: positives ---------------------------------------
def test_flags_unfrozen_message_dataclass():
    findings = lint_frozen(
        "from dataclasses import dataclass\n\n"
        "@dataclass\n"
        "class VoteMsg:\n"
        "    view: int\n"
    )
    assert len(findings) == 1
    assert "VoteMsg" in findings[0].message


def test_flags_frozen_false():
    assert lint_frozen(
        "from dataclasses import dataclass\n\n"
        "@dataclass(frozen=False)\n"
        "class VoteMsg:\n"
        "    view: int\n"
    )


def test_flags_dataclass_with_other_kwargs_only():
    assert lint_frozen(
        "from dataclasses import dataclass\n\n"
        "@dataclass(slots=True)\n"
        "class VoteMsg:\n"
        "    view: int\n"
    )


# -- frozen messages: negatives ---------------------------------------
def test_frozen_message_is_fine():
    assert (
        lint_frozen(
            "from dataclasses import dataclass\n\n"
            "@dataclass(frozen=True)\n"
            "class VoteMsg:\n"
            "    view: int\n"
        )
        == []
    )


def test_plain_class_in_messages_is_fine():
    assert lint_frozen("class Helper:\n    pass\n") == []


def test_unfrozen_dataclass_outside_messages_py_is_fine():
    src = (
        "from dataclasses import dataclass\n\n"
        "@dataclass\n"
        "class Wave:\n"
        "    count: int = 0\n"
    )
    assert lint_frozen(src, path="repro/metrics/timeline.py") == []


# -- mutable defaults: positives --------------------------------------
def test_flags_mutable_list_default_arg():
    findings = lint_defaults("def f(xs=[]):\n    return xs\n")
    assert len(findings) == 1
    assert "mutable default" in findings[0].message


def test_flags_mutable_dict_and_set_defaults():
    assert lint_defaults("def f(m={}):\n    return m\n")
    assert lint_defaults("def f(s=set()):\n    return s\n")


def test_flags_kwonly_mutable_default():
    assert lint_defaults("def f(*, xs=[]):\n    return xs\n")


def test_flags_bare_mutable_dataclass_field():
    findings = lint_defaults(
        "from dataclasses import dataclass\n\n"
        "@dataclass\n"
        "class C:\n"
        "    xs: list = []\n"
    )
    assert len(findings) == 1
    assert "field(default_factory" in findings[0].message


# -- mutable defaults: negatives --------------------------------------
def test_none_default_is_fine():
    assert lint_defaults("def f(xs=None):\n    return xs or []\n") == []


def test_tuple_default_is_fine():
    assert lint_defaults("def f(xs=()):\n    return xs\n") == []


def test_default_factory_field_is_fine():
    assert (
        lint_defaults(
            "from dataclasses import dataclass, field\n\n"
            "@dataclass\n"
            "class C:\n"
            "    xs: list = field(default_factory=list)\n"
        )
        == []
    )
