"""Engine satellites: inline ignores, SARIF/GitHub output, changed-only,
the aliased scalar-sample determinism fix, and the lint bench tier."""

import json

from repro.analysis.engine import LintEngine, parse_inline_ignores
from repro.analysis.rules import DeterminismRule

DIRTY = "import time\n\ndef bad():\n    return time.time()\n\n__all__ = ['bad']\n"


def run_sources(files: dict, rules=None):
    return LintEngine(rules=rules, suppressions=()).run_sources(files)


# -- inline ignores ----------------------------------------------------
def test_inline_ignore_parsing():
    src = (
        "x = 1  # repro: lint-ignore[determinism]\n"
        "y = 2\n"
        "z = 3  # repro: lint-ignore[tee-encapsulation, deep-freeze]\n"
    )
    ignores = parse_inline_ignores(src, "repro/a.py")
    assert [(i.line, i.rules) for i in ignores] == [
        (1, ("determinism",)),
        (3, ("tee-encapsulation", "deep-freeze")),
    ]


def test_inline_ignore_suppresses_exact_line():
    src = (
        "import time\n"
        "\n"
        "def bad():\n"
        "    return time.time()  # repro: lint-ignore[determinism]\n"
        "\n"
        "__all__ = ['bad']\n"
    )
    report = run_sources({"repro/a.py": src})
    assert report.findings == []
    assert [f.rule for f in report.suppressed] == ["determinism"]
    assert report.unused_ignores == []


def test_unused_inline_ignore_is_reported_but_not_fatal():
    src = "x = 1  # repro: lint-ignore[determinism]\n__all__ = []\n"
    report = run_sources({"repro/a.py": src})
    assert report.clean
    assert len(report.unused_ignores) == 1
    assert "repro/a.py:1" in report.unused_ignores[0]
    assert "determinism" in report.unused_ignores[0]


def test_inline_ignore_for_wrong_rule_does_not_suppress():
    src = (
        "import time\n"
        "\n"
        "def bad():\n"
        "    return time.time()  # repro: lint-ignore[deep-freeze]\n"
        "\n"
        "__all__ = ['bad']\n"
    )
    report = run_sources({"repro/a.py": src})
    assert [f.rule for f in report.findings] == ["determinism"]
    assert len(report.unused_ignores) == 1


# -- output formats ----------------------------------------------------
def test_sarif_output_shape():
    report = run_sources({"repro/a.py": DIRTY})
    doc = json.loads(report.to_sarif())
    assert doc["version"] == "2.1.0"
    run = doc["runs"][0]
    rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
    assert "determinism" in rule_ids
    result = run["results"][0]
    assert result["ruleId"] == "determinism"
    loc = result["locations"][0]["physicalLocation"]
    assert loc["artifactLocation"]["uri"] == "repro/a.py"
    assert loc["region"]["startLine"] == 4
    assert loc["region"]["startColumn"] >= 1  # SARIF columns are 1-based


def test_github_annotations_format_and_escaping():
    report = run_sources({"repro/a.py": DIRTY})
    line = report.render_github().splitlines()[0]
    assert line.startswith("::error file=repro/a.py,line=4,")
    assert "title=determinism::" in line
    assert "\n" not in line


def test_github_annotations_empty_when_clean():
    report = run_sources({"repro/a.py": "x = 1\n__all__ = []\n"})
    assert report.render_github() == ""


# -- changed-only filtering -------------------------------------------
def test_only_paths_filters_reporting_not_analysis():
    files = {"repro/a.py": DIRTY, "repro/b.py": DIRTY.replace("bad", "worse")}
    full = run_sources(files)
    assert sorted({f.path for f in full.findings}) == [
        "repro/a.py",
        "repro/b.py",
    ]
    partial = LintEngine(suppressions=()).run_sources(
        files, only_paths={"repro/b.py"}
    )
    assert {f.path for f in partial.findings} == {"repro/b.py"}
    # Partial views skip staleness accounting entirely.
    assert partial.unused_suppressions == []
    assert partial.unused_ignores == []


# -- determinism: aliased scalar sample (satellite fix) ----------------
def _determinism(src: str, path: str):
    return [
        f
        for f in LintEngine(
            rules=[DeterminismRule()], suppressions=()
        ).check_source(src, path=path)
        if "sample" in f.message
    ]


def test_aliased_sample_in_loop_is_flagged():
    src = (
        "def multicast(model, dests):\n"
        "    draw = model.sample\n"
        "    return [draw(0, d) for d in dests]\n"
    )
    findings = _determinism(src, "repro/net/network.py")
    assert [f.line for f in findings] == [3]
    assert "alias 'draw'" in findings[0].message


def test_direct_scalar_sample_in_loop_still_flagged():
    src = (
        "def multicast(model, dests):\n"
        "    return [model.sample(0, d) for d in dests]\n"
    )
    findings = _determinism(src, "repro/net/network.py")
    assert [f.line for f in findings] == [2]


def test_sample_alias_outside_loop_is_fine():
    src = "def one(model):\n    draw = model.sample\n    return draw(0, 1)\n"
    assert _determinism(src, "repro/net/network.py") == []


def test_latency_module_keeps_its_scalar_fallback():
    src = (
        "def sample_per_link(model, dests):\n"
        "    draw = model.sample\n"
        "    return [draw(0, d) for d in dests]\n"
    )
    assert _determinism(src, "repro/net/latency.py") == []


# -- lint bench tier ---------------------------------------------------
def test_lint_bench_quick_smoke():
    from repro.bench import run_lint_bench

    report = run_lint_bench(quick=True)
    assert report.name == "lint"
    names = set(report.metrics)
    assert names == {
        "lint_cold_wall_s",
        "index_build_wall_s",
        "lint_warm_wall_s",
    }
    for m in report.metrics.values():
        assert m.higher_is_better is False
        assert 0.0 < m.value < 30.0  # the acceptance bound
