"""Golden-fingerprint regression gate for the kernel fast path.

The simulation kernel's performance work (tuple heap, ``__slots__``
records, memoized digests, multicast fan-out, RNG stream cache) is
required to be *behaviour-preserving*: bit-identical event timelines,
message streams and decided chains for a fixed seed.  These digests
were captured from the pre-fast-path kernel; any divergence means an
optimization changed observable scheduling or encoding and must be
treated as a correctness bug, not re-pinned.
"""

import pytest

from repro.analysis.sanitizer import fingerprint_run

#: protocol -> (events, messages, decisions, fingerprint digest),
#: captured at seed=7, f=1, target_blocks=6, 2 ms constant latency.
GOLDEN = {
    "oneshot": (
        138,
        70,
        17,
        "e83d05b058ccbfa8c1d9f46180b836fb414420f4b62b9a3a8139bb3b25f08ad9",
    ),
    "damysus": (
        216,
        109,
        17,
        "5d89ab2c74def6c0f527d094a94833cdd2dcef7781f481019d108d07ea3ffefa",
    ),
    "hotstuff": (
        379,
        193,
        22,
        "e1b44e16c61b3092e8c8b81bb7e2f5f2574a04cdca817f9a3d895bef3c3ff97c",
    ),
}


@pytest.mark.parametrize("protocol", sorted(GOLDEN))
def test_fingerprint_matches_pre_fastpath_golden(protocol):
    events, messages, decisions, digest = GOLDEN[protocol]
    fp, _ = fingerprint_run(protocol, seed=7, f=1, target_blocks=6)
    assert fp.events == events
    assert fp.messages == messages
    assert fp.decisions == decisions
    assert fp.digest() == digest


def test_fingerprint_is_replay_stable():
    """Two fresh runs in one process agree — digest memo caches and the
    RNG stream cache must not make a second run see different state."""
    a, _ = fingerprint_run("oneshot", seed=7, f=1, target_blocks=6)
    b, _ = fingerprint_run("oneshot", seed=7, f=1, target_blocks=6)
    assert a.digest() == b.digest()


@pytest.mark.parametrize("protocol", sorted(GOLDEN))
def test_fingerprint_identical_with_verification_memo_disabled(protocol):
    """The verification memos (PR 3) elide only redundant Python work:
    with the cache switched off entirely, every run still reproduces
    the same golden fingerprint — simulated time and decisions are a
    function of *charged* cost, never of wall-clock shortcuts."""
    from repro.crypto import memo

    events, messages, decisions, digest = GOLDEN[protocol]
    prev = memo.set_enabled(False)
    try:
        fp, _ = fingerprint_run(protocol, seed=7, f=1, target_blocks=6)
    finally:
        memo.set_enabled(prev)
    assert fp.events == events
    assert fp.messages == messages
    assert fp.decisions == decisions
    assert fp.digest() == digest
