"""Determinism rule: one positive and one negative case per ban class."""

import pytest

from repro.analysis import LintEngine
from repro.analysis.rules import DeterminismRule


def lint(source: str, path: str = "repro/example.py"):
    return LintEngine(rules=[DeterminismRule()]).check_source(source, path=path)


# -- positives ---------------------------------------------------------
def test_flags_time_time():
    findings = lint("import time\n\nt = time.time()\n")
    assert len(findings) == 1
    assert findings[0].rule == "determinism"
    assert "time.time" in findings[0].message


def test_flags_time_alias():
    findings = lint("import time as clock\n\nt = clock.monotonic()\n")
    assert any("time.monotonic" in f.message for f in findings)


def test_flags_datetime_now():
    findings = lint(
        "from datetime import datetime\n\nstamp = datetime.now()\n"
    )
    assert any("datetime.datetime.now" in f.message for f in findings)


def test_flags_random_import():
    assert lint("import random\n")
    assert lint("from random import choice\n")


def test_flags_secrets_and_urandom():
    assert lint("import secrets\n")
    assert lint("import os\n\nblob = os.urandom(8)\n")


def test_flags_uuid4():
    assert lint("import uuid\n\nx = uuid.uuid4()\n")


def test_flags_unseeded_default_rng_outside_registry():
    findings = lint(
        "import numpy as np\n\ngen = np.random.default_rng()\n",
        path="repro/net/latency.py",
    )
    assert any("numpy.random.default_rng" in f.message for f in findings)


def test_flags_legacy_numpy_global_functions():
    findings = lint("import numpy as np\n\nx = np.random.normal()\n")
    assert any("numpy.random.normal" in f.message for f in findings)


# -- negatives ---------------------------------------------------------
def test_registry_module_is_allowed():
    findings = lint(
        "import numpy as np\n\ngen = np.random.default_rng(7)\n",
        path="repro/sim/rng.py",
    )
    assert findings == []


def test_generator_annotation_is_fine():
    findings = lint(
        "import numpy as np\n\n"
        "def sample(rng: np.random.Generator) -> float:\n"
        "    return float(rng.uniform(0.0, 1.0))\n"
    )
    assert findings == []


def test_simulated_clock_is_fine():
    assert lint("def now(sim):\n    return sim.now\n") == []


def test_local_name_shadowing_is_not_flagged():
    # A method named .time() on a non-module object is fine.
    assert lint("def f(w):\n    return w.clock.tick()\n") == []


def test_custom_allowlist():
    rule = DeterminismRule(allowed=("repro/tools/",))
    engine = LintEngine(rules=[rule])
    src = "import time\n\nt = time.time()\n"
    assert engine.check_source(src, path="repro/tools/bench.py") == []
    assert engine.check_source(src, path="repro/core/replica.py")


# -- scalar-sample loops in repro.net ----------------------------------
def test_flags_scalar_sample_loop_in_net():
    findings = lint(
        "def fanout(model, src, dsts, rng):\n"
        "    out = []\n"
        "    for dst in dsts:\n"
        "        out.append(model.sample(src, dst, rng))\n"
        "    return out\n",
        path="repro/net/network.py",
    )
    assert len(findings) == 1
    assert "sample_many" in findings[0].message


def test_flags_scalar_sample_comprehension_in_net():
    findings = lint(
        "def fanout(model, src, dsts, rng):\n"
        "    return [model.sample(src, dst, rng) for dst in dsts]\n",
        path="repro/net/network.py",
    )
    assert len(findings) == 1


def test_nested_loop_sample_reported_once():
    findings = lint(
        "def f(model, rng, batches):\n"
        "    for batch in batches:\n"
        "        for dst in batch:\n"
        "            model.sample(0, dst, rng)\n",
        path="repro/net/network.py",
    )
    assert len(findings) == 1


def test_single_sample_call_in_net_is_fine():
    # _send_one's one-destination draw is not a loop.
    assert (
        lint(
            "def send(model, src, dst, rng):\n"
            "    return model.sample(src, dst, rng)\n",
            path="repro/net/network.py",
        )
        == []
    )


def test_sample_loop_in_latency_module_is_allowed():
    # sample_per_link — the models' own scalar fallback — lives here.
    assert (
        lint(
            "def sample_per_link(model, src, dsts, rng):\n"
            "    return [model.sample(src, dst, rng) for dst in dsts]\n",
            path="repro/net/latency.py",
        )
        == []
    )


def test_sample_loop_outside_net_is_not_flagged():
    assert (
        lint(
            "def f(model, rng, dsts):\n"
            "    return [model.sample(0, d, rng) for d in dsts]\n",
            path="repro/experiments/sweep.py",
        )
        == []
    )
