"""TEE-encapsulation rule: enclave internals only behind ecalls."""

from repro.analysis import LintEngine
from repro.analysis.rules import TeeEncapsulationRule


def lint(source: str, path: str = "repro/faults/byzantine.py"):
    return LintEngine(rules=[TeeEncapsulationRule()]).check_source(source, path=path)


# -- positives ---------------------------------------------------------
def test_flags_key_exfiltration():
    findings = lint("def attack(enclave):\n    return enclave._key\n")
    assert len(findings) == 1
    assert "_key" in findings[0].message


def test_flags_cost_ledger_tampering():
    assert lint("def attack(enclave):\n    enclave._accrued = 0.0\n")


def test_flags_calling_internal_crypto():
    assert lint("def attack(e, d):\n    return e._sign(d)\n")
    assert lint("def attack(e, d, s):\n    return e._verify(d, s)\n")


def test_flags_entering_without_entry_point():
    assert lint("def attack(e):\n    e._enter()\n")


def test_flags_counter_rewind_on_foreign_object():
    findings = lint("def rollback(checker):\n    checker.view = 0\n")
    assert len(findings) == 1
    assert "counter" in findings[0].message
    assert lint("def rollback(checker):\n    checker.prepv = -1\n")
    assert lint("def rollback(checker):\n    del checker.ecalls\n")


def test_flags_in_any_untrusted_module():
    src = "def f(e):\n    return e._accrued\n"
    assert lint(src, path="repro/core/replica.py")
    assert lint(src, path="repro/experiments/runner.py")


# -- negatives ---------------------------------------------------------
def test_trusted_modules_are_allowed():
    src = "def f(self):\n    self._enter()\n    return self._key\n"
    assert lint(src, path="repro/tee/enclave.py") == []
    assert lint(src, path="repro/tee/rote.py") == []
    assert lint(src, path="repro/core/tee_services.py") == []
    assert lint(src, path="repro/protocols/damysus/tee_services.py") == []
    assert lint(src, path="repro/protocols/oneshot/tee_services.py") == []


def test_reading_counters_is_a_getter_ecall():
    # Replicas may read the checker's view; they may not write it.
    assert lint("def f(r):\n    return r.checker.view\n") == []


def test_writing_own_view_is_fine():
    # A replica's own (untrusted) view counter is not enclave state.
    assert lint("def f(self):\n    self.view = self.view + 1\n") == []


def test_public_entry_points_are_fine():
    assert (
        lint(
            "def f(checker, h):\n"
            "    prop = checker.tee_prepare(h)\n"
            "    cost = checker.drain_cost()\n"
            "    return prop, cost\n"
        )
        == []
    )


def test_unrelated_private_attrs_are_fine():
    assert lint("def f(self):\n    return self._keys\n") == []


# -- fast-path additions (PR 3) ----------------------------------------
def test_flags_batched_sign_outside_enclave():
    assert lint("def attack(e, ds):\n    return e._sign_batch(ds)\n")


def test_flags_raw_secret_access():
    findings = lint("def attack(kp):\n    return kp._secret\n")
    assert len(findings) == 1
    assert "_secret" in findings[0].message
    assert lint("def attack(pk, d, s):\n    return pk._check_tag(d, s)\n")
    assert lint("def attack(pk):\n    return pk._kp\n")


def test_keys_module_is_the_trusted_secret_holder():
    src = "def _check_tag(self, d, t):\n    return self._kp is not None\n"
    assert lint(src, path="repro/crypto/keys.py") == []
