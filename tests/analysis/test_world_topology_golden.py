"""Golden-fingerprint gate for the vectorized multicast fast path.

The kernel goldens (test_fastpath_determinism.py) run a constant
latency model, which never touches the RNG — they cannot detect a
change in the network's *draw order*.  These goldens run the
world-wide deployment (11-region RTT matrix + log-normal jitter), so
every multicast samples the ``net`` stream once per remote
destination: any deviation in draw count, draw order, or float
arithmetic between the scalar and vectorized paths shifts delivery
times and changes the digest.

The digests were captured from the pre-fast-path scalar per-destination
``send`` loop; the vectorized path must reproduce them bit-for-bit.
Divergence is a correctness bug — never re-pin.
"""

import pytest

from repro.analysis.sanitizer import fingerprint_run
from repro.net.latency import TopologyLatency
from repro.net.regions import WORLD11

#: protocol -> (events, messages, decisions, fingerprint digest),
#: captured at seed=7, f=1, target_blocks=4 over WORLD11 with
#: sigma=0.06 log-normal jitter, timeout_base=2.0 — *before* the
#: vectorized multicast/sample_many fast path landed.
GOLDEN = {
    "oneshot": (
        85,
        44,
        10,
        "1ee8d1356ab61c840d0cb6319513bd337d470a05e3cb97854ddc39f6868bb258",
    ),
    "damysus": (
        136,
        70,
        10,
        "743ef0f133671dffd2a8e575ce8fd4f1ca1e08689b69915f6733cee1b9ca4db0",
    ),
    "hotstuff": (
        256,
        131,
        16,
        "fdacf40d3f6f45001ed89635d8c0446c33f13a090b796bbaffacf636e3dbd3b9",
    ),
}


def _world_fingerprint(protocol):
    fp, _ = fingerprint_run(
        protocol,
        seed=7,
        f=1,
        target_blocks=4,
        latency=TopologyLatency(WORLD11, sigma=0.06),
        timeout_base=2.0,
        max_sim_time=120.0,
    )
    return fp


@pytest.mark.parametrize("protocol", sorted(GOLDEN))
def test_world_fingerprint_matches_scalar_era_golden(protocol):
    events, messages, decisions, digest = GOLDEN[protocol]
    fp = _world_fingerprint(protocol)
    assert fp.events == events
    assert fp.messages == messages
    assert fp.decisions == decisions
    assert fp.digest() == digest


def test_world_fingerprint_is_replay_stable():
    """Back-to-back runs in one process agree — the batched draws must
    not leave the ``net`` stream in a different state than the scalar
    draws would."""
    a = _world_fingerprint("oneshot")
    b = _world_fingerprint("oneshot")
    assert a.digest() == b.digest()
