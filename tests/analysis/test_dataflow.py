"""Interprocedural taint engine: summaries, fixpoint, sanitizers."""

import ast

from repro.analysis.callgraph import ProjectIndex
from repro.analysis.dataflow import FlowAnalysis, FlowSpec
from repro.analysis.rules.base import ModuleInfo


def make_index(files: dict) -> ProjectIndex:
    return ProjectIndex(
        {
            rel: ModuleInfo(path=rel, tree=ast.parse(src), source=src)
            for rel, src in files.items()
        }
    )


class _Spec(FlowSpec):
    """Test spec: ``taint()`` is the source, ``wash()`` the sanitizer,
    any tainted use inside ``repro/sink/`` is the sink."""

    name = "test-flow"

    def source_label(self, node, fn, index):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "taint"
        ):
            return "T"
        return None

    def sanitizes(self, target, node):
        return target is not None and target.endswith("wash")

    def check_use(self, fn, stmt, taints):
        if fn.module.startswith("repro/sink/") and taints:
            yield stmt, "tainted use"


def run(files: dict):
    index = make_index(files)
    analysis = FlowAnalysis(index, _Spec())
    findings = analysis.run()
    return index, analysis, findings


def lines(findings, module):
    return sorted(f.node.lineno for f in findings if f.fn.module == module)


# -- summaries ---------------------------------------------------------
def test_return_taint_crosses_module_boundary():
    _, _, findings = run(
        {
            "repro/src/a.py": (
                "def taint():\n"
                "    return 1\n"
                "def produce():\n"
                "    return taint()\n"
            ),
            "repro/sink/b.py": (
                "from repro.src.a import produce\n"
                "def consume():\n"
                "    x = produce()\n"
                "    return x\n"
            ),
        }
    )
    assert lines(findings, "repro/sink/b.py") == [3, 4]


def test_param_flow_propagates_argument_taint():
    files = {
        "repro/src/a.py": (
            "def taint():\n"
            "    return 1\n"
            "def ident(v):\n"
            "    return v\n"
            "def drop(v):\n"
            "    return 0\n"
        ),
        "repro/sink/b.py": (
            "from repro.src.a import taint, ident, drop\n"
            "def through():\n"
            "    kept = ident(taint())\n"
            "    lost = drop(taint())\n"
            "    safe = lost\n"
        ),
    }
    index, analysis, findings = run(files)
    assert analysis.summaries["repro.src.a.ident"].param_flow == {0}
    assert analysis.summaries["repro.src.a.drop"].param_flow == set()
    # Lines 3 and 4 evaluate taint() directly; line 5 only sees what
    # drop() let through — nothing.
    assert lines(findings, "repro/sink/b.py") == [3, 4]


def test_attribute_store_taints_reads_in_other_methods():
    _, analysis, findings = run(
        {
            "repro/src/h.py": (
                "def taint():\n"
                "    return 1\n"
                "class Holder:\n"
                "    def __init__(self):\n"
                "        self.v = taint()\n"
                "    def get(self):\n"
                "        return self.v\n"
            ),
            "repro/sink/c.py": (
                "from repro.src.h import Holder\n"
                "def read():\n"
                "    return Holder().get()\n"
            ),
        }
    )
    assert analysis.attr_taints[("repro.src.h.Holder", "v")]
    assert lines(findings, "repro/sink/c.py") == [3]


def test_sanitizer_drops_taint():
    _, _, findings = run(
        {
            "repro/src/a.py": (
                "def taint():\n"
                "    return 1\n"
                "def wash(v):\n"
                "    return v\n"
            ),
            "repro/sink/b.py": (
                "from repro.src.a import taint, wash\n"
                "def launder():\n"
                "    ok = wash(taint())\n"
                "    return ok\n"
            ),
        }
    )
    # Line 3 still *evaluates* the source; line 4 must be clean.
    assert lines(findings, "repro/sink/b.py") == [3]


def test_containers_are_taint_atomic():
    _, _, findings = run(
        {
            "repro/src/a.py": "def taint():\n    return 1\n",
            "repro/sink/b.py": (
                "from repro.src.a import taint\n"
                "def pack():\n"
                "    xs = [taint(), 2, 3]\n"
                "    y = xs[1]\n"
                "    return y\n"
            ),
        }
    )
    assert lines(findings, "repro/sink/b.py") == [3, 4, 5]


def test_loop_carried_taint_converges():
    _, _, findings = run(
        {
            "repro/src/a.py": "def taint():\n    return 1\n",
            "repro/sink/b.py": (
                "from repro.src.a import taint\n"
                "def accumulate(n):\n"
                "    acc = 0\n"
                "    for _ in range(n):\n"
                "        acc = acc + taint()\n"
                "    return acc\n"
            ),
        }
    )
    assert 6 in lines(findings, "repro/sink/b.py")


def test_findings_are_deterministic():
    files = {
        "repro/src/a.py": "def taint():\n    return 1\n",
        "repro/sink/b.py": (
            "from repro.src.a import taint\n"
            "def f():\n"
            "    return taint()\n"
        ),
    }
    first = [
        (f.fn.module, f.node.lineno, f.message) for f in run(files)[2]
    ]
    second = [
        (f.fn.module, f.node.lineno, f.message) for f in run(files)[2]
    ]
    assert first == second and first
