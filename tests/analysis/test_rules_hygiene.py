"""Hygiene rules: float-literal equality and ``__all__`` discipline."""

from repro.analysis import LintEngine
from repro.analysis.rules import AllExportsRule, FloatEqualityRule


def lint_float(source: str, path: str = "repro/core/replica.py"):
    return LintEngine(rules=[FloatEqualityRule()]).check_source(source, path=path)


def lint_all(source: str, path: str = "repro/util.py"):
    return LintEngine(rules=[AllExportsRule()]).check_source(source, path=path)


# -- float equality: positives ----------------------------------------
def test_flags_float_literal_equality():
    findings = lint_float("def f(t):\n    return t == 0.5\n")
    assert len(findings) == 1
    assert "0.5" in findings[0].message


def test_flags_float_literal_inequality():
    assert lint_float("def f(t):\n    return t != 1.0\n")


def test_flags_literal_on_the_left():
    assert lint_float("def f(t):\n    return 0.0 == t\n")


def test_flags_in_all_protocol_subtrees():
    src = "def f(t):\n    return t == 2.5\n"
    for path in (
        "repro/core/replica.py",
        "repro/protocols/oneshot/replica.py",
        "repro/smr/client.py",
        "repro/tee/enclave.py",
    ):
        assert lint_float(src, path=path), path


# -- float equality: negatives ----------------------------------------
def test_integer_equality_is_fine():
    assert lint_float("def f(v):\n    return v == 0\n") == []


def test_float_ordering_is_fine():
    assert lint_float("def f(t):\n    return t <= 0.5 or t > 1.0\n") == []


def test_float_equality_outside_protocol_logic_is_fine():
    src = "def f(t):\n    return t == 0.5\n"
    assert lint_float(src, path="repro/metrics/stats.py") == []


# -- __all__: positives ------------------------------------------------
def test_flags_missing_all():
    findings = lint_all("def helper():\n    return 1\n")
    assert len(findings) == 1
    assert "no __all__" in findings[0].message


def test_flags_unresolvable_export():
    findings = lint_all('__all__ = ["ghost"]\n')
    assert any("ghost" in f.message for f in findings)


def test_flags_public_def_missing_from_all():
    findings = lint_all(
        "def shown():\n    return 1\n\n"
        "def hidden():\n    return 2\n\n"
        '__all__ = ["shown"]\n'
    )
    assert len(findings) == 1
    assert "hidden" in findings[0].message


def test_flags_computed_all():
    findings = lint_all("__all__ = sorted(globals())\n")
    assert any("literal list" in f.message for f in findings)


# -- __all__: negatives ------------------------------------------------
def test_exhaustive_all_is_fine():
    src = (
        "CONST = 3\n\n"
        "def public():\n    return CONST\n\n"
        "def _private():\n    return 0\n\n"
        "class Thing:\n    pass\n\n"
        '__all__ = ["public", "Thing", "CONST"]\n'
    )
    assert lint_all(src) == []


def test_reexport_of_import_is_fine():
    src = "from os.path import join\n\n" '__all__ = ["join"]\n'
    assert lint_all(src) == []


def test_constants_need_not_be_exported():
    src = "LIMIT = 5\n\n__all__ = []\n"
    assert lint_all(src) == []
