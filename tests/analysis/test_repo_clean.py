"""CI gate: the real source tree satisfies every invariant rule.

``python -m pytest tests/analysis -x -q`` doubles as the lint gate;
``oneshot-repro lint`` is the interactive equivalent with the same
exit-code contract (0 clean, 1 violations).
"""

import pytest

from repro.analysis import lint_package

pytestmark = pytest.mark.lint


def test_source_tree_is_lint_clean():
    report = lint_package()
    assert report.parse_errors == []
    assert report.findings == [], "\n" + report.render_text()


def test_suppression_list_has_no_dead_entries():
    report = lint_package()
    assert report.unused_suppressions == [], [
        s.spec() for s in report.unused_suppressions
    ]


def test_every_default_rule_ran_over_a_nontrivial_tree():
    report = lint_package()
    assert report.modules_checked > 50
