"""Project index: symbols, import resolution, typing, call graph."""

import ast

from repro.analysis.callgraph import (
    ProjectIndex,
    build_project_index,
    clear_index_cache,
    import_aliases,
    modname_of,
)
from repro.analysis.rules.base import ModuleInfo


def make_modules(files: dict) -> dict:
    return {
        rel: ModuleInfo(path=rel, tree=ast.parse(src), source=src)
        for rel, src in files.items()
    }


def make_index(files: dict) -> ProjectIndex:
    return ProjectIndex(make_modules(files))


# -- naming ------------------------------------------------------------
def test_modname_of_modules_and_packages():
    assert modname_of("repro/sim/simulator.py") == "repro.sim.simulator"
    assert modname_of("repro/sim/__init__.py") == "repro.sim"
    assert modname_of("repro/__init__.py") == "repro"


def test_relative_imports_resolve_against_the_package():
    files = {
        "repro/protocols/common/base.py": (
            "from ...crypto import Digest\n"
            "from ..common import helper\n"
            "from . import sibling\n"
        )
    }
    aliases = import_aliases(make_modules(files)["repro/protocols/common/base.py"])
    assert aliases["Digest"] == "repro.crypto.Digest"
    assert aliases["helper"] == "repro.protocols.common.helper"
    assert aliases["sibling"] == "repro.protocols.common.sibling"


def test_reexport_chain_follows_init():
    idx = make_index(
        {
            "repro/sim/__init__.py": "from .simulator import Simulator\n",
            "repro/sim/simulator.py": "class Simulator:\n    pass\n",
            "repro/user.py": (
                "from repro.sim import Simulator\n"
                "def mk() -> Simulator:\n"
                "    return Simulator()\n"
            ),
        }
    )
    assert (
        idx.resolve_name("repro/user.py", "Simulator")
        == "repro.sim.simulator.Simulator"
    )


# -- typing ------------------------------------------------------------
def test_attr_types_from_annotated_ctor_param():
    idx = make_index(
        {
            "repro/sim/simulator.py": (
                "class Simulator:\n"
                "    def schedule(self, delay):\n"
                "        pass\n"
            ),
            "repro/proc.py": (
                "from repro.sim.simulator import Simulator\n"
                "class Process:\n"
                "    def __init__(self, sim: Simulator):\n"
                "        self.sim = sim\n"
                "    def later(self):\n"
                "        self.sim.schedule(1.0)\n"
            ),
        }
    )
    assert (
        idx.attr_type("repro.proc.Process", "sim")
        == "repro.sim.simulator.Simulator"
    )


def test_local_types_from_constructor_assignment():
    idx = make_index(
        {
            "repro/things.py": (
                "class Thing:\n"
                "    def poke(self):\n"
                "        pass\n"
                "def use():\n"
                "    t = Thing()\n"
                "    t.poke()\n"
            ),
        }
    )
    fn = idx.functions["repro.things.use"]
    assert idx.local_types(fn)["t"] == "repro.things.Thing"
    targets = [s.target for s in idx.calls["repro.things.use"]]
    assert "repro.things.Thing.poke" in targets


# -- call graph --------------------------------------------------------
def test_method_calls_resolve_through_typed_attributes():
    idx = make_index(
        {
            "repro/sim/simulator.py": (
                "class Simulator:\n"
                "    def schedule(self, delay):\n"
                "        pass\n"
            ),
            "repro/proc.py": (
                "from repro.sim.simulator import Simulator\n"
                "class Process:\n"
                "    def __init__(self, sim: Simulator):\n"
                "        self.sim = sim\n"
                "    def later(self):\n"
                "        self.sim.schedule(1.0)\n"
            ),
        }
    )
    callee = "repro.sim.simulator.Simulator.schedule"
    assert "repro.proc.Process.later" in idx.callers_of(callee)


def test_transitive_callers_walk_the_reverse_graph():
    idx = make_index(
        {
            "repro/chain.py": (
                "def a():\n"
                "    return b()\n"
                "def b():\n"
                "    return c()\n"
                "def c():\n"
                "    return 1\n"
            ),
        }
    )
    callers = idx.transitive_callers("repro.chain.c")
    assert {"repro.chain.a", "repro.chain.b"} <= callers


def test_external_calls_keep_dotted_names():
    idx = make_index(
        {
            "repro/h.py": (
                "import hmac\n"
                "def tag(key, data):\n"
                "    return hmac.new(key, data).digest()\n"
            ),
        }
    )
    targets = [s.target for s in idx.calls["repro.h.tag"]]
    assert "hmac.new" in targets


def test_mro_walks_project_bases():
    idx = make_index(
        {
            "repro/a.py": "class Base:\n    def hit(self):\n        pass\n",
            "repro/b.py": (
                "from repro.a import Base\n"
                "class Sub(Base):\n"
                "    pass\n"
            ),
        }
    )
    assert idx.mro("repro.b.Sub") == ["repro.b.Sub", "repro.a.Base"]
    assert idx.lookup_method("repro.b.Sub", "hit") == "repro.a.Base.hit"


# -- caching -----------------------------------------------------------
def test_index_memoized_by_content_digest():
    files = {"repro/x.py": "def f():\n    return 1\n"}
    clear_index_cache()
    first = build_project_index(make_modules(files))
    second = build_project_index(make_modules(files))
    assert first is second
    changed = dict(files)
    changed["repro/x.py"] = "def f():\n    return 2\n"
    third = build_project_index(make_modules(changed))
    assert third is not first
    clear_index_cache()
    assert build_project_index(make_modules(files)) is not first
