"""Whole-path sharded runs: all protocols, scaling, fuzz integration."""

import dataclasses

import pytest

from repro.experiments import ExperimentConfig, run_shard_scaling, run_sharded
from repro.fuzz import Scenario, ShardSpec, run_scenario
from repro.shard import ShardFingerprint


def _config(protocol, **overrides):
    base = ExperimentConfig(
        protocol=protocol,
        f=1,
        deployment="local",
        local_latency_s=0.002,
        max_sim_time=2.0,
        seed=9,
        workload="open",
        offered_tps=1200.0,
        virtual_clients=2000,
        arrival_slab=64,
        shards=2,
        cross_shard_permille=150,
        shard_slots=16,
    )
    return dataclasses.replace(base, **overrides)


@pytest.mark.parametrize(
    "protocol", ["oneshot", "oneshot-chained", "damysus", "hotstuff"]
)
def test_cross_shard_run_is_atomic_and_deterministic(protocol):
    run = run_sharded(_config(protocol))
    assert run.atomicity.ok, run.atomicity.describe()
    assert run.committed_txs > 0
    assert run.coordinator is not None
    assert run.coordinator.committed > 0
    assert run.coordinator.committed + run.coordinator.aborted == len(
        run.coordinator.decision_log
    )
    # 2PC spans two consensus decisions, so it must cost more than one.
    assert run.cross_overhead_ratio > 1.0
    # Replay identity: same config, byte-identical fingerprint.
    assert (
        run_sharded(_config(protocol)).fingerprint.digest()
        == run.fingerprint.digest()
    )


def test_single_shard_run_disables_cross_traffic():
    run = run_sharded(_config("oneshot", shards=1))
    assert run.coordinator is None
    assert run.router.cross_permille == 0
    assert run.atomicity.ok
    assert run.committed_txs > 0


def test_weak_scaling_k1_to_k2():
    scaling = run_shard_scaling(
        ks=(1, 2), config=_config("oneshot", cross_shard_permille=0)
    )
    assert sorted(scaling.runs) == [1, 2]
    assert all(r.atomicity.ok for r in scaling.runs.values())
    # Weak scaling: offered load grows with k, so committed throughput
    # must grow materially (the bench gate pins >= 3x at k=8).
    assert scaling.scaling_x() > 1.5


def test_fuzz_shard_scenario_runs_under_the_oracles():
    scenario = Scenario(
        protocol="oneshot",
        f=1,
        seed=21,
        target_blocks=6,
        timeout_base=0.2,
        latency_s=0.002,
        max_sim_time=4.0,
        shard=ShardSpec(
            k=2,
            cross_permille=150,
            offered_tps=1500.0,
            slots=16,
            decision_delay_s=0.05,
            delay_start=0.5,
            delay_end=1.5,
        ),
    )
    result = run_scenario(scenario)
    assert result.ok, result.describe()
    assert isinstance(result.fingerprint, ShardFingerprint)
    assert result.report.blocks_decided >= scenario.target_blocks
    # Coordinator-targeted delay is part of the scenario, so it must be
    # replay-stable too.
    assert (
        run_scenario(scenario).fingerprint.digest()
        == result.fingerprint.digest()
    )
