"""Hot-key rebalancing: monitor math, LPT planning, golden replay."""

import numpy as np

from repro.experiments import ExperimentConfig, run_sharded
from repro.shard import LoadMonitor, Rebalancer, RoutingTable, initial_table


def _loaded_monitor(counts, n_shards):
    monitor = LoadMonitor(len(counts), n_shards)
    for slot, n in enumerate(counts):
        if n:
            monitor.record(
                np.full(n, slot, dtype=np.int64), np.zeros(n, dtype=np.int64)
            )
    return monitor


def test_monitor_accumulates_and_resets():
    monitor = LoadMonitor(4, 2)
    monitor.record(np.array([0, 0, 1, 3]), np.array([0, 0, 1, 1]))
    assert monitor.slot_counts.tolist() == [2, 1, 0, 1]
    assert monitor.total_rows == 4
    monitor.reset_epoch()
    assert monitor.slot_counts.sum() == 0 and monitor.total_rows == 0
    # Streaming sketches survive the epoch reset (reporting history).
    assert monitor.slab_rows.count == 1


def test_shard_loads_follow_the_table():
    monitor = _loaded_monitor([10, 20, 30, 40], 2)
    table = RoutingTable(epoch=0, slot_to_shard=(0, 0, 1, 1))
    assert monitor.shard_loads(table).tolist() == [30, 70]
    assert monitor.imbalance(table) == 70 / 50


def test_rebalancer_noop_under_threshold():
    monitor = _loaded_monitor([25, 25, 25, 25], 2)
    table = RoutingTable(epoch=0, slot_to_shard=(0, 0, 1, 1))
    assert Rebalancer().plan(monitor, table) is None
    # No load at all: never replans.
    empty = LoadMonitor(4, 2)
    assert Rebalancer().plan(empty, table) is None


def test_rebalancer_lpt_reduces_skew_deterministically():
    # Slot 0 is hot: 90 of 120 rows land on shard 0's slots.
    monitor = _loaded_monitor([90, 10, 10, 10], 2)
    table = initial_table(2, slots=4)  # (0, 1, 0, 1) -> loads [100, 20]
    plan = Rebalancer().plan(monitor, table)
    assert plan is not None
    assign, before, after = plan
    assert before > after >= 1.0
    # LPT: hot slot alone on one shard, the three light slots together.
    assert assign == (0, 1, 1, 1)
    assert plan == Rebalancer().plan(monitor, table)  # deterministic


def _hot_config(seed=11):
    return ExperimentConfig(
        protocol="oneshot",
        f=1,
        deployment="local",
        local_latency_s=0.002,
        max_sim_time=4.0,
        seed=seed,
        workload="open",
        offered_tps=3000.0,
        virtual_clients=3000,
        arrival_slab=64,
        shards=4,
        cross_shard_permille=0,
        hot_key_permille=400,
        shard_epoch_s=1.0,
        shard_slots=32,
    )


def test_hot_key_run_migrates_and_replays_byte_identically():
    run = run_sharded(_hot_config())
    assert run.atomicity.ok
    assert run.committed_txs > 0
    migrations = run.pump.migrations
    assert migrations, "40% hot traffic must trip the rebalancer"
    first = migrations[0]
    assert first.epoch >= 1 and first.moved_slots
    assert first.imbalance_after < first.imbalance_before
    assert run.router.epoch == len(run.router.history) - 1 >= 1
    # Golden fingerprint: rebalancing runs replay byte-identically.
    digest = run.fingerprint.digest()
    assert digest == (
        "6989b7c31d3fc1be9787e261fa7bbaae67c0f6bd555697ce0e71d05535c966a4"
    )
    again = run_sharded(_hot_config())
    assert again.fingerprint.digest() == digest
    assert again.pump.migrations == migrations


def test_fingerprint_tracks_routing_history():
    # A different seed shifts arrivals, so chains (and the digest) move.
    other = run_sharded(_hot_config(seed=12))
    assert other.fingerprint.digest() != (
        "6989b7c31d3fc1be9787e261fa7bbaae67c0f6bd555697ce0e71d05535c966a4"
    )
