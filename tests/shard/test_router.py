"""Deterministic router: stability, versioning, partitioning."""

import numpy as np
import pytest

from repro.shard import (
    HOT_ROUTING_KEY,
    Router,
    RoutingTable,
    initial_table,
    mix64,
    mix64_scalar,
)
from repro.smr import TxBatch


def _batch(n: int = 256, base: int = 1_000_000) -> TxBatch:
    rng = np.random.default_rng(3)
    cids = base + rng.integers(0, 500, size=n)
    tids = np.arange(n, dtype=np.int64)
    times = np.cumsum(rng.exponential(0.001, size=n))
    return TxBatch(cids, tids, times, 0)


def test_mix64_scalar_matches_vectorized():
    xs = np.array([0, 1, 17, 2**40, 2**63], dtype=np.uint64)
    vec = mix64(xs)
    for x, v in zip(xs.tolist(), vec.tolist()):
        assert mix64_scalar(int(x)) == int(v)


def test_key_to_shard_is_stable_across_router_instances():
    a = Router(4, slots=32)
    b = Router(4, slots=32)
    for cid in range(1_000_000, 1_000_200):
        assert a.shard_of_key(cid) == b.shard_of_key(cid)


def test_classification_is_stable_and_covers_all_shards():
    router = Router(4, slots=32, cross_permille=200)
    batch = _batch()
    s1 = router.classify(batch)
    s2 = router.classify(batch)
    for x, y in zip(s1, s2):
        assert np.array_equal(x, y)
    slots, home, cross, partner = s1
    assert set(np.unique(home)) <= set(range(4))
    assert len(set(np.unique(home))) > 1  # load actually spreads
    # Cross rows name a distinct partner shard.
    assert np.all(partner[cross] != home[cross])


def test_partition_agrees_with_scalar_route():
    router = Router(3, slots=27)
    batch = _batch()
    parts = router.partition(batch)
    assert sum(len(p) for p in parts.values()) == len(batch)
    for shard, part in parts.items():
        for cid in part.client_ids.tolist():
            assert router.shard_of_key(int(cid)) == shard


def test_epoch_versioning_and_history():
    router = Router(2, slots=8)
    assert router.epoch == 0
    t0 = router.table
    t1 = router.advance((0, 0, 0, 0, 1, 1, 1, 1))
    assert router.epoch == 1 and t1.epoch == 1
    assert router.history == [t0, t1]
    assert t0.table_digest() != t1.table_digest()
    # Same assignment at a different epoch digests differently.
    assert (
        RoutingTable(epoch=2, slot_to_shard=t1.slot_to_shard).table_digest()
        != t1.table_digest()
    )


def test_advance_must_preserve_slot_count():
    router = Router(2, slots=8)
    with pytest.raises(ValueError):
        router.advance((0, 1))


def test_rebalance_moves_keys_with_their_slot():
    router = Router(2, slots=8)
    cid = 1_000_042
    slot = int(router.slots_of(np.asarray([cid]))[0])
    before = router.shard_of_key(cid)
    flipped = list(router.table.slot_to_shard)
    flipped[slot] = 1 - flipped[slot]
    router.advance(tuple(flipped))
    # The key's slot never changes; only the slot's shard does.
    assert int(router.slots_of(np.asarray([cid]))[0]) == slot
    assert router.shard_of_key(cid) == 1 - before


def test_hot_key_collapse_routes_to_one_slot():
    router = Router(4, slots=32, hot_permille=1000)
    batch = _batch()
    slots = router.slots_of(batch.client_ids)
    assert len(np.unique(slots)) == 1
    expected = mix64_scalar(HOT_ROUTING_KEY) % 32
    assert int(slots[0]) == expected


def test_initial_table_round_robin():
    table = initial_table(3, slots=9)
    assert table.slot_to_shard == (0, 1, 2, 0, 1, 2, 0, 1, 2)
    with pytest.raises(ValueError):
        initial_table(4, slots=2)
