"""2PC semantics: KVStore markers, the coordinator, and the oracle."""

import pytest

from repro.net import Network
from repro.shard import COORDINATOR_PID, Coordinator, check_atomicity
from repro.sim import Process, Simulator
from repro.smr import KVStore, Reply, SubmitTx


# ----------------------------------------------------------------------
# KVStore 2PC markers
# ----------------------------------------------------------------------
def test_prepare_then_commit_applies_staged_ops():
    kv = KVStore()
    kv.apply(("xprepare", 7, (("add", "acct0", -1), ("set", "flag", "on"))))
    assert kv.get("acct0") is None  # staged, not applied
    assert 7 in kv.x_prepared and 7 in kv.x_staged
    kv.apply(("xcommit", 7))
    assert kv.get("acct0") == -1
    assert kv.get("flag") == "on"
    assert 7 in kv.x_committed and 7 not in kv.x_staged
    # Legs are accounted as one decision, not one op each.
    assert kv.ops_applied == 2


def test_abort_discards_staged_ops():
    kv = KVStore()
    kv.apply(("xprepare", 3, (("add", "acct1", 1),)))
    kv.apply(("xabort", 3))
    assert kv.get("acct1") is None
    assert 3 in kv.x_aborted and 3 not in kv.x_staged


def test_presumed_abort_tolerates_late_prepare():
    kv = KVStore()
    kv.apply(("xabort", 5))  # deadline fired before the prepare landed
    assert 5 in kv.x_aborted
    kv.apply(("xprepare", 5, (("add", "acct0", -1),)))
    assert 5 in kv.x_prepared
    assert 5 not in kv.x_staged  # the late prepare stages nothing
    assert kv.get("acct0") is None


def test_commit_without_prepare_raises():
    kv = KVStore()
    with pytest.raises(ValueError, match="unstaged"):
        kv.apply(("xcommit", 9))


def test_double_decision_and_double_prepare_raise():
    kv = KVStore()
    kv.apply(("xprepare", 1, ()))
    kv.apply(("xcommit", 1))
    with pytest.raises(ValueError, match="decided twice"):
        kv.apply(("xabort", 1))
    with pytest.raises(ValueError, match="prepared twice"):
        kv.apply(("xprepare", 1, ()))


# ----------------------------------------------------------------------
# Coordinator over stub shards
# ----------------------------------------------------------------------
class _Replica(Process):
    """A stub shard replica: optionally acks marker submissions and
    applies them to a local KVStore in arrival order."""

    def __init__(self, sim, network, pid, ack=True):
        super().__init__(sim, pid, name=f"stub-{pid}")
        self.network = network
        self.ack = ack
        self.kv = KVStore()
        network.register(self)

    def on_message(self, sender, payload):
        if not isinstance(payload, SubmitTx):
            return
        tx = payload.tx
        self.kv.apply(tx.op)
        if self.ack:
            self.network.send(
                self.pid,
                sender,
                Reply(tx_key=tx.key(), view=1, replica=self.pid, certified=True),
            )


def _fabric(sim, ack_by_shard):
    nets, pids, replicas = [], [], []
    for ack in ack_by_shard:
        net = Network(sim)
        nets.append(net)
        replicas.append(_Replica(sim, net, 0, ack=ack))
        pids.append([0])
    return nets, pids, replicas


def test_coordinator_commits_when_both_shards_prepare():
    sim = Simulator(seed=1)
    nets, pids, replicas = _fabric(sim, [True, True])
    coord = Coordinator(sim, nets, pids, f=0, certified_replies=False)
    coord.submit_transfer(0, 1)
    sim.run(until=5.0)
    assert (coord.committed, coord.aborted, coord.in_flight) == (1, 0, 0)
    assert coord.decision_log[0][:2] == (0, "commit")
    for r in replicas:
        assert r.kv.x_committed == {0}
    # The transfer moved one unit home -> partner.
    assert replicas[0].kv.get("acct0") == -1
    assert replicas[1].kv.get("acct1") == 1


def test_coordinator_aborts_on_prepare_timeout():
    sim = Simulator(seed=1)
    nets, pids, replicas = _fabric(sim, [True, False])  # shard 1 never acks
    coord = Coordinator(
        sim, nets, pids, f=0, certified_replies=False, prepare_timeout=0.5
    )
    coord.submit_transfer(0, 1)
    sim.run(until=5.0)
    assert (coord.committed, coord.aborted) == (0, 1)
    assert coord.decision_log[0][:2] == (0, "abort")
    # Both shards recorded the abort; no account moved anywhere.
    for r in replicas:
        assert r.kv.x_aborted == {0}
        assert r.kv.get("acct0") is None and r.kv.get("acct1") is None


def test_coordinator_needs_quorum_without_certified_replies():
    sim = Simulator(seed=1)
    nets = [Network(sim), Network(sim)]
    replicas = [
        [_Replica(sim, nets[s], pid, ack=(pid == 0)) for pid in range(3)]
        for s in range(2)
    ]
    coord = Coordinator(
        sim,
        nets,
        [[0, 1, 2], [0, 1, 2]],
        f=1,
        certified_replies=False,
        prepare_timeout=0.5,
    )
    coord.submit_transfer(0, 1)
    sim.run(until=5.0)
    # A single ack per shard is below the f+1 quorum -> presumed abort.
    assert (coord.committed, coord.aborted) == (0, 1)
    assert replicas[0][0].kv.x_aborted == {0}


def test_coordinator_rejects_degenerate_transfer():
    sim = Simulator(seed=1)
    nets, pids, _ = _fabric(sim, [True, True])
    coord = Coordinator(sim, nets, pids, f=0, certified_replies=False)
    with pytest.raises(ValueError):
        coord.submit_transfer(1, 1)


# ----------------------------------------------------------------------
# Atomicity oracle on planted histories
# ----------------------------------------------------------------------
class _FakeLog:
    def __init__(self, state, blocks=1):
        self.state = state
        self._blocks = blocks

    def __len__(self):
        return self._blocks


class _FakeReplica:
    def __init__(self, pid, state, blocks=1):
        self.pid = pid
        self.log = _FakeLog(state, blocks)


class _FakeCluster:
    def __init__(self, replicas):
        self.replicas = replicas

    def correct_replicas(self):
        return self.replicas


def _state(committed=(), aborted=(), prepared=(), accounts=()):
    kv = KVStore()
    kv.x_committed = set(committed)
    kv.x_aborted = set(aborted)
    kv.x_prepared = set(prepared) | set(committed) | set(aborted)
    for key, value in accounts:
        kv.apply(("set", key, value))
    return kv


def test_oracle_accepts_unanimous_histories():
    a = _state(committed=[0], accounts=[("acct0", -1)])
    b = _state(committed=[0], accounts=[("acct1", 1)])
    report = check_atomicity(
        [_FakeCluster([_FakeReplica(0, a)]), _FakeCluster([_FakeReplica(0, b)])]
    )
    assert report.ok
    assert report.committed == {0}


def test_oracle_flags_commit_abort_disagreement():
    a = _state(committed=[0], accounts=[("acct0", -1)])
    b = _state(aborted=[0])
    report = check_atomicity(
        [_FakeCluster([_FakeReplica(0, a)]), _FakeCluster([_FakeReplica(0, b)])]
    )
    assert not report.ok
    assert any("committed on one" in v for v in report.violations)


def test_oracle_flags_intra_shard_outcome_conflict():
    lead = _state(committed=[0], accounts=[("acct0", -1)], prepared=[0])
    lag = _state(aborted=[0])
    report = check_atomicity(
        [_FakeCluster([_FakeReplica(0, lead, blocks=5), _FakeReplica(1, lag)])]
    )
    assert not report.ok
    assert any("differently from the reference" in v for v in report.violations)


def test_oracle_tolerates_lagging_subset_replicas():
    lead = _state(committed=[0, 1], accounts=[("acct0", -2)])
    lag = _state(committed=[0], accounts=[("acct0", -1)])
    other = _state(committed=[0, 1], accounts=[("acct1", 2)])
    report = check_atomicity(
        [
            _FakeCluster([_FakeReplica(0, lead, blocks=5), _FakeReplica(1, lag)]),
            _FakeCluster([_FakeReplica(0, other, blocks=5)]),
        ]
    )
    assert report.ok


def test_oracle_flags_conservation_break():
    # A commit applied on BOTH shards but only one side's account moved:
    # the totals cannot be explained by in-flight half-commits.
    a = _state(committed=[0], accounts=[("acct0", -1)])
    b = _state(committed=[0])  # partner shard "lost" its credit leg
    report = check_atomicity(
        [_FakeCluster([_FakeReplica(0, a)]), _FakeCluster([_FakeReplica(0, b)])]
    )
    assert not report.ok
    assert any("conservation" in v for v in report.violations)


def test_oracle_allows_half_applied_commit_in_flight():
    # Commit landed on the home shard, still in flight to the partner:
    # |total| == #partial_commits is within the conservation bound.
    a = _state(committed=[0], accounts=[("acct0", -1)])
    b = _state(prepared=[0])
    report = check_atomicity(
        [_FakeCluster([_FakeReplica(0, a)]), _FakeCluster([_FakeReplica(0, b)])]
    )
    assert report.ok
    assert report.partial_commits == {0}
