"""Shared test helpers: compact cluster construction and run loops."""

from __future__ import annotations

from typing import Optional

import pytest

from repro.metrics import MetricsCollector
from repro.net import ConstantLatency, Network
from repro.protocols.common import Cluster, ProtocolConfig, build_cluster
from repro.protocols.registry import get_protocol
from repro.sim import Simulator


def make_cluster(
    protocol: str = "oneshot",
    f: int = 1,
    n: Optional[int] = None,
    seed: int = 1,
    latency_s: float = 0.002,
    timeout_base: float = 0.2,
    payload_bytes: int = 0,
    replica_factory=None,
    enable_log: bool = False,
    **config_kw,
) -> tuple[Simulator, Network, Cluster]:
    """Build a small cluster on constant-latency links."""
    info = get_protocol(protocol)
    if n is None:
        n = info.n_for(f)
    sim = Simulator(seed=seed)
    network = Network(sim, latency=ConstantLatency(latency_s))
    if enable_log:
        network.enable_log()
    config = ProtocolConfig(n=n, f=f, timeout_base=timeout_base, **config_kw)
    cluster = build_cluster(
        info.replica_cls,
        sim,
        network,
        config,
        payload_bytes=payload_bytes,
        replica_factory=replica_factory,
    )
    return sim, network, cluster


def run_blocks(
    sim: Simulator,
    cluster: Cluster,
    blocks: int,
    max_time: float = 60.0,
    reference: int = 0,
) -> None:
    """Start the cluster and run until a replica decided ``blocks``."""
    cluster.start()
    ref = cluster.replicas[reference]
    sim.run(until=max_time, stop_when=lambda: len(ref.log) >= blocks)
    cluster.stop()


@pytest.fixture
def small_oneshot():
    """A started-but-not-run 3-replica OneShot cluster (f=1)."""
    sim, network, cluster = make_cluster("oneshot", f=1)
    return sim, network, cluster
