"""Unit tests for the network fabric."""

import pytest

from repro.net import ConstantLatency, Network
from repro.net.message import HEADER_BYTES, payload_size
from repro.sim import Process, Simulator


class Sink(Process):
    def __init__(self, sim, pid):
        super().__init__(sim, pid)
        self.got = []

    def on_message(self, sender, payload):
        self.got.append((self.sim.now, sender, payload))


class Sized:
    def __init__(self, n):
        self.n = n

    def wire_size(self):
        return self.n


def make_net(seed=0, latency=0.01, bandwidth=1e9, **kw):
    sim = Simulator(seed)
    net = Network(sim, ConstantLatency(latency), bandwidth_bps=bandwidth, **kw)
    procs = [Sink(sim, i) for i in range(3)]
    for p in procs:
        net.register(p)
    return sim, net, procs


def test_send_delivers_payload():
    sim, net, procs = make_net()
    net.send(0, 1, "hello")
    sim.run()
    assert procs[1].got[0][1:] == (0, "hello")


def test_propagation_delay_applied():
    sim, net, procs = make_net(latency=0.02)
    net.send(0, 1, "x")
    sim.run()
    assert procs[1].got[0][0] >= 0.02


def test_nic_serialization_delays_fanout():
    # 1 Mbit/s: an 11000-byte payload takes ~88ms to serialize; the
    # second copy must leave after the first.
    sim, net, procs = make_net(latency=0.001, bandwidth=1e6)
    net.multicast(0, [1, 2], Sized(11000 - HEADER_BYTES))
    sim.run()
    t1 = procs[1].got[0][0]
    t2 = procs[2].got[0][0]
    assert t2 == pytest.approx(t1 + 11000 * 8 / 1e6)


def test_loopback_bypasses_nic():
    sim, net, procs = make_net(latency=0.05)
    net.send(1, 1, "self")
    sim.run()
    assert procs[1].got[0][0] < 0.001


def test_unknown_destination_raises():
    sim, net, procs = make_net()
    with pytest.raises(KeyError):
        net.send(0, 99, "x")


def test_duplicate_registration_rejected():
    sim, net, procs = make_net()
    with pytest.raises(ValueError):
        net.register(Sink(sim, 0))


def test_byte_and_message_accounting():
    sim, net, procs = make_net()
    net.send(0, 1, Sized(100))
    net.send(0, 2, Sized(50))
    assert net.messages_sent == 2
    assert net.bytes_sent == 150 + 2 * HEADER_BYTES


def test_message_log_records_envelopes():
    sim, net, procs = make_net()
    net.enable_log()
    net.send(0, 1, "x")
    sim.run()
    assert len(net.message_log) == 1
    env = net.message_log[0]
    assert (env.src, env.dst) == (0, 1)
    assert env.deliver_time >= env.send_time


def test_pre_gst_extra_delay():
    sim, net, procs = make_net(latency=0.001)
    net.gst = 1.0
    net.pre_gst_extra = 0.5
    net.send(0, 1, "early")
    sim.run()
    early = procs[1].got[0][0]
    # After GST, no extra delay.
    sim2, net2, procs2 = make_net(latency=0.001)
    net2.gst = 0.0
    net2.pre_gst_extra = 0.5
    net2.send(0, 1, "late")
    sim2.run()
    late = procs2[1].got[0][0]
    assert late <= 0.002
    assert early >= late  # pre-GST can only be slower


def test_delay_hooks_add_latency():
    sim, net, procs = make_net(latency=0.001)
    net.delay_hooks.append(lambda now, s, d, size: 0.25)
    net.send(0, 1, "x")
    sim.run()
    assert procs[1].got[0][0] >= 0.25


def test_messages_never_lost():
    sim, net, procs = make_net()
    for i in range(50):
        net.send(0, 1, i)
    sim.run()
    assert [p for _, _, p in procs[1].got] == list(range(50))


def test_payload_size_default_for_unsized():
    assert payload_size(object()) == 64
    assert payload_size(Sized(123)) == 123
