"""Unit tests for simulated signatures and key rings."""

import pytest

from repro.crypto import KeyPair, KeyRing, Signature, digest_of


@pytest.fixture
def ring_and_keys():
    pairs = [KeyPair.generate(i, master_seed=3) for i in range(4)]
    ring = KeyRing()
    for kp in pairs:
        ring.add(kp.public())
    return ring, pairs


def test_sign_verify_roundtrip(ring_and_keys):
    ring, pairs = ring_and_keys
    d = digest_of("msg", 1)
    sig = pairs[0].sign(d)
    assert sig.signer == 0
    assert ring.verify(d, sig)


def test_tampered_data_fails(ring_and_keys):
    ring, pairs = ring_and_keys
    sig = pairs[0].sign(digest_of("msg", 1))
    assert not ring.verify(digest_of("msg", 2), sig)


def test_wrong_signer_attribution_fails(ring_and_keys):
    ring, pairs = ring_and_keys
    d = digest_of("msg", 1)
    sig = pairs[0].sign(d)
    forged = Signature(signer=1, tag=sig.tag)
    assert not ring.verify(d, forged)


def test_unknown_signer_fails(ring_and_keys):
    ring, pairs = ring_and_keys
    d = digest_of("m")
    outsider = KeyPair.generate(99, master_seed=3)
    assert not ring.verify(d, outsider.sign(d))


def test_garbage_tag_fails(ring_and_keys):
    ring, _ = ring_and_keys
    assert not ring.verify(digest_of("m"), Signature(0, b"\x00" * 32))


def test_verify_all(ring_and_keys):
    ring, pairs = ring_and_keys
    d = digest_of("quorum")
    sigs = [kp.sign(d) for kp in pairs[:3]]
    assert ring.verify_all(d, sigs)
    bad = sigs + [Signature(3, b"\x00" * 32)]
    assert not ring.verify_all(d, bad)


def test_keygen_deterministic():
    a = KeyPair.generate(1, master_seed=5)
    b = KeyPair.generate(1, master_seed=5)
    d = digest_of("x")
    assert a.sign(d) == b.sign(d)


def test_domain_separation():
    a = KeyPair.generate(1, master_seed=5, domain="tee")
    b = KeyPair.generate(1, master_seed=5, domain="replica")
    d = digest_of("x")
    assert a.sign(d) != b.sign(d)


def test_keypair_owner_binding():
    from repro.tee import provision

    creds = provision(3)
    assert [c.keypair.owner for c in creds] == [0, 1, 2]


def test_ring_membership(ring_and_keys):
    ring, _ = ring_and_keys
    assert 0 in ring and 3 in ring and 7 not in ring
    assert len(ring) == 4


def test_public_key_cannot_sign(ring_and_keys):
    _, pairs = ring_and_keys
    pk = pairs[0].public()
    assert not hasattr(pk, "sign")
    assert not hasattr(pk, "_secret")


# ----------------------------------------------------------------------
# verify_all: iterable input, short-circuit, no copies
# ----------------------------------------------------------------------
def test_verify_all_accepts_any_iterable(ring_and_keys):
    ring, pairs = ring_and_keys
    d = digest_of("gen")
    assert ring.verify_all(d, (kp.sign(d) for kp in pairs))  # a generator
    assert ring.verify_all(d, tuple(kp.sign(d) for kp in pairs))


def test_verify_all_short_circuits_on_first_failure(ring_and_keys):
    ring, pairs = ring_and_keys
    d = digest_of("short")
    consumed = []

    def sigs():
        for i, s in enumerate(
            [Signature(0, b"\x00" * 32)] + [kp.sign(d) for kp in pairs]
        ):
            consumed.append(i)
            yield s

    assert not ring.verify_all(d, sigs())
    assert consumed == [0]  # stopped at the first bad signature


def test_verify_all_empty_iterable_is_vacuously_true(ring_and_keys):
    ring, _ = ring_and_keys
    assert ring.verify_all(digest_of("empty"), [])


# ----------------------------------------------------------------------
# the verified-signature memo
# ----------------------------------------------------------------------
def test_successful_verify_populates_memo(ring_and_keys):
    ring, pairs = ring_and_keys
    d = digest_of("memo")
    assert ring.memo_size == 0
    assert ring.verify(d, pairs[0].sign(d))
    assert ring.memo_size == 1
    assert ring.verify(d, pairs[0].sign(d))  # warm hit, no growth
    assert ring.memo_size == 1


def test_failed_verify_leaves_memo_untouched(ring_and_keys):
    ring, _ = ring_and_keys
    assert not ring.verify(digest_of("memo"), Signature(0, b"\x00" * 32))
    assert ring.memo_size == 0


def test_memo_capacity_is_configurable():
    from repro.crypto import SIG_MEMO_CAPACITY

    assert KeyRing().memo_capacity == SIG_MEMO_CAPACITY
    assert KeyRing(memo_capacity=7).memo_capacity == 7
