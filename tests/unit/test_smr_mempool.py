"""Unit tests for mempools and workload sources."""

from repro.smr import BLOCK_TXS, Mempool, SaturatedSource, Transaction, TxFactory


def test_block_txs_matches_paper():
    assert BLOCK_TXS == 400


def test_saturated_source_full_batches():
    src = SaturatedSource(payload_bytes=256)
    batch = src.batch(400)
    assert len(batch) == 400
    assert all(t.payload_bytes == 256 for t in batch)


def test_saturated_source_ids_increase():
    src = SaturatedSource()
    a = src.batch(3)
    b = src.batch(3)
    assert [t.tx_id for t in a + b] == list(range(6))


def test_mempool_fifo_order():
    mp = Mempool(batch_size=10)
    f = TxFactory(1)
    txs = [f.make() for _ in range(3)]
    for t in txs:
        mp.submit(t)
    assert mp.next_batch() == tuple(txs)


def test_mempool_dedup():
    mp = Mempool()
    t = Transaction(1, 1)
    assert mp.submit(t)
    assert not mp.submit(t)
    assert len(mp) == 1


def test_mempool_mark_committed_removes_and_blocks_resubmit():
    mp = Mempool()
    t = Transaction(1, 1)
    mp.submit(t)
    mp.mark_committed(t)
    assert len(mp) == 0
    assert not mp.submit(t)


def test_mempool_tops_up_from_source():
    mp = Mempool(source=SaturatedSource(), batch_size=5)
    client_tx = Transaction(1, 1)
    mp.submit(client_tx)
    batch = mp.next_batch()
    assert len(batch) == 5
    assert batch[0] is client_tx  # client txs first


def test_mempool_without_source_returns_partial_batch():
    mp = Mempool(batch_size=5)
    mp.submit(Transaction(1, 1))
    assert len(mp.next_batch()) == 1
    assert mp.next_batch() == ()


def test_batch_size_respected_with_many_pending():
    mp = Mempool(batch_size=2)
    f = TxFactory(9)
    for _ in range(5):
        mp.submit(f.make())
    assert len(mp.next_batch()) == 2
    assert len(mp) == 3


# -- bounded dedup window ----------------------------------------------
def test_dedup_window_must_be_positive():
    import pytest

    with pytest.raises(ValueError):
        Mempool(dedup_window=0)
    with pytest.raises(ValueError):
        Mempool(dedup_window=-5)


def test_default_dedup_window_is_bounded():
    from repro.smr import DEFAULT_DEDUP_WINDOW

    assert Mempool().dedup_window == DEFAULT_DEDUP_WINDOW
    assert DEFAULT_DEDUP_WINDOW > 0


def test_seen_set_never_exceeds_window():
    mp = Mempool(dedup_window=8)
    for i in range(50):
        mp.submit(Transaction(1, i))
    assert len(mp._seen) == 8


def test_duplicate_within_window_rejected():
    mp = Mempool(dedup_window=4)
    t = Transaction(1, 1)
    assert mp.submit(t)
    mp.submit(Transaction(1, 2))
    assert not mp.submit(t)


def test_resubmit_after_horizon_is_readmitted():
    """A retransmission arriving after its key aged out of the window
    is accepted again — commit-time dedup is the execution layer's job."""
    mp = Mempool(dedup_window=3)
    t = Transaction(1, 1)
    mp.submit(t)
    mp.next_batch()  # drain pending; t is no longer queued
    for i in range(2, 6):  # push t's key out of the 3-wide window
        mp.submit(Transaction(1, i))
    assert not mp.seen_recently(t.key())
    assert mp.submit(t)


def test_readmitted_pending_key_never_duplicates_a_batch():
    """If a still-pending transaction's key ages out and it is
    resubmitted, the resubmission overwrites the same pending slot —
    no batch ever carries the transaction twice."""
    mp = Mempool(dedup_window=2, batch_size=10)
    t = Transaction(1, 1)
    mp.submit(t)  # stays pending (no next_batch call)
    mp.submit(Transaction(1, 2))
    mp.submit(Transaction(1, 3))  # t's key evicted from window
    assert mp.submit(t)  # re-admitted
    batch = mp.next_batch()
    assert sum(1 for tx in batch if tx.key() == t.key()) == 1


def test_mark_committed_key_inside_window_blocks_resubmit():
    mp = Mempool(dedup_window=4)
    t = Transaction(1, 1)
    mp.submit(t)
    mp.mark_committed(t)
    assert not mp.submit(t)
    assert len(mp) == 0


# -- batched commit (the per-block hot path) ---------------------------
def _window_state(mp):
    return (list(mp._seen), sorted(mp._pending), len(mp))


def test_mark_committed_many_equals_per_tx_loop():
    """Bulk commit ≡ mark_committed per transaction: same window
    contents *and insertion order* (order decides future evictions)."""
    a, b = Mempool(dedup_window=100), Mempool(dedup_window=100)
    txs = [Transaction(3, i) for i in range(30)]
    for mp in (a, b):
        for t in txs[:5]:
            mp.submit(t)
    a.mark_committed_many(txs)
    for t in txs:
        b.mark_committed(t)
    assert _window_state(a) == _window_state(b)


def test_mark_committed_keys_bulk_path_preserves_duplicate_positions():
    """The no-eviction bulk path must keep an already-seen key at its
    original window position, exactly like _remember's early return."""
    a, b = Mempool(dedup_window=100), Mempool(dedup_window=100)
    for mp in (a, b):
        mp.mark_committed(Transaction(1, 1))
        mp.mark_committed(Transaction(1, 2))
    keys = [(1, 2), (1, 9), (1, 1), (1, 8)]
    a.mark_committed_keys(keys)
    for cid, txid in keys:
        b.mark_committed(Transaction(cid, txid))
    assert _window_state(a) == _window_state(b)


def test_mark_committed_keys_eviction_path_equals_per_tx_loop():
    """When the batch overflows the window the slow path runs — its
    evictions must match the scalar loop's exactly."""
    a, b = Mempool(dedup_window=10), Mempool(dedup_window=10)
    txs = [Transaction(2, i) for i in range(25)]
    for mp in (a, b):
        for t in txs[:8]:
            mp.submit(t)
    a.mark_committed_many(txs)
    for t in txs:
        b.mark_committed(t)
    assert _window_state(a) == _window_state(b)
    assert len(a._seen) == 10


def test_mark_committed_keys_drops_pending_entries():
    mp = Mempool(dedup_window=50, batch_size=10)
    txs = [Transaction(4, i) for i in range(6)]
    for t in txs:
        mp.submit(t)
    mp.mark_committed_keys([t.key() for t in txs[:4]])
    assert len(mp) == 2
    assert [t.tx_id for t in mp.next_batch()] == [4, 5]
