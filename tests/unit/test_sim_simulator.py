"""Unit tests for the simulator core."""

import pytest

from repro.sim import SimulationError, Simulator


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_schedule_advances_clock_to_event_time():
    sim = Simulator()
    times = []
    sim.schedule(1.5, lambda: times.append(sim.now))
    sim.run()
    assert times == [1.5]
    assert sim.now == 1.5


def test_schedule_at_absolute_time():
    sim = Simulator()
    hits = []
    sim.schedule_at(3.0, hits.append, 3)
    sim.schedule_at(1.0, hits.append, 1)
    sim.run()
    assert hits == [1, 3]


def test_negative_delay_rejected():
    with pytest.raises(SimulationError):
        Simulator().schedule(-0.1, lambda: None)


def test_schedule_in_past_rejected():
    sim = Simulator()
    sim.schedule(1.0, lambda: sim.schedule_at(0.5, lambda: None))
    with pytest.raises(SimulationError):
        sim.run()


def test_run_until_stops_clock_at_bound():
    sim = Simulator()
    fired = []
    sim.schedule(10.0, fired.append, 1)
    sim.run(until=5.0)
    assert fired == []
    assert sim.now == 5.0
    sim.run()  # event is still queued
    assert fired == [1]


def test_run_max_events():
    sim = Simulator()
    hits = []
    for i in range(5):
        sim.schedule(i + 1.0, hits.append, i)
    sim.run(max_events=3)
    assert hits == [0, 1, 2]


def test_stop_when_predicate():
    sim = Simulator()
    hits = []
    for i in range(5):
        sim.schedule(i + 1.0, hits.append, i)
    sim.run(stop_when=lambda: len(hits) >= 2)
    assert hits == [0, 1]


def test_events_can_schedule_more_events():
    sim = Simulator()
    seen = []

    def chain(k):
        seen.append(k)
        if k < 3:
            sim.schedule(1.0, chain, k + 1)

    sim.schedule(1.0, chain, 0)
    sim.run()
    assert seen == [0, 1, 2, 3]
    assert sim.now == 4.0


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    ev = sim.schedule(1.0, fired.append, 1)
    ev.cancel()
    sim.run()
    assert fired == []


def test_events_executed_counter():
    sim = Simulator()
    for _ in range(4):
        sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.events_executed == 4


def test_trace_hook_called_per_event():
    trace = []
    sim = Simulator(trace=lambda t, label: trace.append((t, label)))
    sim.schedule(1.0, lambda: None, label="x")
    sim.run()
    assert trace == [(1.0, "x")]


def test_loop_not_reentrant():
    sim = Simulator()

    def nested():
        with pytest.raises(SimulationError):
            sim.run()

    sim.schedule(1.0, nested)
    sim.run()


def test_pending_events():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    assert sim.pending_events() == 1


def test_pending_events_excludes_cancelled():
    """A cancelled event no longer counts as pending even while it is
    still sitting in the heap (timer re-arms used to inflate this)."""
    sim = Simulator()
    ev = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    ev.cancel()
    assert sim.pending_events() == 1


def test_pending_events_stable_under_timer_rearm():
    sim = Simulator()
    ev = sim.schedule(1.0, lambda: None)
    for i in range(50):  # re-arm: cancel + replace, like view timeouts
        ev.cancel()
        ev = sim.schedule(1.0 + i, lambda: None)
    assert sim.pending_events() == 1


def test_run_until_with_only_cancelled_future_events():
    """If everything beyond the bound is cancelled, the queue is
    effectively drained: the clock must not jump to the bound."""
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    ev = sim.schedule(10.0, lambda: None)
    ev.cancel()
    sim.run(until=5.0)
    assert sim.now == 1.0


def test_run_until_executes_event_exactly_at_bound():
    sim = Simulator()
    fired = []
    sim.schedule(5.0, fired.append, 1)
    sim.run(until=5.0)
    assert fired == [1]
    assert sim.now == 5.0


def test_cancel_inside_callback_skips_peer():
    """An event may cancel a later event scheduled for the same tick."""
    sim = Simulator()
    fired = []
    ev2 = sim.schedule(1.0, fired.append, 2)

    def first():
        fired.append(1)
        ev2.cancel()

    # Same time, later seq than ev2 — reorder via priority.
    sim.schedule(1.0, first, priority=-1)
    sim.run()
    assert fired == [1]
    assert sim.pending_events() == 0


# -- schedule_many -----------------------------------------------------
def test_schedule_many_fires_all_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule_many(
        [3.0, 1.0, 2.0], lambda i: fired.append((sim.now, i)), [(0,), (1,), (2,)]
    )
    sim.run()
    assert fired == [(1.0, 1), (2.0, 2), (3.0, 0)]


def test_schedule_many_past_time_rejected():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_many([2.0, 0.5], lambda: None, [(), ()])


def test_schedule_many_empty_is_noop():
    sim = Simulator()
    assert sim.schedule_many([], lambda: None, []) == []
    sim.run()
    assert sim.events_executed == 0


def test_schedule_many_equal_times_fire_in_batch_order():
    sim = Simulator()
    fired = []
    sim.schedule_many([1.0] * 3, fired.append, [(i,) for i in range(3)])
    sim.run()
    assert fired == [0, 1, 2]
