"""Unit tests for the AWS region topologies."""

import numpy as np
import pytest

from repro.net import EU4, LOCAL, TOPOLOGIES, US4, WORLD11, rtt_ms
from repro.net.regions import FRANKFURT, IRELAND, N_VIRGINIA, OREGON, PARIS, SYDNEY


def test_paper_maxima_are_exact():
    """The three latencies the paper states must be reproduced exactly."""
    assert EU4.max_rtt_ms() == 29.0  # Ireland-Frankfurt
    assert US4.max_rtt_ms() == 65.0  # Oregon-N.Virginia
    assert WORLD11.max_rtt_ms() == 278.0  # Sydney-Paris


def test_paper_maxima_on_the_right_pairs():
    assert rtt_ms(IRELAND, FRANKFURT) == 29.0
    assert rtt_ms(OREGON, N_VIRGINIA) == 65.0
    assert rtt_ms(SYDNEY, PARIS) == 278.0


def test_region_counts_match_paper():
    assert len(EU4.regions) == 4
    assert len(US4.regions) == 4
    assert len(WORLD11.regions) == 11


def test_rtt_symmetric():
    for topo in (EU4, US4, WORLD11):
        mat = topo.rtt_matrix_ms()
        assert np.allclose(mat, mat.T)


def test_rtt_positive_and_intra_region_small():
    for topo in (EU4, US4, WORLD11):
        mat = topo.rtt_matrix_ms()
        assert (mat > 0).all()
        assert (np.diag(mat) < 1.0).all()


def test_unknown_pair_raises():
    with pytest.raises(KeyError):
        rtt_ms(IRELAND, "mars-central-1")


def test_round_robin_region_assignment():
    assert EU4.region_of(0) == IRELAND
    assert EU4.region_of(4) == IRELAND
    assert EU4.region_of(5) == EU4.regions[1]


def test_one_way_is_half_rtt():
    assert EU4.one_way_s(0, 3) == pytest.approx(29.0 / 2 / 1000)


def test_world_contains_eu_and_us():
    assert set(EU4.regions) <= set(WORLD11.regions)
    assert set(US4.regions) <= set(WORLD11.regions)


def test_registry_names():
    assert set(TOPOLOGIES) == {"eu", "us", "world", "local"}
    assert len(LOCAL.regions) == 1
