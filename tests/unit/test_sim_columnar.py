"""Unit tests for the array-backed columnar event queue.

The columnar kernel must be behaviourally indistinguishable from the
scalar tuple heap: same pop order for the same pushes, same soft-delete
cancellation, same ``push_many`` sequence numbering.  The golden
kernel-parity tests (tests/analysis/test_kernel_parity.py) pin that at
whole-run scale; these tests pin it at the data-structure level,
exercising both the staging-heap and the lexsort-merge insert paths.
"""

import random

import pytest

from repro.sim.columnar import MERGE_THRESHOLD, ColumnarEventQueue
from repro.sim.event import EventQueue
from repro.sim.substrate import (
    DEFAULT_KERNEL,
    SubstrateQueue,
    available_kernels,
    create_queue,
)

#: A batch size guaranteed to take the vectorized lexsort merge.
BIG = MERGE_THRESHOLD + 4


def drain(q):
    out = []
    while (ev := q.pop()) is not None:
        out.append(ev)
    return out


# ----------------------------------------------------------------------
# Ordering
# ----------------------------------------------------------------------
def test_push_pop_orders_by_time():
    q = ColumnarEventQueue()
    q.push(2.0, lambda: None, label="b")
    q.push(1.0, lambda: None, label="a")
    q.push(3.0, lambda: None, label="c")
    assert [ev.label for ev in drain(q)] == ["a", "b", "c"]


def test_equal_times_fire_in_insertion_order():
    q = ColumnarEventQueue()
    for i in range(10):
        q.push(1.0, lambda: None, (i,))
    assert [ev.args[0] for ev in drain(q)] == list(range(10))


def test_priority_breaks_ties_before_seq():
    q = ColumnarEventQueue()
    q.push(1.0, lambda: None, label="low", priority=1)
    q.push(1.0, lambda: None, label="high", priority=0)
    assert [ev.label for ev in drain(q)] == ["high", "low"]


def test_merged_run_and_staging_heap_pop_in_global_order():
    """Events split across the sorted run (big push_many) and the
    staging heap (singles) must interleave by (time, priority, seq)."""
    q = ColumnarEventQueue()
    q.push_many([float(2 * i) for i in range(BIG)], lambda: None, [()] * BIG)
    for i in range(5):
        q.push(float(2 * i + 1), lambda: None)
    times = [ev.time for ev in drain(q)]
    assert times == sorted(times)
    assert len(times) == BIG + 5


def test_equal_keys_across_run_and_stage_order_by_seq():
    q = ColumnarEventQueue()
    batch = q.push_many([1.0] * BIG, lambda: None, [()] * BIG)
    single = q.push(1.0, lambda: None)
    seqs = [ev.seq for ev in drain(q)]
    assert seqs == [ev.seq for ev in batch] + [single.seq]


# ----------------------------------------------------------------------
# Cancellation (soft delete)
# ----------------------------------------------------------------------
def test_cancelled_staged_events_are_skipped():
    q = ColumnarEventQueue()
    ev = q.push(1.0, lambda: None)
    keep = q.push(2.0, lambda: None)
    ev.cancel()
    assert drain(q) == [keep]


def test_cancelled_run_events_are_skipped():
    q = ColumnarEventQueue()
    batch = q.push_many([float(i) for i in range(BIG)], lambda: None, [()] * BIG)
    batch[0].cancel()
    batch[7].cancel()
    popped = drain(q)
    assert len(popped) == BIG - 2
    assert batch[0] not in popped and batch[7] not in popped


def test_cancel_is_idempotent():
    q = ColumnarEventQueue()
    ev = q.push(1.0, lambda: None)
    ev.cancel()
    ev.cancel()
    assert q.pop() is None
    assert q.live_count() == 0


def test_merge_compacts_cancelled_events():
    """A lexsort merge drops cancelled events from both the old run and
    the staging heap — ``len`` (which counts queued-including-cancelled)
    shrinks accordingly."""
    q = ColumnarEventQueue()
    batch = q.push_many([float(i) for i in range(BIG)], lambda: None, [()] * BIG)
    staged = q.push(0.5, lambda: None)
    batch[3].cancel()
    staged.cancel()
    assert len(q) == BIG + 1  # soft-deleted, still queued
    q.push_many([100.0 + i for i in range(BIG)], lambda: None, [()] * BIG)
    assert len(q) == 2 * BIG - 1  # merge compacted both cancelled events
    assert q.live_count() == 2 * BIG - 1


def test_live_count_excludes_cancelled():
    q = ColumnarEventQueue()
    evs = [q.push(float(i), lambda: None) for i in range(5)]
    assert q.live_count() == 5
    evs[1].cancel()
    evs[3].cancel()
    assert q.live_count() == 3
    assert len(q) == 5


def test_cancel_after_pop_does_not_corrupt_live_count():
    q = ColumnarEventQueue()
    ev = q.push(1.0, lambda: None)
    q.push(2.0, lambda: None)
    assert q.pop() is ev
    ev.cancel()  # too late — it already fired
    assert q.live_count() == 1


# ----------------------------------------------------------------------
# push_many
# ----------------------------------------------------------------------
@pytest.mark.parametrize("k", [3, MERGE_THRESHOLD - 1, MERGE_THRESHOLD, BIG])
def test_push_many_matches_sequential_pushes(k):
    """Both insert strategies (staging heap below the threshold, lexsort
    merge at/above it) ≡ a loop of push(): same pop order, same seq."""
    a, b = ColumnarEventQueue(), ColumnarEventQueue()
    rng = random.Random(42)
    times = [rng.choice([1.0, 2.0, 3.0]) for _ in range(k)]
    argss = [(i,) for i in range(k)]
    cb = lambda i: None
    a.push_many(times, cb, argss)
    for t, args in zip(times, argss):
        b.push(t, cb, args)
    ea, eb = drain(a), drain(b)
    assert [(e.time, e.priority, e.seq, e.args) for e in ea] == [
        (e.time, e.priority, e.seq, e.args) for e in eb
    ]


def test_push_many_interleaves_with_push_by_seq():
    q = ColumnarEventQueue()
    first = q.push(1.0, lambda: None)
    batch = q.push_many([1.0] * BIG, lambda: None, [()] * BIG)
    last = q.push(1.0, lambda: None)
    seqs = [first.seq] + [ev.seq for ev in batch] + [last.seq]
    assert seqs == sorted(seqs)
    assert len(set(seqs)) == BIG + 2
    assert [ev.seq for ev in drain(q)] == seqs


def test_push_many_empty_batch():
    q = ColumnarEventQueue()
    assert q.push_many([], lambda: None, []) == []
    assert len(q) == 0
    assert q.live_count() == 0


def test_successive_merges_keep_existing_events_sorted():
    q = ColumnarEventQueue()
    q.push_many([float(t) for t in range(0, 2 * BIG, 2)], lambda: None, [()] * BIG)
    q.push_many([float(t) for t in range(1, 2 * BIG, 2)], lambda: None, [()] * BIG)
    times = [ev.time for ev in drain(q)]
    assert times == [float(t) for t in range(2 * BIG)]


def test_push_many_events_are_cancellable():
    q = ColumnarEventQueue()
    events = q.push_many(
        [float(i) for i in range(BIG)], lambda: None, [()] * BIG
    )
    events[1].cancel()
    assert q.live_count() == BIG - 1
    assert events[1] not in drain(q)


# ----------------------------------------------------------------------
# pop_next / peek_time / clear
# ----------------------------------------------------------------------
def test_pop_next_respects_bound():
    q = ColumnarEventQueue()
    q.push(1.0, lambda: None)
    q.push(3.0, lambda: None)
    assert q.pop_next(until=2.0).time == 1.0
    assert q.pop_next(until=2.0) is None
    assert q.live_count() == 1
    assert q.pop_next(until=3.0).time == 3.0


def test_pop_next_bound_applies_to_run_events():
    q = ColumnarEventQueue()
    q.push_many([float(i) for i in range(BIG)], lambda: None, [()] * BIG)
    assert q.pop_next(until=0.0).time == 0.0
    assert q.pop_next(until=0.5) is None
    assert q.live_count() == BIG - 1


def test_pop_next_skips_cancelled_heads():
    q = ColumnarEventQueue()
    first = q.push(1.0, lambda: None)
    second = q.push(2.0, lambda: None)
    first.cancel()
    assert q.pop_next() is second
    assert q.pop_next() is None


def test_peek_time_skips_cancelled():
    q = ColumnarEventQueue()
    first = q.push(1.0, lambda: None)
    q.push(5.0, lambda: None)
    assert q.peek_time() == 1.0
    first.cancel()
    assert q.peek_time() == 5.0


def test_peek_time_empty_queue():
    assert ColumnarEventQueue().peek_time() is None


def test_clear_empties_run_and_stage():
    q = ColumnarEventQueue()
    q.push_many([float(i) for i in range(BIG)], lambda: None, [()] * BIG)
    q.push(0.5, lambda: None)
    q.clear()
    assert q.pop() is None
    assert len(q) == 0
    assert q.live_count() == 0
    q.push(1.0, lambda: None)
    assert q.live_count() == 1


def test_cancel_after_clear_does_not_corrupt_live_count():
    q = ColumnarEventQueue()
    ev = q.push(1.0, lambda: None)
    q.clear()
    ev.cancel()
    assert q.live_count() == 0


# ----------------------------------------------------------------------
# Differential: columnar ≡ scalar under mixed random workloads
# ----------------------------------------------------------------------
def test_differential_against_scalar_kernel():
    """Drive both kernels through the same randomized mixed op sequence
    (singles, bulk batches straddling the merge threshold, cancels,
    bounded and unbounded pops) and require identical observable
    behaviour at every step."""
    rng = random.Random(1234)
    scalar, columnar = EventQueue(), ColumnarEventQueue()
    live: list[tuple] = []  # aligned (scalar_ev, columnar_ev) pairs
    cb = lambda *a: None
    for _ in range(600):
        op = rng.random()
        if op < 0.35:
            t = rng.choice([1.0, 2.0, 2.0, 3.0, 5.0]) + rng.randint(0, 3)
            p = rng.randint(0, 2)
            live.append((scalar.push(t, cb, (), p), columnar.push(t, cb, (), p)))
        elif op < 0.55:
            k = rng.choice([2, MERGE_THRESHOLD - 1, MERGE_THRESHOLD, BIG])
            times = [rng.choice([1.0, 2.0, 4.0]) + rng.randint(0, 3) for _ in range(k)]
            argss = [(i,) for i in range(k)]
            live.extend(
                zip(scalar.push_many(times, cb, argss),
                    columnar.push_many(times, cb, argss))
            )
        elif op < 0.7 and live:
            a, b = live.pop(rng.randrange(len(live)))
            a.cancel()
            b.cancel()
        elif op < 0.9:
            until = rng.choice([None, 2.0, 4.0])
            ea, eb = scalar.pop_next(until), columnar.pop_next(until)
            assert (ea is None) == (eb is None)
            if ea is not None:
                assert (ea.time, ea.priority, ea.seq) == (eb.time, eb.priority, eb.seq)
        else:
            ea, eb = scalar.pop(), columnar.pop()
            assert (ea is None) == (eb is None)
            if ea is not None:
                assert (ea.time, ea.priority, ea.seq) == (eb.time, eb.priority, eb.seq)
        assert scalar.live_count() == columnar.live_count()
        assert scalar.peek_time() == columnar.peek_time()
    sa, ca = drain(scalar), drain(columnar)
    assert [(e.time, e.priority, e.seq) for e in sa] == [
        (e.time, e.priority, e.seq) for e in ca
    ]


# ----------------------------------------------------------------------
# Kernel registry
# ----------------------------------------------------------------------
def test_default_kernel_is_scalar():
    assert DEFAULT_KERNEL == "scalar"


def test_both_builtin_kernels_registered():
    assert {"scalar", "columnar"} <= set(available_kernels())


def test_create_queue_builds_the_right_kernel():
    assert isinstance(create_queue("scalar"), EventQueue)
    assert isinstance(create_queue("columnar"), ColumnarEventQueue)
    assert isinstance(create_queue(), EventQueue)  # default


def test_create_queue_unknown_kernel_is_a_value_error():
    with pytest.raises(ValueError, match="columnar"):
        create_queue("vectorised")


def test_kernels_satisfy_the_substrate_protocol():
    assert isinstance(EventQueue(), SubstrateQueue)
    assert isinstance(ColumnarEventQueue(), SubstrateQueue)
