"""Bench suite registry audit: no tier can be silently skipped."""

import importlib
import pkgutil

import pytest

import repro.bench as bench
from repro.bench import SUITES, BenchReport, run_suite, suite_names
from repro.cli import build_parser


class TestRegistryCompleteness:
    def test_every_runner_module_is_registered(self):
        # Any module in repro.bench exporting a run_*_bench entry point
        # must appear in SUITES — a new tier cannot be added without
        # registering it (and thereby joining --suite all).
        registered = {s.runner for s in SUITES.values()}
        for info in pkgutil.iter_modules(bench.__path__):
            mod = importlib.import_module(f"repro.bench.{info.name}")
            for name in getattr(mod, "__all__", []):
                if name.startswith("run_") and name.endswith("_bench"):
                    fn = getattr(mod, name)
                    assert fn in registered, (
                        f"{info.name}.{name} is not registered in "
                        "repro.bench.SUITES"
                    )

    def test_expected_tiers_present(self):
        assert suite_names() == [
            "kernel",
            "e2e",
            "crypto",
            "net",
            "lint",
            "workload",
            "fuzz",
            "shard",
        ]

    def test_names_are_consistent(self):
        for name, suite in SUITES.items():
            assert suite.name == name

    def test_unknown_suite_fails_loudly(self):
        with pytest.raises(ValueError, match="unknown bench suite"):
            run_suite("nonexistent")

    def test_cli_choices_derive_from_registry(self):
        parser = build_parser()
        args = parser.parse_args(["bench", "--suite", "workload"])
        assert args.suite == "workload"
        with pytest.raises(SystemExit):
            parser.parse_args(["bench", "--suite", "bogus"])

    def test_cli_all_is_the_registry(self, capsys):
        parser = build_parser()
        args = parser.parse_args(["bench"])
        assert args.suite == "all"


class TestRunSuite:
    def test_run_suite_dispatches(self):
        report = run_suite("lint", quick=True)
        assert isinstance(report, BenchReport)
        assert report.name == "lint"
