"""Unit tests for the crypto cost model."""

import pytest

from repro.crypto import FREE, T2_MICRO, CryptoCostModel


def test_defaults_positive():
    m = T2_MICRO
    assert m.sign() > 0
    assert m.verify() > 0
    assert m.hash(1024) > m.hash(0) > 0


def test_verify_scales_with_count():
    m = T2_MICRO
    assert m.verify(5) == pytest.approx(5 * m.verify(1))
    assert m.verify(0) == 0.0


def test_verify_rejects_negative_count():
    with pytest.raises(ValueError):
        T2_MICRO.verify(-1)


def test_hash_linear_in_size():
    m = CryptoCostModel(hash_base=1e-6, hash_per_kb=2e-6)
    assert m.hash(2048) == pytest.approx(1e-6 + 4e-6)


def test_hash_rejects_negative_size():
    with pytest.raises(ValueError):
        T2_MICRO.hash(-1)


def test_free_model_is_zero():
    assert FREE.sign() == 0.0
    assert FREE.verify(100) == 0.0
    assert FREE.hash(10**6) == 0.0


def test_verify_more_expensive_than_sign():
    # ECDSA-P256 property the calibration must respect.
    assert T2_MICRO.verify() > T2_MICRO.sign()


def test_model_is_frozen():
    with pytest.raises(Exception):
        T2_MICRO.sign_time = 0.0
